"""Scaling models: how work, checkpoint and recovery costs depend on ``p``.

Section 3 of the paper instantiates Equation 6 under several scenarios for the
workload ``W(p)`` and for the checkpoint/recovery overheads ``C(p), R(p)``.
This subpackage implements those scenarios plus the frontier-dependent
checkpoint-cost model of the first extension (Section 6).
"""

from repro.models.workload import (
    AmdahlWorkload,
    NumericalKernelWorkload,
    PerfectlyParallelWorkload,
    WorkloadModel,
)
from repro.models.checkpoint import (
    CheckpointCostModel,
    ConstantCheckpointCost,
    FrontierCheckpointCost,
    ProportionalCheckpointCost,
)

__all__ = [
    "WorkloadModel",
    "PerfectlyParallelWorkload",
    "AmdahlWorkload",
    "NumericalKernelWorkload",
    "CheckpointCostModel",
    "ConstantCheckpointCost",
    "ProportionalCheckpointCost",
    "FrontierCheckpointCost",
]
