"""Checkpoint and recovery cost models.

Section 3 of the paper lists two ``C(p) = R(p)`` scenarios for an application
whose memory footprint is ``V`` bytes, each processor holding ``V / p``:

* proportional overhead ``C(p) = alpha * V / p``: the network card/link of
  each processor is the I/O bottleneck, so writing shrinks with ``p``;
* constant overhead ``C(p) = alpha * V``: the bandwidth to/from the resilient
  storage system is the bottleneck, so the cost does not depend on ``p``.

Section 6 (first extension) generalises the per-task checkpoint cost to a
function of *all* the tasks executed since the last checkpoint that still have
an unexecuted successor (the "live frontier"); :class:`FrontierCheckpointCost`
implements that model for general DAG linearisations.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Callable, Sequence

from repro._validation import check_non_negative, check_positive, check_positive_int
from repro.workflows.dag import Workflow

__all__ = [
    "CheckpointCostModel",
    "ConstantCheckpointCost",
    "ProportionalCheckpointCost",
    "FrontierCheckpointCost",
]


class CheckpointCostModel(ABC):
    """Abstract model of checkpoint (and recovery) durations versus platform size."""

    @abstractmethod
    def checkpoint_time(self, footprint: float, num_processors: int) -> float:
        """Checkpoint duration for an application footprint of ``footprint`` bytes."""

    def recovery_time(self, footprint: float, num_processors: int) -> float:
        """Recovery duration; by default equal to the checkpoint duration (C = R)."""
        return self.checkpoint_time(footprint, num_processors)

    def _check(self, footprint: float, num_processors: int) -> None:
        check_non_negative("footprint", footprint)
        check_positive_int("num_processors", num_processors)


@dataclass(frozen=True)
class ProportionalCheckpointCost(CheckpointCostModel):
    """Proportional overhead: ``C(p) = alpha * V / p``.

    Models the case where each processor's network card/link is the I/O
    bottleneck, so the per-processor share ``V / p`` determines the duration.
    ``alpha`` is the write time per byte.
    """

    alpha: float

    def __post_init__(self) -> None:
        check_positive("alpha", self.alpha)
        object.__setattr__(self, "alpha", float(self.alpha))

    def checkpoint_time(self, footprint: float, num_processors: int) -> float:
        self._check(footprint, num_processors)
        return self.alpha * footprint / num_processors


@dataclass(frozen=True)
class ConstantCheckpointCost(CheckpointCostModel):
    """Constant overhead: ``C(p) = alpha * V``.

    Models the case where the bandwidth to/from the resilient storage system
    is the I/O bottleneck, so adding processors does not help.
    """

    alpha: float

    def __post_init__(self) -> None:
        check_positive("alpha", self.alpha)
        object.__setattr__(self, "alpha", float(self.alpha))

    def checkpoint_time(self, footprint: float, num_processors: int) -> float:
        self._check(footprint, num_processors)
        return self.alpha * footprint


@dataclass(frozen=True)
class FrontierCheckpointCost:
    """Frontier-dependent checkpoint cost for general DAG linearisations.

    Section 6 (first extension): "the cost of a checkpoint should account for
    all the tasks that have been executed since the last checkpoint and which
    have at least a successor task which has not been executed yet".

    Given a workflow, a linear execution order, the index of the last
    checkpointed position and the current position, :meth:`cost` aggregates
    the per-task checkpoint costs of the live tasks using ``combine``
    (default: sum, i.e. all live outputs must be written).  For linear chains
    the live set always contains exactly the last executed task, so this model
    degenerates to the paper's base model ``C_j`` -- which is why the paper
    notes the chain cost model is fully general.

    Parameters
    ----------
    workflow:
        The workflow being linearised.
    combine:
        Aggregation of the per-task checkpoint costs of live tasks.  The
        default sums them; ``max`` models overlapping writes limited by the
        largest object.
    """

    workflow: Workflow
    combine: Callable[[Sequence[float]], float] = sum

    def cost(self, order: Sequence[str], last_checkpoint: int, position: int) -> float:
        """Checkpoint cost right after ``order[position]``.

        ``last_checkpoint`` is the index (in ``order``) of the last task after
        which a checkpoint was taken, or ``-1`` if no checkpoint was taken
        yet.  Only tasks executed *after* that point contribute (earlier live
        data is already part of the previous checkpoint image and is assumed
        to be saved incrementally).
        """
        names = self.workflow.validate_order(order)
        n = len(names)
        if not -1 <= last_checkpoint < n:
            raise ValueError(f"last_checkpoint must be in -1..{n - 1}, got {last_checkpoint}")
        if not 0 <= position < n:
            raise ValueError(f"position must be in 0..{n - 1}, got {position}")
        if position <= last_checkpoint:
            raise ValueError(
                f"position ({position}) must be after last_checkpoint ({last_checkpoint})"
            )
        frontier = self.workflow.frontier_after(names, position)
        window = set(names[last_checkpoint + 1 : position + 1])
        live = frontier & window
        costs = [self.workflow.task(name).checkpoint_cost for name in sorted(live)]
        if not costs:
            return 0.0
        return float(self.combine(costs))

    def recovery(self, order: Sequence[str], checkpoint_position: int) -> float:
        """Recovery cost when rolling back to the checkpoint at ``checkpoint_position``.

        Symmetric to :meth:`cost`: the data of every task that was live at the
        checkpointed position must be read back.
        """
        names = self.workflow.validate_order(order)
        n = len(names)
        if not 0 <= checkpoint_position < n:
            raise ValueError(
                f"checkpoint_position must be in 0..{n - 1}, got {checkpoint_position}"
            )
        frontier = self.workflow.frontier_after(names, checkpoint_position)
        costs = [self.workflow.task(name).recovery_cost for name in sorted(frontier)]
        if not costs:
            return 0.0
        return float(self.combine(costs))
