"""Workload scaling models ``W(p)``.

Section 3 of the paper lists three relevant scenarios for how the parallel
execution time of a total sequential load ``W_total`` depends on the number of
processors ``p``:

* perfectly parallel jobs: ``W(p) = W_total / p``;
* generic (Amdahl-law) parallel jobs: ``W(p) = (1 - gamma) W_total / p +
  gamma W_total`` where ``gamma`` is the inherently sequential fraction;
* numerical kernels (matrix product, LU/QR factorisation on a 2-D processor
  grid): ``W(p) = W_total / p + gamma * W_total^{2/3} / sqrt(p)`` where
  ``gamma`` is the communication-to-computation ratio of the platform.

These models are used by the moldable-task extension (Section 6, second
extension) and by the scaling experiments (E7, E9).
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from dataclasses import dataclass

from repro._validation import check_in_range, check_non_negative, check_positive, check_positive_int

__all__ = [
    "WorkloadModel",
    "PerfectlyParallelWorkload",
    "AmdahlWorkload",
    "NumericalKernelWorkload",
]


class WorkloadModel(ABC):
    """Abstract model of the parallel execution time of a sequential load."""

    @abstractmethod
    def time(self, total_work: float, num_processors: int) -> float:
        """Failure-free execution time of ``total_work`` on ``num_processors`` processors."""

    def speedup(self, total_work: float, num_processors: int) -> float:
        """Speedup relative to a single processor."""
        t1 = self.time(total_work, 1)
        tp = self.time(total_work, num_processors)
        if tp <= 0.0:
            return math.inf
        return t1 / tp

    def efficiency(self, total_work: float, num_processors: int) -> float:
        """Parallel efficiency (speedup divided by the number of processors)."""
        return self.speedup(total_work, num_processors) / num_processors

    def _check(self, total_work: float, num_processors: int) -> None:
        check_positive("total_work", total_work)
        check_positive_int("num_processors", num_processors)


@dataclass(frozen=True)
class PerfectlyParallelWorkload(WorkloadModel):
    """Perfectly parallel jobs: ``W(p) = W_total / p``."""

    def time(self, total_work: float, num_processors: int) -> float:
        self._check(total_work, num_processors)
        return total_work / num_processors


@dataclass(frozen=True)
class AmdahlWorkload(WorkloadModel):
    """Generic parallel jobs following Amdahl's law.

    ``W(p) = (1 - gamma) * W_total / p + gamma * W_total`` where ``gamma`` in
    ``[0, 1)`` is the inherently sequential fraction of the work.
    """

    gamma: float = 0.0

    def __post_init__(self) -> None:
        check_in_range("gamma", self.gamma, 0.0, 1.0)
        if self.gamma >= 1.0:
            raise ValueError(f"gamma must be < 1, got {self.gamma}")
        object.__setattr__(self, "gamma", float(self.gamma))

    def time(self, total_work: float, num_processors: int) -> float:
        self._check(total_work, num_processors)
        return (1.0 - self.gamma) * total_work / num_processors + self.gamma * total_work


@dataclass(frozen=True)
class NumericalKernelWorkload(WorkloadModel):
    """Numerical kernels on a 2-D processor grid.

    ``W(p) = W_total / p + gamma * W_total^{2/3} / sqrt(p)`` where ``gamma``
    is the communication-to-computation ratio of the platform.  This captures
    ScaLAPACK-style matrix product and LU/QR factorisation, for which
    ``W_total = O(N^3)`` and the per-processor communication volume scales as
    ``N^2 / sqrt(p)``.
    """

    gamma: float = 0.1

    def __post_init__(self) -> None:
        check_non_negative("gamma", self.gamma)
        object.__setattr__(self, "gamma", float(self.gamma))

    def time(self, total_work: float, num_processors: int) -> float:
        self._check(total_work, num_processors)
        return (
            total_work / num_processors
            + self.gamma * total_work ** (2.0 / 3.0) / math.sqrt(num_processors)
        )
