"""Parameter-sweep helpers used by the experiments and benchmarks.

Besides the spacing helpers (:func:`geometric_sweep`, :func:`linear_sweep`),
this module provides the fan-out side of sweeps: :func:`parameter_grid`
enumerates a cartesian grid of keyword arguments in deterministic order, and
:func:`map_sweep` evaluates a function over such a grid on any
:class:`~repro.runtime.backends.ExecutionBackend` -- each grid point is an
independent work unit, so a sweep over 50 parameter combinations spreads over
a process pool exactly like 50 simulation chunks would.
"""

from __future__ import annotations

import itertools
from typing import Any, Callable, Dict, List, Sequence, Tuple, Union

from repro._validation import check_positive, check_positive_int
from repro.runtime.backends import ExecutionBackend, backend_scope

__all__ = ["geometric_sweep", "linear_sweep", "parameter_grid", "map_sweep"]


def geometric_sweep(start: float, stop: float, num_points: int) -> List[float]:
    """``num_points`` values geometrically spaced from ``start`` to ``stop`` (inclusive).

    Failure rates, checkpoint costs and processor counts span several orders
    of magnitude in the experiments, so geometric spacing is the natural
    choice.
    """
    check_positive("start", start)
    check_positive("stop", stop)
    check_positive_int("num_points", num_points)
    if num_points == 1:
        return [start]
    ratio = (stop / start) ** (1.0 / (num_points - 1))
    return [start * ratio ** i for i in range(num_points)]


def linear_sweep(start: float, stop: float, num_points: int) -> List[float]:
    """``num_points`` values linearly spaced from ``start`` to ``stop`` (inclusive)."""
    check_positive_int("num_points", num_points)
    if num_points == 1:
        return [start]
    step = (stop - start) / (num_points - 1)
    return [start + step * i for i in range(num_points)]


def parameter_grid(**axes: Sequence[Any]) -> List[Dict[str, Any]]:
    """Cartesian product of named parameter axes, in deterministic order.

    ``parameter_grid(rate=[0.01, 0.1], n=[10, 20])`` yields four dicts, the
    last axis varying fastest.  The order is a pure function of the call, so
    grid index ``i`` means the same parameter combination on every machine --
    which is what lets sweep results be cached and merged by position.
    """
    if not axes:
        return [{}]
    # Materialise each axis exactly once so generator/iterator inputs are not
    # drained by the validation pass before the product reads them.
    materialized = {name: list(values) for name, values in axes.items()}
    for name, values in materialized.items():
        if not values:
            raise ValueError(f"parameter axis {name!r} must not be empty")
    names = list(materialized)
    return [
        dict(zip(names, combo))
        for combo in itertools.product(*(materialized[name] for name in names))
    ]


def _apply_kwargs(task: Tuple[Callable[..., Any], Dict[str, Any]]) -> Any:
    """Invoke one grid point (module-level so process pools can pickle it)."""
    fn, kwargs = task
    return fn(**kwargs)


def map_sweep(
    fn: Callable[..., Any],
    grid: Sequence[Dict[str, Any]],
    *,
    backend: Union[None, int, str, ExecutionBackend] = None,
) -> List[Any]:
    """Evaluate ``fn(**point)`` for every grid point, in grid order.

    With a parallel backend, ``fn`` must be picklable (a module-level
    function) and so must the grid values and results.  The output order
    always matches the grid order, whatever the backend.
    """
    tasks = [(fn, dict(point)) for point in grid]
    with backend_scope(backend) as executor:
        return executor.map(_apply_kwargs, tasks)
