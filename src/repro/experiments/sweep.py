"""Parameter-sweep helpers used by the experiments and benchmarks."""

from __future__ import annotations

import math
from typing import List

from repro._validation import check_positive, check_positive_int

__all__ = ["geometric_sweep", "linear_sweep"]


def geometric_sweep(start: float, stop: float, num_points: int) -> List[float]:
    """``num_points`` values geometrically spaced from ``start`` to ``stop`` (inclusive).

    Failure rates, checkpoint costs and processor counts span several orders
    of magnitude in the experiments, so geometric spacing is the natural
    choice.
    """
    check_positive("start", start)
    check_positive("stop", stop)
    check_positive_int("num_points", num_points)
    if num_points == 1:
        return [start]
    ratio = (stop / start) ** (1.0 / (num_points - 1))
    return [start * ratio ** i for i in range(num_points)]


def linear_sweep(start: float, stop: float, num_points: int) -> List[float]:
    """``num_points`` values linearly spaced from ``start`` to ``stop`` (inclusive)."""
    check_positive_int("num_points", num_points)
    if num_points == 1:
        return [start]
    step = (stop - start) / (num_points - 1)
    return [start + step * i for i in range(num_points)]
