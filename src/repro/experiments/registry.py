"""The reproduction's experiment suite (E1-E10).

The paper has no numerical evaluation section, so these experiments validate
every proposition and every discussed extension (see DESIGN.md section 7 for
the mapping).  Each experiment is a function taking only keyword parameters
(with fast defaults) and returning a
:class:`~repro.experiments.reporting.ResultTable`.  The ``benchmarks/``
directory wraps each one with pytest-benchmark; running this module as a
script prints every table::

    python -m repro.experiments.registry           # all experiments
    python -m repro.experiments.registry E1 E3     # a subset
"""

from __future__ import annotations

import inspect
import math
import sys
import time
from typing import Callable, Dict, List, Optional, Union

import numpy as np

from repro.analysis.bruteforce import brute_force_chain_checkpoints
from repro.analysis.reduction import (
    generate_no_instance,
    generate_yes_instance,
    schedule_to_three_partition,
    solve_three_partition,
    three_partition_to_schedule,
)
from repro.baselines.periodic import (
    divisible_expected_makespan,
    optimal_periodic_policy,
)
from repro.baselines.strategies import evaluate_chain_strategies
from repro.baselines.work_maximization import work_maximization_chain
from repro.core.chain_dp import optimal_chain_checkpoints
from repro.core.expected_time import (
    ANALYTIC_NUMERICS,
    bouguerra_expected_time,
    daly_higher_order_period,
    expected_completion_time,
    young_period,
)
from repro.core.independent import (
    exhaustive_independent_schedule,
    grouping_expected_time,
    schedule_independent_tasks,
)
from repro.core.dag_scheduling import exhaustive_dag_schedule, schedule_dag
from repro.core.moldable import MoldableScheduler, MoldableTask
from repro.core.schedule import Schedule
from repro.experiments.reporting import ResultTable
from repro.experiments.sweep import geometric_sweep
from repro.failures.distributions import (
    ExponentialFailure,
    LogNormalFailure,
    WeibullFailure,
)
from repro.failures.platform import Platform
from repro.models.checkpoint import (
    ConstantCheckpointCost,
    FrontierCheckpointCost,
    ProportionalCheckpointCost,
)
from repro.models.workload import (
    AmdahlWorkload,
    NumericalKernelWorkload,
    PerfectlyParallelWorkload,
)
from repro.runtime.backends import ExecutionBackend, backend_scope
from repro.runtime.cache import ResultCache
from repro.runtime.chunking import plan_chunks
from repro.simulation.monte_carlo import MonteCarloEstimator, estimate_expected_completion_time
from repro.workflows.generators import fork_join, montage_like, uniform_random_chain

__all__ = [
    "EXPERIMENTS",
    "experiment_descriptions",
    "run_experiment",
    "run_all_experiments",
]

#: Keyword arguments of the parallel-runtime plumbing; ``run_experiment``
#: forwards them only to experiments whose signature declares them, so the
#: purely analytic experiments stay oblivious to backends, caches,
#: execution engines and progress reporting.
_RUNTIME_KWARGS = ("backend", "cache", "chunk_size", "engine", "progress")


def _spawn_int_seeds(seed: Optional[int], count: int) -> List[int]:
    """Derive ``count`` independent integer seeds from a root seed.

    The chunked execution paths key their caches on integer seeds, so the
    experiments hand each sub-estimate a deterministic child seed instead of
    sharing one live generator (which could not be split across workers).
    """
    children = np.random.SeedSequence(seed).spawn(count)
    return [int(child.generate_state(1, np.uint64)[0]) for child in children]


def _offset_progress(
    progress: Optional[Callable[[int, int], None]], offset: int, grand_total: int
) -> Optional[Callable[[int, int], None]]:
    """Rebase one sub-estimate's ``(done, total)`` onto experiment-wide counts.

    The Monte-Carlo-heavy experiments run several estimates in sequence;
    each estimate reports its own chunk progress, and this wrapper shifts it
    by the chunks of the estimates already completed so the caller sees one
    monotone ``(done, grand_total)`` stream for the whole experiment (the
    granularity the scenario service's job progress is built on).
    """
    if progress is None:
        return None

    def hook(done: int, total: int) -> None:
        progress(offset + done, grand_total)

    return hook


# ----------------------------------------------------------------------
# E1 -- Proposition 1 closed form vs Monte-Carlo simulation
# ----------------------------------------------------------------------


def experiment_e1_prop1_validation(
    *, num_runs: int = 20_000, seed: int = 1,
    backend: Union[None, int, str, ExecutionBackend] = None,
    cache: Optional[ResultCache] = None,
    chunk_size: Optional[int] = None,
    engine: Optional[str] = None,
    progress: Optional[Callable[[int, int], None]] = None,
) -> ResultTable:
    """Validate the Proposition 1 closed form against simulation (E1)."""
    table = ResultTable(
        title="E1: Proposition 1 closed form vs Monte-Carlo estimate",
        columns=[
            "work", "checkpoint", "downtime", "recovery", "rate",
            "analytic", "simulated", "rel_error", "within_ci95",
        ],
    )
    scenarios = [
        (10.0, 1.0, 0.0, 1.0, 0.01),
        (10.0, 1.0, 0.5, 2.0, 0.05),
        (100.0, 5.0, 1.0, 5.0, 0.002),
        (1.0, 0.1, 0.0, 0.1, 0.5),
        (50.0, 0.0, 0.0, 0.0, 0.01),
        (20.0, 2.0, 3.0, 4.0, 0.02),
    ]
    use_runtime = backend is not None or cache is not None or engine is not None
    rng = None if use_runtime else np.random.default_rng(seed)
    seeds = _spawn_int_seeds(seed, len(scenarios)) if use_runtime else [None] * len(scenarios)
    # Experiment-wide progress: each sub-estimate contributes its own chunk
    # count (one chunk each on the serial path), reported as one monotone
    # stream so the scenario service sees real per-chunk progress.
    per_estimate = plan_chunks(num_runs, chunk_size).num_chunks if use_runtime else 1
    total_chunks = len(scenarios) * per_estimate
    for index, ((work, ckpt, downtime, recovery, rate), sub_seed) in enumerate(
        zip(scenarios, seeds)
    ):
        analytic = expected_completion_time(work, ckpt, downtime, recovery, rate)
        estimate = estimate_expected_completion_time(
            work, ckpt, downtime, recovery, rate, num_runs=num_runs,
            rng=rng, seed=sub_seed, backend=backend, cache=cache,
            chunk_size=chunk_size, engine=engine,
            progress=_offset_progress(progress, index * per_estimate, total_chunks),
        )
        table.add_row(
            work=work,
            checkpoint=ckpt,
            downtime=downtime,
            recovery=recovery,
            rate=rate,
            analytic=analytic,
            simulated=estimate.mean,
            rel_error=estimate.relative_error(analytic),
            within_ci95=estimate.contains(analytic),
        )
    return table


# ----------------------------------------------------------------------
# E2 -- Prop. 1 vs first/second-order and Bouguerra-style formulas
# ----------------------------------------------------------------------


def experiment_e2_formula_comparison(
    *, total_work: float = 1000.0, checkpoint: float = 5.0,
    downtime: float = 1.0, recovery: float = 5.0,
) -> ResultTable:
    """Compare the exact policy with Young/Daly periods and the inexact formula (E2)."""
    table = ResultTable(
        title="E2: exact periodic optimum vs Young/Daly periods and Bouguerra-style formula",
        columns=[
            "rate", "mtbf", "optimal_chunks", "optimal_period", "young_period",
            "daly_period", "E_optimal", "E_young", "E_daly",
            "young_overhead_pct", "daly_overhead_pct", "bouguerra_bias_pct",
        ],
    )
    for rate in geometric_sweep(1e-4, 1e-1, 7):
        policy = optimal_periodic_policy(
            total_work, checkpoint, downtime, recovery, rate
        )
        period_young = young_period(checkpoint, rate)
        period_daly = daly_higher_order_period(checkpoint, rate)
        e_young = divisible_expected_makespan(
            total_work, period_young, checkpoint, downtime, recovery, rate
        )
        e_daly = divisible_expected_makespan(
            total_work, period_daly, checkpoint, downtime, recovery, rate
        )
        exact_segment = expected_completion_time(
            policy.chunk_work, checkpoint, downtime, recovery, rate
        )
        inexact_segment = bouguerra_expected_time(
            policy.chunk_work, checkpoint, downtime, recovery, rate
        )
        table.add_row(
            rate=rate,
            mtbf=1.0 / rate,
            optimal_chunks=policy.num_chunks,
            optimal_period=policy.chunk_work,
            young_period=period_young,
            daly_period=period_daly,
            E_optimal=policy.expected_makespan,
            E_young=e_young,
            E_daly=e_daly,
            young_overhead_pct=100.0 * (e_young / policy.expected_makespan - 1.0),
            daly_overhead_pct=100.0 * (e_daly / policy.expected_makespan - 1.0),
            bouguerra_bias_pct=100.0 * (inexact_segment / exact_segment - 1.0),
        )
    return table


# ----------------------------------------------------------------------
# E3 -- Chain DP optimality and scaling
# ----------------------------------------------------------------------


def experiment_e3_chain_dp(
    *, brute_force_sizes: tuple = (4, 6, 8, 10), scaling_sizes: tuple = (100, 200, 400, 800),
    seed: int = 2, downtime: float = 0.5, rate: float = 0.02,
    method: str = "auto",
) -> ResultTable:
    """Chain DP equals brute force on small chains, and scales quadratically (E3).

    ``method`` picks the DP execution path (``"auto"`` defaults to the
    vectorized kernels on the scaling sizes; ``"reference"`` forces the
    scalar loops) -- results are bit-identical either way, only
    ``dp_seconds`` changes.
    """
    table = ResultTable(
        title="E3: linear-chain DP vs brute force, and runtime scaling",
        columns=[
            "n", "mode", "E_dp", "E_bruteforce", "match",
            "num_checkpoints", "dp_seconds",
        ],
    )
    rng = np.random.default_rng(seed)
    for n in brute_force_sizes:
        chain = uniform_random_chain(n, rng=rng)
        start = time.perf_counter()
        dp = optimal_chain_checkpoints(chain, downtime, rate, method=method)
        elapsed = time.perf_counter() - start
        brute = brute_force_chain_checkpoints(chain, downtime, rate)
        table.add_row(
            n=n,
            mode="exactness",
            E_dp=dp.expected_makespan,
            E_bruteforce=brute.expected_makespan,
            match=math.isclose(dp.expected_makespan, brute.expected_makespan, rel_tol=1e-9),
            num_checkpoints=dp.num_checkpoints,
            dp_seconds=elapsed,
        )
    for n in scaling_sizes:
        chain = uniform_random_chain(n, rng=rng)
        start = time.perf_counter()
        dp = optimal_chain_checkpoints(chain, downtime, rate, method=method)
        elapsed = time.perf_counter() - start
        table.add_row(
            n=n,
            mode="scaling",
            E_dp=dp.expected_makespan,
            E_bruteforce=None,
            match=None,
            num_checkpoints=dp.num_checkpoints,
            dp_seconds=elapsed,
        )
    return table


# ----------------------------------------------------------------------
# E4 -- The 3-PARTITION reduction behaves as proved
# ----------------------------------------------------------------------


def experiment_e4_reduction(*, num_yes: int = 4, num_no: int = 2, seed: int = 3) -> ResultTable:
    """YES instances reach the bound K exactly; NO instances cannot (E4)."""
    table = ResultTable(
        title="E4: Proposition 2 reduction -- YES instances achieve K, NO instances exceed it",
        columns=[
            "instance", "kind", "n_subsets", "bound_K", "best_expected",
            "meets_bound", "recovered_partition",
        ],
    )
    rng = np.random.default_rng(seed)
    for index in range(num_yes):
        instance = generate_yes_instance(3, rng=rng)
        reduced = three_partition_to_schedule(instance)
        partition = solve_three_partition(instance)
        assert partition is not None, "generated YES instance has no solution"
        expected = reduced.grouping_expected_time(partition)
        recovered = schedule_to_three_partition(reduced, partition)
        table.add_row(
            instance=f"yes-{index}",
            kind="YES",
            n_subsets=instance.num_subsets,
            bound_K=reduced.bound,
            best_expected=expected,
            meets_bound=expected <= reduced.bound * (1 + 1e-9),
            recovered_partition=recovered is not None,
        )
    for index in range(num_no):
        instance = generate_no_instance(2, rng=rng)
        reduced = three_partition_to_schedule(instance)
        optimum = exhaustive_independent_schedule(
            list(reduced.works),
            reduced.checkpoint_cost,
            reduced.recovery_cost,
            reduced.downtime,
            reduced.rate,
            initial_recovery=reduced.recovery_cost,
        )
        table.add_row(
            instance=f"no-{index}",
            kind="NO",
            n_subsets=instance.num_subsets,
            bound_K=reduced.bound,
            best_expected=optimum.expected_makespan,
            meets_bound=optimum.expected_makespan <= reduced.bound * (1 + 1e-9),
            recovered_partition=None,
        )
    return table


# ----------------------------------------------------------------------
# E5 -- Independent-task heuristics vs the exhaustive optimum
# ----------------------------------------------------------------------


def experiment_e5_independent_heuristics(
    *, exact_sizes: tuple = (5, 7, 9), heuristic_sizes: tuple = (30, 60),
    seed: int = 4, checkpoint: float = 1.0, downtime: float = 0.0, rate: float = 0.05,
    method: str = "auto",
) -> ResultTable:
    """Heuristic grouping vs exhaustive optimum and trivial strategies (E5).

    ``method`` picks the local-search implementation of
    :func:`~repro.core.independent.schedule_independent_tasks` (the batched
    incremental scoring by default on the heuristic sizes).
    """
    table = ResultTable(
        title="E5: independent-task heuristic vs exhaustive optimum and trivial groupings",
        columns=[
            "n", "E_heuristic", "E_optimal", "ratio_to_optimal",
            "E_one_group", "E_singletons", "heuristic_groups",
        ],
    )
    rng = np.random.default_rng(seed)
    for n in list(exact_sizes) + list(heuristic_sizes):
        works = list(rng.uniform(1.0, 10.0, size=n))
        heuristic = schedule_independent_tasks(
            works, checkpoint, checkpoint, downtime, rate, method=method
        )
        one_group = grouping_expected_time(
            [list(range(n))], works, checkpoint, checkpoint, downtime, rate
        )
        singletons = grouping_expected_time(
            [[i] for i in range(n)], works, checkpoint, checkpoint, downtime, rate
        )
        if n in exact_sizes:
            optimum = exhaustive_independent_schedule(
                works, checkpoint, checkpoint, downtime, rate
            )
            e_opt = optimum.expected_makespan
            ratio = heuristic.expected_makespan / e_opt
        else:
            e_opt = None
            ratio = None
        table.add_row(
            n=n,
            E_heuristic=heuristic.expected_makespan,
            E_optimal=e_opt,
            ratio_to_optimal=ratio,
            E_one_group=one_group,
            E_singletons=singletons,
            heuristic_groups=heuristic.num_checkpoints,
        )
    return table


# ----------------------------------------------------------------------
# E6 -- Chain strategies across failure rates
# ----------------------------------------------------------------------


def _e6_rate_row(args) -> Dict[str, object]:
    """Evaluate every chain strategy at one failure rate (one work unit of E6).

    Module-level so the rows can be fanned out over a process pool; the
    evaluation is analytic, so parallel and serial rows are identical.
    """
    chain, rate, downtime, total_work = args
    results = evaluate_chain_strategies(chain, downtime, rate)
    optimal = results["optimal_dp"].expected_makespan

    def ratio(name: str) -> Optional[float]:
        if name not in results:
            return None
        return results[name].expected_makespan / optimal

    return dict(
        rate=rate,
        mtbf_over_work=(1.0 / rate) / total_work,
        E_optimal=optimal,
        optimal_checkpoints=results["optimal_dp"].num_checkpoints,
        ratio_all=ratio("checkpoint_all"),
        ratio_none=ratio("checkpoint_none"),
        ratio_every_2=ratio("every_2"),
        ratio_every_5=ratio("every_5"),
        ratio_daly=ratio("daly_period"),
        ratio_young=ratio("young_period"),
    )


def experiment_e6_chain_strategies(
    *, n: int = 50, seed: int = 5, downtime: float = 0.5,
    backend: Union[None, int, str, ExecutionBackend] = None,
    cache: Optional[ResultCache] = None,
) -> ResultTable:
    """Optimal DP vs checkpoint-all/none/every-k/Daly across failure rates (E6)."""
    table = ResultTable(
        title="E6: chain checkpoint strategies, expected makespan ratio to the DP optimum",
        columns=[
            "rate", "mtbf_over_work", "E_optimal", "optimal_checkpoints",
            "ratio_all", "ratio_none", "ratio_every_2", "ratio_every_5",
            "ratio_daly", "ratio_young",
        ],
    )
    store = None
    key = None
    if cache is not None:
        store = cache.with_namespace("experiment")
        # "numerics" keys the analytic libm generation: PR 5 moved
        # expected_completion_time onto NumPy's exp/expm1 (<= 1 ulp from the
        # old math.* values), so pre-PR5 tables must not replay as-if fresh.
        key = store.key_for({
            "kind": "experiment_table", "experiment": "E6",
            "n": n, "seed": seed, "downtime": downtime,
            "numerics": ANALYTIC_NUMERICS,
        })
        entry = store.get(key)
        if entry is not None:
            table.rows = entry[0]["rows"]
            return table
    rng = np.random.default_rng(seed)
    chain = uniform_random_chain(n, work_range=(1.0, 10.0), checkpoint_range=(0.5, 2.0), rng=rng)
    total_work = chain.total_work()
    tasks = [
        (chain, rate, downtime, total_work) for rate in geometric_sweep(1e-4, 2e-1, 8)
    ]
    with backend_scope(backend) as executor:
        for row in executor.map(_e6_rate_row, tasks):
            table.add_row(**row)
    if store is not None and key is not None:
        store.put(key, {"kind": "experiment_table", "experiment": "E6", "rows": table.rows})
    return table


# ----------------------------------------------------------------------
# E7 -- Workload and checkpoint scaling with the platform size
# ----------------------------------------------------------------------


def experiment_e7_scaling_models(
    *, total_work: float = 10_000.0, footprint: float = 100.0,
    lambda_proc: float = 1e-5, downtime: float = 1.0,
) -> ResultTable:
    """Expected makespan vs p under the W(p) and C(p) models of Section 3 (E7)."""
    table = ResultTable(
        title="E7: expected makespan vs platform size under workload x checkpoint scaling models",
        columns=[
            "p", "workload_model", "checkpoint_model", "W_p", "C_p",
            "rate", "E_best_periodic", "chunks",
        ],
    )
    workload_models = {
        "perfect": PerfectlyParallelWorkload(),
        "amdahl(g=0.01)": AmdahlWorkload(gamma=0.01),
        "kernel(g=0.1)": NumericalKernelWorkload(gamma=0.1),
    }
    checkpoint_models = {
        "proportional": ProportionalCheckpointCost(alpha=0.1),
        "constant": ConstantCheckpointCost(alpha=0.1),
    }
    for p in [2 ** k for k in range(0, 17, 4)]:
        for wname, wmodel in workload_models.items():
            for cname, cmodel in checkpoint_models.items():
                w_p = wmodel.time(total_work, p)
                c_p = cmodel.checkpoint_time(footprint, p)
                rate = lambda_proc * p
                policy = optimal_periodic_policy(
                    w_p, c_p, downtime, c_p, rate, max_chunks=10_000
                )
                table.add_row(
                    p=p,
                    workload_model=wname,
                    checkpoint_model=cname,
                    W_p=w_p,
                    C_p=c_p,
                    rate=rate,
                    E_best_periodic=policy.expected_makespan,
                    chunks=policy.num_chunks,
                )
    return table


# ----------------------------------------------------------------------
# E8 -- Non-Exponential failures: simulation-evaluated heuristics
# ----------------------------------------------------------------------


def experiment_e8_general_failures(
    *, n: int = 20, num_runs: int = 400, seed: int = 6,
    downtime: float = 0.5, platform_mtbf: float = 150.0,
    backend: Union[None, int, str, ExecutionBackend] = None,
    cache: Optional[ResultCache] = None,
    chunk_size: Optional[int] = None,
    engine: Optional[str] = None,
    progress: Optional[Callable[[int, int], None]] = None,
) -> ResultTable:
    """Weibull / log-normal failures: placement heuristics compared by simulation (E8)."""
    table = ResultTable(
        title="E8: non-Exponential failures -- simulated makespan of placement heuristics",
        columns=[
            "law", "strategy", "checkpoints", "mean_makespan", "ci95_low", "ci95_high",
            "mean_failures",
        ],
    )
    rng = np.random.default_rng(seed)
    chain = uniform_random_chain(
        n, work_range=(5.0, 15.0), checkpoint_range=(1.0, 2.0), rng=rng
    )
    laws = {
        "exponential": ExponentialFailure.from_mtbf(platform_mtbf),
        "weibull(k=0.7)": WeibullFailure.from_mtbf(platform_mtbf, shape=0.7),
        "weibull(k=1.5)": WeibullFailure.from_mtbf(platform_mtbf, shape=1.5),
        "lognormal(s=1.0)": LogNormalFailure.from_mtbf(platform_mtbf, sigma=1.0),
    }
    use_runtime = backend is not None or cache is not None or engine is not None
    # One independent child seed per (law, strategy) estimate on the runtime
    # path; the serial default keeps consuming the single shared stream so
    # historical tables stay bit-identical.
    sub_seeds = iter(_spawn_int_seeds(seed, 4 * len(laws)) if use_runtime else [])
    # 4 strategies per law, each one estimate; see E1 for the progress scheme.
    per_estimate = plan_chunks(num_runs, chunk_size).num_chunks if use_runtime else 1
    total_chunks = 4 * len(laws) * per_estimate
    estimate_index = 0
    for law_name, law in laws.items():
        rate_equivalent = 1.0 / platform_mtbf
        placements = {
            "exp_dp": optimal_chain_checkpoints(chain, downtime, rate_equivalent).checkpoint_after,
            "work_max": work_maximization_chain(chain, law).checkpoint_after,
            "all": tuple(range(chain.n)),
            "none": (chain.n - 1,),
        }
        for strategy, positions in placements.items():
            schedule = Schedule.for_chain(chain, positions)
            platform = Platform(num_processors=1, failure_law=law, downtime=downtime)
            estimator = MonteCarloEstimator(schedule, platform, downtime)
            hook = _offset_progress(
                progress, estimate_index * per_estimate, total_chunks
            )
            estimate_index += 1
            if use_runtime:
                estimate = estimator.estimate(
                    num_runs, seed=next(sub_seeds), backend=backend, cache=cache,
                    chunk_size=chunk_size, engine=engine, progress=hook,
                )
            else:
                estimate = estimator.estimate(num_runs, rng=rng, progress=hook)
            table.add_row(
                law=law_name,
                strategy=strategy,
                checkpoints=len(positions),
                mean_makespan=estimate.mean,
                ci95_low=estimate.ci95_low,
                ci95_high=estimate.ci95_high,
                mean_failures=estimate.mean_failures,
            )
    return table


# ----------------------------------------------------------------------
# E9 -- Moldable tasks: processor allocation under failures
# ----------------------------------------------------------------------


def experiment_e9_moldable(
    *, max_processors: int = 1024, downtime: float = 1.0,
) -> ResultTable:
    """Best per-task processor allocation vs 'use every processor' (E9)."""
    table = ResultTable(
        title="E9: moldable tasks -- optimal allocation vs full-platform allocation",
        columns=[
            "lambda_proc", "workload_model", "best_p", "E_best",
            "E_full_platform", "gain_pct",
        ],
    )
    workloads = {
        "amdahl(g=0.001)": AmdahlWorkload(gamma=0.001),
        "kernel(g=0.3)": NumericalKernelWorkload(gamma=0.3),
        "perfect": PerfectlyParallelWorkload(),
    }
    checkpoint_model = ConstantCheckpointCost(alpha=0.05)
    for lambda_proc in geometric_sweep(1e-7, 1e-4, 4):
        for wname, wmodel in workloads.items():
            task = MoldableTask(
                name="job", sequential_work=50_000.0, memory_footprint=200.0, workload=wmodel
            )
            scheduler = MoldableScheduler(
                lambda_proc, downtime,
                checkpoint_model=checkpoint_model, max_processors=max_processors,
            )
            allocation = scheduler.allocate_checkpoint_everywhere([task])
            best_p = allocation.allocations[0]
            e_best = allocation.expected_makespan
            # Evaluate the "always use the whole platform" alternative explicitly.
            from repro.core.moldable import best_allocation_single_task  # local import to reuse

            _, e_full = best_allocation_single_task(
                task, lambda_proc, downtime, checkpoint_model,
                max_processors=max_processors, min_processors=max_processors,
            )
            table.add_row(
                lambda_proc=lambda_proc,
                workload_model=wname,
                best_p=best_p,
                E_best=e_best,
                E_full_platform=e_full,
                gain_pct=100.0 * (e_full / e_best - 1.0),
            )
    return table


# ----------------------------------------------------------------------
# E10 -- Frontier-dependent checkpoint costs on DAG linearisations
# ----------------------------------------------------------------------


def experiment_e10_dag_frontier(*, seed: int = 7, downtime: float = 0.2) -> ResultTable:
    """Frontier-dependent checkpoint cost changes placement and cost on DAGs (E10)."""
    table = ResultTable(
        title="E10: DAG scheduling with per-task vs frontier-dependent checkpoint costs",
        columns=[
            "dag", "tasks", "rate", "cost_model", "strategy",
            "checkpoints", "E_makespan", "exact_optimal",
        ],
    )
    dags = {
        "fork_join(6)": fork_join(6, branch_work=4.0, checkpoint_cost=0.5, seed=seed),
        "montage(4)": montage_like(4, checkpoint_cost=0.5),
    }
    for dag_name, workflow in dags.items():
        for rate in (0.01, 0.1):
            for cost_name, model in (
                ("per_task", None),
                ("frontier_sum", FrontierCheckpointCost(workflow)),
            ):
                heuristic = schedule_dag(
                    workflow, downtime, rate, checkpoint_model=model, seed=seed
                )
                row = dict(
                    dag=dag_name,
                    tasks=len(workflow),
                    rate=rate,
                    cost_model=cost_name,
                    strategy=heuristic.strategy,
                    checkpoints=heuristic.num_checkpoints,
                    E_makespan=heuristic.expected_makespan,
                )
                if len(workflow) <= 12:
                    exact = exhaustive_dag_schedule(
                        workflow, downtime, rate, checkpoint_model=model
                    )
                    row["exact_optimal"] = exact.expected_makespan
                table.add_row(**row)
    return table


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------

EXPERIMENTS: Dict[str, Callable[..., ResultTable]] = {
    "E1": experiment_e1_prop1_validation,
    "E2": experiment_e2_formula_comparison,
    "E3": experiment_e3_chain_dp,
    "E4": experiment_e4_reduction,
    "E5": experiment_e5_independent_heuristics,
    "E6": experiment_e6_chain_strategies,
    "E7": experiment_e7_scaling_models,
    "E8": experiment_e8_general_failures,
    "E9": experiment_e9_moldable,
    "E10": experiment_e10_dag_frontier,
}


def experiment_descriptions() -> Dict[str, str]:
    """One-line description of every experiment, keyed by id (in E1..E10 order)."""
    descriptions: Dict[str, str] = {}
    for key in sorted(EXPERIMENTS, key=lambda k: int(k[1:])):
        doc = inspect.getdoc(EXPERIMENTS[key]) or ""
        descriptions[key] = doc.splitlines()[0] if doc else "(no description)"
    return descriptions


def run_experiment(
    name: str,
    *,
    backend: Union[None, int, str, ExecutionBackend] = None,
    cache: Optional[ResultCache] = None,
    chunk_size: Optional[int] = None,
    engine: Optional[str] = None,
    progress: Optional[Callable[[int, int], None]] = None,
    **kwargs,
) -> ResultTable:
    """Run one experiment by id (e.g. ``"E3"``).

    ``backend``, ``cache``, ``chunk_size``, ``engine`` and ``progress`` are
    forwarded only to experiments whose signature declares them: the
    Monte-Carlo-heavy E1 and E8 take all five (reporting experiment-wide
    chunk counts through ``progress``), the analytic-but-parallelisable E6
    takes ``backend``/``cache``, and the purely analytic experiments run
    unchanged and ignore them all.  For experiments without their own
    progress support a ``progress`` callback still fires ``(0, 1)`` before
    and ``(1, 1)`` after the run, so callers (the scenario service's job
    scheduler) always observe a consistent contract.
    """
    key = name.upper()
    if key not in EXPERIMENTS:
        raise KeyError(f"unknown experiment {name!r}; available: {sorted(EXPERIMENTS)}")
    fn = EXPERIMENTS[key]
    supported = inspect.signature(fn).parameters
    for runtime_kwarg, value in zip(
        _RUNTIME_KWARGS, (backend, cache, chunk_size, engine, progress)
    ):
        if runtime_kwarg in supported and value is not None:
            kwargs[runtime_kwarg] = value
    if progress is not None and "progress" not in supported:
        progress(0, 1)
        table = fn(**kwargs)
        progress(1, 1)
        return table
    return fn(**kwargs)


def run_all_experiments(
    *,
    backend: Union[None, int, str, ExecutionBackend] = None,
    cache: Optional[ResultCache] = None,
) -> List[ResultTable]:
    """Run the full suite, in order."""
    return [
        run_experiment(key, backend=backend, cache=cache)
        for key in sorted(EXPERIMENTS, key=lambda k: int(k[1:]))
    ]


def _main(argv: List[str]) -> int:
    names = argv or sorted(EXPERIMENTS, key=lambda k: int(k[1:]))
    for name in names:
        table = run_experiment(name)
        print(table.to_text())
        print()
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via examples/benchmarks
    raise SystemExit(_main(sys.argv[1:]))
