"""Experiment harness: parameter sweeps, result tables and the experiment registry.

The paper contains no numerical tables or figures (it is a theory paper), so
the reproduction defines its own validation experiments (E1-E10, see
DESIGN.md section 7 and EXPERIMENTS.md).  Each experiment is a plain function
returning a :class:`~repro.experiments.reporting.ResultTable`; the
``benchmarks/`` directory wraps them with pytest-benchmark, and the functions
can also be run directly (``python -m repro.experiments.registry``).
"""

from repro.experiments.reporting import ResultTable
from repro.experiments.sweep import geometric_sweep, linear_sweep
from repro.experiments.registry import EXPERIMENTS, run_experiment, run_all_experiments

__all__ = [
    "ResultTable",
    "geometric_sweep",
    "linear_sweep",
    "EXPERIMENTS",
    "run_experiment",
    "run_all_experiments",
]
