"""Result tables: the uniform output format of every experiment.

A :class:`ResultTable` is a light, dependency-free tabular container (list of
dict rows plus a column order) with pretty-printing, CSV export and small
query helpers.  Experiments return tables so that the benchmark harness, the
examples and EXPERIMENTS.md all render the same rows.
"""

from __future__ import annotations

import csv
import io
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List

__all__ = ["ResultTable"]


@dataclass
class ResultTable:
    """A titled table of experiment results.

    Attributes
    ----------
    title:
        Human-readable title (usually the experiment id and question).
    columns:
        Column names, in display order.
    rows:
        One dict per row; missing keys render as empty cells.
    """

    title: str
    columns: List[str]
    rows: List[Dict[str, Any]] = field(default_factory=list)

    def add_row(self, **values: Any) -> None:
        """Append a row; unknown columns are appended to the column list."""
        for key in values:
            if key not in self.columns:
                self.columns.append(key)
        self.rows.append(dict(values))

    def __len__(self) -> int:
        return len(self.rows)

    def column(self, name: str) -> List[Any]:
        """All values of one column (missing entries become None)."""
        if name not in self.columns:
            raise KeyError(f"no column named {name!r} in table {self.title!r}")
        return [row.get(name) for row in self.rows]

    def filter(self, predicate: Callable[[Dict[str, Any]], bool]) -> "ResultTable":
        """A new table containing only the rows matching ``predicate``."""
        out = ResultTable(title=self.title, columns=list(self.columns))
        out.rows = [dict(row) for row in self.rows if predicate(row)]
        return out

    def _format_cell(self, value: Any) -> str:
        if value is None:
            return ""
        if isinstance(value, float):
            if value == 0.0:
                return "0"
            magnitude = abs(value)
            if magnitude >= 1e5 or magnitude < 1e-3:
                return f"{value:.4g}"
            return f"{value:.4f}".rstrip("0").rstrip(".")
        return str(value)

    def to_text(self) -> str:
        """Fixed-width textual rendering of the table."""
        header = list(self.columns)
        body = [[self._format_cell(row.get(col)) for col in header] for row in self.rows]
        widths = [
            max(len(header[i]), *(len(r[i]) for r in body)) if body else len(header[i])
            for i in range(len(header))
        ]
        lines = [self.title, "-" * max(len(self.title), 1)]
        lines.append("  ".join(header[i].ljust(widths[i]) for i in range(len(header))))
        lines.append("  ".join("-" * widths[i] for i in range(len(header))))
        for row in body:
            lines.append("  ".join(row[i].ljust(widths[i]) for i in range(len(header))))
        return "\n".join(lines)

    def to_csv(self) -> str:
        """CSV rendering of the table."""
        buffer = io.StringIO()
        writer = csv.DictWriter(buffer, fieldnames=self.columns, extrasaction="ignore")
        writer.writeheader()
        for row in self.rows:
            writer.writerow({col: row.get(col, "") for col in self.columns})
        return buffer.getvalue()

    def __str__(self) -> str:
        return self.to_text()
