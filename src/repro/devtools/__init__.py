"""Repo-native developer tooling: static contract lint + runtime lock checking.

Two halves, one package:

* a stdlib-only **static analysis engine** (``repro lint`` /
  ``python -m repro.devtools``) whose rules encode the invariants this
  reproduction actually depends on -- seeded RNG threading, wall-clock
  isolation in engine code, lock discipline in the threaded modules,
  hash-stable cache keys (:mod:`repro.devtools.engine`,
  :mod:`repro.devtools.rules`);
* a **runtime lock-order watchdog** that records cross-thread lock
  acquisition orderings and fails the run on inversions
  (:mod:`repro.devtools.lockwatch`).

This ``__init__`` stays import-light on purpose: the threaded service and
observability modules import :func:`tracked_lock` at startup, and must not
drag the whole lint engine with them.  The lint API is loaded lazily on
first attribute access.
"""

from __future__ import annotations

from repro.devtools.lockwatch import (
    LockOrderError,
    LockOrderWatchdog,
    active_watchdog,
    install_watchdog,
    tracked_condition,
    tracked_lock,
)

__all__ = [
    "LockOrderError",
    "LockOrderWatchdog",
    "RULES",
    "Violation",
    "active_watchdog",
    "install_watchdog",
    "lint_paths",
    "lint_source",
    "main",
    "run",
    "tracked_condition",
    "tracked_lock",
]

_LAZY_ENGINE = {"Violation", "lint_paths", "lint_source", "main", "run", "LintReport"}
_LAZY_RULES = {"RULES", "FileContext", "Rule"}


def __getattr__(name: str):
    if name in _LAZY_ENGINE:
        from repro.devtools import engine

        return getattr(engine, name)
    if name in _LAZY_RULES:
        from repro.devtools import rules

        return getattr(rules, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
