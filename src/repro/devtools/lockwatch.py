"""Runtime lock-order checking for the threaded service/observability modules.

The static rules in :mod:`repro.devtools.rules` keep lock *usage* disciplined
(``with`` blocks, no stray ``acquire()``); this module checks the property no
static analysis can see: that the *order* in which different locks nest is
consistent across every thread.  Two threads that nest the same pair of locks
in opposite orders can deadlock -- rarely in tests, reliably in production.

:class:`LockOrderWatchdog` wraps locks in a thin proxy that records, per
thread, the stack of tracked locks currently held.  Whenever lock ``B`` is
acquired while ``A`` is held, the directed edge ``A -> B`` enters a global
ordering graph; an acquisition that would close a cycle in that graph is an
*inversion* and is recorded (or raised immediately with
``raise_on_inversion=True``).

The watchdog is off by default and costs nothing when off:
:func:`tracked_lock` -- the construction seam used by
``service/jobs.py``, ``service/gateway.py``, ``service/snapshot.py``,
``service/ratelimit.py``, ``service/queue.py``, ``service/audit.py``,
``obs/metrics.py``, ``obs/export.py`` and ``obs/flight.py`` -- returns a raw
``threading.Lock`` unless a watchdog is active.  Activation happens either
through the ``REPRO_LOCK_WATCHDOG=1`` environment variable (checked lazily,
so worker processes inherit it) or programmatically via
:func:`install_watchdog` (what the pytest fixture in ``tests/conftest.py``
does around the service suites).

Example::

    >>> import threading
    >>> watchdog = LockOrderWatchdog()
    >>> a = watchdog.wrap(threading.Lock(), "A")
    >>> b = watchdog.wrap(threading.Lock(), "B")
    >>> with a:
    ...     with b:          # records A -> B
    ...         pass
    >>> watchdog.inversions()
    []
"""

from __future__ import annotations

import os
import threading
from typing import Any, Callable, Dict, List, Optional, Set, Tuple

__all__ = [
    "ENV_VAR",
    "LockOrderError",
    "LockOrderWatchdog",
    "active_watchdog",
    "install_watchdog",
    "tracked_condition",
    "tracked_lock",
]

#: Environment variable that activates the process-global watchdog.
ENV_VAR = "REPRO_LOCK_WATCHDOG"


class LockOrderError(RuntimeError):
    """A lock acquisition closed a cycle in the observed lock-order graph."""


class _TrackedLock:
    """Proxy around a ``threading.Lock``/``RLock`` that reports to a watchdog.

    Implements the full lock protocol plus the private hooks
    (``_is_owned``/``_release_save``/``_acquire_restore``) that
    ``threading.Condition`` relies on, so a wrapped ``RLock`` can back a
    condition variable transparently.
    """

    __slots__ = ("_inner", "_name", "_watchdog")

    def __init__(self, inner: Any, name: str, watchdog: "LockOrderWatchdog") -> None:
        self._inner = inner
        self._name = name
        self._watchdog = watchdog

    @property
    def name(self) -> str:
        return self._name

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        got = self._inner.acquire(blocking, timeout)
        if got:
            self._watchdog._note_acquired(self._name)
        return got

    def release(self) -> None:
        self._watchdog._note_released(self._name)
        self._inner.release()

    def __enter__(self) -> bool:
        return self.acquire()

    def __exit__(self, *exc_info: Any) -> bool:
        self.release()
        return False

    def locked(self) -> bool:
        probe = getattr(self._inner, "locked", None)
        return bool(probe()) if callable(probe) else False

    # -- threading.Condition support -----------------------------------
    def _is_owned(self) -> bool:
        probe = getattr(self._inner, "_is_owned", None)
        if callable(probe):
            return probe()
        if self._inner.acquire(False):
            self._inner.release()
            return False
        return True

    def _release_save(self) -> Any:
        # Condition.wait releases *all* recursion levels at once.
        self._watchdog._note_released_fully(self._name)
        saver = getattr(self._inner, "_release_save", None)
        if callable(saver):
            return saver()
        self._inner.release()
        return None

    def _acquire_restore(self, state: Any) -> None:
        restorer = getattr(self._inner, "_acquire_restore", None)
        if callable(restorer):
            restorer(state)
        else:
            self._inner.acquire()
        self._watchdog._note_acquired(self._name)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"_TrackedLock({self._name!r}, {self._inner!r})"


class LockOrderWatchdog:
    """Records cross-thread lock-acquisition orderings and flags inversions.

    The graph is keyed by lock *name* (the label passed to :meth:`wrap` /
    :func:`tracked_lock`), so every instance constructed at the same call
    site shares a node -- exactly the granularity deadlock reasoning needs.
    Reentrant re-acquisition of the same name never records a self edge.
    """

    def __init__(self, *, raise_on_inversion: bool = False) -> None:
        self.raise_on_inversion = raise_on_inversion
        self._mutex = threading.Lock()
        self._local = threading.local()
        self._edges: Dict[str, Set[str]] = {}
        self._edge_threads: Dict[Tuple[str, str], str] = {}
        self._inversions: List[Dict[str, Any]] = []
        self._reported: Set[Tuple[str, str]] = set()

    # ------------------------------------------------------------------
    # Wrapping
    # ------------------------------------------------------------------

    def wrap(self, lock: Any, name: str) -> _TrackedLock:
        """Wrap ``lock`` so its acquisitions are tracked under ``name``."""
        return _TrackedLock(lock, name, self)

    # ------------------------------------------------------------------
    # Per-thread bookkeeping (called from _TrackedLock)
    # ------------------------------------------------------------------

    def _stack(self) -> List[str]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _note_acquired(self, name: str) -> None:
        stack = self._stack()
        inversion: Optional[Dict[str, Any]] = None
        if stack and name not in stack:
            holding = list(dict.fromkeys(stack))
            thread = threading.current_thread().name
            with self._mutex:
                for held in holding:
                    edge = (held, name)
                    self._edges.setdefault(held, set()).add(name)
                    self._edge_threads.setdefault(edge, thread)
                    path = self._find_path(name, held)
                    if path is not None and edge not in self._reported:
                        self._reported.add(edge)
                        # `path` runs name -> ... -> held; dropping its last
                        # node keeps the cycle as distinct nodes (the
                        # formatter closes it back to the first).
                        cycle = [held] + path[:-1]
                        inversion = {
                            "held": held,
                            "acquiring": name,
                            "cycle": cycle,
                            "thread": thread,
                            "reverse_thread": self._edge_threads.get((name, held)),
                        }
                        self._inversions.append(inversion)
        stack.append(name)
        if inversion is not None and self.raise_on_inversion:
            raise LockOrderError(self._format_inversion(inversion))

    def _note_released(self, name: str) -> None:
        stack = self._stack()
        for index in range(len(stack) - 1, -1, -1):
            if stack[index] == name:
                del stack[index]
                break

    def _note_released_fully(self, name: str) -> None:
        stack = self._stack()
        self._local.stack = [held for held in stack if held != name]

    def _find_path(self, start: str, goal: str) -> Optional[List[str]]:
        """BFS over the ordering graph; caller holds ``self._mutex``."""
        if start == goal:
            return [start]
        parents: Dict[str, str] = {}
        frontier = [start]
        while frontier:
            nxt: List[str] = []
            for node in frontier:
                for succ in self._edges.get(node, ()):
                    if succ in parents or succ == start:
                        continue
                    parents[succ] = node
                    if succ == goal:
                        path = [goal]
                        while path[-1] != start:
                            path.append(parents[path[-1]])
                        path.reverse()
                        return path
                    nxt.append(succ)
            frontier = nxt
        return None

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------

    def edges(self) -> Dict[str, Set[str]]:
        """A snapshot of the observed ordering graph (``A -> {B, ...}``)."""
        with self._mutex:
            return {node: set(successors) for node, successors in self._edges.items()}

    def inversions(self) -> List[Dict[str, Any]]:
        """Every recorded inversion (one entry per offending ordered pair)."""
        with self._mutex:
            return [dict(entry) for entry in self._inversions]

    @staticmethod
    def _format_inversion(entry: Dict[str, Any]) -> str:
        cycle = " -> ".join(entry["cycle"] + [entry["cycle"][0]])
        reverse = entry.get("reverse_thread")
        seen = f" (reverse order first seen on thread {reverse!r})" if reverse else ""
        return (
            f"lock-order inversion: thread {entry['thread']!r} acquired "
            f"{entry['acquiring']!r} while holding {entry['held']!r}, closing "
            f"the cycle {cycle}{seen}"
        )

    def format_report(self) -> str:
        """Human-readable multi-line report of every inversion."""
        entries = self.inversions()
        if not entries:
            return "no lock-order inversions recorded"
        return "\n".join(self._format_inversion(entry) for entry in entries)

    def assert_clean(self) -> None:
        """Raise :class:`LockOrderError` if any inversion was recorded."""
        if self.inversions():
            raise LockOrderError(self.format_report())


# ----------------------------------------------------------------------
# Process-global activation (env var / pytest fixture)
# ----------------------------------------------------------------------

_active: Optional[LockOrderWatchdog] = None
_active_guard = threading.Lock()


def active_watchdog() -> Optional[LockOrderWatchdog]:
    """The installed watchdog, creating one lazily when ``ENV_VAR`` is set."""
    global _active
    if _active is None and os.environ.get(ENV_VAR, "") not in ("", "0"):
        with _active_guard:
            if _active is None:
                _active = LockOrderWatchdog()
    return _active


def install_watchdog(
    watchdog: Optional[LockOrderWatchdog],
) -> Optional[LockOrderWatchdog]:
    """Install (or, with ``None``, clear) the global watchdog; returns the previous one.

    Locks constructed through :func:`tracked_lock` *after* this call report
    to ``watchdog``; locks wrapped earlier keep reporting to whichever
    watchdog wrapped them.
    """
    global _active
    with _active_guard:
        previous, _active = _active, watchdog
        return previous


def tracked_lock(name: str, factory: Callable[[], Any] = threading.Lock) -> Any:
    """A lock from ``factory``, wrapped for order tracking when a watchdog is active.

    This is the construction seam the threaded modules use in place of a bare
    ``threading.Lock()`` / ``threading.RLock()``.  With no watchdog active
    (the production default) the raw lock is returned -- zero overhead.
    """
    watchdog = active_watchdog()
    lock = factory()
    return watchdog.wrap(lock, name) if watchdog is not None else lock


def tracked_condition(name: str) -> threading.Condition:
    """A condition variable whose underlying RLock is order-tracked."""
    watchdog = active_watchdog()
    if watchdog is None:
        return threading.Condition()
    return threading.Condition(watchdog.wrap(threading.RLock(), name))
