"""``python -m repro.devtools`` -- run the repo-native lint engine."""

from __future__ import annotations

import sys

from repro.devtools.engine import main

if __name__ == "__main__":
    sys.exit(main())
