"""The repo-specific lint rules: determinism, concurrency, robustness, cache keys.

Each rule encodes one invariant the reproduction's correctness rests on and
that no generic linter knows about.  Rules are small ``ast``-walking classes
registered in :data:`RULES` by kebab-case code; the engine decides scope by
the dotted module identifier (``repro.simulation.engine``), so the same rule
set runs over ``src``, ``tests`` and ``benchmarks`` while the engine-only
contracts stay scoped to the engine packages.

Scope vocabulary:

* **engine packages** -- ``repro.simulation``, ``repro.core``,
  ``repro.failures``, ``repro.analysis``: everything whose outputs must be
  bit-identical across the scalar/vectorized/pooled execution paths.
* **threaded modules** -- the service/observability modules whose state is
  touched from worker threads, the asyncio loop and HTTP threads at once.
* **cache-key packages** -- code that builds or consumes content-addressed
  cache keys; anything hash-unstable there silently splits the cache.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

__all__ = ["RULES", "FileContext", "Rule"]

# ----------------------------------------------------------------------
# Scopes
# ----------------------------------------------------------------------

#: Packages whose results must replay bit-identically from a seed.
ENGINE_PACKAGES = (
    "repro.simulation",
    "repro.core",
    "repro.failures",
    "repro.analysis",
)

#: Modules whose module/instance state is shared across threads.
THREADED_MODULES = (
    "repro.service.jobs",
    "repro.service.gateway",
    "repro.service.snapshot",
    "repro.service.ratelimit",
    "repro.service.queue",
    "repro.service.audit",
    "repro.obs.metrics",
    "repro.obs.export",
    "repro.obs.flight",
    "repro.obs.tracing",
)

#: Packages that feed the content-addressed cache (key stability required).
CACHE_KEY_PACKAGES = (
    "repro.runtime",
    "repro.service",
    "repro.simulation",
    "repro.experiments",
)

#: The one module allowed to touch hashlib: the canonical key builder.
HASHING_MODULE = "repro.runtime.hashing"


def in_packages(module: str, packages: Sequence[str]) -> bool:
    return any(
        module == package or module.startswith(package + ".")
        for package in packages
    )


# ----------------------------------------------------------------------
# Shared AST helpers
# ----------------------------------------------------------------------


def build_import_table(tree: ast.AST) -> Dict[str, str]:
    """Map local names to the canonical dotted path they were imported as."""
    table: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.asname:
                    table[alias.asname] = alias.name
                else:
                    top = alias.name.split(".")[0]
                    table[top] = top
        elif isinstance(node, ast.ImportFrom):
            if node.level or node.module is None:
                continue
            for alias in node.names:
                table[alias.asname or alias.name] = f"{node.module}.{alias.name}"
    return table


def dotted_name(expr: ast.AST) -> Optional[str]:
    """The raw dotted source text of a Name/Attribute chain, or ``None``."""
    parts: List[str] = []
    while isinstance(expr, ast.Attribute):
        parts.append(expr.attr)
        expr = expr.value
    if isinstance(expr, ast.Name):
        parts.append(expr.id)
        return ".".join(reversed(parts))
    return None


def terminal_name(expr: ast.AST) -> Optional[str]:
    """The last component of a Name/Attribute chain (``self._lock`` -> ``_lock``)."""
    if isinstance(expr, ast.Attribute):
        return expr.attr
    if isinstance(expr, ast.Name):
        return expr.id
    return None


@dataclass
class FileContext:
    """Everything a rule needs to inspect one file."""

    path: str
    module: str
    tree: ast.Module
    imports: Dict[str, str] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.imports:
            self.imports = build_import_table(self.tree)

    def resolve(self, expr: ast.AST) -> Optional[str]:
        """Canonical dotted path of ``expr`` through the import table.

        ``np.random.default_rng`` resolves to ``numpy.random.default_rng``
        whatever numpy was imported as; names with no import binding come
        back verbatim (builtins, locals).
        """
        raw = dotted_name(expr)
        if raw is None:
            return None
        head, _, rest = raw.partition(".")
        base = self.imports.get(head)
        if base is None:
            return raw
        return f"{base}.{rest}" if rest else base

    def calls(self) -> Iterator[ast.Call]:
        for node in ast.walk(self.tree):
            if isinstance(node, ast.Call):
                yield node

    def statement_lists(self) -> Iterator[List[ast.stmt]]:
        for node in ast.walk(self.tree):
            for name in ("body", "orelse", "finalbody"):
                block = getattr(node, name, None)
                if isinstance(block, list) and block and isinstance(block[0], ast.stmt):
                    yield block


Finding = Tuple[ast.AST, str]


class Rule:
    """Base class: a code, a one-line summary, and a scope."""

    code: str = ""
    summary: str = ""
    #: Dotted package prefixes the rule applies to (None = everywhere).
    packages: Optional[Sequence[str]] = None
    #: Exact modules the rule applies to (checked when set; overrides packages).
    modules: Optional[Sequence[str]] = None
    #: Modules exempt from the rule even when otherwise in scope.
    exempt_modules: Sequence[str] = ()

    def in_scope(self, module: str) -> bool:
        if module in self.exempt_modules:
            return False
        if self.modules is not None:
            return module in self.modules
        if self.packages is not None:
            return in_packages(module, self.packages)
        return True

    def scope_description(self) -> str:
        if self.modules is not None:
            return "modules: " + ", ".join(self.modules)
        if self.packages is not None:
            return "packages: " + ", ".join(self.packages)
        return "all linted files"

    def check(self, ctx: FileContext) -> Iterable[Finding]:  # pragma: no cover
        raise NotImplementedError


RULES: Dict[str, Rule] = {}


def register(cls: type) -> type:
    rule = cls()
    RULES[rule.code] = rule
    return cls


# ----------------------------------------------------------------------
# Determinism
# ----------------------------------------------------------------------


@register
class WallClockRule(Rule):
    """Wall-clock reads make engine outputs depend on *when* they ran."""

    code = "wall-clock"
    summary = "no wall-clock reads (time.time, datetime.now) in engine code"
    packages = ENGINE_PACKAGES

    BANNED = {
        "time.time": "time.time()",
        "time.time_ns": "time.time_ns()",
        "datetime.datetime.now": "datetime.now()",
        "datetime.datetime.utcnow": "datetime.utcnow()",
        "datetime.datetime.today": "datetime.today()",
        "datetime.date.today": "date.today()",
    }

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        for call in ctx.calls():
            resolved = ctx.resolve(call.func)
            if resolved in self.BANNED:
                yield call, (
                    f"wall-clock read {self.BANNED[resolved]} in deterministic "
                    "engine code; results must depend only on the spec and "
                    "seed (time durations belong in obs/, via perf_counter)"
                )


@register
class UnseededRngRule(Rule):
    """Ad-hoc RNGs break the SeedSequence-derived replayability contract."""

    code = "unseeded-rng"
    summary = "RNGs must be threaded (seed/SeedSequence parameter), never ad hoc"
    packages = ("repro",)

    LEGACY = {
        "numpy.random.seed", "numpy.random.rand", "numpy.random.randn",
        "numpy.random.randint", "numpy.random.random", "numpy.random.uniform",
        "numpy.random.normal", "numpy.random.exponential", "numpy.random.choice",
        "numpy.random.shuffle", "numpy.random.permutation",
        "numpy.random.RandomState",
    }

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        for call in ctx.calls():
            resolved = ctx.resolve(call.func)
            if resolved == "numpy.random.default_rng":
                if not call.args and not call.keywords:
                    yield call, (
                        "np.random.default_rng() with no seed draws fresh OS "
                        "entropy; thread a seed/SeedSequence parameter so the "
                        "stream is replayable"
                    )
            elif resolved in self.LEGACY:
                yield call, (
                    f"legacy global-state numpy RNG ({resolved}); pass a "
                    "np.random.Generator derived from the run's SeedSequence"
                )


@register
class StdlibRandomRule(Rule):
    """The stdlib ``random`` module has process-global, unthreaded state."""

    code = "stdlib-random"
    summary = "no stdlib `random` in engine code; use threaded numpy Generators"
    packages = ENGINE_PACKAGES

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "random" or alias.name.startswith("random."):
                        yield node, (
                            "stdlib `random` imported in engine code; its "
                            "global state cannot be threaded per chunk -- use "
                            "np.random.Generator from the run's SeedSequence"
                        )
            elif isinstance(node, ast.ImportFrom):
                if node.module == "random" and not node.level:
                    yield node, (
                        "stdlib `random` imported in engine code; its global "
                        "state cannot be threaded per chunk -- use "
                        "np.random.Generator from the run's SeedSequence"
                    )


# ----------------------------------------------------------------------
# Concurrency
# ----------------------------------------------------------------------

_LOCK_FACTORIES = {
    "threading.Lock", "threading.RLock", "threading.Condition",
    "threading.Semaphore", "threading.BoundedSemaphore",
}

#: Receiver names treated as locks even without a visible assignment.
_LOCK_NAME_HINTS = {"lock", "_lock", "mutex", "_mutex"}


def _tracked_lock_names(ctx: FileContext) -> Set[str]:
    names = set(_LOCK_NAME_HINTS)
    for node in ast.walk(ctx.tree):
        value = getattr(node, "value", None)
        if not (isinstance(node, (ast.Assign, ast.AnnAssign)) and isinstance(value, ast.Call)):
            continue
        if ctx.resolve(value.func) not in _LOCK_FACTORIES:
            continue
        targets = node.targets if isinstance(node, ast.Assign) else [node.target]
        for target in targets:
            name = terminal_name(target)
            if name is not None:
                names.add(name)
    return names


@register
class LockAcquireRule(Rule):
    """Explicit ``acquire()`` leaks the lock on any exception in between."""

    code = "lock-acquire"
    summary = "locks are acquired via `with`; bare acquire() needs try/finally"

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        tracked = _tracked_lock_names(ctx)

        def is_tracked_acquire(call: ast.Call) -> bool:
            func = call.func
            return (
                isinstance(func, ast.Attribute)
                and func.attr == "acquire"
                and terminal_name(func.value) in tracked
            )

        allowed: Set[int] = set()
        for block in ctx.statement_lists():
            for index, stmt in enumerate(block):
                if not (isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Call)):
                    continue
                call = stmt.value
                if not is_tracked_acquire(call):
                    continue
                receiver = dotted_name(call.func.value)
                if index + 1 < len(block) and isinstance(block[index + 1], ast.Try):
                    for final_stmt in block[index + 1].finalbody:
                        if (
                            isinstance(final_stmt, ast.Expr)
                            and isinstance(final_stmt.value, ast.Call)
                            and isinstance(final_stmt.value.func, ast.Attribute)
                            and final_stmt.value.func.attr == "release"
                            and dotted_name(final_stmt.value.func.value) == receiver
                        ):
                            allowed.add(id(call))
                            break

        for call in ctx.calls():
            if is_tracked_acquire(call) and id(call) not in allowed:
                yield call, (
                    "lock acquired without `with` (or an immediate "
                    "try/finally releasing it); an exception in between "
                    "leaks the lock and wedges every other thread"
                )


@register
class EphemeralLockRule(Rule):
    """A lock created per call synchronises nothing."""

    code = "ephemeral-lock"
    summary = "no threading.Lock() created (and used) inside a function body"
    packages = ("repro",)

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        for func in ast.walk(ctx.tree):
            if not isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            created: Dict[str, ast.Assign] = {}
            escaped: Set[str] = set()
            for node in ast.walk(func):
                if (
                    isinstance(node, ast.Assign)
                    and isinstance(node.value, ast.Call)
                    and ctx.resolve(node.value.func) in _LOCK_FACTORIES
                    and all(isinstance(target, ast.Name) for target in node.targets)
                ):
                    for target in node.targets:
                        created[target.id] = node
                elif isinstance(node, (ast.Return, ast.Yield, ast.YieldFrom)):
                    if node.value is not None:
                        for name in ast.walk(node.value):
                            if isinstance(name, ast.Name):
                                escaped.add(name.id)
                elif isinstance(node, ast.Call):
                    for arg in list(node.args) + [kw.value for kw in node.keywords]:
                        for name in ast.walk(arg):
                            if isinstance(name, ast.Name):
                                escaped.add(name.id)
            for name, node in created.items():
                if name not in escaped:
                    yield node, (
                        f"lock {name!r} is created inside {func.name}() and "
                        "never leaves it: every call gets a fresh lock, so it "
                        "synchronises nothing -- hoist it to the instance or "
                        "module"
                    )


@register
class ModuleStateRule(Rule):
    """Shared mutable module state in threaded modules needs a lock story."""

    code = "module-state"
    summary = "threaded modules: module-level mutable state must be lock-guarded"
    modules = THREADED_MODULES

    _MUTABLE_FACTORIES = {
        "dict", "list", "set",
        "collections.defaultdict", "collections.deque",
        "collections.OrderedDict", "collections.Counter",
    }

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        for stmt in ctx.tree.body:
            if not isinstance(stmt, (ast.Assign, ast.AnnAssign)):
                continue
            value = stmt.value
            if value is None:
                continue
            # __all__ is a write-once export list read only by import
            # machinery and docs tooling; it is not runtime shared state.
            targets = stmt.targets if isinstance(stmt, ast.Assign) else [stmt.target]
            if any(
                isinstance(target, ast.Name) and target.id == "__all__"
                for target in targets
            ):
                continue
            mutable = isinstance(
                value,
                (ast.Dict, ast.List, ast.Set, ast.ListComp, ast.SetComp, ast.DictComp),
            ) or (
                isinstance(value, ast.Call)
                and ctx.resolve(value.func) in self._MUTABLE_FACTORIES
            )
            if mutable:
                yield stmt, (
                    "module-level mutable state in a threaded module; every "
                    "access races across worker/HTTP/loop threads -- guard it "
                    "with a lock and suppress with a justification, or move "
                    "it onto a locked instance"
                )


# ----------------------------------------------------------------------
# Robustness
# ----------------------------------------------------------------------


@register
class BareExceptRule(Rule):
    """``except:`` swallows SystemExit/KeyboardInterrupt."""

    code = "bare-except"
    summary = "no bare `except:` anywhere"

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ExceptHandler) and node.type is None:
                yield node, (
                    "bare `except:` also catches SystemExit and "
                    "KeyboardInterrupt; catch the exception you expect (or "
                    "at minimum `except Exception`)"
                )


@register
class BroadExceptRule(Rule):
    """Catching ``Exception`` silently is how failures disappear."""

    code = "broad-except"
    summary = "`except Exception` must log, re-raise, or carry a justification"
    packages = ("repro",)

    _LOG_ATTRS = {
        "debug", "info", "warning", "warn", "error", "exception", "critical", "log",
    }
    _LOG_NAMES = {"log_event"}
    _BROAD = {"Exception", "BaseException"}

    def _is_broad(self, annotation: Optional[ast.AST]) -> bool:
        if annotation is None:
            return False
        if isinstance(annotation, ast.Tuple):
            return any(self._is_broad(elt) for elt in annotation.elts)
        name = terminal_name(annotation)
        return name in self._BROAD

    def _handled(self, handler: ast.ExceptHandler) -> bool:
        for node in ast.walk(handler):
            if isinstance(node, ast.Raise):
                return True
            if isinstance(node, ast.Call):
                func = node.func
                if isinstance(func, ast.Attribute) and func.attr in self._LOG_ATTRS:
                    return True
                if isinstance(func, ast.Name) and func.id in self._LOG_NAMES:
                    return True
        return False

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if self._is_broad(node.type) and not self._handled(node):
                yield node, (
                    "`except Exception` that neither logs nor re-raises turns "
                    "failures into silence; log it, re-raise, or justify with "
                    "a `repro: noqa[broad-except]` suppression"
                )


# ----------------------------------------------------------------------
# Cache-key hygiene
# ----------------------------------------------------------------------


@register
class CacheKeyRule(Rule):
    """Cache keys must be process- and platform-stable."""

    code = "cache-key"
    summary = "cache-key code routes hashing through repro.runtime.hashing"
    packages = CACHE_KEY_PACKAGES
    exempt_modules = (HASHING_MODULE,)

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        for call in ctx.calls():
            resolved = ctx.resolve(call.func)
            if resolved == "hash":
                yield call, (
                    "builtin hash() is salted per process (PYTHONHASHSEED); "
                    "a key built from it cannot be found again -- use "
                    "repro.runtime.hashing.stable_hash"
                )
            elif resolved is not None and resolved.startswith("hashlib."):
                yield call, (
                    "ad-hoc hashlib digest in cache-key code; keys must go "
                    "through repro.runtime.hashing (canonical float/array "
                    "encoding, class tagging) or logically equal requests "
                    "will miss each other"
                )


# ----------------------------------------------------------------------
# Performance
# ----------------------------------------------------------------------


@register
class PerfPythonCallbackRule(Rule):
    """Per-cell Python model callbacks undo the kernels' vectorization.

    The PR 10 burn-down replaced every per-row ``model.cost(...)`` /
    ``model.recovery(...)`` call in the DP kernels with precomputed tables
    (``_FrontierCostTables``); a callback re-introduced inside a loop or
    comprehension turns an O(1)-pass kernel back into O(cells) interpreter
    round-trips.  Intentional per-call fallbacks (custom ``combine``
    callables the tables cannot replay) carry an explicit
    ``repro: noqa[perf-python-callback]`` suppression.
    """

    code = "perf-python-callback"
    summary = "no per-row model callbacks (.cost/.recovery) in core kernel loops"
    packages = ("repro.core",)

    CALLBACKS = ("cost", "recovery")

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        seen: Set[int] = set()
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.For, ast.While)):
                scope: Iterable[ast.stmt] = [*node.body, *node.orelse]
            elif isinstance(
                node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)
            ):
                scope = [node]  # type: ignore[list-item]
            else:
                continue
            for stmt in scope:
                for call in ast.walk(stmt):
                    if (
                        isinstance(call, ast.Call)
                        and isinstance(call.func, ast.Attribute)
                        and call.func.attr in self.CALLBACKS
                        and id(call) not in seen
                    ):
                        seen.add(id(call))
                        yield call, (
                            f"Python model callback .{call.func.attr}(...) "
                            "inside a kernel loop runs once per row/DP cell; "
                            "precompute a cost table (see _FrontierCostTables) "
                            "or hoist the call out of the loop"
                        )
