"""The repo-native lint engine: file discovery, suppressions, reporting.

Generic linters cannot check the contracts this reproduction actually lives
by -- bit-identical replayability of every engine path, wall-clock isolation,
lock discipline in the threaded service modules, hash-stable cache keys.
This engine runs the repo-specific rules in :mod:`repro.devtools.rules` over
Python sources using nothing but the standard library (``ast`` +
``tokenize``), so it works in environments where no third-party linter can
be installed.

Entry points:

* ``python -m repro.devtools [paths...]`` and ``repro lint [paths...]``;
* :func:`lint_paths` / :func:`lint_source` for tests and tooling.

Suppressions are spelled ``repro: noqa[code]`` (or ``noqa[code1,code2]``)
inside a real comment on the flagged line, conventionally followed by a
justification: ``x = {}  # <hash> repro: noqa[module-state] - guarded by _lock``.
Comments are found with ``tokenize``, so the marker inside a string literal
is inert.  A suppression that matches no violation (or names an unknown
code) is itself reported as ``unused-noqa`` -- suppressions must not outlive
the code they excuse.
"""

from __future__ import annotations

import argparse
import ast
import io
import json
import re
import sys
import tokenize
from dataclasses import dataclass
from pathlib import Path, PurePosixPath
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.devtools.rules import RULES, FileContext

__all__ = [
    "LintReport",
    "Violation",
    "lint_paths",
    "lint_source",
    "main",
    "run",
]

#: Matches one suppression group inside a comment token.
_SUPPRESSION_RE = re.compile(r"repro:\s*noqa\[([A-Za-z0-9_\-, ]+)\]")

#: Codes the engine itself can emit (on top of the registered rules).
ENGINE_CODES = ("syntax-error", "unused-noqa")


@dataclass(frozen=True)
class Violation:
    """One finding: where, which contract, and what to do about it."""

    path: str
    line: int
    col: int
    code: str
    message: str

    def to_dict(self) -> Dict[str, object]:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "code": self.code,
            "message": self.message,
        }

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: [{self.code}] {self.message}"


@dataclass
class LintReport:
    """Aggregate outcome of one lint run."""

    violations: List[Violation]
    files_checked: int
    suppressed: int

    @property
    def exit_code(self) -> int:
        return 1 if self.violations else 0

    def counts(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for violation in self.violations:
            out[violation.code] = out.get(violation.code, 0) + 1
        return dict(sorted(out.items()))

    def to_dict(self) -> Dict[str, object]:
        return {
            "version": 1,
            "files_checked": self.files_checked,
            "suppressed": self.suppressed,
            "counts": self.counts(),
            "violations": [violation.to_dict() for violation in self.violations],
        }


def module_for_path(path: str) -> str:
    """Dotted module-ish identifier for ``path``, used for rule scoping.

    ``src/repro/simulation/engine.py`` (relative or under any prefix) maps to
    ``repro.simulation.engine``; paths outside a ``src`` layout fall back to
    their dotted parts (``tests/test_cli.py`` -> ``tests.test_cli``), which
    keeps the engine-package rules scoped to the package proper.
    """
    pure = PurePosixPath(str(path).replace("\\", "/"))
    parts = [part for part in pure.parts if part not in (".", "/")]
    if parts and parts[-1].endswith(".py"):
        parts[-1] = parts[-1][: -len(".py")]
    if "src" in parts:
        anchor = len(parts) - 1 - parts[::-1].index("src")
        parts = parts[anchor + 1:]
    elif "repro" in parts:
        parts = parts[parts.index("repro"):]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


def _suppressions(source: str) -> Dict[int, List[str]]:
    """Per-line suppression codes, from real comment tokens only."""
    found: Dict[int, List[str]] = {}
    reader = io.StringIO(source).readline
    try:
        tokens = list(tokenize.generate_tokens(reader))
    except (tokenize.TokenError, IndentationError, SyntaxError):
        return found
    for token in tokens:
        if token.type != tokenize.COMMENT:
            continue
        for match in _SUPPRESSION_RE.finditer(token.string):
            codes = [code.strip() for code in match.group(1).split(",") if code.strip()]
            found.setdefault(token.start[0], []).extend(codes)
    return found


def lint_source(
    source: str,
    path: str,
    *,
    select: Optional[Set[str]] = None,
) -> Tuple[List[Violation], int]:
    """Lint one source text as if it lived at ``path``.

    Returns ``(violations, suppressed_count)``.  ``select`` restricts the
    run to the given rule codes (``unused-noqa`` detection only runs on a
    full pass, where every suppression had its chance to match).
    """
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        violation = Violation(
            path, exc.lineno or 1, (exc.offset or 1) - 1, "syntax-error",
            f"cannot parse: {exc.msg}",
        )
        return [violation], 0

    context = FileContext(path=path, module=module_for_path(path), tree=tree)
    raw: List[Violation] = []
    for rule in RULES.values():
        if select is not None and rule.code not in select:
            continue
        if not rule.in_scope(context.module):
            continue
        for node, message in rule.check(context):
            raw.append(
                Violation(
                    path, getattr(node, "lineno", 1),
                    getattr(node, "col_offset", 0), rule.code, message,
                )
            )

    suppressions = _suppressions(source)
    used: Dict[int, Set[str]] = {}
    final: List[Violation] = []
    suppressed = 0
    for violation in raw:
        codes = suppressions.get(violation.line, [])
        if violation.code in codes:
            used.setdefault(violation.line, set()).add(violation.code)
            suppressed += 1
            continue
        final.append(violation)

    if select is None:
        known = set(RULES) | set(ENGINE_CODES)
        for line, codes in suppressions.items():
            for code in dict.fromkeys(codes):
                if code not in known:
                    final.append(Violation(
                        path, line, 0, "unused-noqa",
                        f"unknown rule code {code!r} in suppression",
                    ))
                elif code not in used.get(line, set()):
                    final.append(Violation(
                        path, line, 0, "unused-noqa",
                        f"suppression for {code!r} matches no violation on this "
                        "line; remove it",
                    ))
    return final, suppressed


def _discover(paths: Sequence[str]) -> List[Path]:
    """Every ``.py`` file under ``paths``, skipping caches and hidden dirs."""
    files: List[Path] = []
    for entry in paths:
        root = Path(entry)
        if root.is_file():
            files.append(root)
        elif root.is_dir():
            for candidate in sorted(root.rglob("*.py")):
                parts = candidate.parts
                if any(part == "__pycache__" or part.startswith(".") for part in parts):
                    continue
                files.append(candidate)
        else:
            raise FileNotFoundError(f"no such file or directory: {entry!r}")
    return files


def lint_paths(
    paths: Sequence[str],
    *,
    select: Optional[Iterable[str]] = None,
) -> LintReport:
    """Lint every Python file under ``paths`` and aggregate the findings."""
    selected = {code.strip() for code in select} if select is not None else None
    if selected is not None:
        unknown = selected - set(RULES) - set(ENGINE_CODES)
        if unknown:
            raise ValueError(
                f"unknown rule code(s) {sorted(unknown)}; "
                f"known: {sorted(set(RULES) | set(ENGINE_CODES))}"
            )
    violations: List[Violation] = []
    suppressed = 0
    files = _discover(paths)
    for file in files:
        source = file.read_text(encoding="utf-8")
        found, skipped = lint_source(source, file.as_posix(), select=selected)
        violations.extend(found)
        suppressed += skipped
    violations.sort(key=lambda v: (v.path, v.line, v.col, v.code))
    return LintReport(violations, files_checked=len(files), suppressed=suppressed)


def _render_rule_listing() -> str:
    lines = ["repo-native lint rules:"]
    for code, rule in sorted(RULES.items()):
        lines.append(f"  {code:<16s} {rule.summary}")
        lines.append(f"  {'':<16s}   scope: {rule.scope_description()}")
    lines.append(f"  {'syntax-error':<16s} a linted file failed to parse")
    lines.append(
        f"  {'unused-noqa':<16s} a `repro: noqa[...]` suppression matches no violation"
    )
    return "\n".join(lines)


def run(
    paths: Sequence[str],
    *,
    json_output: bool = False,
    select: Optional[Iterable[str]] = None,
    list_rules: bool = False,
    stream=None,
) -> int:
    """Execute a lint run and print the report; returns the exit code."""
    out = stream if stream is not None else sys.stdout
    if list_rules:
        print(_render_rule_listing(), file=out)
        return 0
    try:
        report = lint_paths(paths, select=select)
    except (FileNotFoundError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if json_output:
        print(json.dumps(report.to_dict(), indent=2, sort_keys=True), file=out)
        return report.exit_code
    for violation in report.violations:
        print(violation.render(), file=out)
    summary = (
        f"checked {report.files_checked} files: "
        f"{len(report.violations)} violation(s), {report.suppressed} suppressed"
    )
    print(summary, file=out)
    return report.exit_code


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.devtools",
        description="Repo-native static analysis enforcing the determinism "
        "and concurrency contracts (stdlib-only).",
    )
    parser.add_argument(
        "paths", nargs="*", default=["src", "tests", "benchmarks"],
        help="files or directories to lint (default: src tests benchmarks)",
    )
    parser.add_argument(
        "--json", action="store_true", dest="json_output",
        help="emit the machine-readable JSON report instead of text",
    )
    parser.add_argument(
        "--select", default=None, metavar="CODES",
        help="comma-separated rule codes to run (default: all)",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="list the rule catalog and exit",
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    select = args.select.split(",") if args.select else None
    return run(
        args.paths, json_output=args.json_output, select=select,
        list_rules=args.list_rules,
    )
