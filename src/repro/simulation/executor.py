"""The execution engine: replay a schedule against injected failures.

The executor applies the paper's execution model (Section 2) literally:

* the tasks of a segment are executed in order; when the segment's final
  checkpoint (if any) commits, progress is saved;
* if a failure strikes at any point during the segment's work, its checkpoint,
  or a recovery, all progress since the last committed checkpoint is lost;
* each failure incurs a downtime ``D`` (during which no further failure
  strikes) followed by a recovery of duration equal to the segment's recovery
  cost; recoveries themselves may be interrupted by failures;
* the makespan is the time at which the last segment (and its checkpoint, if
  any) completes.

The executor works at the granularity of the :class:`~repro.core.schedule.Segment`
decomposition, which is exact: within a segment every failure rolls back to
the same point, so the internal task boundaries only matter for logging, and
they are logged when a log is requested.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Union

import numpy as np

from repro._validation import check_non_negative
from repro.core.schedule import Schedule, Segment
from repro.simulation.engine import FailureSource, failure_source_for
from repro.simulation.events import EventType, ExecutionLog

__all__ = ["SimulationResult", "simulate_schedule", "simulate_segments"]

# A run that suffers this many failures is aborted: with sane parameters the
# expected number of failures per segment is small, so hitting the cap almost
# certainly indicates an instance whose expected makespan is astronomically
# large (the analytic formula would overflow on it too).
_MAX_FAILURES_PER_RUN = 10_000_000


@dataclass(frozen=True)
class SimulationResult:
    """Outcome of one simulated execution.

    Attributes
    ----------
    makespan:
        Total time from start to the completion of the last segment.
    num_failures:
        Number of failures that struck during the run.
    wasted_time:
        Time spent on work/checkpoint/recovery attempts that were lost to
        failures, plus downtimes.  ``makespan = useful_time + wasted_time``.
    useful_time:
        Time spent on work and checkpoints that were eventually committed.
    num_recovery_attempts:
        Number of recovery attempts (a single failure can trigger several if
        recoveries themselves fail).
    log:
        Optional detailed event log (None unless requested).
    """

    makespan: float
    num_failures: int
    wasted_time: float
    useful_time: float
    num_recovery_attempts: int
    log: Optional[ExecutionLog] = None

    def __post_init__(self) -> None:
        if self.makespan < 0 or self.wasted_time < 0 or self.useful_time < 0:
            raise ValueError("simulation times must be non-negative")


def simulate_segments(
    segments: Sequence[Segment],
    failure_model: Union[float, FailureSource, object],
    downtime: float,
    *,
    rng: Optional[np.random.Generator] = None,
    seed: Optional[int] = None,
    record_log: bool = False,
) -> SimulationResult:
    """Simulate the execution of a sequence of segments under failures.

    Parameters
    ----------
    segments:
        The segment decomposition of a schedule (see
        :meth:`repro.core.schedule.Schedule.segments`).
    failure_model:
        Anything :func:`repro.simulation.engine.failure_source_for` accepts:
        a platform rate, a failure distribution, a :class:`Platform`, a
        :class:`FailureTrace`, or a ready-made :class:`FailureSource`.
    downtime:
        Downtime ``D`` after each failure.
    rng, seed:
        Randomness used both to build stochastic failure sources and by those
        sources; ``seed`` is ignored when ``rng`` is given.
    record_log:
        When True, a full :class:`ExecutionLog` is attached to the result.
    """
    check_non_negative("downtime", downtime)
    if rng is None:
        rng = np.random.default_rng(seed)
    source = failure_source_for(failure_model, rng)
    log = ExecutionLog() if record_log else None

    now = 0.0
    wasted = 0.0
    useful = 0.0
    failures = 0
    recovery_attempts = 0

    for index, segment in enumerate(segments):
        if log is not None:
            log.record(now, EventType.SEGMENT_STARTED, index, f"tasks={','.join(segment.tasks)}")
        duration = segment.work + segment.checkpoint_cost
        while True:
            delay = source.time_to_next_failure(now)
            if delay >= duration:
                # The whole segment (work + checkpoint) completes before the
                # next failure.
                if log is not None:
                    task_clock = now
                    for name in segment.tasks:
                        # Individual task durations are only needed for the log.
                        task_work = segment.work / len(segment.tasks)
                        task_clock += task_work
                        log.record(task_clock, EventType.TASK_COMPLETED, index, name)
                    if segment.checkpointed:
                        log.record(
                            now + duration, EventType.CHECKPOINT_TAKEN, index,
                            f"cost={segment.checkpoint_cost:g}",
                        )
                now += duration
                useful += duration
                break

            # A failure interrupts the attempt.
            failures += 1
            if failures > _MAX_FAILURES_PER_RUN:
                raise RuntimeError(
                    "simulation aborted after "
                    f"{_MAX_FAILURES_PER_RUN} failures; the instance parameters make "
                    "completion astronomically unlikely"
                )
            now += delay
            wasted += delay
            source.register_failure(now)
            if log is not None:
                log.record(now, EventType.FAILURE, index, f"lost={delay:g}")

            # Downtime: failures cannot strike during it (Section 2).
            now += downtime
            wasted += downtime
            if log is not None and downtime > 0:
                log.record(now, EventType.DOWNTIME_COMPLETED, index)

            # Recovery attempts, which may themselves be interrupted.
            while True:
                recovery_attempts += 1
                if log is not None:
                    log.record(now, EventType.RECOVERY_STARTED, index,
                               f"cost={segment.recovery_cost:g}")
                recovery_delay = source.time_to_next_failure(now)
                if recovery_delay >= segment.recovery_cost:
                    now += segment.recovery_cost
                    wasted += segment.recovery_cost
                    if log is not None:
                        log.record(now, EventType.RECOVERY_COMPLETED, index)
                    break
                failures += 1
                if failures > _MAX_FAILURES_PER_RUN:
                    raise RuntimeError(
                        "simulation aborted after "
                        f"{_MAX_FAILURES_PER_RUN} failures; the instance parameters make "
                        "completion astronomically unlikely"
                    )
                now += recovery_delay
                wasted += recovery_delay
                source.register_failure(now)
                if log is not None:
                    log.record(now, EventType.FAILURE, index,
                               f"during recovery, lost={recovery_delay:g}")
                now += downtime
                wasted += downtime
                if log is not None and downtime > 0:
                    log.record(now, EventType.DOWNTIME_COMPLETED, index)

    if log is not None:
        log.record(now, EventType.EXECUTION_COMPLETED, max(len(segments) - 1, 0))
    return SimulationResult(
        makespan=now,
        num_failures=failures,
        wasted_time=wasted,
        useful_time=useful,
        num_recovery_attempts=recovery_attempts,
        log=log,
    )


def simulate_schedule(
    schedule: Schedule,
    failure_model: Union[float, FailureSource, object],
    downtime: float,
    *,
    rng: Optional[np.random.Generator] = None,
    seed: Optional[int] = None,
    record_log: bool = False,
) -> SimulationResult:
    """Simulate one execution of a :class:`~repro.core.schedule.Schedule`.

    Convenience wrapper around :func:`simulate_segments` using the schedule's
    own segment decomposition.
    """
    return simulate_segments(
        schedule.segments(),
        failure_model,
        downtime,
        rng=rng,
        seed=seed,
        record_log=record_log,
    )
