"""Shared chunk-level instrumentation for the simulation workers.

One call per *chunk* (hundreds of replications), never per replication, so
the cost is invisible next to the simulation itself.  Kept in its own module
because both chunked executors (:mod:`repro.simulation.monte_carlo` and
:mod:`repro.simulation.campaign`) record the same two instruments and their
worker functions run inside pool processes -- a module-level helper pickles
by reference.
"""

from __future__ import annotations

from repro.obs import metrics as _metrics

__all__ = ["observe_chunk"]


def observe_chunk(kind: str, engine: str, runs: int, seconds: float) -> None:
    """Record one executed chunk: wall-time histogram + throughput gauge.

    ``kind`` distinguishes the two chunked executors (``"monte_carlo"`` /
    ``"campaign"``); ``engine`` is the execution engine that ran the chunk.
    The replications-per-second gauge tracks the most recent chunk -- a
    live-throughput reading, not an average (the histogram holds history).
    """
    registry = _metrics.get_registry()
    registry.histogram(
        "repro_chunk_seconds",
        "Wall-time of executed simulation chunks, by engine and executor kind.",
        labelnames=("engine", "kind"),
    ).observe(seconds, engine=engine, kind=kind)
    if seconds > 0.0:
        registry.gauge(
            "repro_replications_per_second",
            "Throughput of the most recently executed chunk.",
            labelnames=("engine", "kind"),
        ).set(runs / seconds, engine=engine, kind=kind)
