"""Paired comparison of several schedules under common random failures.

When comparing checkpoint strategies by simulation (experiments E6/E8, the
Weibull example), estimating each strategy's expected makespan independently
wastes most of the statistical budget: the run-to-run variance of the failure
process dwarfs the difference between two good strategies.  The standard fix
is *common random numbers*: replay every candidate schedule against the same
sampled failure trace, run after run, and compare the paired makespans.

:class:`CampaignRunner` implements that protocol on top of the trace
generator and the executor:

* for each of ``num_runs`` rounds it draws one platform failure trace from the
  configured law (or accepts a pre-generated list of traces);
* every candidate schedule is executed against that same trace;
* the result is a :class:`CampaignResult` holding the per-strategy makespan
  samples, their summary statistics, and paired-difference statistics against
  a chosen baseline strategy.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from repro._validation import check_non_negative, check_positive, check_positive_int
from repro.obs import tracing as _tracing
from repro.core.schedule import Schedule, Segment
from repro.experiments.reporting import ResultTable
from repro.failures.distributions import FailureDistribution
from repro.failures.traces import FailureTrace, generate_trace
from repro.runtime.backends import ExecutionBackend, backend_scope, resolve_engine
from repro.runtime.cache import ResultCache
from repro.runtime.chunking import plan_chunks
from repro.simulation._obs import observe_chunk
from repro.simulation.engine import TraceFailureSource
from repro.simulation.executor import simulate_segments
from repro.simulation.vectorized import generate_trace_times_batch, replay_traces_batch

__all__ = ["CampaignResult", "CampaignRunner"]

_Z95 = 1.959963984540054


@dataclass(frozen=True)
class CampaignResult:
    """Outcome of a paired simulation campaign.

    Attributes
    ----------
    makespans:
        Mapping from strategy name to the list of simulated makespans, one per
        round; all lists have the same length and index ``i`` of every list
        was produced against the same failure trace.
    num_runs:
        Number of rounds (shared traces).
    """

    makespans: Mapping[str, Sequence[float]]
    num_runs: int

    def mean(self, strategy: str) -> float:
        """Mean simulated makespan of one strategy."""
        return float(np.mean(self._samples(strategy)))

    def std(self, strategy: str) -> float:
        """Sample standard deviation of one strategy's makespans."""
        samples = self._samples(strategy)
        return float(np.std(samples, ddof=1)) if len(samples) > 1 else 0.0

    def _samples(self, strategy: str) -> np.ndarray:
        try:
            return np.asarray(self.makespans[strategy], dtype=float)
        except KeyError as exc:
            raise KeyError(
                f"no strategy named {strategy!r}; available: {sorted(self.makespans)}"
            ) from exc

    def paired_difference(self, strategy: str, baseline: str) -> Dict[str, float]:
        """Paired statistics of ``strategy - baseline`` makespans.

        Returns the mean difference, its standard error, and a 95% normal
        confidence interval.  A negative mean difference means ``strategy``
        finished earlier than ``baseline`` on the shared traces.
        """
        a = self._samples(strategy)
        b = self._samples(baseline)
        diffs = a - b
        mean = float(diffs.mean())
        sem = float(diffs.std(ddof=1) / math.sqrt(len(diffs))) if len(diffs) > 1 else 0.0
        return {
            "mean_difference": mean,
            "sem": sem,
            "ci95_low": mean - _Z95 * sem,
            "ci95_high": mean + _Z95 * sem,
        }

    def ranking(self) -> List[str]:
        """Strategies sorted by mean makespan, best first."""
        return sorted(self.makespans, key=self.mean)

    def to_table(self, *, baseline: Optional[str] = None) -> ResultTable:
        """Summarise the campaign as a :class:`ResultTable`."""
        table = ResultTable(
            title=f"Simulation campaign ({self.num_runs} shared traces)",
            columns=["strategy", "mean_makespan", "std", "vs_baseline_mean_diff",
                     "vs_baseline_ci95_low", "vs_baseline_ci95_high"],
        )
        reference = baseline if baseline is not None else self.ranking()[0]
        for strategy in self.ranking():
            row = {
                "strategy": strategy,
                "mean_makespan": self.mean(strategy),
                "std": self.std(strategy),
            }
            if strategy != reference:
                paired = self.paired_difference(strategy, reference)
                row["vs_baseline_mean_diff"] = paired["mean_difference"]
                row["vs_baseline_ci95_low"] = paired["ci95_low"]
                row["vs_baseline_ci95_high"] = paired["ci95_high"]
            table.add_row(**row)
        return table


class CampaignRunner:
    """Run several schedules against shared failure traces (common random numbers).

    Parameters
    ----------
    schedules:
        Mapping from strategy name to the :class:`Schedule` it produces.  All
        schedules are replayed against the same traces.
    failure_law:
        Per-processor failure inter-arrival law used to generate the shared
        traces (ignored when explicit ``traces`` are passed to :meth:`run`).
    num_processors:
        Platform size used for trace generation.
    downtime:
        Downtime applied after every failure.
    horizon_factor:
        Each generated trace covers ``horizon_factor`` times the largest
        failure-free makespan among the schedules, so that even heavily
        delayed runs stay inside the trace.  Runs that exhaust the trace see
        no further failures; a warning margin of 10x is the default.
    """

    def __init__(
        self,
        schedules: Mapping[str, Schedule],
        failure_law: Optional[FailureDistribution] = None,
        *,
        num_processors: int = 1,
        downtime: float = 0.0,
        horizon_factor: float = 10.0,
    ) -> None:
        if not schedules:
            raise ValueError("schedules must not be empty")
        self.schedules = dict(schedules)
        self.failure_law = failure_law
        self.num_processors = check_positive_int("num_processors", num_processors)
        self.downtime = check_non_negative("downtime", downtime)
        self.horizon_factor = check_positive("horizon_factor", horizon_factor)
        self._segments = {name: sched.segments() for name, sched in self.schedules.items()}
        self._horizon = self.horizon_factor * max(
            sched.failure_free_time() for sched in self.schedules.values()
        )

    def run(
        self,
        num_runs: int,
        *,
        rng: Optional[np.random.Generator] = None,
        seed: Optional[int] = None,
        traces: Optional[Sequence[FailureTrace]] = None,
        backend: Union[None, int, str, ExecutionBackend] = None,
        cache: Optional[ResultCache] = None,
        chunk_size: Optional[int] = None,
        engine: Optional[str] = None,
        progress: Optional[Callable[[int, int], None]] = None,
    ) -> CampaignResult:
        """Execute the campaign.

        Either ``num_runs`` fresh traces are generated from the configured
        failure law, or the explicit ``traces`` are replayed (``num_runs`` is
        then capped to their number).

        With ``backend``, ``cache`` and/or ``engine`` the rounds are cut into
        deterministic chunks (each chunk draws its traces from an
        independently spawned RNG stream, see :mod:`repro.runtime.chunking`)
        and fanned out: the per-strategy makespans are bit-identical for a
        given ``seed`` whatever the worker count, and a warm cache replays
        the whole campaign from disk.  This path requires ``seed=`` and
        generated traces (``rng=`` and explicit ``traces`` stay serial).

        ``engine="vectorized"`` generates and replays each chunk's shared
        traces as one NumPy array program
        (:mod:`repro.simulation.vectorized`) instead of one Python event loop
        per round and strategy -- typically an order of magnitude faster on a
        single core.  Its traces come from batched draws, so its samples are
        statistically equivalent to (not bit-identical with) the scalar
        engine's; for a given ``seed`` they remain bit-identical across
        backends and worker counts, and cached entries are keyed per engine.

        ``progress`` is an optional ``callback(done, total)`` reporting how
        many of the campaign's deterministic chunks have completed; it fires
        once with ``(0, total)`` before execution, then after every chunk (a
        cache hit reports ``(total, total)`` immediately).  Exceptions raised
        by the callback abort the campaign -- which is how the scenario
        service implements cooperative cancellation.  On the serial
        (non-chunked) path the whole run counts as a single chunk.
        """
        check_positive_int("num_runs", num_runs)
        if backend is not None or cache is not None or engine is not None:
            if traces is not None:
                raise ValueError(
                    "explicit traces are replayed serially; drop backend=/cache= "
                    "or let the campaign generate its traces"
                )
            if self.failure_law is None:
                raise ValueError("provide a failure_law at construction or explicit traces")
            if rng is not None:
                raise ValueError(
                    "the backend/cache execution path derives per-chunk RNG "
                    "streams from a seed and cannot split a live generator; "
                    "pass seed=... instead of rng=..."
                )
            return self._run_chunked(
                num_runs, seed=seed, backend=backend, cache=cache,
                chunk_size=chunk_size, engine=resolve_engine(engine, backend),
                progress=progress,
            )
        if progress is not None:
            progress(0, 1)
        if rng is None:
            rng = np.random.default_rng(seed)
        if traces is None:
            if self.failure_law is None:
                raise ValueError("provide a failure_law at construction or explicit traces")
            traces = [
                generate_trace(
                    self.failure_law,
                    horizon=self._horizon,
                    num_processors=self.num_processors,
                    rng=rng,
                )
                for _ in range(num_runs)
            ]
        else:
            traces = list(traces)[:num_runs]
            if not traces:
                raise ValueError("traces must not be empty")

        makespans: Dict[str, List[float]] = {name: [] for name in self.schedules}
        for trace in traces:
            for name, segments in self._segments.items():
                source = TraceFailureSource(trace)
                result = simulate_segments(segments, source, self.downtime, rng=rng)
                makespans[name].append(result.makespan)
        if progress is not None:
            progress(1, 1)
        return CampaignResult(makespans=makespans, num_runs=len(traces))

    def _run_chunked(
        self,
        num_runs: int,
        *,
        seed: Optional[int],
        backend: Union[None, int, str, ExecutionBackend],
        cache: Optional[ResultCache],
        chunk_size: Optional[int],
        engine: str = "scalar",
        progress: Optional[Callable[[int, int], None]] = None,
    ) -> CampaignResult:
        plan = plan_chunks(num_runs, chunk_size)
        if progress is not None:
            progress(0, plan.num_chunks)
        names = list(self._segments)
        store = None
        key = None
        if cache is not None:
            if seed is None:
                raise ValueError("caching requires an explicit seed (the key includes it)")
            payload = {
                "kind": "paired_campaign",
                "segments": {name: self._segments[name] for name in sorted(names)},
                "failure_law": self.failure_law,
                "num_processors": self.num_processors,
                "downtime": self.downtime,
                "horizon": self._horizon,
                "num_runs": num_runs,
                "seed": seed,
                "chunk_size": plan.chunk_size,
            }
            # Campaign traces come from differently ordered draws on the two
            # engines, so their samples can differ: the engine is part of the
            # key (the scalar spelling is omitted to keep legacy keys valid).
            if engine == "vectorized":
                payload["engine"] = "vectorized"
            store = cache.with_namespace("campaign")
            key = store.key_for(payload)
            entry = store.get(key)
            if entry is not None:
                meta, arrays = entry
                makespans = {
                    name: arrays[f"s{index}"].tolist()
                    for index, name in enumerate(meta["strategies"])
                }
                if progress is not None:
                    progress(plan.num_chunks, plan.num_chunks)
                return CampaignResult(makespans=makespans, num_runs=meta["num_runs"])
        # The trailing trace-context snapshot keeps the submitting request's
        # correlation id on chunk spans even in pool workers; it never enters
        # the cache key (keys hash the payload dict above, not task tuples).
        obs_context = _tracing.context_snapshot()
        tasks = [
            (
                self._segments,
                self.failure_law,
                self._horizon,
                self.num_processors,
                self.downtime,
                chunk_seed,
                size,
                obs_context,
            )
            for chunk_seed, size in zip(plan.seeds(seed), plan.sizes)
        ]
        worker = _campaign_chunk_vectorized if engine == "vectorized" else _campaign_chunk
        with backend_scope(backend) as executor:
            if progress is None:
                chunks = executor.map(worker, tasks)
            else:
                chunks = []
                for chunk in executor.imap(worker, tasks):
                    chunks.append(chunk)
                    progress(len(chunks), plan.num_chunks)
        merged: Dict[str, List[float]] = {name: [] for name in names}
        for makespans_chunk, shipped in chunks:
            # Chunk spans recorded in pool workers ride back beside the
            # samples; folding them in here (job.run is still open) is what
            # puts worker chunks into the job's persisted trace tree.
            _tracing.absorb_spans(shipped)
            for name in names:
                merged[name].extend(makespans_chunk[name])
        if store is not None and key is not None:
            store.put(
                key,
                {"kind": "paired_campaign", "strategies": names, "num_runs": num_runs,
                 "seed": seed, "chunk_size": plan.chunk_size},
                {f"s{index}": np.asarray(merged[name], dtype=float)
                 for index, name in enumerate(names)},
            )
        return CampaignResult(makespans=merged, num_runs=num_runs)


_CampaignTask = Tuple[
    Mapping[str, Sequence[Segment]], FailureDistribution, float, int, float,
    np.random.SeedSequence, int, Optional[Dict[str, Any]],
]

#: What a campaign chunk worker returns: the per-strategy makespans plus the
#: span records to ship back to the submitting process (empty when the chunk
#: ran inside the originating trace's own context).
_CampaignChunkResult = Tuple[Dict[str, List[float]], List[Dict[str, Any]]]


def _campaign_chunk(args: _CampaignTask) -> _CampaignChunkResult:
    """Run one chunk of paired rounds (runs in a worker process).

    Each round draws a fresh shared trace from the chunk's own RNG stream and
    replays every strategy against it, preserving the common-random-numbers
    pairing within the chunk and across backends.  The trailing ``obs``
    element re-activates the submitting context's correlation id around the
    chunk's span; the span records it collects travel back in the result (the
    samples themselves are untouched, so bit-identity is preserved).
    """
    segments, law, horizon, num_processors, downtime, chunk_seed, count, obs = args
    start = time.perf_counter()
    with _tracing.shipping_trace(obs) as shipped:
        with _tracing.span("campaign.chunk", engine="scalar", runs=count):
            rng = np.random.default_rng(chunk_seed)
            makespans: Dict[str, List[float]] = {name: [] for name in segments}
            for _ in range(count):
                trace = generate_trace(
                    law, horizon=horizon, num_processors=num_processors, rng=rng
                )
                for name, segs in segments.items():
                    source = TraceFailureSource(trace)
                    result = simulate_segments(segs, source, downtime, rng=rng)
                    makespans[name].append(result.makespan)
    observe_chunk("campaign", "scalar", count, time.perf_counter() - start)
    return makespans, shipped


def _campaign_chunk_vectorized(args: _CampaignTask) -> _CampaignChunkResult:
    """Run one chunk of paired rounds as a NumPy array program.

    Same work item as :func:`_campaign_chunk`, executed batch-wise: the
    chunk's shared traces are generated in one batched pass and every
    strategy is replayed against every trace in one stacked lock-step loop.
    The common-random-numbers pairing is preserved (strategies on the same
    row index share a trace), and the chunk is deterministic for its seed --
    but the trace draws are ordered differently from the scalar chunk's, so
    the two engines agree statistically rather than bit-for-bit.
    """
    segments, law, horizon, num_processors, downtime, chunk_seed, count, obs = args
    start = time.perf_counter()
    with _tracing.shipping_trace(obs) as shipped:
        with _tracing.span("campaign.chunk", engine="vectorized", runs=count):
            rng = np.random.default_rng(chunk_seed)
            times = generate_trace_times_batch(law, horizon, num_processors, rng, count)
            names = list(segments)
            stacked = replay_traces_batch(
                [segments[name] for name in names], times, downtime
            )
            result = {name: stacked[index].tolist() for index, name in enumerate(names)}
    observe_chunk("campaign", "vectorized", count, time.perf_counter() - start)
    return result, shipped
