"""Event records produced by the discrete-event simulator.

Each simulated run can optionally record a full :class:`ExecutionLog` -- the
ordered list of :class:`SimulationEvent` entries (task completions,
checkpoints, failures, downtimes, recoveries, rollbacks).  Logs make the
simulator's behaviour auditable in tests (e.g. "wasted time is exactly the
time between the last checkpoint commit and the failure") and are handy when
debugging schedules, but they are disabled by default in Monte-Carlo loops for
speed.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterator, List, Optional

__all__ = ["EventType", "SimulationEvent", "ExecutionLog"]


class EventType(enum.Enum):
    """Kinds of events the simulator records."""

    SEGMENT_STARTED = "segment_started"
    TASK_COMPLETED = "task_completed"
    CHECKPOINT_TAKEN = "checkpoint_taken"
    FAILURE = "failure"
    DOWNTIME_COMPLETED = "downtime_completed"
    RECOVERY_STARTED = "recovery_started"
    RECOVERY_COMPLETED = "recovery_completed"
    EXECUTION_COMPLETED = "execution_completed"


@dataclass(frozen=True)
class SimulationEvent:
    """A single timestamped event of a simulated run.

    Attributes
    ----------
    time:
        Absolute simulation time of the event.
    type:
        What happened.
    segment:
        Index of the segment being executed (or the last one completed).
    detail:
        Free-form human-readable detail (task name, wasted time, ...).
    """

    time: float
    type: EventType
    segment: int
    detail: str = ""

    def __str__(self) -> str:
        return f"[{self.time:12.4f}] seg={self.segment:<3d} {self.type.value:<20s} {self.detail}"


@dataclass
class ExecutionLog:
    """Ordered record of the events of one simulated run."""

    events: List[SimulationEvent] = field(default_factory=list)

    def record(self, time: float, type_: EventType, segment: int, detail: str = "") -> None:
        """Append an event to the log."""
        self.events.append(SimulationEvent(time=time, type=type_, segment=segment, detail=detail))

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[SimulationEvent]:
        return iter(self.events)

    def of_type(self, type_: EventType) -> List[SimulationEvent]:
        """All events of the given type, in order."""
        return [e for e in self.events if e.type is type_]

    @property
    def num_failures(self) -> int:
        """Number of failures recorded."""
        return len(self.of_type(EventType.FAILURE))

    @property
    def num_checkpoints(self) -> int:
        """Number of checkpoints committed."""
        return len(self.of_type(EventType.CHECKPOINT_TAKEN))

    def makespan(self) -> Optional[float]:
        """Time of the EXECUTION_COMPLETED event, or None if the run did not finish."""
        completed = self.of_type(EventType.EXECUTION_COMPLETED)
        return completed[-1].time if completed else None

    def pretty(self) -> str:
        """Multi-line textual rendering of the log."""
        return "\n".join(str(e) for e in self.events)
