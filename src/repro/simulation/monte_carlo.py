"""Monte-Carlo estimation of expected makespans.

Averaging many independent simulated runs gives an unbiased estimator of the
expected makespan of a schedule, together with a confidence interval.  This is
the machinery behind experiment E1 (validating the Proposition 1 closed form
against simulation) and behind every experiment involving non-Exponential
failure laws, for which no closed form exists (Section 6).
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro._validation import check_non_negative, check_positive, check_positive_int
from repro.obs import tracing as _tracing
from repro.core.schedule import Schedule, Segment
from repro.failures.distributions import ExponentialFailure, FailureDistribution
from repro.failures.platform import Platform
from repro.failures.traces import FailureTrace
from repro.runtime.backends import ExecutionBackend, backend_scope, resolve_engine
from repro.runtime.cache import ResultCache
from repro.runtime.chunking import plan_chunks
from repro.simulation._obs import observe_chunk
from repro.simulation.engine import FailureSource, failure_source_for
from repro.simulation.executor import SimulationResult, simulate_segments
from repro.simulation.vectorized import (
    PlannedExponentialDelays,
    PlannedPoissonSource,
    pack_trace_times,
    replay_traces_batch,
    simulate_poisson_batch,
    simulate_renewal_batch,
)

__all__ = [
    "MonteCarloEstimate",
    "MonteCarloEstimator",
    "estimate_expected_completion_time",
]

# Two-sided 95% and 99% normal quantiles, used for confidence intervals.
_Z95 = 1.959963984540054
_Z99 = 2.5758293035489004


@dataclass(frozen=True)
class MonteCarloEstimate:
    """Summary of a Monte-Carlo estimation run.

    Attributes
    ----------
    mean:
        Sample mean of the makespans (the estimate of the expectation).
    std:
        Sample standard deviation (ddof=1).
    sem:
        Standard error of the mean.
    num_runs:
        Number of simulated runs.
    ci95_low, ci95_high:
        95% normal-approximation confidence interval for the expectation.
    mean_failures:
        Average number of failures per run.
    mean_wasted:
        Average wasted time per run.
    """

    mean: float
    std: float
    sem: float
    num_runs: int
    ci95_low: float
    ci95_high: float
    mean_failures: float
    mean_wasted: float

    def ci99(self) -> tuple:
        """99% normal-approximation confidence interval."""
        return (self.mean - _Z99 * self.sem, self.mean + _Z99 * self.sem)

    def contains(self, value: float, *, level: float = 0.95) -> bool:
        """True when ``value`` lies inside the requested confidence interval."""
        if level == 0.95:
            return self.ci95_low <= value <= self.ci95_high
        if level == 0.99:
            low, high = self.ci99()
            return low <= value <= high
        raise ValueError(f"unsupported confidence level {level}; use 0.95 or 0.99")

    def relative_error(self, reference: float) -> float:
        """Relative deviation of the estimate from a reference value."""
        if reference == 0.0:
            return math.inf if self.mean != 0.0 else 0.0
        return abs(self.mean - reference) / abs(reference)

    @classmethod
    def from_results(cls, results: Sequence[SimulationResult]) -> "MonteCarloEstimate":
        """Aggregate a list of simulation results into an estimate."""
        if not results:
            raise ValueError("cannot build an estimate from zero runs")
        return cls.from_samples(
            np.asarray([r.makespan for r in results], dtype=float),
            np.asarray([r.num_failures for r in results], dtype=float),
            np.asarray([r.wasted_time for r in results], dtype=float),
        )

    @classmethod
    def from_samples(
        cls,
        makespans: np.ndarray,
        num_failures: np.ndarray,
        wasted_times: np.ndarray,
    ) -> "MonteCarloEstimate":
        """Aggregate raw sample arrays (the chunked-execution form of the data)."""
        makespans = np.asarray(makespans, dtype=float)
        if makespans.size == 0:
            raise ValueError("cannot build an estimate from zero runs")
        mean = float(makespans.mean())
        std = float(makespans.std(ddof=1)) if len(makespans) > 1 else 0.0
        sem = std / math.sqrt(len(makespans)) if len(makespans) > 1 else 0.0
        return cls(
            mean=mean,
            std=std,
            sem=sem,
            num_runs=len(makespans),
            ci95_low=mean - _Z95 * sem,
            ci95_high=mean + _Z95 * sem,
            mean_failures=float(np.mean(np.asarray(num_failures, dtype=float))),
            mean_wasted=float(np.mean(np.asarray(wasted_times, dtype=float))),
        )


class MonteCarloEstimator:
    """Estimate the expected makespan of a schedule (or raw segments) by simulation.

    Parameters
    ----------
    target:
        Either a :class:`~repro.core.schedule.Schedule` or an explicit list of
        :class:`~repro.core.schedule.Segment` objects.
    failure_model:
        Anything accepted by
        :func:`repro.simulation.engine.failure_source_for`, or an explicit
        *list* of :class:`~repro.failures.traces.FailureTrace` objects.
        Stochastic sources are re-created per run from the estimator's RNG so
        runs are independent; a single trace is reset (every run replays the
        same trace -- pass a factory via ``failure_model_factory`` for
        independent random traces); with a trace list, run ``i`` replays
        trace ``i`` (``num_runs`` may not exceed the list length), which is
        how recorded failure logs are averaged over.
    downtime:
        Downtime ``D`` applied after each failure.
    failure_model_factory:
        Optional callable ``rng -> failure model`` used instead of
        ``failure_model`` to build an independent model per run (e.g. a fresh
        synthetic trace).
    """

    def __init__(
        self,
        target: Union[Schedule, Sequence[Segment]],
        failure_model: Union[float, FailureSource, object, None] = None,
        downtime: float = 0.0,
        *,
        failure_model_factory: Optional[Callable[[np.random.Generator], object]] = None,
    ) -> None:
        if isinstance(target, Schedule):
            self._segments = target.segments()
        else:
            self._segments = list(target)
            if not self._segments:
                raise ValueError("target must contain at least one segment")
        if failure_model is None and failure_model_factory is None:
            raise ValueError("provide failure_model or failure_model_factory")
        if isinstance(failure_model, (list, tuple)):
            # An explicit trace list: run i replays trace i.  Normalised to a
            # tuple so it is hashable by the cache's canonicalizer.
            traces = tuple(failure_model)
            if not traces or not all(isinstance(t, FailureTrace) for t in traces):
                raise TypeError(
                    "a sequence failure_model must be a non-empty list of "
                    "FailureTrace objects"
                )
            failure_model = traces
        self._failure_model = failure_model
        self._failure_model_factory = failure_model_factory
        self.downtime = check_non_negative("downtime", downtime)

    def run_once(
        self,
        rng: Optional[np.random.Generator] = None,
        *,
        seed: Optional[int] = None,
        record_log: bool = False,
        run_index: int = 0,
    ) -> SimulationResult:
        """Simulate a single run.

        ``run_index`` only matters for explicit trace-list models, where it
        selects which trace this run replays; every other model ignores it.
        """
        if rng is None:
            rng = np.random.default_rng(seed)
        model = (
            self._failure_model_factory(rng)
            if self._failure_model_factory is not None
            else self._failure_model
        )
        if isinstance(model, tuple):
            if not 0 <= run_index < len(model):
                raise IndexError(
                    f"run_index {run_index} out of range for a trace list of "
                    f"length {len(model)}"
                )
            model = model[run_index]
        source = failure_source_for(model, rng)
        source.reset()
        return simulate_segments(
            self._segments, source, self.downtime, rng=rng, record_log=record_log
        )

    def _vector_mode(self) -> Tuple[Optional[str], object]:
        """How the vectorized engine can treat this estimator's failure model.

        Returns ``("poisson", rate)`` for memoryless models (the exact array
        fast path), ``("renewal", platform)`` for non-memoryless renewal
        platforms (the statistical batch path), ``("trace", model)`` for
        explicit trace models (a single
        :class:`~repro.failures.traces.FailureTrace` or a tuple of them,
        replayed through
        :func:`~repro.simulation.vectorized.replay_traces_batch`), and
        ``(None, None)`` for models the vectorized engine cannot batch
        (ready-made sources, factories) -- those fall back to the scalar
        event loop and therefore produce results identical to
        ``engine="scalar"``.
        """
        if self._failure_model_factory is not None:
            return None, None
        model = self._failure_model
        if isinstance(model, bool):
            return None, None
        if isinstance(model, (int, float)):
            return "poisson", float(model)
        if isinstance(model, ExponentialFailure):
            return "poisson", model.rate
        if isinstance(model, Platform):
            if model.is_exponential:
                return "poisson", model.platform_rate()
            return "renewal", model
        if isinstance(model, FailureDistribution):
            return "renewal", Platform(num_processors=1, failure_law=model)
        if isinstance(model, (FailureTrace, tuple)):
            return "trace", model
        return None, None

    def estimate(
        self,
        num_runs: int,
        *,
        rng: Optional[np.random.Generator] = None,
        seed: Optional[int] = None,
        backend: Union[None, int, str, ExecutionBackend] = None,
        cache: Optional[ResultCache] = None,
        chunk_size: Optional[int] = None,
        engine: Optional[str] = None,
        progress: Optional[Callable[[int, int], None]] = None,
    ) -> MonteCarloEstimate:
        """Simulate ``num_runs`` independent runs and aggregate them.

        Without ``backend``/``cache``/``engine`` this is the classic serial
        path: one RNG stream consumed run after run (bit-identical to
        historical results).

        Any of those keywords selects the chunked deterministic sampler: the
        budget is cut into deterministic chunks with independent spawned RNG
        streams (:mod:`repro.runtime.chunking`), so the estimate is
        bit-identical for a given ``seed`` *whatever the backend or worker
        count*, and a warm :class:`~repro.runtime.cache.ResultCache` replays
        it without simulating.  This path requires ``seed=`` (not ``rng=``),
        because a live generator cannot be split reproducibly.

        ``engine`` selects how each chunk executes: ``"scalar"`` (the Python
        event loop, the default) or ``"vectorized"`` (the NumPy array
        program of :mod:`repro.simulation.vectorized`, which simulates the
        whole chunk at once -- jumping whole runs of successful segments per
        round on the memoryless fast path).  For memoryless failure models the two
        engines consume an engine-neutral delay plan and are **bit-identical**
        for the same ``(seed, chunk_size)`` -- they even share cache entries;
        for renewal laws (Weibull, log-normal) the vectorized engine batches
        its draws and is statistically equivalent instead; explicit trace
        models (a single trace or a trace list) replay through
        :func:`~repro.simulation.vectorized.replay_traces_batch` and agree
        with the scalar engine to ~1 ulp per segment.  ``engine=None``
        inherits the engine advertised by the backend (so passing a
        :class:`~repro.runtime.backends.VectorizedBackend` is enough).

        ``progress`` is an optional ``callback(done, total)`` reporting how
        many of the estimate's deterministic chunks have completed, with the
        same contract as :meth:`~repro.simulation.campaign.CampaignRunner.run`:
        it fires once with ``(0, total)`` before execution, then after every
        chunk (a cache hit reports ``(total, total)`` immediately), and
        exceptions it raises abort the estimation -- which is how the
        scenario service implements cooperative cancellation.  On the serial
        (non-chunked) path the whole run counts as a single chunk.
        """
        check_positive_int("num_runs", num_runs)
        if isinstance(self._failure_model, tuple) and num_runs > len(self._failure_model):
            raise ValueError(
                f"num_runs={num_runs} exceeds the explicit trace list "
                f"({len(self._failure_model)} traces); run i replays trace i"
            )
        if backend is None and cache is None and engine is None:
            if progress is not None:
                progress(0, 1)
            if rng is None:
                rng = np.random.default_rng(seed)
            results: List[SimulationResult] = []
            for index in range(num_runs):
                results.append(self.run_once(rng, run_index=index))
            estimate = MonteCarloEstimate.from_results(results)
            if progress is not None:
                progress(1, 1)
            return estimate
        return self._estimate_chunked(
            num_runs, rng=rng, seed=seed, backend=backend, cache=cache,
            chunk_size=chunk_size, engine=resolve_engine(engine, backend),
            progress=progress,
        )

    def _estimate_chunked(
        self,
        num_runs: int,
        *,
        rng: Optional[np.random.Generator],
        seed: Optional[int],
        backend: Union[None, int, str, ExecutionBackend],
        cache: Optional[ResultCache],
        chunk_size: Optional[int],
        engine: str = "scalar",
        progress: Optional[Callable[[int, int], None]] = None,
    ) -> MonteCarloEstimate:
        if rng is not None:
            raise ValueError(
                "the backend/cache execution path derives per-chunk RNG streams "
                "from a seed and cannot split a live generator; pass seed=... "
                "instead of rng=..."
            )
        plan = plan_chunks(num_runs, chunk_size)
        if progress is not None:
            progress(0, plan.num_chunks)
        store = None
        key = None
        if cache is not None:
            if seed is None:
                raise ValueError("caching requires an explicit seed (the key includes it)")
            if self._failure_model_factory is not None:
                raise ValueError(
                    "cannot cache estimates built from a failure_model_factory "
                    "(arbitrary callables have no stable content hash); pass a "
                    "failure model instead"
                )
            payload = {
                "kind": "monte_carlo_estimate",
                "segments": self._segments,
                "failure_model": self._failure_model,
                "downtime": self.downtime,
                "num_runs": num_runs,
                "seed": seed,
                "chunk_size": plan.chunk_size,
            }
            # The engine is part of the key only when it can change the
            # samples: on the memoryless fast path both engines consume the
            # same delay plan and share entries (a cache warmed by one engine
            # replays through the other); models the vectorized engine cannot
            # batch fall back to the scalar loop and share entries too.
            # Renewal batching reorders its draws and trace replay
            # re-associates its duration sums (~1 ulp), so those two modes
            # key per engine.
            if engine == "vectorized" and self._vector_mode()[0] in ("renewal", "trace"):
                payload["engine"] = "vectorized"
            store = cache.with_namespace("monte_carlo")
            key = store.key_for(payload)
            entry = store.get(key)
            if entry is not None:
                _, arrays = entry
                if progress is not None:
                    progress(plan.num_chunks, plan.num_chunks)
                return MonteCarloEstimate.from_samples(
                    arrays["makespans"], arrays["num_failures"], arrays["wasted_times"]
                )
        # Each task carries its chunk's replication offset so trace-list
        # models know which traces the chunk replays (run i = trace i), plus
        # a trace-context snapshot so chunk spans executed in pool workers
        # keep the submitting request's correlation id.  Neither rides into
        # the cache key (keys hash the payload dict above, never the task
        # tuple), so instrumentation cannot perturb replay.
        offsets = [0]
        for size in plan.sizes[:-1]:
            offsets.append(offsets[-1] + size)
        obs_context = _tracing.context_snapshot()
        tasks = [
            (self, chunk_seed, size, engine, offset, obs_context)
            for chunk_seed, size, offset in zip(plan.seeds(seed), plan.sizes, offsets)
        ]
        with backend_scope(backend) as executor:
            if progress is None:
                chunks = executor.map(_estimate_chunk, tasks)
            else:
                chunks = []
                for chunk in executor.imap(_estimate_chunk, tasks):
                    chunks.append(chunk)
                    progress(len(chunks), plan.num_chunks)
        # Chunk spans recorded in pool workers ride back as the 4th element;
        # folding them in here (while the job's trace is still open) is what
        # puts worker chunks into the persisted per-job trace tree.
        for chunk in chunks:
            _tracing.absorb_spans(chunk[3])
        makespans = np.concatenate([c[0] for c in chunks])
        num_failures = np.concatenate([c[1] for c in chunks])
        wasted_times = np.concatenate([c[2] for c in chunks])
        estimate = MonteCarloEstimate.from_samples(makespans, num_failures, wasted_times)
        if store is not None and key is not None:
            store.put(
                key,
                {"kind": "monte_carlo_estimate", "num_runs": num_runs, "seed": seed,
                 "chunk_size": plan.chunk_size, "mean": estimate.mean},
                {"makespans": makespans, "num_failures": num_failures,
                 "wasted_times": wasted_times},
            )
        return estimate


def _estimate_chunk(
    args: Tuple[
        "MonteCarloEstimator", np.random.SeedSequence, int, str, int,
        Optional[Dict[str, Any]],
    ],
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, List[Dict[str, Any]]]:
    """Simulate one chunk of replications (runs in a worker process).

    Module-level so process pools can pickle it; the estimator itself travels
    with the task (its segments, failure model and factory must therefore be
    picklable -- lambdas as ``failure_model_factory`` only work serially).
    The trailing ``obs`` element is the submitting context's trace snapshot
    (or None): the chunk's span and metrics carry the originating request's
    correlation id even when executing in another thread or process, and the
    span records it produces ride back as the result's 4th element (empty when
    the chunk ran inside the originating trace's own context).  The sample
    arrays are untouched by instrumentation, so bit-identity is preserved.
    """
    estimator, chunk_seed, count, engine, offset, obs = args
    start = time.perf_counter()
    with _tracing.shipping_trace(obs) as shipped:
        with _tracing.span("mc.chunk", engine=engine, runs=count, offset=offset):
            samples = _estimate_chunk_samples(estimator, chunk_seed, count, engine, offset)
    observe_chunk("monte_carlo", engine, count, time.perf_counter() - start)
    return samples + (shipped,)


def _estimate_chunk_samples(
    estimator: "MonteCarloEstimator",
    chunk_seed: np.random.SeedSequence,
    count: int,
    engine: str,
    offset: int,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """The actual chunk simulation (see :func:`_estimate_chunk`).

    For memoryless failure models, both engines draw their attempt delays
    from one engine-neutral :class:`PlannedExponentialDelays` built from the
    chunk's RNG stream: the scalar engine reads it replication by replication
    through the event loop, the vectorized engine in windowed jumps over each
    replication's delay row (falling back to lock-step rounds when failures
    are dense), and the two are bit-identical by construction.  Renewal
    models batch their draws on the vectorized engine (statistically
    equivalent); explicit trace models replay deterministically through
    :func:`replay_traces_batch` (matching the scalar event loop to ~1 ulp);
    models the vectorized engine cannot batch always take the scalar loop.
    """
    rng = np.random.default_rng(chunk_seed)
    mode, resolved = estimator._vector_mode()
    segments = estimator._segments
    if engine == "vectorized" and mode == "trace":
        if isinstance(resolved, FailureTrace):
            # A single trace: every replication replays it, so one replay
            # row is broadcast across the chunk.
            times = pack_trace_times([resolved])
            makespans, fails = replay_traces_batch(
                [segments], times, estimator.downtime, with_failures=True
            )
            chunk_makespans = np.full(count, makespans[0, 0])
            chunk_failures = np.full(count, float(fails[0, 0]))
        else:
            times = pack_trace_times(resolved[offset : offset + count])
            makespans, fails = replay_traces_batch(
                [segments], times, estimator.downtime, with_failures=True
            )
            chunk_makespans = makespans[0]
            chunk_failures = fails[0].astype(float)
        # A completed replay commits every segment exactly once, so the
        # useful time is the failure-free total and the rest is waste --
        # the identity the scalar executor maintains incrementally.
        useful = sum(s.work + s.checkpoint_cost for s in segments)
        return chunk_makespans, chunk_failures, chunk_makespans - useful
    if mode == "poisson":
        plan = PlannedExponentialDelays(
            rng, 1.0 / resolved, count, first_rounds=len(segments) + 4
        )
        if engine == "vectorized":
            batch = simulate_poisson_batch(
                segments, resolved, estimator.downtime, rng, count, plan=plan
            )
            return batch.makespans, batch.num_failures, batch.wasted_times
        makespans = np.empty(count, dtype=float)
        num_failures = np.empty(count, dtype=float)
        wasted_times = np.empty(count, dtype=float)
        for index in range(count):
            source = PlannedPoissonSource(plan, index)
            result = simulate_segments(
                segments, source, estimator.downtime, rng=rng
            )
            makespans[index] = result.makespan
            num_failures[index] = result.num_failures
            wasted_times[index] = result.wasted_time
        return makespans, num_failures, wasted_times
    if engine == "vectorized" and mode == "renewal":
        batch = simulate_renewal_batch(
            segments, resolved, estimator.downtime, rng, count
        )
        return batch.makespans, batch.num_failures, batch.wasted_times
    makespans = np.empty(count, dtype=float)
    num_failures = np.empty(count, dtype=float)
    wasted_times = np.empty(count, dtype=float)
    for index in range(count):
        result = estimator.run_once(rng, run_index=offset + index)
        makespans[index] = result.makespan
        num_failures[index] = result.num_failures
        wasted_times[index] = result.wasted_time
    return makespans, num_failures, wasted_times


def estimate_expected_completion_time(
    work: float,
    checkpoint: float,
    downtime: float,
    recovery: float,
    rate: float,
    *,
    num_runs: int = 10_000,
    rng: Optional[np.random.Generator] = None,
    seed: Optional[int] = None,
    backend: Union[None, int, str, ExecutionBackend] = None,
    cache: Optional[ResultCache] = None,
    chunk_size: Optional[int] = None,
    engine: Optional[str] = None,
    progress: Optional[Callable[[int, int], None]] = None,
) -> MonteCarloEstimate:
    """Monte-Carlo estimate of ``E[T(W, C, D, R, lambda)]`` (experiment E1).

    Simulates the exact scenario of Proposition 1 -- one work segment of
    duration ``work`` followed by a checkpoint of duration ``checkpoint``,
    under Poisson failures of rate ``rate`` with downtime ``downtime`` and
    recovery ``recovery`` -- and averages the completion times.  The estimate
    should agree with
    :func:`repro.core.expected_time.expected_completion_time` to within
    sampling error; the property-based tests and experiment E1 assert this.
    """
    check_non_negative("work", work)
    check_non_negative("checkpoint", checkpoint)
    check_non_negative("downtime", downtime)
    check_non_negative("recovery", recovery)
    check_positive("rate", rate)
    segment = Segment(
        tasks=("single",),
        work=work,
        checkpoint_cost=checkpoint,
        recovery_cost=recovery,
        checkpointed=checkpoint > 0.0,
    )
    estimator = MonteCarloEstimator([segment], rate, downtime)
    return estimator.estimate(
        num_runs, rng=rng, seed=seed, backend=backend, cache=cache,
        chunk_size=chunk_size, engine=engine, progress=progress,
    )
