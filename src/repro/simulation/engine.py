"""Failure sources: where the simulator gets its failure times from.

The executor (:mod:`repro.simulation.executor`) is agnostic to how failures
are produced; it only asks a :class:`FailureSource` for the delay until the
next platform failure, given the current simulation time.  Three sources are
provided:

* :class:`PoissonFailureSource` -- the paper's core model: platform failures
  form a Poisson process of rate ``lambda``.  Thanks to memorylessness the
  delay to the next failure is simply an Exponential draw, whatever happened
  before.
* :class:`RenewalPlatformFailureSource` -- the superposition of ``p``
  independent per-processor renewal processes with an arbitrary law (Weibull,
  log-normal).  This is the model of Section 6's third extension; each
  processor keeps its own age, and only the processor that failed is renewed
  (the paper criticises the "rejuvenate everybody" assumption of [12], which
  can be reproduced by passing ``rejuvenate_all_on_failure=True``).
* :class:`TraceFailureSource` -- deterministic replay of a
  :class:`~repro.failures.traces.FailureTrace` (synthetic stand-in for the
  Failure Trace Archive logs the paper's companion work uses).
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from typing import List, Optional, Union

import numpy as np

from repro._validation import check_positive
from repro.failures.distributions import ExponentialFailure, FailureDistribution
from repro.failures.platform import Platform
from repro.failures.traces import FailureTrace

__all__ = [
    "FailureSource",
    "PoissonFailureSource",
    "RenewalPlatformFailureSource",
    "TraceFailureSource",
    "failure_source_for",
]


class FailureSource(ABC):
    """Produces the delay until the next platform failure.

    The executor calls :meth:`time_to_next_failure` with the current absolute
    time whenever it starts (or restarts) a work/checkpoint/recovery attempt,
    and calls :meth:`register_failure` when a failure has struck so the source
    can update its internal state (renew the failed processor, advance the
    trace cursor, ...).
    """

    @abstractmethod
    def time_to_next_failure(self, now: float) -> float:
        """Delay (>= 0, possibly ``inf``) until the next failure after time ``now``."""

    @abstractmethod
    def register_failure(self, time: float) -> None:
        """Inform the source that the failure it announced has struck at ``time``."""

    def reset(self) -> None:
        """Reset mutable state so the source can be reused for a fresh run."""


class PoissonFailureSource(FailureSource):
    """Platform failures as a Poisson process of rate ``rate`` (the paper's model).

    Memorylessness makes the implementation trivial: the delay to the next
    failure is always a fresh Exponential draw, and no state needs updating
    when a failure strikes.
    """

    def __init__(
        self,
        rate: float,
        rng: Optional[np.random.Generator] = None,
        *,
        seed: Optional[Union[int, np.random.SeedSequence]] = None,
    ) -> None:
        self.rate = check_positive("rate", rate)
        # The RNG is threaded, never created ad hoc: pass the caller's
        # generator, or a seed to derive one (seed=None keeps the historical
        # fresh-entropy behaviour, but as an explicit caller choice).
        self._rng = rng if rng is not None else np.random.default_rng(seed)
        self._pending: Optional[float] = None

    def time_to_next_failure(self, now: float) -> float:
        # A fresh draw per query is correct for a Poisson process *because*
        # the executor only queries at the start of an attempt and the
        # remaining time to the next event is Exponential regardless of the
        # elapsed time (memorylessness).  (The chunked/vectorized execution
        # paths use repro.simulation.vectorized.PlannedPoissonSource instead,
        # which reads the same one-draw-per-attempt pattern from an
        # engine-neutral delay plan so the scalar event loop and the
        # segment-jumping batch kernel stay bit-identical.)
        return float(self._rng.exponential(1.0 / self.rate))

    def register_failure(self, time: float) -> None:
        # Nothing to update: the process is memoryless.
        return

    def reset(self) -> None:
        return


class RenewalPlatformFailureSource(FailureSource):
    """Superposition of per-processor renewal processes with an arbitrary law.

    Each of the ``p`` processors has an absolute next-failure time; the
    platform's next failure is the minimum of them.  When a failure strikes,
    only the failed processor is renewed (its next failure is redrawn from
    the failure time), unless ``rejuvenate_all_on_failure`` is set, in which
    case every processor restarts its clock -- the assumption of [12] the
    paper argues against, kept for comparison experiments.  The default
    (``None``) inherits the platform's own ``rejuvenate_all_on_failure``
    field; an explicit bool overrides it.
    """

    def __init__(
        self,
        platform: Platform,
        rng: Optional[np.random.Generator] = None,
        *,
        rejuvenate_all_on_failure: Optional[bool] = None,
        seed: Optional[Union[int, np.random.SeedSequence]] = None,
    ) -> None:
        self.platform = platform
        if rejuvenate_all_on_failure is None:
            rejuvenate_all_on_failure = platform.rejuvenate_all_on_failure
        self.rejuvenate_all_on_failure = rejuvenate_all_on_failure
        # Threaded RNG, same contract as PoissonFailureSource: an explicit
        # generator wins, otherwise one is derived from the explicit seed.
        self._rng = rng if rng is not None else np.random.default_rng(seed)
        self._next_failures: List[float] = []
        self.reset()

    def reset(self) -> None:
        law = self.platform.failure_law
        self._next_failures = [
            float(law.sample(self._rng)) for _ in range(self.platform.num_processors)
        ]

    def time_to_next_failure(self, now: float) -> float:
        # Processors whose scheduled failure is already in the past (it fell
        # inside a downtime window, during which the paper says failures do
        # not occur) are renewed from their scheduled time until they point to
        # the future.
        law = self.platform.failure_law
        for index, t in enumerate(self._next_failures):
            while self._next_failures[index] <= now:
                self._next_failures[index] += float(law.sample(self._rng))
        return min(self._next_failures) - now

    def register_failure(self, time: float) -> None:
        law = self.platform.failure_law
        if self.rejuvenate_all_on_failure:
            self._next_failures = [
                time + float(law.sample(self._rng)) for _ in self._next_failures
            ]
            return
        failed = min(range(len(self._next_failures)), key=lambda i: self._next_failures[i])
        self._next_failures[failed] = time + float(law.sample(self._rng))


class TraceFailureSource(FailureSource):
    """Deterministic replay of a recorded (or synthetic) failure trace.

    Once the trace is exhausted, no further failure ever strikes
    (``time_to_next_failure`` returns ``inf``); experiments should use traces
    whose horizon comfortably exceeds the expected makespan.
    """

    def __init__(self, trace: FailureTrace) -> None:
        self.trace = trace
        self._times = list(trace.times)
        self._cursor = 0

    def reset(self) -> None:
        self._cursor = 0

    def time_to_next_failure(self, now: float) -> float:
        while self._cursor < len(self._times) and self._times[self._cursor] <= now:
            self._cursor += 1
        if self._cursor >= len(self._times):
            return math.inf
        return self._times[self._cursor] - now

    def register_failure(self, time: float) -> None:
        while self._cursor < len(self._times) and self._times[self._cursor] <= time:
            self._cursor += 1


def failure_source_for(
    model: Union[float, FailureDistribution, Platform, FailureTrace, FailureSource],
    rng: Optional[np.random.Generator] = None,
) -> FailureSource:
    """Build the appropriate :class:`FailureSource` for a variety of model inputs.

    Accepted inputs:

    * a plain ``float`` -- interpreted as a platform failure rate ``lambda``
      (Poisson process);
    * an :class:`ExponentialFailure` -- Poisson process with that rate;
    * any other :class:`FailureDistribution` -- single-processor renewal
      process with that law;
    * a :class:`Platform` -- superposition of its per-processor laws (Poisson
      source when the law is Exponential, renewal source otherwise);
    * a :class:`FailureTrace` -- deterministic replay;
    * an existing :class:`FailureSource` -- returned unchanged.
    """
    if isinstance(model, FailureSource):
        return model
    if isinstance(model, (int, float)) and not isinstance(model, bool):
        return PoissonFailureSource(float(model), rng)
    if isinstance(model, ExponentialFailure):
        return PoissonFailureSource(model.rate, rng)
    if isinstance(model, FailureDistribution):
        platform = Platform(num_processors=1, failure_law=model)
        return RenewalPlatformFailureSource(platform, rng)
    if isinstance(model, Platform):
        if model.is_exponential:
            return PoissonFailureSource(model.platform_rate(), rng)
        return RenewalPlatformFailureSource(model, rng)
    if isinstance(model, FailureTrace):
        return TraceFailureSource(model)
    raise TypeError(
        "cannot build a failure source from "
        f"{type(model).__name__}; pass a rate, a distribution, a Platform, a "
        "FailureTrace or a FailureSource"
    )
