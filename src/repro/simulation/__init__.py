"""Discrete-event simulation of checkpointed executions under failures.

The simulator is deliberately independent of the analytic formulas of
:mod:`repro.core.expected_time`: it replays sampled (or traced) failure times
against a schedule, applying the paper's execution model -- work, checkpoint,
failure, downtime, recovery, rollback -- event by event.  Averaging many runs
therefore provides an unbiased estimate of the expected makespan, which is how
Proposition 1 and the schedulers are validated (experiments E1, E6, E8).
"""

from repro.simulation.engine import (
    FailureSource,
    PoissonFailureSource,
    RenewalPlatformFailureSource,
    TraceFailureSource,
    failure_source_for,
)
from repro.simulation.events import EventType, ExecutionLog, SimulationEvent
from repro.simulation.executor import SimulationResult, simulate_schedule, simulate_segments
from repro.simulation.monte_carlo import (
    MonteCarloEstimate,
    MonteCarloEstimator,
    estimate_expected_completion_time,
)
from repro.simulation.campaign import CampaignResult, CampaignRunner
from repro.simulation.vectorized import (
    BatchSimulationResult,
    PlannedExponentialDelays,
    PlannedPoissonSource,
    generate_trace_times_batch,
    replay_traces_batch,
    simulate_poisson_batch,
    simulate_renewal_batch,
)

__all__ = [
    "FailureSource",
    "PoissonFailureSource",
    "RenewalPlatformFailureSource",
    "TraceFailureSource",
    "failure_source_for",
    "EventType",
    "SimulationEvent",
    "ExecutionLog",
    "SimulationResult",
    "simulate_schedule",
    "simulate_segments",
    "MonteCarloEstimate",
    "MonteCarloEstimator",
    "estimate_expected_completion_time",
    "CampaignResult",
    "CampaignRunner",
    "BatchSimulationResult",
    "PlannedExponentialDelays",
    "PlannedPoissonSource",
    "generate_trace_times_batch",
    "replay_traces_batch",
    "simulate_poisson_batch",
    "simulate_renewal_batch",
]
