"""Vectorized batch simulation: whole replication batches as NumPy array programs.

The scalar executor (:mod:`repro.simulation.executor`) replays one execution
at a time through a Python event loop -- perfectly general, but every segment
attempt costs a handful of interpreter dispatches.  Monte-Carlo estimation and
paired campaigns run thousands of *independent* replications of the *same*
schedule, so the per-replication control flow can instead be advanced in
lock-step across the whole batch: one NumPy operation per state transition
covers every replication simultaneously, with boolean masks separating the
replications that failed, are recovering, or have finished.

Three batch engines live here:

* :func:`simulate_poisson_batch` -- the exact fast path for the paper's core
  model (Poisson platform failures).  Thanks to memorylessness, every segment
  or recovery attempt consumes exactly one Exponential draw, so the batch can
  be driven by a shared *delay plan* (:class:`PlannedExponentialDelays`): a
  deterministic schedule of ``(round, replication)`` draw matrices from one
  RNG stream.  The scalar engine consumes the very same plan through
  :class:`PlannedPoissonSource`, which makes the two engines **bit-identical**
  for a given seed -- the strongest possible cross-validation of the array
  program against the event loop.  Since the delay plan pins down *which*
  draw every attempt reads, the batch loop is free to advance each
  replication by whole *runs* of successful attempts per round (windowed
  comparisons against the upcoming draws, `cumsum` prefix sums seeded with
  each replication's clock for the bit-exact sequential additions) instead
  of one attempt per lock-step round -- rounds scale with the failure count,
  not the segment count.  The historical one-attempt-per-round kernel is
  kept as :func:`simulate_poisson_batch_lockstep` (reference implementation
  and benchmark baseline); the two are bit-identical by construction.
* :func:`simulate_renewal_batch` -- the non-memoryless laws (Weibull,
  log-normal renewal processes of Section 6).  Per-processor next-failure
  times are carried as a ``(replications, processors)`` matrix and renewed
  with batched draws (including :meth:`FailureDistribution.sample_residual_batch`
  when replications start from aged processors).  Draw *order* is
  data-dependent here, so this path is statistically -- not bit-wise --
  equivalent to the scalar engine (pinned by KS tests).
* :func:`generate_trace_times_batch` + :func:`replay_traces_batch` -- the
  campaign path: batched synthetic trace generation (cumulative sums of
  batched inter-arrival draws) and a vectorized trace replay that executes
  *every strategy against every shared trace* in one stacked lock-step loop,
  advancing one failure per round via prefix-sum segment jumps.  Replay of a
  given trace is deterministic and agrees with the scalar executor to
  floating-point rounding (~1 ulp per segment; the jumps re-associate the
  duration additions).
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple, Union

import numpy as np

from repro._validation import check_non_negative, check_positive, check_positive_int
from repro.core.schedule import Segment
from repro.failures.distributions import FailureDistribution
from repro.failures.platform import Platform
from repro.simulation.engine import FailureSource
from repro.simulation.executor import _MAX_FAILURES_PER_RUN

__all__ = [
    "BatchSimulationResult",
    "PlannedExponentialDelays",
    "PlannedPoissonSource",
    "simulate_poisson_batch",
    "simulate_poisson_batch_lockstep",
    "simulate_renewal_batch",
    "generate_trace_times_batch",
    "pack_trace_times",
    "replay_traces_batch",
]

#: Hard cap on the total number of trace events a batched generation may hold
#: in memory at once (the batch analogue of ``generate_trace``'s 5e6 cap).
_MAX_BATCH_EVENTS = 50_000_000


class BatchSimulationResult:
    """Per-replication sample arrays produced by a batch engine.

    The batch analogue of a list of
    :class:`~repro.simulation.executor.SimulationResult`: one entry per
    replication, column-oriented so the Monte-Carlo aggregation can consume
    the arrays without any conversion.
    """

    __slots__ = ("makespans", "num_failures", "wasted_times", "useful_times",
                 "recovery_attempts")

    def __init__(
        self,
        makespans: np.ndarray,
        num_failures: np.ndarray,
        wasted_times: np.ndarray,
        useful_times: np.ndarray,
        recovery_attempts: np.ndarray,
    ) -> None:
        self.makespans = makespans
        self.num_failures = num_failures
        self.wasted_times = wasted_times
        self.useful_times = useful_times
        self.recovery_attempts = recovery_attempts

    def __len__(self) -> int:
        return len(self.makespans)


class PlannedExponentialDelays:
    """Deterministic, engine-neutral schedule of Exponential attempt delays.

    On the memoryless fast path every segment or recovery attempt consumes
    exactly one Exponential draw, whichever engine executes it.  This class
    pins down *which* draw: the ``j``-th attempt of replication ``i`` always
    reads entry ``(j, i)`` of a conceptually infinite ``(rounds, count)``
    matrix filled row-major from a single generator's variate stream.  NumPy
    generators emit that stream identically however the draw calls are
    shaped or batched (an ``(r, c)`` draw is the next ``r*c`` variates in
    C order), so the value behind any entry is a pure function of ``(rng
    state, count, j, i)`` -- independent of *when* rounds are materialised
    and of which engine asks first.  The scalar engine (which reads entries
    replication by replication) and the vectorized engine (which reads them
    in windows along a replication's row cursor) therefore see *exactly*
    the same numbers and produce bit-identical executions.

    ``first_rounds`` sizes the initial draw; further rounds are drawn on
    demand with a 25% geometric headroom so incremental consumers (the
    scalar event loop asks round by round) amortise the draw-call overhead
    without the engines over-drawing much past what the dynamics consume.
    """

    def __init__(
        self,
        rng: np.random.Generator,
        scale: float,
        count: int,
        *,
        first_rounds: int = 8,
    ) -> None:
        check_positive("scale", scale)
        check_positive_int("count", count)
        self._rng = rng
        self._scale = scale
        self._count = count
        self._first_rounds = max(int(first_rounds), 1)
        self._data = np.empty((0, count))
        self._rounds = 0

    @property
    def rounds_drawn(self) -> int:
        """Number of rounds materialised so far (for tests/diagnostics)."""
        return self._rounds

    def rows(self, num_rounds: int) -> np.ndarray:
        """A flat ``(rounds, count)`` view covering at least ``num_rounds`` rounds.

        Entry ``(j, i)`` is the ``j``-th attempt delay of replication ``i``
        -- the same number :meth:`delay` returns, laid out for the batched
        window gathers of the segment-jumping kernel.  The returned array is
        a zero-copy view of the plan's storage.
        """
        self._ensure(max(num_rounds, 1) - 1)
        return self._data[: self._rounds]

    def _ensure(self, round_index: int) -> None:
        needed = round_index + 1
        if needed <= self._rounds:
            return
        target = max(needed, self._first_rounds, self._rounds + self._rounds // 4)
        if target > self._data.shape[0]:
            capacity = max(target, 2 * self._data.shape[0])
            grown = np.empty((capacity, self._count))
            grown[: self._rounds] = self._data[: self._rounds]
            self._data = grown
        self._data[self._rounds : target] = self._rng.exponential(
            self._scale, size=(target - self._rounds, self._count)
        )
        self._rounds = target

    def round_delays(self, round_index: int) -> np.ndarray:
        """The delay of every replication's ``round_index``-th attempt."""
        self._ensure(round_index)
        return self._data[round_index]

    def delay(self, replication: int, round_index: int) -> float:
        """The ``round_index``-th attempt delay of one replication (scalar view)."""
        self._ensure(round_index)
        return float(self._data[round_index, replication])


class PlannedPoissonSource(FailureSource):
    """Scalar :class:`FailureSource` view of one replication of a delay plan.

    Handing this source to :func:`~repro.simulation.executor.simulate_segments`
    runs the classic Python event loop on exactly the draws the vectorized
    engine assigns to the same replication -- the scalar half of the
    bit-identical contract between the two engines.
    """

    def __init__(self, plan: PlannedExponentialDelays, replication: int) -> None:
        self._plan = plan
        self._replication = replication
        self._next_round = 0

    def time_to_next_failure(self, now: float) -> float:
        value = self._plan.delay(self._replication, self._next_round)
        self._next_round += 1
        return value

    def register_failure(self, time: float) -> None:
        return

    def reset(self) -> None:
        self._next_round = 0


def _segment_durations(segments: Sequence[Segment]) -> Tuple[np.ndarray, np.ndarray]:
    """Per-segment (work + checkpoint, recovery) durations as float arrays.

    The sums are computed exactly as the scalar executor computes them
    (``segment.work + segment.checkpoint_cost``), which matters for the
    bit-identical contract.
    """
    if not segments:
        raise ValueError("segments must not be empty")
    attempt = np.array([s.work + s.checkpoint_cost for s in segments], dtype=float)
    recovery = np.array([s.recovery_cost for s in segments], dtype=float)
    return attempt, recovery


#: Cap on the number of window entries (rows x offsets) a single jump round
#: may gather at once; bounds the kernel's transient memory to a few matrices
#: of this many doubles (~16 MB each) however long the chain is.
_MAX_WINDOW_ELEMENTS = 1 << 21

#: Typical run of consecutive segment completions between failures
#: (``num_segments / (expected_failures + 1)``) below which
#: :func:`simulate_poisson_batch` automatically delegates to the lock-step
#: kernel: when a window jumps only a handful of segments, its gathers and
#: per-row prefix sums cost more than lock-step's one-attempt rounds.  The
#: crossover was measured at roughly 4 segments per run across chain lengths
#: 8..4096 (see docs/performance.md); the fused veteran round keeps the jump
#: kernel ahead everywhere above it -- in particular through the whole
#: moderate-failure regime (1-3 failures per replication), which the
#: pre-fusion kernel delegated to lock-step via an expected-failures cap.
_JUMP_MIN_RUN_SEGMENTS = 4.0


def _auto_window(num_segments: int, expected_failures: float) -> int:
    """Jump-window cap derived from the expected failures per replication.

    ``num_segments / (expected_failures + 1)`` is the typical run of
    consecutive segment completions between failures across one replication;
    the floor keeps tiny windows from degenerating into lock-step rounds and
    the ceiling bounds the sliding-window views (the per-round gather is
    additionally capped by ``_MAX_WINDOW_ELEMENTS``).
    """
    span = num_segments / (expected_failures + 1.0) + 1.0
    return int(min(max(span, 8.0), 65536.0))


def simulate_poisson_batch(
    segments: Sequence[Segment],
    rate: float,
    downtime: float,
    rng: np.random.Generator,
    count: int,
    *,
    plan: Optional[PlannedExponentialDelays] = None,
    window: Optional[int] = None,
    method: Optional[str] = None,
) -> BatchSimulationResult:
    """Simulate ``count`` replications under Poisson failures as one array program.

    The exact fast path: bit-identical to running the scalar executor on the
    same :class:`PlannedExponentialDelays` (which is what
    ``MonteCarloEstimator.estimate(engine="scalar")`` does on the chunked
    execution path), because both engines read the same draws and apply the
    same floating-point operations in the same per-replication order.

    Unlike :func:`simulate_poisson_batch_lockstep` (the historical reference
    kernel, one attempt per round for every replication), this kernel *jumps*
    over whole runs of successful segment attempts per round: the upcoming
    draws of every replication are compared against the durations of its
    upcoming segments in one windowed array operation, and the clock advance
    over the jumped segments is a ``cumsum`` prefix sum seeded with the
    replication's current clock -- a strict left-to-right fold, hence the
    *same* sequence of floating-point additions the scalar event loop
    performs.  Rounds therefore scale with the number of failures, not the
    number of segments: a thousand-segment chain with rare failures completes
    in a handful of rounds instead of a thousand lock-step rounds.

    The veteran rounds are *fused*: a recovery-resolution pre-pass settles
    every pending recovery with one gathered draw, after which a single
    shared threshold window drives one masked pass combining the
    failure-position compare, the segment advance and the rework
    accumulation.  Only batches whose typical failure-to-failure run is
    shorter than ``_JUMP_MIN_RUN_SEGMENTS`` segments (very dense failures on
    short chains) are delegated to the lock-step kernel, where windows would
    mostly be waste; both kernels are bit-identical on every input, so the
    dispatch is purely a performance decision.

    Parameters
    ----------
    segments:
        Segment decomposition of the schedule under test.
    rate:
        Platform failure rate ``lambda`` of the Poisson process.
    downtime:
        Downtime ``D`` after each failure (failures never strike during it).
    rng:
        Generator the delay plan draws from (ignored when ``plan`` is given).
    count:
        Number of replications.
    plan:
        Pre-built delay plan (mainly for tests that drive both engines off
        one plan); by default a fresh plan is built from ``rng``.
    window:
        Cap on how many segments a single round may jump (default:
        auto-selected from the plan's expected failures per replication --
        about one failure-to-failure run of segments -- subject to a memory
        cap).  A replication that exhausts its window without failing simply
        continues jumping next round -- the addition chain is split, not
        re-associated, so results are bit-identical for every window.
        Exposed for tests; implies ``method="jump"``.
    method:
        ``None`` (the default) picks the kernel by the typical
        failure-to-failure run length; ``"jump"`` or ``"lockstep"`` force
        one.  Results are bit-identical either way.
    """
    if method not in (None, "jump", "lockstep"):
        raise ValueError(
            f"unknown method {method!r}; expected None, 'jump' or 'lockstep'"
        )
    check_positive("rate", rate)
    check_non_negative("downtime", downtime)
    check_positive_int("count", count)
    attempt_dur, recovery_dur = _segment_durations(segments)
    if plan is None:
        plan = PlannedExponentialDelays(
            rng, 1.0 / rate, count, first_rounds=len(segments) + 4
        )

    num_segments = len(attempt_dur)
    # Exact left-to-right prefix sums of the attempt durations: ``prefix[k]``
    # is the clock (and the committed useful time) of a replication that has
    # completed segments 0..k-1 without ever failing, evaluated with the
    # same addition chain as the scalar loop (np.cumsum is a sequential
    # fold, and the scalar clock starts at 0.0).
    prefix = np.empty(num_segments + 1)
    prefix[0] = 0.0
    np.cumsum(attempt_dur, out=prefix[1:])
    useful_total = float(prefix[num_segments])

    # Expected failures per replication over this plan's segment durations
    # (exact per-segment sum, not a mean-attempt approximation): the quantity
    # that decides both the kernel dispatch and the jump window below.
    expected_failures = float(np.sum(-np.expm1(-rate * attempt_dur)))
    if method == "lockstep" or (
        method is None
        and window is None
        and num_segments / (expected_failures + 1.0) < _JUMP_MIN_RUN_SEGMENTS
    ):
        return simulate_poisson_batch_lockstep(
            segments, rate, downtime, rng, count, plan=plan
        )
    # Window auto-selection from the expected failures per replication: a
    # replication that fails ``ef`` times completes about ``n / (ef + 1)``
    # segments between consecutive failures, so windows beyond that are
    # mostly wasted gathers for the veteran rows (the ROADMAP's
    # moderate-failure-regime note), while shorter ones needlessly split the
    # virgin sweep.  Correctness is window-independent: a row that exhausts
    # its window without failing simply continues next round (the addition
    # chain is split, never re-associated).
    span_cap = _auto_window(num_segments, expected_failures)
    if window is not None:
        span_cap = max(int(window), 1)

    makespans = np.empty(count)
    out_wasted = np.empty(count)
    out_fails = np.zeros(count, dtype=np.int64)
    out_rec = np.zeros(count, dtype=np.int64)

    # Replications that have never failed all share the exact same state --
    # segment v_seg, plan cursor v_cursor, clock prefix[v_seg], zero waste --
    # so the pool advances through one shared window comparison per sweep
    # with no per-row clock arithmetic at all.
    virgin = np.arange(count, dtype=np.int64)
    v_seg = 0
    v_cursor = 0

    # Compressed per-row state of the "veterans" (rows that failed at least
    # once); finished rows are squeezed out, their samples scattered to the
    # output arrays via ``out_index``, which doubles as each row's plan
    # column (the original replication index).
    empty_i = np.empty(0, dtype=np.int64)
    now = np.empty(0)
    wasted = np.empty(0)
    fails = empty_i
    rec_att = empty_i
    seg = empty_i
    cursor = empty_i
    recovering = np.empty(0, dtype=bool)
    out_index = empty_i

    round_index = 0
    while virgin.size or now.size:
        # --- Virgin sweep: one contiguous window comparison advances every
        # never-failed replication at once.
        if virgin.size:
            rem_v = num_segments - v_seg
            span = min(rem_v, span_cap, max(_MAX_WINDOW_ELEMENTS // virgin.size, 1))
            flat = plan.rows(v_cursor + span)
            if virgin.size == count:
                # The whole batch is still virgin (typically the first
                # sweep, the bulk of the work): the window is a zero-copy
                # slice of the plan.
                block = flat[v_cursor : v_cursor + span]
            else:
                block = flat[v_cursor : v_cursor + span, virgin]
            fail_win = block < attempt_dur[v_seg : v_seg + span, None]
            # argmax doubles as the any-reduction: a column with no failure
            # reports offset 0, where fail_win is False.
            offsets_all = fail_win.argmax(axis=0)
            has_fail = fail_win[offsets_all, np.arange(virgin.size)]
            if has_fail.any():
                offsets = offsets_all[has_fail]
                hit = virgin[has_fail]
                lost = block[offsets, np.flatnonzero(has_fail)]
                seg_hit = v_seg + offsets
                # The scalar loop's additions, in its order: the clock was
                # exactly prefix[seg_hit] and the wasted time exactly 0.0
                # when the failure struck.
                now_hit = prefix[seg_hit] + lost
                now_hit += downtime
                wasted_hit = lost + downtime
                now = np.concatenate([now, now_hit])
                wasted = np.concatenate([wasted, wasted_hit])
                fails = np.concatenate([fails, np.ones(hit.size, dtype=np.int64)])
                rec_att = np.concatenate([rec_att, np.zeros(hit.size, dtype=np.int64)])
                seg = np.concatenate([seg, seg_hit])
                cursor = np.concatenate([cursor, v_cursor + offsets + 1])
                recovering = np.concatenate([recovering, np.ones(hit.size, dtype=bool)])
                out_index = np.concatenate([out_index, hit])
                virgin = virgin[~has_fail]
            if virgin.size:
                if span == rem_v:
                    # The surviving pool completes the whole chain: its
                    # makespan is the shared failure-free prefix total and
                    # nothing was ever wasted.
                    makespans[virgin] = prefix[num_segments]
                    out_wasted[virgin] = 0.0
                    virgin = empty_i
                else:
                    v_seg += span
                    v_cursor += span

        # --- Veteran round, fused compare+advance: a cheap recovery
        # resolution pre-pass first settles every pending recovery (one
        # gathered draw against the recovery cost), after which *every*
        # surviving row is mid-chain with no recovery owed -- so the segment
        # sweep needs just one shared threshold gather and one masked pass
        # that fuses the failure-position compare, the segment advance and
        # the rework accumulation.  Splitting the recovery out of the window
        # changes only the round boundaries, never a row's sequence of
        # (threshold, draw) comparisons or its addition chains, so the fused
        # round stays bit-identical to the lock-step reference.
        n_vet = now.size
        if n_vet:
            if recovering.any():
                r_idx = np.flatnonzero(recovering)
                flat = plan.rows(int(cursor[r_idx].max()) + 1)
                draw0 = flat[cursor[r_idx], out_index[r_idx]]
                rec_cost = recovery_dur[seg[r_idx]]
                # A recovery attempt is counted when it starts, exactly like
                # the scalar executor.
                rec_att[r_idx] += 1
                cursor[r_idx] += 1  # the attempt consumes its draw either way
                rec_fail = draw0 < rec_cost
                struck_r = r_idx[rec_fail]
                if struck_r.size:
                    lost = draw0[rec_fail]
                    fails[struck_r] += 1
                    now[struck_r] += lost
                    wasted[struck_r] += lost
                    now[struck_r] += downtime
                    wasted[struck_r] += downtime
                    # Still recovering: the next round's pre-pass retries.
                done_r = r_idx[~rec_fail]
                if done_r.size:
                    committed = rec_cost[~rec_fail]
                    wasted[done_r] += committed
                    now[done_r] += committed
                    recovering[done_r] = False

            # Rows eligible for the segment sweep this round (a row whose
            # recovery just failed absorbed its failure above and sits the
            # sweep out, exactly as it would have in a combined window).
            act = np.flatnonzero(~recovering)
            if act.size:
                rem_act = num_segments - seg[act]  # >= 1: finished rows are gone
                span = int(rem_act.max())
                span = min(span, span_cap, max(_MAX_WINDOW_ELEMENTS // act.size, 1))
                span = max(span, 1)
                cur_act = cursor[act]
                flat = plan.rows(int(cur_act.max()) + span)
                draw_win = np.lib.stride_tricks.sliding_window_view(
                    flat, span, axis=0
                )[cur_act, out_index[act]]
                # One shared threshold window per segment position: the j-th
                # upcoming attempt of a row at segment s must outlast
                # ``attempt_dur[s + j]``, padded with -inf past the end of
                # the chain (no delay is below -inf, so completed rows simply
                # run out of failures).  The sliding windows over the padded
                # durations are zero-copy views; no per-row assembly at all.
                att_pad = np.concatenate([attempt_dur, np.full(span - 1, -np.inf)])
                thr = np.lib.stride_tricks.sliding_window_view(att_pad, span)[
                    seg[act]
                ]
                fail_win = draw_win < thr
                lanes = np.arange(act.size)
                # argmax doubles as the any-reduction: a row with no failure
                # reports offset 0, where fail_win is False.
                first_fail = fail_win.argmax(axis=1)
                has_fail = fail_win[lanes, first_fail]
                # Successful attempts this round: up to the first short
                # delay, the end of the chain, or the window edge.
                successes = np.where(has_fail, first_fail, span)
                successes = np.minimum(successes, rem_act)
                # Seeded prefix sums: row r's column k is
                # (((now + thr_0) + thr_1) + ... + thr_{k-1}) evaluated
                # strictly left to right (np.cumsum is a sequential fold),
                # i.e. the exact clock the scalar loop holds after k
                # consecutive completions.
                clocks = np.empty((act.size, span + 1))
                clocks[:, 0] = now[act]
                clocks[:, 1:] = thr
                np.cumsum(clocks, axis=1, out=clocks)
                now[act] = clocks[lanes, successes]
                seg[act] += successes
                cursor[act] = cur_act + successes
                hit_rel = np.flatnonzero(has_fail)
                if hit_rel.size:
                    hit = act[hit_rel]
                    lost = draw_win[hit_rel, successes[hit_rel]]
                    fails[hit] += 1
                    now[hit] += lost
                    wasted[hit] += lost
                    now[hit] += downtime
                    wasted[hit] += downtime
                    cursor[hit] += 1  # the failed attempt consumed its draw
                    recovering[hit] = True

            finished = seg >= num_segments
            if finished.any():
                done = np.flatnonzero(finished)
                makespans[out_index[done]] = now[done]
                out_wasted[out_index[done]] = wasted[done]
                out_fails[out_index[done]] = fails[done]
                out_rec[out_index[done]] = rec_att[done]
                keep = ~finished
                now = now[keep]
                wasted = wasted[keep]
                fails = fails[keep]
                rec_att = rec_att[keep]
                seg = seg[keep]
                cursor = cursor[keep]
                recovering = recovering[keep]
                out_index = out_index[keep]

        if fails.size and int(fails.max()) > _MAX_FAILURES_PER_RUN:
            raise RuntimeError(
                "simulation aborted after "
                f"{_MAX_FAILURES_PER_RUN} failures; the instance parameters make "
                "completion astronomically unlikely"
            )
        round_index += 1
        if round_index > 2 * _MAX_FAILURES_PER_RUN + num_segments:
            # Unreachable progress guard (every round strikes, recovers,
            # advances or finishes some replication); kept as a backstop for
            # the kernel's progress invariant.
            raise RuntimeError(
                "segment-jumping kernel exceeded its round budget "
                f"({2 * _MAX_FAILURES_PER_RUN + num_segments} rounds) without "
                "completing every replication; this indicates a stalled round, "
                "not an instance problem -- please report it"
            )

    return BatchSimulationResult(
        makespans=makespans,
        num_failures=out_fails.astype(float),
        wasted_times=out_wasted,
        useful_times=np.full(count, useful_total),
        recovery_attempts=out_rec,
    )


def simulate_poisson_batch_lockstep(
    segments: Sequence[Segment],
    rate: float,
    downtime: float,
    rng: np.random.Generator,
    count: int,
    *,
    plan: Optional[PlannedExponentialDelays] = None,
) -> BatchSimulationResult:
    """One-attempt-per-round reference kernel for the exact Poisson fast path.

    The historical (PR 2) array program: every round advances every active
    replication by exactly one attempt, so rounds scale with the *attempt*
    count (segments plus failures).  Kept as the executable specification of
    the plan-consumption contract -- :func:`simulate_poisson_batch` (the
    segment-jumping kernel) must stay bit-identical to it on every input --
    and as the baseline the runtime benchmark measures the jump kernel
    against.
    """
    check_positive("rate", rate)
    check_non_negative("downtime", downtime)
    check_positive_int("count", count)
    attempt_dur, recovery_dur = _segment_durations(segments)
    if plan is None:
        plan = PlannedExponentialDelays(
            rng, 1.0 / rate, count, first_rounds=len(segments) + 4
        )

    num_segments = len(attempt_dur)
    now = np.zeros(count)
    wasted = np.zeros(count)
    useful = np.zeros(count)
    failures = np.zeros(count, dtype=np.int64)
    recovery_attempts = np.zeros(count, dtype=np.int64)
    seg = np.zeros(count, dtype=np.int64)
    recovering = np.zeros(count, dtype=bool)

    active = np.arange(count)
    round_index = 0
    while active.size:
        delays = plan.round_delays(round_index)[active]
        seg_active = seg[active]
        rec_active = recovering[active]
        target = np.where(
            rec_active, recovery_dur[seg_active], attempt_dur[seg_active]
        )
        if rec_active.any():
            # A recovery attempt starts (and is counted) before its delay is
            # compared, exactly like the scalar executor.
            recovery_attempts[active[rec_active]] += 1

        ok = delays >= target

        completed = active[ok]
        completed_dur = target[ok]
        now[completed] += completed_dur
        completed_rec = rec_active[ok]
        recovered = completed[completed_rec]
        wasted[recovered] += completed_dur[completed_rec]
        recovering[recovered] = False
        finished_work = completed[~completed_rec]
        useful[finished_work] += completed_dur[~completed_rec]
        seg[finished_work] += 1

        struck = active[~ok]
        if struck.size:
            lost = delays[~ok]
            failures[struck] += 1
            now[struck] += lost
            wasted[struck] += lost
            if downtime:
                now[struck] += downtime
                wasted[struck] += downtime
            recovering[struck] = True

        active = active[seg[active] < num_segments]
        round_index += 1
        if round_index > 2 * _MAX_FAILURES_PER_RUN + num_segments:
            # Batch analogue of the scalar executor's failure cap: a
            # replication only stays active by failing, so this many rounds
            # means some replication exceeded the cap.
            raise RuntimeError(
                "simulation aborted after "
                f"{_MAX_FAILURES_PER_RUN} failures; the instance parameters make "
                "completion astronomically unlikely"
            )

    return BatchSimulationResult(
        makespans=now,
        num_failures=failures.astype(float),
        wasted_times=wasted,
        useful_times=useful,
        recovery_attempts=recovery_attempts,
    )


def simulate_renewal_batch(
    segments: Sequence[Segment],
    platform: Platform,
    downtime: float,
    rng: np.random.Generator,
    count: int,
    *,
    rejuvenate_all_on_failure: Optional[bool] = None,
    initial_ages: Optional[np.ndarray] = None,
) -> BatchSimulationResult:
    """Simulate ``count`` replications under per-processor renewal failures.

    The batch counterpart of
    :class:`~repro.simulation.engine.RenewalPlatformFailureSource` driving the
    scalar executor: each replication carries the absolute next-failure time
    of each of the platform's processors; the platform fails when the earliest
    processor does, and only that processor is renewed (all of them when
    ``rejuvenate_all_on_failure``, the assumption of [12] the paper argues
    against -- ``None``, the default, inherits the platform's own
    ``rejuvenate_all_on_failure`` field exactly like the scalar source).
    Scheduled failures that land inside a downtime window are skipped by
    renewing from the scheduled time, exactly like the scalar source.

    Draws are batched across replications, so their *order* differs from the
    scalar engine's: this path is statistically -- not bit-wise -- equivalent
    (the KS tests in ``tests/test_vectorized.py`` pin the agreement down).

    ``initial_ages`` optionally starts every processor with a given age (a
    scalar, or an array broadcastable to ``(count, num_processors)``): the
    first failure of each processor is then drawn from the *conditional*
    residual-life distribution via
    :meth:`~repro.failures.distributions.FailureDistribution.sample_residual_batch`.
    This models a platform that has already been running -- relevant for
    infant-mortality Weibull laws (shape < 1), where young and aged
    processors behave very differently.  The default (``None``) draws fresh
    lifetimes, matching the scalar source.
    """
    check_non_negative("downtime", downtime)
    check_positive_int("count", count)
    if rejuvenate_all_on_failure is None:
        rejuvenate_all_on_failure = platform.rejuvenate_all_on_failure
    attempt_dur, recovery_dur = _segment_durations(segments)
    law: FailureDistribution = platform.failure_law
    num_procs = platform.num_processors

    if initial_ages is None:
        next_fail = np.asarray(
            law.sample(rng, size=(count, num_procs)), dtype=float
        ).reshape(count, num_procs)
    else:
        ages = np.broadcast_to(
            np.asarray(initial_ages, dtype=float), (count, num_procs)
        )
        next_fail = law.sample_residual_batch(rng, ages).reshape(count, num_procs)

    num_segments = len(attempt_dur)
    now = np.zeros(count)
    wasted = np.zeros(count)
    useful = np.zeros(count)
    failures = np.zeros(count, dtype=np.int64)
    recovery_attempts = np.zeros(count, dtype=np.int64)
    seg = np.zeros(count, dtype=np.int64)
    recovering = np.zeros(count, dtype=bool)
    alive = np.ones(count, dtype=bool)

    round_index = 0
    while alive.any():
        # Renew processors whose scheduled failure fell inside a downtime
        # window (failures do not strike during downtime, Section 2).
        while True:
            due = alive[:, None] & (next_fail <= now[:, None])
            overdue = int(due.sum())
            if not overdue:
                break
            next_fail[due] += np.asarray(
                law.sample(rng, size=overdue), dtype=float
            ).reshape(overdue)

        active = np.flatnonzero(alive)
        nearest = next_fail[active].min(axis=1)
        delays = nearest - now[active]
        seg_active = seg[active]
        rec_active = recovering[active]
        target = np.where(
            rec_active, recovery_dur[seg_active], attempt_dur[seg_active]
        )
        if rec_active.any():
            recovery_attempts[active[rec_active]] += 1

        ok = delays >= target

        completed = active[ok]
        completed_dur = target[ok]
        now[completed] += completed_dur
        completed_rec = rec_active[ok]
        recovered = completed[completed_rec]
        wasted[recovered] += completed_dur[completed_rec]
        recovering[recovered] = False
        finished_work = completed[~completed_rec]
        useful[finished_work] += completed_dur[~completed_rec]
        seg[finished_work] += 1
        done = finished_work[seg[finished_work] >= num_segments]
        alive[done] = False

        struck = active[~ok]
        if struck.size:
            lost = delays[~ok]
            failures[struck] += 1
            now[struck] += lost
            wasted[struck] += lost
            if rejuvenate_all_on_failure:
                next_fail[struck] = now[struck][:, None] + np.asarray(
                    law.sample(rng, size=(struck.size, num_procs)), dtype=float
                ).reshape(struck.size, num_procs)
            else:
                failed_proc = np.argmin(next_fail[struck], axis=1)
                next_fail[struck, failed_proc] = now[struck] + np.asarray(
                    law.sample(rng, size=struck.size), dtype=float
                ).reshape(struck.size)
            if downtime:
                now[struck] += downtime
                wasted[struck] += downtime
            recovering[struck] = True

        round_index += 1
        if round_index > 2 * _MAX_FAILURES_PER_RUN + num_segments:
            raise RuntimeError(
                "simulation aborted after "
                f"{_MAX_FAILURES_PER_RUN} failures; the instance parameters make "
                "completion astronomically unlikely"
            )

    return BatchSimulationResult(
        makespans=now,
        num_failures=failures.astype(float),
        wasted_times=wasted,
        useful_times=useful,
        recovery_attempts=recovery_attempts,
    )


def generate_trace_times_batch(
    law: FailureDistribution,
    horizon: float,
    num_processors: int,
    rng: np.random.Generator,
    count: int,
) -> np.ndarray:
    """Generate ``count`` platform failure traces as one padded time matrix.

    The batch counterpart of :func:`repro.failures.traces.generate_trace`:
    each of the ``count`` traces superposes ``num_processors`` independent
    renewal processes with inter-arrival law ``law``, truncated at
    ``horizon``.  Inter-arrival draws are batched across all traces and
    processors and turned into absolute times by a cumulative sum, extending
    the draw matrix until every renewal chain has crossed the horizon.

    Returns a ``(count, width)`` float matrix: each row holds that trace's
    event times in increasing order, padded with ``+inf`` (every row keeps at
    least one ``+inf`` column so replay cursors always have a sentinel).
    """
    check_positive("horizon", horizon)
    check_positive_int("num_processors", num_processors)
    check_positive_int("count", count)
    mean = law.mean()
    # Oversample enough that the extension loop almost never fires (its cost
    # is a second batched draw, not an error).
    per_chain = max(8, int(1.6 * horizon / mean) + 24)
    if count * num_processors * per_chain > _MAX_BATCH_EVENTS:
        raise RuntimeError(
            f"generate_trace_times_batch would draw more than {_MAX_BATCH_EVENTS} "
            "inter-arrival times at once; reduce the chunk size, the horizon or "
            "the failure rate"
        )
    draws = np.asarray(
        law.sample(rng, size=(count, num_processors, per_chain)), dtype=float
    ).reshape(count, num_processors, per_chain)
    times = np.cumsum(draws, axis=2)
    while bool((times[:, :, -1] < horizon).any()):
        if times.size > _MAX_BATCH_EVENTS:
            raise RuntimeError(
                f"generate_trace_times_batch exceeded {_MAX_BATCH_EVENTS} draws; "
                "reduce the horizon or the failure rate"
            )
        extension = max(per_chain // 2, 8)
        extra = np.asarray(
            law.sample(rng, size=(count, num_processors, extension)), dtype=float
        ).reshape(count, num_processors, extension)
        times = np.concatenate(
            [times, times[:, :, -1:] + np.cumsum(extra, axis=2)], axis=2
        )
    # Every chain's last time is >= horizon, so every row keeps at least one
    # +inf sentinel after masking -- no extra padding column needed.
    flat = np.where(times < horizon, times, np.inf).reshape(count, -1)
    if num_processors > 1:
        # Superpose the per-processor chains; a single chain is already
        # sorted (cumulative sums are increasing).
        flat.sort(axis=1)
    return flat


def pack_trace_times(traces: Sequence) -> np.ndarray:
    """Pack explicit :class:`~repro.failures.traces.FailureTrace` objects.

    Returns the ``(len(traces), width)`` padded time matrix
    :func:`replay_traces_batch` consumes: each row holds one trace's event
    times in increasing order, padded with ``+inf``, with at least one
    ``+inf`` sentinel column per row so replay cursors never run off the end.
    """
    if not traces:
        raise ValueError("traces must not be empty")
    rows = [np.asarray(trace.times, dtype=float) for trace in traces]
    width = max(row.size for row in rows) + 1
    times = np.full((len(rows), width), np.inf)
    for index, row in enumerate(rows):
        times[index, : row.size] = row
    return times


def replay_traces_batch(
    segment_lists: Sequence[Sequence[Segment]],
    times: np.ndarray,
    downtime: float,
    *,
    with_failures: bool = False,
) -> Union[np.ndarray, Tuple[np.ndarray, np.ndarray]]:
    """Replay every strategy against every trace in one stacked lock-step loop.

    ``segment_lists`` holds one segment decomposition per strategy and
    ``times`` a ``(num_traces, width)`` padded time matrix from
    :func:`generate_trace_times_batch` (or packed from explicit
    :class:`~repro.failures.traces.FailureTrace` objects).  All
    ``num_strategies * num_traces`` executions advance together, one
    *failure* (not one segment attempt) per lock-step round: every round
    completes the pending recovery, jumps over all consecutive segments that
    fit before the next trace event (a per-strategy ``searchsorted`` against
    the prefix sums of segment durations), and then absorbs that event.
    Rounds therefore scale with the failure count, not the segment count.

    The returned matrix has shape ``(num_strategies, num_traces)`` and
    matches replaying each trace through the scalar executor with a
    :class:`~repro.simulation.engine.TraceFailureSource` to floating-point
    rounding (the prefix-sum jumps re-associate the duration additions, so
    agreement is to ~1 ulp per segment rather than bit-for-bit; the
    equivalence tests pin it at 1e-9 relative).

    With ``with_failures=True`` a ``(makespans, num_failures)`` pair is
    returned instead; the failure counts (``int64``, same shape) match the
    scalar executor's ``num_failures`` exactly -- every event that strikes a
    row is one failure, and events falling inside downtime windows or at the
    exact completion instant are skipped without counting, as the scalar
    trace source does.  This is what lets
    :class:`~repro.simulation.monte_carlo.MonteCarloEstimator` dispatch
    explicit trace models here without losing its failure statistics.
    """
    check_non_negative("downtime", downtime)
    if not segment_lists:
        raise ValueError("segment_lists must not be empty")
    times = np.asarray(times, dtype=float)
    if times.ndim != 2:
        raise ValueError(f"times must be a 2-D padded matrix, got shape {times.shape}")
    num_strategies = len(segment_lists)
    num_traces, width = times.shape

    seg_counts = np.array([len(segs) for segs in segment_lists], dtype=np.int64)
    if (seg_counts == 0).any():
        raise ValueError("every strategy needs at least one segment")
    max_segments = int(seg_counts.max())
    attempt_dur = np.zeros((num_strategies, max_segments))
    recovery_dur = np.zeros((num_strategies, max_segments))
    for index, segs in enumerate(segment_lists):
        attempt, recovery = _segment_durations(segs)
        attempt_dur[index, : len(segs)] = attempt
        recovery_dur[index, : len(segs)] = recovery

    rows = num_strategies * num_traces
    # Prefix sums of the attempt durations, one array per strategy: entry k
    # is the failure-free time of segments 0..k-1, so "how many segments
    # complete before the next event" is a searchsorted query.
    prefixes = [
        np.concatenate(([0.0], np.cumsum(attempt_dur[s, : seg_counts[s]])))
        for s in range(num_strategies)
    ]

    # The whole loop works on compressed per-row state: finished rows are
    # squeezed out (their makespan scattered to the output via ``out_index``),
    # so every per-round NumPy call touches only the rows still executing.
    # Rows stay sorted by strategy (boolean compression preserves order),
    # which keeps each strategy's rows a contiguous slice.
    times_flat = times.ravel()
    recovery_flat = recovery_dur.ravel()
    trace_base = np.tile(np.arange(num_traces, dtype=np.int64) * width, num_strategies)
    duration_base = np.repeat(
        np.arange(num_strategies, dtype=np.int64) * max_segments, num_traces
    )
    strat = np.repeat(np.arange(num_strategies, dtype=np.int64), num_traces)
    limit = np.repeat(seg_counts, num_traces)
    out_index = np.arange(rows)

    makespans = np.empty(rows)
    failures_out = np.zeros(rows, dtype=np.int64)
    now = np.zeros(rows)
    fails = np.zeros(rows, dtype=np.int64)
    seg = np.zeros(rows, dtype=np.int64)
    cursor = np.zeros(rows, dtype=np.int64)
    # Rows recovering from the failure that ended their previous round.
    # (Almost every surviving row, every round -- the exception is a row
    # whose attempt or recovery completed exactly at an event time, which is
    # not struck and owes no recovery.)
    pending_recovery = np.zeros(rows, dtype=bool)
    strategy_ids = np.arange(num_strategies + 1)
    bounds: Optional[np.ndarray] = None

    # Round structure: recover (if owed and it fits), jump segments, absorb
    # the next failure.
    round_index = 0
    while now.size:
        next_time = times_flat[trace_base + cursor]
        # Skip events at or before the current time (they fell inside a
        # downtime window), as TraceFailureSource does at query time.
        while True:
            stale = next_time <= now
            if not stale.any():
                break
            cursor[stale] += 1
            next_time[stale] = times_flat[trace_base[stale] + cursor[stale]]

        if not pending_recovery.any():
            attempting = np.ones(now.size, dtype=bool)
        else:
            # Pending recoveries: the ones that fit before the event complete
            # and re-attempt their segment within the same round.
            rec_cost = recovery_flat[duration_base + seg]
            recovered = pending_recovery & (next_time - now >= rec_cost)
            now += np.where(recovered, rec_cost, 0.0)
            attempting = ~pending_recovery | recovered

        # Segment jumps: every recovered row completes all consecutive
        # segments that fit before the next event in one step.  For rows
        # whose recovery did not fit, ``reach`` is pinned to their current
        # segment, so their advance is exactly zero.
        if bounds is None:
            bounds = np.searchsorted(strat, strategy_ids)
        for s in range(num_strategies):
            lo, hi = bounds[s], bounds[s + 1]
            if lo == hi:
                continue
            prefix = prefixes[s]
            prefix_at_seg = prefix[seg[lo:hi]]
            reach = np.searchsorted(
                prefix, next_time[lo:hi] - now[lo:hi] + prefix_at_seg,
                side="right",
            ) - 1
            reach = np.where(attempting[lo:hi], reach, seg[lo:hi])
            now[lo:hi] += prefix[reach] - prefix_at_seg
            seg[lo:hi] = reach

        finished = seg >= limit
        if finished.any():
            makespans[out_index[finished]] = now[finished]
            failures_out[out_index[finished]] = fails[finished]
            keep = ~finished
            now = now[keep]
            fails = fails[keep]
            seg = seg[keep]
            cursor = cursor[keep]
            trace_base = trace_base[keep]
            duration_base = duration_base[keep]
            strat = strat[keep]
            limit = limit[keep]
            out_index = out_index[keep]
            next_time = next_time[keep]
            bounds = None  # row count changed; regroup next round

        # Every surviving row whose clock has not caught up with the event is
        # struck by it -- during its recovery (if it did not fit) or during
        # the segment that did not fit (it jumped short of the limit).  A row
        # that landed *exactly* on the event time (an attempt or recovery
        # completing at the very instant of a trace event) is not struck: the
        # scalar TraceFailureSource skips events at or before `now` when next
        # queried, so these rows simply advance their cursor through the
        # stale-event loop next round and re-attempt against the next event.
        if now.size:
            struck = next_time > now
            now = np.where(struck, next_time + downtime, now)
            fails += struck
            cursor += struck  # consume the event that just struck
            pending_recovery = struck

        round_index += 1
        if round_index > 2 * _MAX_FAILURES_PER_RUN:
            # Batch analogue of the scalar executor's per-run failure cap:
            # every round either strikes a failure into a surviving row or
            # (after an exact event-time tie) consumes a stale event.
            raise RuntimeError(
                "simulation aborted after "
                f"{_MAX_FAILURES_PER_RUN} failures; the instance parameters "
                "make completion astronomically unlikely"
            )

    makespans = makespans.reshape(num_strategies, num_traces)
    if with_failures:
        return makespans, failures_out.reshape(num_strategies, num_traces)
    return makespans
