"""Command-line interface for the checkpoint-scheduling library.

The sub-commands cover the everyday uses of the library without writing any
Python:

* ``repro solve-chain``   -- optimal checkpoint placement for a chain stored
  as JSON (``repro-chain`` format, see :mod:`repro.workflows.serialization`);
* ``repro solve-dag``     -- heuristic checkpoint scheduling for a workflow
  DAG stored as JSON (``repro-workflow`` format);
* ``repro simulate``      -- Monte-Carlo estimate of the expected makespan of
  a chain under a given placement;
* ``repro experiment``    -- run one of the E1-E10 experiments and print its
  table (optionally as CSV); without an id, list the available experiments;
* ``repro serve``         -- run the scenario service (job queue + HTTP API,
  see :mod:`repro.service`);
* ``repro submit``        -- submit a ``ScenarioSpec`` JSON file (or a
  registry experiment) to a running service, optionally waiting for the
  result;
* ``repro jobs``          -- list, inspect or cancel service jobs
  (``--stats`` adds the per-job queue/compute/cache timing breakdown,
  ``--trace`` renders the job's persisted span tree);
* ``repro metrics``       -- snapshot a running service's metrics
  (Prometheus text, or JSON with ``--json``);
* ``repro debug``         -- operator debugging: ``repro debug flight``
  dumps a running service's flight recorder (recent spans and errors);
* ``repro bench-history`` -- per-benchmark trend table from the JSONL perf
  history the bench harness appends (see :mod:`repro.perf_history`);
* ``repro lint``          -- repo-native static analysis enforcing the
  determinism and concurrency contracts (see :mod:`repro.devtools`).

The simulation-heavy sub-commands (``simulate``, ``experiment``) accept
``--parallel N`` to fan replication chunks out over ``N`` worker processes,
``--engine scalar|vectorized`` to pick how each chunk executes (Python event
loop vs NumPy array program -- the two compose into a pool of vectorized
chunks), and ``--cache`` (or ``--cache-dir PATH``) to memoise results on
disk; see :mod:`repro.runtime`.  Any of these flags selects the chunked
deterministic sampler: for a given seed its results are bit-identical for
every ``N >= 1`` (they differ from the plain no-flag run, which keeps the
historical single-stream sampler).

The CLI is intentionally thin: every sub-command parses arguments, calls the
corresponding library entry point, and prints a human-readable (or CSV)
summary.  It is installed as the ``repro`` console script.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional, Sequence

import numpy as np

from repro.baselines.strategies import evaluate_chain_strategies
from repro.core.chain_dp import optimal_chain_checkpoints, optimal_chain_checkpoints_budget
from repro.core.dag_scheduling import schedule_dag
from repro.core.schedule import Schedule
from repro.experiments.registry import EXPERIMENTS, experiment_descriptions, run_experiment
from repro.runtime.backends import VectorizedBackend, resolve_backend
from repro.runtime.cache import ResultCache
from repro.simulation.monte_carlo import MonteCarloEstimator
from repro.workflows.serialization import load_chain, load_workflow, workflow_to_dot

__all__ = ["main", "build_parser"]


def _package_version() -> str:
    """The installed package version, or the source-tree version as fallback.

    Reads the distribution metadata first (the installed ``repro`` console
    script); running straight from a checkout via ``PYTHONPATH=src`` has no
    metadata, so the in-tree ``repro.__version__`` is reported instead.
    """
    try:
        from importlib.metadata import PackageNotFoundError, version

        return version("repro-checkpoint-scheduling")
    except PackageNotFoundError:
        from repro import __version__

        return f"{__version__} (source tree)"


def _experiment_listing() -> str:
    """The available experiments, one per line, with their descriptions."""
    lines = ["available experiments:"]
    for key, description in experiment_descriptions().items():
        lines.append(f"  {key:<4s} {description}")
    return "\n".join(lines)


def _experiment_id(text: str) -> str:
    """argparse type for experiment ids: normalises case, lists on error."""
    key = text.upper()
    if key not in EXPERIMENTS:
        raise argparse.ArgumentTypeError(
            f"unknown experiment {text!r}\n{_experiment_listing()}"
        )
    return key


def _worker_count(text: str) -> int:
    """argparse type for --parallel: a non-negative worker count."""
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"invalid worker count {text!r}")
    if value < 0:
        raise argparse.ArgumentTypeError(f"worker count must be >= 0, got {value}")
    return value


def build_parser() -> argparse.ArgumentParser:
    """Build the top-level argument parser (exposed for testing and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Checkpoint scheduling for computational workflows under failures "
        "(reproduction of Robert, Vivien, Zaidouni, RR-7907).",
    )
    parser.add_argument(
        "--version", action="version", version=f"%(prog)s {_package_version()}",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    # Shared parallel-runtime switches for the simulation-heavy sub-commands.
    # Split in two parents: `serve` takes the placement/cache switches but
    # deliberately NOT --engine -- a scenario's samples are defined by its
    # spec (which carries the engine), never by the server it lands on.
    runtime_options = argparse.ArgumentParser(add_help=False)
    runtime_group = runtime_options.add_argument_group("parallel runtime")
    runtime_group.add_argument(
        "--parallel", type=_worker_count, default=0, metavar="N",
        help="fan simulation chunks out over N worker processes; for a given "
        "seed the results are bit-identical for every N >= 1 (0, the "
        "default, keeps the historical serial sampler, whose draws differ)",
    )
    runtime_group.add_argument(
        "--cache", action="store_true",
        help="memoise simulation results in the disk cache (~/.cache/repro "
        "or $REPRO_CACHE_DIR)",
    )
    runtime_group.add_argument(
        "--cache-dir", type=str, default=None, metavar="PATH",
        help="use PATH as the cache root (implies --cache)",
    )
    engine_options = argparse.ArgumentParser(add_help=False)
    engine_group = engine_options.add_argument_group("execution engine")
    engine_group.add_argument(
        "--engine", choices=("scalar", "vectorized"), default=None,
        help="how each simulation chunk executes: 'scalar' (the Python event "
        "loop) or 'vectorized' (the NumPy array program, typically an order "
        "of magnitude faster on a single core); either choice selects the "
        "chunked deterministic sampler, and for memoryless failure models "
        "the two engines produce bit-identical results",
    )

    solve_chain = subparsers.add_parser(
        "solve-chain", help="optimal checkpoint placement for a linear chain (Algorithm 1)"
    )
    solve_chain.add_argument("chain", help="path to a repro-chain JSON file")
    solve_chain.add_argument("--rate", type=float, required=True,
                             help="platform failure rate lambda")
    solve_chain.add_argument("--downtime", type=float, default=0.0, help="downtime D per failure")
    solve_chain.add_argument("--max-checkpoints", type=int, default=None,
                             help="optional upper bound on the number of checkpoints")
    solve_chain.add_argument("--no-final-checkpoint", action="store_true",
                             help="do not force a checkpoint after the last task")
    solve_chain.add_argument("--compare", action="store_true",
                             help="also print the baseline strategies for comparison")

    solve_dag = subparsers.add_parser(
        "solve-dag", help="heuristic checkpoint scheduling for a workflow DAG"
    )
    solve_dag.add_argument("workflow", help="path to a repro-workflow JSON file")
    solve_dag.add_argument("--rate", type=float, required=True)
    solve_dag.add_argument("--downtime", type=float, default=0.0)
    solve_dag.add_argument("--seed", type=int, default=0, help="seed for the random linearisations")
    solve_dag.add_argument("--dot", action="store_true",
                           help="print a Graphviz DOT rendering with checkpoints highlighted")

    simulate = subparsers.add_parser(
        "simulate", help="Monte-Carlo estimate of a chain schedule's expected makespan",
        parents=[runtime_options, engine_options],
    )
    simulate.add_argument("chain", help="path to a repro-chain JSON file")
    simulate.add_argument("--rate", type=float, required=True)
    simulate.add_argument("--downtime", type=float, default=0.0)
    simulate.add_argument("--checkpoint-after", type=str, default=None,
                          help="comma-separated 0-based positions; default: optimal placement")
    simulate.add_argument("--runs", type=int, default=5000)
    simulate.add_argument("--seed", type=int, default=0)

    experiment = subparsers.add_parser(
        "experiment", help="run one of the reproduction experiments (E1-E10)",
        parents=[runtime_options, engine_options],
    )
    experiment.add_argument("id", nargs="?", default=None, type=_experiment_id,
                            help="experiment identifier (omit to list all experiments)")
    experiment.add_argument("--csv", action="store_true", help="print CSV instead of a table")

    # No engine_options: each job's engine comes from its spec (campaigns)
    # or its submission payload (experiments), never from the server.
    serve = subparsers.add_parser(
        "serve", help="run the scenario service (job queue + HTTP API)",
        parents=[runtime_options],
    )
    serve.add_argument("--host", default="127.0.0.1",
                       help="interface to bind (default: %(default)s)")
    serve.add_argument("--port", type=int, default=8765,
                       help="port to bind; 0 picks an ephemeral port (default: %(default)s)")
    serve.add_argument("--db", default=None, metavar="PATH",
                       help="sqlite job database; jobs survive restarts "
                       "(default: in-memory, lost on exit)")
    serve.add_argument("--workers", type=int, default=1,
                       help="concurrent job worker threads (default: %(default)s); "
                       "each job's chunks additionally fan out over --parallel")
    serve.add_argument("--server", choices=("asyncio", "threaded"), default="asyncio",
                       help="HTTP front end: the asyncio gateway (snapshot reads, SSE "
                            "progress, rate limiting) or the threaded fallback "
                            "(default: %(default)s)")
    serve.add_argument("--rate-limit", type=float, default=None, metavar="R",
                       help="per-client request rate limit in requests/second "
                            "(asyncio server only; default: unlimited)")
    serve.add_argument("--burst", type=int, default=None, metavar="B",
                       help="rate-limit bucket capacity (default: one second's worth)")
    serve.add_argument("--audit-log", default=None, metavar="PATH",
                       help="append-only JSONL audit trail of submissions and "
                            "cancellations (asyncio server only)")
    serve.add_argument("--audit-max-bytes", type=int, default=None, metavar="N",
                       help="roll the audit trail over to PATH.1 once it would "
                            "exceed N bytes (default: never rotate)")
    serve.add_argument("--audit-max-files", type=int, default=5, metavar="K",
                       help="rotated audit files to retain before deleting the "
                            "oldest (default: %(default)s)")
    serve.add_argument("--chunk-size", type=int, default=None, metavar="N",
                       help="server-wide default replications per chunk for campaign "
                       "jobs (validated at startup; a submission may still override it)")
    serve.add_argument("--otlp-endpoint", default=None, metavar="URL",
                       help="export finished spans to an OTLP/HTTP collector at URL "
                       "(e.g. http://collector:4318/v1/traces); off by default")
    serve.add_argument("--verbose", action="store_true",
                       help="log every HTTP request and span (DEBUG-level JSON events)")

    submit = subparsers.add_parser(
        "submit", help="submit a campaign (ScenarioSpec JSON) or experiment to a service"
    )
    submit.add_argument("spec", nargs="?", default=None,
                        help="path to a ScenarioSpec JSON file (omit with --experiment)")
    submit.add_argument("--experiment", default=None, type=_experiment_id, metavar="ID",
                        help="submit a registry experiment instead of a spec file")
    submit.add_argument("--engine", choices=("scalar", "vectorized"), default=None,
                        help="execution engine for --experiment submissions")
    submit.add_argument("--url", default="http://127.0.0.1:8765",
                        help="service address (default: %(default)s)")
    submit.add_argument("--chunk-size", type=int, default=None,
                        help="replications per chunk for campaign submissions")
    submit.add_argument("--wait", action="store_true",
                        help="poll until the job finishes and print its result")
    submit.add_argument("--timeout", type=float, default=600.0,
                        help="--wait timeout in seconds (default: %(default)s)")
    submit.add_argument("--csv", action="store_true",
                        help="with --wait, print the result as CSV")

    jobs = subparsers.add_parser(
        "jobs", help="list, inspect or cancel jobs on a scenario service"
    )
    jobs.add_argument("id", nargs="?", default=None,
                      help="job id to inspect (omit to list jobs)")
    jobs.add_argument("--url", default="http://127.0.0.1:8765",
                      help="service address (default: %(default)s)")
    jobs.add_argument("--state", default=None,
                      choices=("queued", "running", "done", "failed", "cancelled"),
                      help="filter the listing by state")
    jobs.add_argument("--cancel", action="store_true",
                      help="cancel the given job instead of inspecting it")
    jobs.add_argument("--stats", action="store_true",
                      help="show the per-job queue/compute/cache timing breakdown")
    jobs.add_argument("--trace", action="store_true",
                      help="render the given job's persisted span tree "
                      "(durations, self time, attributes)")

    debug = subparsers.add_parser(
        "debug", help="operator debugging helpers against a running service"
    )
    debug.add_argument("what", choices=("flight",),
                       help="'flight': dump the service's flight recorder "
                       "(ring buffer of recent spans and errors)")
    debug.add_argument("--url", default="http://127.0.0.1:8765",
                       help="service address (default: %(default)s)")
    debug.add_argument("--kind", default=None, choices=("span", "log", "error"),
                       help="only show events of this kind")
    debug.add_argument("--json", action="store_true",
                       help="print the raw JSON dump instead of formatted lines")

    metrics = subparsers.add_parser(
        "metrics", help="snapshot a running scenario service's metrics"
    )
    metrics.add_argument("--url", default="http://127.0.0.1:8765",
                         help="service address (default: %(default)s)")
    metrics.add_argument("--json", action="store_true",
                         help="print the JSON snapshot instead of Prometheus text")

    bench_history = subparsers.add_parser(
        "bench-history", help="render the bench perf-history JSONL as a "
        "per-benchmark trend table (see benchmarks/harness.py --history)"
    )
    bench_history.add_argument(
        "history", help="path to the JSONL history file"
    )
    bench_history.add_argument(
        "--bench", default=None, metavar="SUBSTRING",
        help="only series whose benchmark name contains SUBSTRING",
    )
    bench_history.add_argument(
        "--mode", default=None, choices=("quick", "full"),
        help="only series recorded in this mode",
    )
    bench_history.add_argument(
        "--last", type=int, default=20, metavar="N",
        help="sparkline length: the N most recent values (default 20)",
    )

    lint = subparsers.add_parser(
        "lint", help="repo-native static analysis (determinism & concurrency "
        "contracts; stdlib-only, see docs/devtools.md)"
    )
    lint.add_argument("paths", nargs="*", default=["src", "tests", "benchmarks"],
                      help="files or directories to lint "
                      "(default: src tests benchmarks)")
    lint.add_argument("--json", action="store_true",
                      help="emit the machine-readable JSON report")
    lint.add_argument("--select", default=None, metavar="CODES",
                      help="comma-separated rule codes to run (default: all)")
    lint.add_argument("--list-rules", action="store_true",
                      help="list the rule catalog and exit")

    return parser


def _cmd_solve_chain(args: argparse.Namespace) -> int:
    chain = load_chain(args.chain)
    final_checkpoint = not args.no_final_checkpoint
    if args.max_checkpoints is not None:
        result = optimal_chain_checkpoints_budget(
            chain, args.downtime, args.rate, args.max_checkpoints,
            final_checkpoint=final_checkpoint,
        )
    else:
        result = optimal_chain_checkpoints(
            chain, args.downtime, args.rate, final_checkpoint=final_checkpoint
        )
    print(f"chain              : {args.chain} ({chain.n} tasks, total work {chain.total_work():g})")
    print(f"expected makespan  : {result.expected_makespan:.6g}")
    print(f"checkpoints        : {result.num_checkpoints}")
    print(f"checkpoint after   : {[chain.names[i] for i in result.checkpoint_after]}")
    if args.compare:
        strategies = evaluate_chain_strategies(chain, args.downtime, args.rate)
        print("baseline comparison (expected makespan):")
        for name in sorted(strategies):
            value = strategies[name].expected_makespan
            print(f"  {name:<18s}: {value:.6g}")
    return 0


def _cmd_solve_dag(args: argparse.Namespace) -> int:
    workflow = load_workflow(args.workflow)
    result = schedule_dag(workflow, args.downtime, args.rate, seed=args.seed)
    print(f"workflow           : {args.workflow} ({len(workflow)} tasks)")
    print(f"linearisation      : {result.strategy}")
    print(f"expected makespan  : {result.expected_makespan:.6g}")
    checkpoint_names = [result.order[i] for i in result.checkpoint_after]
    print(f"checkpoint after   : {checkpoint_names}")
    if args.dot:
        print(workflow_to_dot(workflow, checkpoint_after=checkpoint_names))
    return 0


def _parse_positions(text: Optional[str], n: int) -> Optional[List[int]]:
    if text is None:
        return None
    positions = []
    for piece in text.split(","):
        piece = piece.strip()
        if not piece:
            continue
        value = int(piece)
        if not 0 <= value < n:
            raise SystemExit(f"checkpoint position {value} out of range 0..{n - 1}")
        positions.append(value)
    return positions


def _runtime_from_args(args: argparse.Namespace):
    """Build the (backend, cache, engine) triple selected by the runtime flags.

    ``--engine vectorized`` composes with ``--parallel N``: the chunks are
    placed on the worker pool and each executes as an array program (a pool
    of vectorized chunks).  Sub-commands without the engine switch (serve)
    resolve it as None.
    """
    engine = getattr(args, "engine", None)
    if engine == "vectorized":
        # Hand the wrapper the *spec*, not a backend instance, so it owns the
        # inner pool and the handlers' backend.close() shuts the workers down.
        backend = VectorizedBackend(args.parallel if args.parallel else None)
    else:
        backend = resolve_backend(args.parallel) if args.parallel else None
    cache = None
    if args.cache or args.cache_dir:
        cache = ResultCache(args.cache_dir)
    return backend, cache, engine


def _cmd_simulate(args: argparse.Namespace) -> int:
    chain = load_chain(args.chain)
    positions = _parse_positions(args.checkpoint_after, chain.n)
    if positions is None:
        dp = optimal_chain_checkpoints(chain, args.downtime, args.rate)
        positions = list(dp.checkpoint_after)
        print(f"using optimal placement: {positions}")
    schedule = Schedule.for_chain(chain, positions)
    analytic = schedule.expected_makespan(args.downtime, args.rate)
    backend, cache, engine = _runtime_from_args(args)
    estimator = MonteCarloEstimator(schedule, args.rate, args.downtime)
    try:
        if backend is not None or cache is not None or engine is not None:
            estimate = estimator.estimate(
                args.runs, seed=args.seed, backend=backend, cache=cache, engine=engine
            )
        else:
            rng = np.random.default_rng(args.seed)
            estimate = estimator.estimate(args.runs, rng=rng)
    finally:
        if backend is not None:
            backend.close()
    print(f"analytic expectation : {analytic:.6g}")
    print(f"simulated mean       : {estimate.mean:.6g} "
          f"(95% CI [{estimate.ci95_low:.6g}, {estimate.ci95_high:.6g}], {args.runs} runs)")
    print(f"mean failures / run  : {estimate.mean_failures:.3g}")
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    if args.id is None:
        print(_experiment_listing())
        return 0
    backend, cache, engine = _runtime_from_args(args)
    try:
        table = run_experiment(args.id, backend=backend, cache=cache, engine=engine)
    finally:
        if backend is not None:
            backend.close()
    print(table.to_csv() if args.csv else table.to_text())
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    # Imported lazily: the service pulls in the experiment registry and the
    # whole runtime, which the lightweight solve-* commands never need.
    import logging

    from repro.obs.logging import configure_logging
    from repro.service.audit import AuditTrail
    from repro.service.gateway import GatewayServer
    from repro.service.jobs import JobStore
    from repro.service.queue import JobScheduler
    from repro.service.server import ScenarioServer

    # A server is the one place the structured JSON log stream is always
    # wanted; --verbose additionally surfaces per-request/span DEBUG events.
    configure_logging(level=logging.DEBUG if args.verbose else logging.INFO)
    backend, cache, _engine = _runtime_from_args(args)
    store = JobStore(args.db)
    try:
        scheduler = JobScheduler(
            store, num_workers=args.workers, backend=backend, cache=cache,
            chunk_size=args.chunk_size,
        )
        if args.server == "asyncio":
            server = GatewayServer(
                scheduler, host=args.host, port=args.port,
                rate_limit=args.rate_limit, burst=args.burst,
                audit=AuditTrail(
                    args.audit_log,
                    max_bytes=args.audit_max_bytes,
                    max_files=args.audit_max_files,
                ) if args.audit_log else None,
                verbose=args.verbose,
            )
        else:
            if args.rate_limit is not None or args.audit_log is not None:
                raise ValueError(
                    "--rate-limit/--audit-log need the asyncio gateway "
                    "(drop --server threaded)"
                )
            server = ScenarioServer(
                scheduler, host=args.host, port=args.port, verbose=args.verbose
            )
    except (TypeError, ValueError) as exc:
        # Startup validation (e.g. --chunk-size over the service cap) must
        # exit with a clear message, not a traceback.
        store.close()
        raise SystemExit(f"error: {exc}")
    exporter = None
    if args.otlp_endpoint is not None:
        from repro.obs.export import OtlpSpanExporter

        exporter = OtlpSpanExporter(args.otlp_endpoint).start()
    where = args.db if args.db else "in-memory (lost on exit; use --db to persist)"
    print(f"scenario service listening on {server.url} ({args.server})")
    print(f"job store          : {where}")
    if scheduler.recovered:
        print(f"recovered jobs     : {scheduler.recovered} (re-queued after restart)")
    print(f"workers            : {scheduler.num_workers} x {scheduler.backend!r}")
    if args.rate_limit is not None:
        burst = args.burst if args.burst is not None else max(1, round(args.rate_limit))
        print(f"rate limit         : {args.rate_limit:g} req/s per client "
              f"(burst {burst})")
    if args.audit_log is not None:
        rotate = (
            f" (rotate at {args.audit_max_bytes} B, keep {args.audit_max_files})"
            if args.audit_max_bytes is not None else ""
        )
        print(f"audit trail        : {args.audit_log}{rotate}")
    if exporter is not None:
        print(f"otlp export        : {exporter.endpoint} "
              f"(instance {exporter.instance_id})")
    events = "GET /v1/jobs/{id}/events  " if args.server == "asyncio" else ""
    print("endpoints          : POST /v1/jobs  GET /v1/jobs[/{id}[/trace]]  "
          f"DELETE /v1/jobs/{{id}}  {events}GET /v1/scenarios  "
          "GET /v1/healthz  GET /v1/metrics  GET /v1/debug/flight")
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("shutting down (interrupted jobs are re-queued on the next "
              "start when using --db)")
    finally:
        if exporter is not None:
            # Flushes queued spans to the collector before the process exits.
            exporter.shutdown()
        # A worker abandoned mid-job may still be using the backend and the
        # store; closing either would block on (or crash) that job, defeating
        # the bounded shutdown.  Threads, pool children and the sqlite handle
        # all die with the process.
        if not scheduler.abandoned_workers:
            if backend is not None:
                backend.close()
            store.close()
    return 0


def _print_job_result(job: dict, *, csv: bool) -> None:
    """Render a finished job's payload the way the direct commands would."""
    from repro.experiments.reporting import ResultTable
    from repro.service.client import ServiceClient

    result = job.get("result") or {}
    if result.get("type") == "campaign":
        table = ServiceClient.campaign_result(job).to_table()
    elif result.get("type") == "table":
        table = ResultTable(
            title=result["title"], columns=list(result["columns"]),
            rows=[dict(row) for row in result["rows"]],
        )
    else:
        print(job)
        return
    print(table.to_csv() if csv else table.to_text())


def _cmd_submit(args: argparse.Namespace) -> int:
    from repro.service.client import ServiceClient, ServiceError

    if (args.spec is None) == (args.experiment is None):
        raise SystemExit("provide either a ScenarioSpec JSON file or --experiment ID")
    client = ServiceClient(args.url)
    try:
        if args.experiment is not None:
            job = client.submit_experiment(args.experiment, engine=args.engine)
        else:
            try:
                with open(args.spec, "r", encoding="utf-8") as handle:
                    scenario = json.load(handle)
            except (OSError, json.JSONDecodeError) as exc:
                print(f"error: cannot read spec {args.spec!r}: {exc}", file=sys.stderr)
                return 1
            job = client.submit_campaign(scenario, chunk_size=args.chunk_size)
        reused = " (deduplicated: reusing an equivalent job)" if job["deduplicated"] else ""
        print(f"job {job['id']}: {job['state']}{reused}")
        if not args.wait:
            return 0
        # Live progress while waiting: overwrite one status line on a TTY,
        # print a line per observed change otherwise (CI logs stay readable).
        live = sys.stderr.isatty()
        printed_live_line = False

        def _show_progress(record: dict) -> None:
            nonlocal printed_live_line
            progress = record["progress"]
            total = progress["chunks_total"]
            detail = (
                f"{progress['chunks_done']}/{total} chunks" if total else "waiting"
            )
            line = f"job {record['id']}: {record['state']} ({detail})"
            if live:
                print(f"\r{line:<70s}", end="", file=sys.stderr, flush=True)
                printed_live_line = True
            else:
                print(line, file=sys.stderr)

        try:
            # stream=True follows the gateway's SSE progress events (no
            # polling); against the threaded server it falls back to polling.
            job = client.wait(
                job["id"], timeout=args.timeout, on_progress=_show_progress,
                stream=True,
            )
        finally:
            if printed_live_line:
                print(file=sys.stderr)
    except ServiceError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    if job["state"] != "done":
        detail = f": {job['error']}" if job.get("error") else ""
        print(f"job {job['id']} {job['state']}{detail}", file=sys.stderr)
        return 1
    _print_job_result(job, csv=args.csv)
    return 0


def _cmd_jobs(args: argparse.Namespace) -> int:
    from repro.service.client import ServiceClient, ServiceError

    client = ServiceClient(args.url)
    try:
        if args.id is None:
            if args.cancel:
                raise SystemExit("--cancel requires a job id")
            if args.trace:
                raise SystemExit("--trace requires a job id")
            records = client.jobs(state=args.state)
            if not records:
                print("no jobs")
                return 0
            header = f"{'id':<16s}  {'kind':<10s}  {'state':<9s}  {'progress':<9s}"
            if args.stats:
                header += f"  {'queue_s':>8s}  {'compute_s':>9s}  {'cache_s':>8s}"
            print(header + "  error")
            for job in records:
                progress = job["progress"]
                total = progress["chunks_total"]
                shown = f"{progress['chunks_done']}/{total}" if total else "-"
                line = (f"{job['id']:<16s}  {job['kind']:<10s}  {job['state']:<9s}  "
                        f"{shown:<9s}")
                if args.stats:
                    line += "  " + _format_phases(job["timings"].get("phases"))
                print(line + f"  {job.get('error') or ''}")
            return 0
        if args.cancel:
            job = client.cancel(args.id)
            print(f"job {job['id']}: {job['state']}"
                  + (" (cancellation requested)" if job["state"] == "running" else ""))
            return 0
        if args.trace:
            from repro.obs.tracing import render_span_tree

            trace = client.job_trace(args.id)
            print(f"job {args.id}: trace {trace['correlation_id']} "
                  f"({len(trace['spans'])} spans"
                  + (f", {trace['dropped']} dropped" if trace.get("dropped") else "")
                  + ")")
            print(render_span_tree(trace["spans"]))
            return 0
        job = client.job(args.id)
    except ServiceError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    if args.stats:
        phases = (job.get("timings") or {}).get("phases")
        print(f"job {job['id']}: {job['state']}")
        if phases is None:
            print("no timing breakdown yet (recorded when the job executes)")
        else:
            total = sum(phases.values())
            for name in ("queue_wait_s", "compute_s", "cache_s"):
                value = phases.get(name, 0.0)
                share = f"{100.0 * value / total:5.1f}%" if total > 0 else "    -"
                print(f"  {name:<13s}: {value:10.4f}s  {share}")
        return 0
    print(json.dumps(job, indent=2, sort_keys=True))
    return 0


def _format_phases(phases: Optional[dict]) -> str:
    """The fixed-width queue/compute/cache cell of a ``jobs --stats`` row."""
    if not phases:
        return f"{'-':>8s}  {'-':>9s}  {'-':>8s}"
    return (f"{phases.get('queue_wait_s', 0.0):8.3f}  "
            f"{phases.get('compute_s', 0.0):9.3f}  "
            f"{phases.get('cache_s', 0.0):8.3f}")


def _cmd_debug(args: argparse.Namespace) -> int:
    from repro.service.client import ServiceClient, ServiceError

    client = ServiceClient(args.url)
    try:
        flight = client.debug_flight(kind=args.kind)
    except ServiceError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    if args.json:
        print(json.dumps(flight, indent=2, sort_keys=True))
        return 0
    print(f"flight recorder: {len(flight['events'])} of {flight['recorded_total']} "
          f"events retained (capacity {flight['capacity']}, "
          f"{flight['dropped']} overwritten)")
    for event in flight["events"]:
        kind = event["kind"]
        if kind == "span":
            detail = (f"{event.get('name', '?'):<24s} "
                      f"{event.get('duration_s', 0.0):9.4f}s")
            attrs = event.get("attrs") or {}
            detail += "".join(f"  {k}={v}" for k, v in attrs.items())
        else:
            detail = f"{event.get('level', '?')}: {event.get('event', '?')}"
            if event.get("error"):
                detail += f"  {event['error']}"
        correlation = event.get("correlation_id") or "-"
        print(f"  [{event['seq']:>6d}] {event['ts']:.3f}  {kind:<5s}  "
              f"{correlation:<16s}  {detail}")
    return 0


def _cmd_metrics(args: argparse.Namespace) -> int:
    from repro.service.client import ServiceClient, ServiceError

    client = ServiceClient(args.url)
    try:
        if args.json:
            print(json.dumps(client.metrics(), indent=2, sort_keys=True))
        else:
            print(client.metrics_text(), end="")
    except ServiceError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    return 0


def _cmd_bench_history(args: argparse.Namespace) -> int:
    # Lazy import: developer tooling, like `repro lint`.
    from repro.perf_history import load_history, render_trends

    try:
        records = load_history(args.history)
    except OSError as error:
        print(f"cannot read {args.history}: {error}", file=sys.stderr)
        return 1
    print(render_trends(records, bench=args.bench, mode=args.mode, last=args.last))
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    # Lazy import: the lint engine is developer tooling and the other
    # sub-commands must not pay for it.
    from repro.devtools.engine import run as run_lint

    select = args.select.split(",") if args.select else None
    return run_lint(
        args.paths, json_output=args.json, select=select,
        list_rules=args.list_rules,
    )


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point for the ``repro`` console script."""
    parser = build_parser()
    args = parser.parse_args(argv)
    handlers = {
        "solve-chain": _cmd_solve_chain,
        "solve-dag": _cmd_solve_dag,
        "simulate": _cmd_simulate,
        "experiment": _cmd_experiment,
        "serve": _cmd_serve,
        "submit": _cmd_submit,
        "jobs": _cmd_jobs,
        "debug": _cmd_debug,
        "metrics": _cmd_metrics,
        "bench-history": _cmd_bench_history,
        "lint": _cmd_lint,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover - exercised through the console script
    sys.exit(main())
