"""Vectorized NumPy kernels shared by the analytic checkpoint-placement solvers.

The chain DP (Proposition 3), its budget-constrained variant and the DAG
linearize-then-place solver all share the same transition structure: a DP row
``x`` examines every candidate segment end ``j in {x, .., n-1}`` and charges
the Proposition 1 cost::

    cost(x, j) = e^{lambda R} (1/lambda + D) (e^{lambda (W_{x..j} + C_j)} - 1)

The scalar references evaluate that expression one ``(x, j)`` cell at a time
through :func:`~repro.core.expected_time.expected_completion_time`; the
kernels here evaluate each row's entire ``j``-vector as one closed-form NumPy
expression over prefix sums of the work array, followed by a single
``argmin``.  Because :mod:`repro.core.expected_time` routes its
transcendentals through the *same* NumPy ufuncs these kernels apply to
arrays, and every remaining operation (subtract, add, multiply, compare) is
an IEEE-754 elementwise op in the scalar references' exact order, the kernel
tables are **bit-identical** to the scalar loops: same values, same
first-lowest-index argmin choices.

Overflow follows the references' convention: a transition whose exponent
exceeds ``_MAX_EXPONENT`` would make ``expected_completion_time`` raise
``OverflowError``, which the DP loops map to ``+inf`` ("this candidate is
never optimal"); the kernels mask those entries to ``+inf`` directly.
"""

from __future__ import annotations

import math
from typing import Callable, Optional, Sequence, Tuple

import numpy as np

from repro.core.expected_time import _MAX_EXPONENT

__all__ = [
    "resolve_dp_method",
    "row_transition_values",
    "chain_dp_tables",
    "budget_dp_tables",
    "budget_dp_streaming",
    "reconstruct_positions",
]

#: Below this many tasks the per-row ufunc dispatch overhead makes the NumPy
#: kernels slower than the plain-Python reference loops (crossover measured
#: at n ~ 17 in the 1-core CI container; both paths are bit-identical, so the
#: switch is purely a performance decision).
AUTO_MIN_TASKS = 18

_METHODS = ("auto", "vectorized", "reference")


def resolve_dp_method(method: str, n: int) -> str:
    """Resolve a ``method=`` argument to ``"vectorized"`` or ``"reference"``.

    ``"auto"`` (every solver's default) picks the vectorized kernel for
    instances of :data:`AUTO_MIN_TASKS` tasks or more and the scalar
    reference below that, where the Python loop is faster.
    """
    if method not in _METHODS:
        raise ValueError(f"unknown method {method!r}; expected one of {_METHODS}")
    if method == "auto":
        return "vectorized" if n >= AUTO_MIN_TASKS else "reference"
    return method


def row_transition_values(
    factor: float,
    exponents: np.ndarray,
    best_tail: np.ndarray,
    out: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Transition values ``cost(x, j) + best[j + 1]`` for one DP row.

    ``factor`` is the row constant ``e^{lambda R} (1/lambda + D)``,
    ``exponents[k]`` is ``lambda (W_{x..x+k} + C_{x+k})`` and ``best_tail[k]``
    is ``best[x + k + 1]``.  Entries whose exponent exceeds the overflow
    threshold come out ``+inf``, exactly as the scalar loops'
    ``OverflowError -> inf`` mapping.
    """
    over = exponents > _MAX_EXPONENT
    clipped = np.minimum(exponents, _MAX_EXPONENT) if over.any() else exponents
    values = np.expm1(clipped, out=out)
    # factor * expm1 may overflow to +inf even below the exponent threshold
    # (the scalar reference's Python-float product does the same, silently);
    # +inf is the correct "never optimal" value either way.
    with np.errstate(over="ignore"):
        values *= factor
    values[over] = np.inf
    values += best_tail
    return values


def reconstruct_positions(
    choice: Sequence[int], n: int, final_checkpoint: bool
) -> Tuple[int, ...]:
    """Checkpoint positions from a table of segment-end choices.

    Follows ``choice[x]`` from position 0; the last segment's end is not a
    checkpoint position when ``final_checkpoint`` is False.  Shared by the
    chain DP and the DAG placement DP, for both execution paths.
    """
    positions = []
    x = 0
    while x < n:
        j = int(choice[x])
        is_last_segment = j == n - 1
        if not (is_last_segment and not final_checkpoint):
            positions.append(j)
        x = j + 1
    return tuple(positions)


def _row_factor(rate: float, downtime: float, recovery: float) -> float:
    """Row constant ``e^{lambda R} (1/lambda + D)``, ``+inf`` when ``lambda R`` overflows."""
    rec_exponent = rate * recovery
    if rec_exponent > _MAX_EXPONENT:
        return np.inf
    return float(np.exp(rec_exponent)) * (1.0 / rate + downtime)


def chain_dp_tables(
    prefix: np.ndarray,
    checkpoint_costs: np.ndarray,
    recovery_for_row: Callable[[int], float],
    downtime: float,
    rate: float,
    *,
    final_checkpoint: bool = True,
) -> Tuple[np.ndarray, np.ndarray]:
    """Bottom-up tables of the unbudgeted placement DP, one vector op row at a time.

    Parameters
    ----------
    prefix:
        Work prefix sums ``P[0..n]`` (``P[0] = 0``).
    checkpoint_costs:
        Cost ``C_j`` charged when a segment ends after position ``j``.
    recovery_for_row:
        ``recovery_for_row(x)`` is the recovery cost in effect for a segment
        starting at position ``x`` (i.e. rolling back to the checkpoint that
        precedes ``x``).
    final_checkpoint:
        When False the last position's checkpoint cost is dropped (the final
        segment ends without a checkpoint).

    Returns
    -------
    (best, choice):
        ``best[x]`` is the optimal expected time for positions ``x..n-1``
        (``best[n] = 0``); ``choice[x]`` the first-lowest-index optimal
        segment end for a segment starting at ``x`` (``n - 1`` when every
        candidate overflows, matching the scalar references' initialisation).
    """
    n = len(checkpoint_costs)
    ckpt_eff = np.ascontiguousarray(checkpoint_costs, dtype=float)
    if not final_checkpoint:
        ckpt_eff = ckpt_eff.copy()
        ckpt_eff[n - 1] = 0.0
    best = np.empty(n + 1)
    best[n] = 0.0
    choice = np.empty(n, dtype=np.int64)
    workspace = np.empty(n)
    for x in range(n - 1, -1, -1):
        factor = _row_factor(rate, downtime, recovery_for_row(x))
        if not np.isfinite(factor):
            best[x] = np.inf
            choice[x] = n - 1
            continue
        # lambda * (W + C) with the scalar loops' exact association:
        # work = prefix[j + 1] - prefix[x], then work + C_j, then rate * (..).
        exponents = rate * ((prefix[x + 1 :] - prefix[x]) + ckpt_eff[x:])
        values = row_transition_values(
            factor, exponents, best[x + 1 :], out=workspace[: n - x]
        )
        j = int(np.argmin(values))
        value = values[j]
        if value < np.inf:
            best[x] = value
            choice[x] = x + j
        else:
            best[x] = np.inf
            choice[x] = n - 1
    return best, choice


def budget_dp_tables(
    prefix: np.ndarray,
    checkpoint_costs: np.ndarray,
    recovery_for_row: Callable[[int], float],
    downtime: float,
    rate: float,
    budget_cap: int,
    *,
    final_checkpoint: bool = True,
) -> Tuple[np.ndarray, np.ndarray]:
    """Bottom-up tables of the budgeted chain DP, whole budget axis per row.

    State ``best[x, b]`` is the optimal expected time for tasks ``x..n-1``
    with at most ``b`` checkpoints remaining.  Each row computes its
    ``j``-vector of segment costs once (they do not depend on the budget) and
    then sweeps the entire budget dimension in one broadcast add + ``argmin``
    over the ``(j, b)`` value matrix.

    ``choice[x, b]`` is the chosen segment end, with the scalar reference's
    sentinels: ``n`` for "run to the end without a further checkpoint"
    (allowed only when ``final_checkpoint`` is False) and ``-1`` when no
    option is feasible.
    """
    n = len(checkpoint_costs)
    ckpt = np.ascontiguousarray(checkpoint_costs, dtype=float)
    best = np.full((n + 1, budget_cap + 1), np.inf)
    choice = np.full((n + 1, budget_cap + 1), -1, dtype=np.int64)
    best[n, :] = 0.0
    for x in range(n - 1, -1, -1):
        factor = _row_factor(rate, downtime, recovery_for_row(x))
        if np.isfinite(factor):
            exponents = rate * ((prefix[x + 1 :] - prefix[x]) + ckpt[x:])
            costs = row_transition_values(
                factor, exponents, np.zeros(n - x)
            )
        else:
            costs = np.full(n - x, np.inf)
        # Option 1 (no further checkpoint): available at every budget level,
        # evaluated first by the reference, so option 2 must strictly improve
        # on it to win.
        if not final_checkpoint:
            if np.isfinite(factor):
                tail_exponent = rate * ((prefix[n] - prefix[x]) + 0.0)
                tail_cost = (
                    factor * float(np.expm1(tail_exponent))
                    if tail_exponent <= _MAX_EXPONENT
                    else np.inf
                )
            else:
                tail_cost = np.inf
            if tail_cost < np.inf:
                best[x, :] = tail_cost
                choice[x, :] = n
        if budget_cap >= 1:
            # values[k, b-1] = cost(x, x+k) + best[x+k+1, b-1]: one broadcast
            # add covers every remaining budget level at once.
            values = costs[:, None] + best[x + 1 :, :budget_cap]
            j_rel = np.argmin(values, axis=0)  # first lowest index per budget
            vmin = values[j_rel, np.arange(budget_cap)]
            better = vmin < best[x, 1:]
            best[x, 1:] = np.where(better, vmin, best[x, 1:])
            choice[x, 1:] = np.where(better, x + j_rel, choice[x, 1:])
    return best, choice


#: Row-block size of the streaming budget DP, in matrix elements.  Each
#: column update walks the rows in blocks whose cost matrices hold at most
#: this many floats, so the transient working set stays a few hundred KiB
#: regardless of instance size while the ufunc dispatch is still amortised
#: over whole blocks.
_STREAM_BLOCK_ELEMENTS = 4096


def _stream_tail_options(
    prefix: np.ndarray,
    factors: np.ndarray,
    rate: float,
    final_checkpoint: bool,
) -> Tuple[np.ndarray, np.ndarray]:
    """Per-row "run to the end without a checkpoint" baseline of the budget DP.

    Returns ``(tails, tail_choice)`` where ``tails[x]`` is the option-1 value
    the reference evaluates first (``+inf`` when a final checkpoint is
    required or the tail overflows) and ``tail_choice[x]`` the matching
    sentinel (``n`` for a checkpoint-free tail, ``-1`` otherwise).  Scalar
    evaluation order matches :func:`budget_dp_tables` exactly.
    """
    n = len(factors)
    tails = np.full(n, np.inf)
    tail_choice = np.full(n, -1, dtype=np.int64)
    if not final_checkpoint:
        for x in range(n):
            factor = factors[x]
            if not np.isfinite(factor):
                continue
            tail_exponent = rate * ((prefix[n] - prefix[x]) + 0.0)
            if tail_exponent > _MAX_EXPONENT:
                continue
            tail_cost = factor * float(np.expm1(tail_exponent))
            if tail_cost < np.inf:
                tails[x] = tail_cost
                tail_choice[x] = n
    return tails, tail_choice


def _stream_budget_column(
    prev_col: np.ndarray,
    out_col: np.ndarray,
    out_choice: Optional[np.ndarray],
    x_lo: int,
    tails: np.ndarray,
    tail_choice: np.ndarray,
    factors: np.ndarray,
    prefix: np.ndarray,
    ckpt: np.ndarray,
    rate: float,
) -> None:
    """One budget column of the streaming DP from the previous column.

    Fills ``out_col[x]`` (and, when reconstruction is recording,
    ``out_choice[x]``) for rows ``x in [x_lo, n)`` given the full previous
    budget level in ``prev_col``.  Rows are processed in blocks; every
    per-element operation (exponent association, overflow masking, the
    ``+ best[j+1, b-1]`` add, the first-lowest-index ``argmin`` and the
    strict-improvement compare against the option-1 baseline) replays
    :func:`budget_dp_tables` bit for bit.
    """
    n = len(ckpt)
    block_rows = max(1, _STREAM_BLOCK_ELEMENTS // max(1, n - x_lo))
    for r0 in range(x_lo, n, block_rows):
        r1 = min(r0 + block_rows, n)
        rows = np.arange(r0, r1)
        # lambda * (W + C) with the reference's exact association:
        # (prefix[j+1] - prefix[x]) + C_j, then * rate, per element.  Every
        # elementwise op runs in place so the live working set stays one
        # float block plus one bool mask.
        vals = prefix[None, r0 + 1 : n + 1] - prefix[rows, None]
        vals += ckpt[None, r0:n]
        vals *= rate
        over = vals > _MAX_EXPONENT
        np.minimum(vals, _MAX_EXPONENT, out=vals)
        np.expm1(vals, out=vals)
        with np.errstate(over="ignore", invalid="ignore"):
            vals *= factors[rows, None]
        vals[over] = np.inf
        # Padding (j < x) and overflowed-factor rows are "never optimal".
        np.less(np.arange(r0, n)[None, :], rows[:, None], out=over)
        vals[over] = np.inf
        vals[~np.isfinite(factors[rows]), :] = np.inf
        vals += prev_col[None, r0 + 1 : n + 1]
        jm = np.argmin(vals, axis=1)
        vmin = vals[np.arange(r1 - r0), jm]
        base = tails[rows]
        better = vmin < base
        out_col[r0:r1] = np.where(better, vmin, base)
        if out_choice is not None:
            out_choice[r0:r1] = np.where(better, jm + r0, tail_choice[rows])


def budget_dp_streaming(
    prefix: np.ndarray,
    checkpoint_costs: np.ndarray,
    recovery_for_row: Callable[[int], float],
    downtime: float,
    rate: float,
    budget_cap: int,
    *,
    final_checkpoint: bool = True,
) -> Tuple[float, Tuple[int, ...]]:
    """Budgeted chain DP with streamed columns instead of materialised tables.

    Identical recurrence and tie-breaking as :func:`budget_dp_tables`, but the
    budget axis is swept column by column with two rolling value vectors, so
    the ``O(n * budget)`` ``best``/``choice`` tables are never allocated.  For
    reconstruction the stream keeps a value column every ``ceil(sqrt(budget))``
    levels; walking the solution re-streams one inter-checkpoint block at a
    time over the (shrinking) remaining rows while recording that block's
    argmin choices.  Peak memory drops from ``O(n * budget)`` to
    ``O(n * sqrt(budget))`` -- a few value vectors plus one compact
    backpointer block -- at the cost of at most one extra streaming pass.

    Because each column update replays the reference's per-cell float ops in
    the same order (see :func:`_stream_budget_column`), the returned value and
    checkpoint positions are **bit-identical** to the table-based kernels and
    the scalar reference loops.

    Returns
    -------
    (best, positions):
        The optimal expected time for the whole chain at full budget, and the
        reconstructed checkpoint positions (empty when ``best`` is not
        finite; callers raise in that case).
    """
    n = len(checkpoint_costs)
    ckpt = np.ascontiguousarray(checkpoint_costs, dtype=float)
    prefix = np.ascontiguousarray(prefix, dtype=float)
    factors = np.array(
        [_row_factor(rate, downtime, recovery_for_row(x)) for x in range(n)]
    )
    tails, tail_choice = _stream_tail_options(prefix, factors, rate, final_checkpoint)

    # Budget level 0: only the checkpoint-free tail is available.
    col_a = np.empty(n + 1)
    col_b = np.empty(n + 1)
    col_a[:n] = tails
    col_a[n] = 0.0
    col_b[n] = 0.0

    restart_every = max(1, math.isqrt(max(budget_cap, 1)))
    saved: dict[int, np.ndarray] = {0: col_a.copy()}
    prev, cur = col_a, col_b
    for b in range(1, budget_cap + 1):
        _stream_budget_column(
            prev, cur, None, 0, tails, tail_choice, factors, prefix, ckpt, rate
        )
        cur[n] = 0.0
        if b % restart_every == 0 and b < budget_cap:
            saved[b] = cur.copy()
        prev, cur = cur, prev
    best_final = float(prev[0])
    if not math.isfinite(best_final):
        return best_final, ()

    # Reconstruction: replay one restart block at a time, recording its
    # choice columns, and follow the reference walk (budget decrements by one
    # per segment; sentinel ``n`` ends with a checkpoint-free tail).
    positions: list[int] = []
    x, b = 0, budget_cap
    blk_prev = np.empty(n + 1)
    blk_cur = np.empty(n + 1)
    while x < n:
        if b == 0:
            j = int(tail_choice[x])
        else:
            base = ((b - 1) // restart_every) * restart_every
            np.copyto(blk_prev, saved[base])
            choices: dict[int, np.ndarray] = {}
            for c in range(base + 1, b + 1):
                blk_cur[n] = 0.0
                record = np.full(n, -1, dtype=np.int32)
                _stream_budget_column(
                    blk_prev,
                    blk_cur,
                    record,
                    x,
                    tails,
                    tail_choice,
                    factors,
                    prefix,
                    ckpt,
                    rate,
                )
                choices[c] = record
                blk_prev, blk_cur = blk_cur, blk_prev
            while x < n and b > base:
                j = int(choices[b][x])
                if j == n or j < 0:
                    break
                positions.append(j)
                x = j + 1
                b -= 1
            else:
                continue
        if j == n:
            break
        raise AssertionError(
            "unreachable: finite budget DP value with an infeasible choice cell"
        )
    return best_final, tuple(positions)
