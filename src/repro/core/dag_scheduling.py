"""Checkpoint scheduling for arbitrary DAGs under full parallelism.

Under the paper's full-parallelism assumption, executing a general DAG amounts
to (i) choosing a linearisation (a topological order of the tasks) and (ii)
placing checkpoints in that linear sequence.  Proposition 2 shows that even
step (i)+(ii) for *independent* tasks is strongly NP-hard, so no polynomial
optimal algorithm is expected for general DAGs.  This module therefore
provides:

* :func:`linearize` -- a set of list-scheduling linearisation strategies
  (plain topological, heaviest-work-first, lightest-work-first,
  critical-path/bottom-level first, smallest-checkpoint-cost-first, random);
* an ``O(n^2)`` checkpoint-placement DP over a *fixed* linearisation,
  generalising the chain DP of Section 5 to position-dependent checkpoint and
  recovery costs -- including the frontier-dependent cost model of the first
  extension in Section 6 (checkpoint cost = aggregate of the live tasks'
  costs).  All linearisation orders run through the shared vectorized row
  kernel of :mod:`repro.core.dp_kernels` by default, with the plain-Python
  loops retained (bit-identically) as ``method="reference"``;
* :func:`schedule_dag` -- the production heuristic: try several linearisation
  strategies, optimally place checkpoints on each with the DP, keep the best;
* :func:`exhaustive_dag_schedule` -- exact optimum for tiny DAGs by
  enumerating every topological order (used for cross-validation in tests and
  experiment E10).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import networkx as nx
import numpy as np

from repro._validation import check_non_negative, check_positive
from repro.core.dp_kernels import (
    chain_dp_tables,
    reconstruct_positions,
    resolve_dp_method,
    row_transition_values,
)
from repro.core.expected_time import _MAX_EXPONENT, expected_completion_time
from repro.core.schedule import CheckpointPlan, Schedule
from repro.models.checkpoint import FrontierCheckpointCost
from repro.workflows.dag import Workflow

__all__ = [
    "DagScheduleResult",
    "LINEARIZATION_STRATEGIES",
    "linearize",
    "place_checkpoints_on_order",
    "schedule_dag",
    "exhaustive_dag_schedule",
]


# ----------------------------------------------------------------------
# Linearisation strategies
# ----------------------------------------------------------------------


def _list_schedule(
    workflow: Workflow,
    priority: Callable[[str], float],
) -> List[str]:
    """Generic list scheduling: repeatedly pick the ready task with the best priority.

    Lower priority value = scheduled earlier.  Ties are broken by task name
    for determinism.
    """
    graph = workflow.graph
    remaining_preds = {name: graph.in_degree(name) for name in graph.nodes}
    ready = sorted(n for n, deg in remaining_preds.items() if deg == 0)
    order: List[str] = []
    while ready:
        ready.sort(key=lambda name: (priority(name), name))
        chosen = ready.pop(0)
        order.append(chosen)
        for succ in graph.successors(chosen):
            remaining_preds[succ] -= 1
            if remaining_preds[succ] == 0:
                ready.append(succ)
    if len(order) != len(workflow):
        raise RuntimeError("list scheduling failed to order every task (corrupt DAG?)")
    return order


def _bottom_levels(workflow: Workflow) -> Dict[str, float]:
    """Bottom level of each task: longest work-weighted path from the task to a sink."""
    graph = workflow.graph
    levels: Dict[str, float] = {}
    for name in reversed(list(nx.topological_sort(graph))):
        succ_levels = [levels[s] for s in graph.successors(name)]
        levels[name] = workflow.task(name).work + (max(succ_levels) if succ_levels else 0.0)
    return levels


def _linearize_topological(workflow: Workflow, rng: Optional[np.random.Generator]) -> List[str]:
    return workflow.topological_order()


def _linearize_heaviest_first(
    workflow: Workflow, rng: Optional[np.random.Generator]
) -> List[str]:
    return _list_schedule(workflow, lambda name: -workflow.task(name).work)


def _linearize_lightest_first(
    workflow: Workflow, rng: Optional[np.random.Generator]
) -> List[str]:
    return _list_schedule(workflow, lambda name: workflow.task(name).work)


def _linearize_critical_path(
    workflow: Workflow, rng: Optional[np.random.Generator]
) -> List[str]:
    levels = _bottom_levels(workflow)
    return _list_schedule(workflow, lambda name: -levels[name])


def _linearize_cheapest_checkpoint_first(
    workflow: Workflow, rng: Optional[np.random.Generator]
) -> List[str]:
    return _list_schedule(workflow, lambda name: workflow.task(name).checkpoint_cost)


def _linearize_random(workflow: Workflow, rng: Optional[np.random.Generator]) -> List[str]:
    # schedule_dag always threads a seeded generator through here; a direct
    # call without one gets a fixed seed so the "random" linearisation is
    # still replayable (determinism contract: no ad-hoc entropy in core/).
    generator = rng if rng is not None else np.random.default_rng(0)
    jitter = {name: float(generator.uniform()) for name in workflow.task_names()}
    return _list_schedule(workflow, lambda name: jitter[name])


#: Registry of available linearisation strategies, by name.
LINEARIZATION_STRATEGIES: Dict[str, Callable[[Workflow, Optional[np.random.Generator]], List[str]]] = {
    "topological": _linearize_topological,
    "heaviest_first": _linearize_heaviest_first,
    "lightest_first": _linearize_lightest_first,
    "critical_path": _linearize_critical_path,
    "cheapest_checkpoint_first": _linearize_cheapest_checkpoint_first,
    "random": _linearize_random,
}


def linearize(
    workflow: Workflow,
    strategy: str = "critical_path",
    *,
    rng: Optional[np.random.Generator] = None,
) -> List[str]:
    """Produce a dependence-respecting execution order with the named strategy."""
    try:
        fn = LINEARIZATION_STRATEGIES[strategy]
    except KeyError as exc:
        raise ValueError(
            f"unknown linearisation strategy {strategy!r}; "
            f"available: {sorted(LINEARIZATION_STRATEGIES)}"
        ) from exc
    return fn(workflow, rng)


# ----------------------------------------------------------------------
# Checkpoint placement on a fixed order
# ----------------------------------------------------------------------


class _FrontierCostTables:
    """Precomputed frontier index arrays for one linearisation.

    :class:`~repro.models.checkpoint.FrontierCheckpointCost` makes the cost of
    a checkpoint after position ``j`` depend on the *live* tasks in the window
    ``(prev_ckpt, j]``.  Evaluated through the model that is one Python call
    per ``(row, j)`` cell -- each call re-validating the order and rebuilding
    the frontier set -- which dominated the DAG placement profile.  This class
    exploits the interval structure of liveness instead: a task at position
    ``p`` belongs to ``frontier_after(order, j)`` exactly for
    ``p <= j < live_end[p]``, where ``live_end[p]`` is the position of the
    task's last successor in the order (``n`` for exit tasks).  One sweep
    builds, for every ``j``, the name-sorted live members as padded
    ``(position, cost)`` index arrays; each DP row's whole checkpoint-cost
    vector then comes out of one masked NumPy pass.

    Bit-identity with the per-call model is preserved by construction:

    * ``combine=sum``: the model computes a left-to-right Python ``sum`` over
      the name-sorted live costs.  The masked row kernel zeroes the excluded
      entries and takes a ``cumsum`` along the same name order -- and
      ``v + 0.0 == v`` holds bitwise for every non-negative IEEE-754 value,
      so interleaving masked zeros reproduces the exact addition chain.
    * ``combine=max``: order-independent, so a masked ``max`` (fill
      ``-inf``) returns the identical float.

    Any other ``combine`` callable falls back to the per-call path.
    """

    __slots__ = ("n", "pos_pad", "cost_pad", "recoveries", "is_sum")

    #: ``combine`` callables with a bit-identical masked NumPy reduction.
    SUPPORTED_COMBINES = (sum, max)

    def __init__(
        self,
        workflow: Workflow,
        names: Sequence[str],
        model: FrontierCheckpointCost,
    ) -> None:
        n = len(names)
        self.n = n
        self.is_sum = model.combine is sum
        position = {name: p for p, name in enumerate(names)}
        ckpt_costs = [workflow.task(name).checkpoint_cost for name in names]
        rec_costs = [workflow.task(name).recovery_cost for name in names]
        # live_end[p]: exclusive end of the interval of positions j at which
        # the task at position p is live (has an unexecuted successor, or is
        # an exit task whose output is the application result).
        live_end = [n] * n
        for p, name in enumerate(names):
            succs = workflow.successors(name)
            if succs:
                live_end[p] = max(position[s] for s in succs)
        by_name = sorted(range(n), key=names.__getitem__)
        members: List[List[int]] = [
            [p for p in by_name if p <= j < live_end[p]] for j in range(n)
        ]
        max_k = max((len(m) for m in members), default=0)
        # Padded (j, k) arrays in name order; absent slots carry position -1
        # (filtered out by every ``pos >= x`` window mask) and cost 0.
        self.pos_pad = np.full((n, max_k), -1, dtype=np.int32)
        self.cost_pad = np.zeros((n, max_k))
        for j, mem in enumerate(members):
            self.pos_pad[j, : len(mem)] = mem
            self.cost_pad[j, : len(mem)] = [ckpt_costs[p] for p in mem]
        # Recovery depends on the full frontier only -- n scalar combines,
        # evaluated exactly as the model does (name-sorted Python reduce).
        self.recoveries = [
            float(model.combine([rec_costs[p] for p in mem])) if mem else 0.0
            for mem in members
        ]

    def cost_row(self, x: int) -> np.ndarray:
        """Checkpoint costs ``cost(x - 1, j)`` for every ``j in [x, n)``.

        One masked pass over the padded member arrays; see the class
        docstring for why the result is bit-identical to the per-call model.
        """
        mask = self.pos_pad[x:] >= x
        if self.is_sum:
            masked = np.where(mask, self.cost_pad[x:], 0.0)
            return np.cumsum(masked, axis=1)[:, -1]
        masked = np.where(mask, self.cost_pad[x:], -np.inf)
        return np.max(masked, axis=1)


@dataclass(frozen=True)
class DagScheduleResult:
    """Result of DAG checkpoint scheduling.

    Attributes
    ----------
    order:
        The linearised execution order.
    checkpoint_after:
        0-based positions (in ``order``) after which a checkpoint is taken.
    expected_makespan:
        Expected execution time of the schedule.
    strategy:
        Name of the linearisation strategy that produced the order
        ("exhaustive" for the exact solver).
    exact:
        True when every topological order was examined (guaranteed optimal for
        the given cost model).
    """

    workflow: Workflow
    order: Tuple[str, ...]
    checkpoint_after: Tuple[int, ...]
    expected_makespan: float
    strategy: str
    exact: bool
    initial_recovery: float
    checkpoint_model: Optional[FrontierCheckpointCost] = None

    @property
    def num_checkpoints(self) -> int:
        """Number of checkpoints in the schedule."""
        return len(self.checkpoint_after)

    def to_schedule(self) -> Schedule:
        """Materialise the result as a :class:`Schedule`."""
        plan = CheckpointPlan.from_positions(len(self.order), self.checkpoint_after)
        return Schedule(
            self.workflow,
            list(self.order),
            plan,
            initial_recovery=self.initial_recovery,
            checkpoint_model=self.checkpoint_model,
        )


def place_checkpoints_on_order(
    workflow: Workflow,
    order: Sequence[str],
    downtime: float,
    rate: float,
    *,
    initial_recovery: float = 0.0,
    checkpoint_model: Optional[FrontierCheckpointCost] = None,
    final_checkpoint: bool = True,
    method: str = "auto",
) -> Tuple[Tuple[int, ...], float]:
    """Optimal checkpoint placement for a *fixed* linearisation.

    Generalises the chain DP (Section 5) to position-dependent checkpoint and
    recovery costs.  With the default cost model (``checkpoint_model=None``)
    the checkpoint after position ``j`` costs the ``checkpoint_cost`` of the
    task at position ``j`` and rolling back to it costs that task's
    ``recovery_cost`` -- exactly the paper's base model.  With a
    :class:`FrontierCheckpointCost`, the checkpoint cost additionally depends
    on the position of the previous checkpoint (the set of live tasks in the
    window), which the DP handles because each subproblem is indexed by the
    position following the previous checkpoint.

    ``method`` selects the execution path (``"auto"``/``"vectorized"``/
    ``"reference"``, as in :func:`~repro.core.chain_dp.optimal_chain_checkpoints`):
    the vectorized path evaluates every linearisation through the same row
    kernel as the chain DP.  With a :class:`FrontierCheckpointCost` whose
    ``combine`` is ``sum`` or ``max``, the vectorized path additionally
    precomputes the order's live-frontier intervals once
    (:class:`_FrontierCostTables`) so each row's whole checkpoint-cost vector
    is one masked NumPy pass instead of per-cell Python model calls; custom
    ``combine`` callables keep the per-call path.  All paths are
    bit-identical.

    Returns the optimal checkpoint positions and the associated expected
    makespan.
    """
    downtime = check_non_negative("downtime", downtime)
    rate = check_positive("rate", rate)
    names = workflow.validate_order(order)
    n = len(names)
    works = [workflow.task(name).work for name in names]
    prefix = [0.0]
    for w in works:
        prefix.append(prefix[-1] + w)

    def checkpoint_cost(prev_ckpt: int, j: int) -> float:
        if checkpoint_model is not None:
            return checkpoint_model.cost(names, prev_ckpt, j)
        return workflow.task(names[j]).checkpoint_cost

    def recovery_cost(prev_ckpt: int) -> float:
        if prev_ckpt < 0:
            return initial_recovery
        if checkpoint_model is not None:
            return checkpoint_model.recovery(names, prev_ckpt)
        return workflow.task(names[prev_ckpt]).recovery_cost

    if resolve_dp_method(method, n) == "vectorized":
        frontier_tables = None
        recovery_fn = recovery_cost
        if checkpoint_model is not None and any(
            checkpoint_model.combine is c for c in _FrontierCostTables.SUPPORTED_COMBINES
        ):
            frontier_tables = _FrontierCostTables(workflow, names, checkpoint_model)
            # The tables' recoveries replay the model's name-sorted combine
            # exactly, but without re-validating the order n times.
            tables = frontier_tables

            def recovery_fn(prev_ckpt: int) -> float:
                if prev_ckpt < 0:
                    return initial_recovery
                return tables.recoveries[prev_ckpt]

        best, choice = _vectorized_order_tables(
            np.array(prefix),
            names,
            workflow,
            recovery_fn,
            checkpoint_model,
            downtime,
            rate,
            final_checkpoint,
            frontier_tables=frontier_tables,
        )
    else:
        best, choice = _reference_order_tables(
            prefix, n, checkpoint_cost, recovery_cost, downtime, rate, final_checkpoint
        )

    if not math.isfinite(best[0]):
        raise OverflowError(
            "even the best checkpoint placement on this order has an expected time "
            "that overflows float; check the failure rate and task durations"
        )

    return reconstruct_positions(choice, n, final_checkpoint), float(best[0])


def _reference_order_tables(
    prefix: Sequence[float],
    n: int,
    checkpoint_cost: Callable[[int, int], float],
    recovery_cost: Callable[[int], float],
    downtime: float,
    rate: float,
    final_checkpoint: bool,
) -> Tuple[List[float], List[int]]:
    """Scalar reference DP tables over a fixed order (pre-vectorization loops)."""
    # best[x] = optimal expected time for positions x..n-1 given that the
    # previous checkpoint sits right before position x (i.e. at position x-1,
    # or nowhere when x == 0).
    best: List[float] = [math.inf] * (n + 1)
    choice: List[int] = [-1] * n
    best[n] = 0.0
    for x in range(n - 1, -1, -1):
        prev_ckpt = x - 1
        recovery = recovery_cost(prev_ckpt)
        best_value = math.inf
        best_j = n - 1
        for j in range(x, n):
            work = prefix[j + 1] - prefix[x]
            if j == n - 1 and not final_checkpoint:
                ckpt = 0.0
            else:
                ckpt = checkpoint_cost(prev_ckpt, j)
            try:
                cost = expected_completion_time(work, ckpt, downtime, recovery, rate)
            except OverflowError:
                cost = math.inf
            value = cost + best[j + 1]
            if value < best_value:
                best_value = value
                best_j = j
        best[x] = best_value
        choice[x] = best_j
    return best, choice


def _vectorized_order_tables(
    prefix: np.ndarray,
    names: Sequence[str],
    workflow: Workflow,
    recovery_cost: Callable[[int], float],
    checkpoint_model: Optional[FrontierCheckpointCost],
    downtime: float,
    rate: float,
    final_checkpoint: bool,
    frontier_tables: Optional[_FrontierCostTables] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Vectorized DP tables over a fixed order, sharing the chain row kernel."""
    n = len(names)
    if checkpoint_model is None:
        # Base cost model: position-independent per-task costs, so every
        # linearisation runs through the exact chain kernel.
        ckpt_costs = np.array(
            [workflow.task(name).checkpoint_cost for name in names], dtype=float
        )
        return chain_dp_tables(
            prefix,
            ckpt_costs,
            lambda x: recovery_cost(x - 1),
            downtime,
            rate,
            final_checkpoint=final_checkpoint,
        )
    # Frontier model: the checkpoint cost of ending a segment depends on the
    # window (prev_ckpt, j].  With precomputed frontier tables each row's
    # whole cost vector is one masked NumPy pass; the per-call fallback
    # remains for custom ``combine`` callables.
    best = np.empty(n + 1)
    best[n] = 0.0
    choice = np.empty(n, dtype=np.int64)
    inv_plus_downtime = 1.0 / rate + downtime
    for x in range(n - 1, -1, -1):
        prev_ckpt = x - 1
        rec_exponent = rate * recovery_cost(prev_ckpt)
        if rec_exponent > _MAX_EXPONENT:
            best[x] = np.inf
            choice[x] = n - 1
            continue
        factor = float(np.exp(rec_exponent)) * inv_plus_downtime
        if frontier_tables is not None:
            ckpt_row = frontier_tables.cost_row(x)
            if not final_checkpoint:
                ckpt_row[-1] = 0.0
        else:
            ckpt_row = np.array(
                [
                    0.0
                    if (j == n - 1 and not final_checkpoint)
                    else checkpoint_model.cost(names, prev_ckpt, j)  # repro: noqa[perf-python-callback] -- per-call fallback for custom combine
                    for j in range(x, n)
                ]
            )
        exponents = rate * ((prefix[x + 1 :] - prefix[x]) + ckpt_row)
        values = row_transition_values(factor, exponents, best[x + 1 :])
        j = int(np.argmin(values))
        if values[j] < np.inf:
            best[x] = values[j]
            choice[x] = x + j
        else:
            best[x] = np.inf
            choice[x] = n - 1
    return best, choice


def schedule_dag(
    workflow: Workflow,
    downtime: float,
    rate: float,
    *,
    strategies: Optional[Sequence[str]] = None,
    initial_recovery: float = 0.0,
    checkpoint_model: Optional[FrontierCheckpointCost] = None,
    final_checkpoint: bool = True,
    num_random_orders: int = 4,
    rng: Optional[np.random.Generator] = None,
    seed: Optional[int] = None,
    method: str = "auto",
) -> DagScheduleResult:
    """Heuristic checkpoint scheduling of an arbitrary workflow DAG.

    Tries several linearisation strategies (all deterministic strategies by
    default plus ``num_random_orders`` random list-scheduling orders), places
    checkpoints optimally on each linearisation with the DP of
    :func:`place_checkpoints_on_order` (``method`` is forwarded, so every
    candidate order shares one vectorized kernel by default), and returns the
    best combination.
    """
    if len(workflow) == 0:
        raise ValueError("cannot schedule an empty workflow")
    if strategies is None:
        strategies = [s for s in LINEARIZATION_STRATEGIES if s != "random"]
    generator = rng if rng is not None else np.random.default_rng(seed)

    candidates: List[Tuple[str, List[str]]] = []
    for strategy in strategies:
        candidates.append((strategy, linearize(workflow, strategy, rng=generator)))
    for index in range(num_random_orders):
        candidates.append(
            (f"random#{index + 1}", linearize(workflow, "random", rng=generator))
        )

    best: Optional[DagScheduleResult] = None
    for strategy, order in candidates:
        positions, value = place_checkpoints_on_order(
            workflow,
            order,
            downtime,
            rate,
            initial_recovery=initial_recovery,
            checkpoint_model=checkpoint_model,
            final_checkpoint=final_checkpoint,
            method=method,
        )
        if best is None or value < best.expected_makespan:
            best = DagScheduleResult(
                workflow=workflow,
                order=tuple(order),
                checkpoint_after=positions,
                expected_makespan=value,
                strategy=strategy,
                exact=False,
                initial_recovery=initial_recovery,
                checkpoint_model=checkpoint_model,
            )
    assert best is not None
    return best


def exhaustive_dag_schedule(
    workflow: Workflow,
    downtime: float,
    rate: float,
    *,
    initial_recovery: float = 0.0,
    checkpoint_model: Optional[FrontierCheckpointCost] = None,
    final_checkpoint: bool = True,
    max_orders: int = 50_000,
    method: str = "auto",
) -> DagScheduleResult:
    """Exact optimum over every topological order (tiny DAGs only).

    Enumerates all topological orders of the DAG (up to ``max_orders``;
    raises if the DAG has more) and solves the checkpoint placement DP on each
    one.  The result is the true optimum for the given cost model, used to
    validate :func:`schedule_dag` in tests and experiment E10.
    """
    orders = workflow.all_topological_orders(limit=max_orders + 1)
    if len(orders) > max_orders:
        raise ValueError(
            f"the workflow has more than {max_orders} topological orders; "
            "exhaustive enumeration is not practical, use schedule_dag() instead"
        )
    best: Optional[DagScheduleResult] = None
    for order in orders:
        positions, value = place_checkpoints_on_order(
            workflow,
            order,
            downtime,
            rate,
            initial_recovery=initial_recovery,
            checkpoint_model=checkpoint_model,
            final_checkpoint=final_checkpoint,
            method=method,
        )
        if best is None or value < best.expected_makespan:
            best = DagScheduleResult(
                workflow=workflow,
                order=tuple(order),
                checkpoint_after=positions,
                expected_makespan=value,
                strategy="exhaustive",
                exact=True,
                initial_recovery=initial_recovery,
                checkpoint_model=checkpoint_model,
            )
    assert best is not None
    return best
