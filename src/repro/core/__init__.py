"""The paper's primary contribution: expected-time formula and checkpoint schedulers."""

from repro.core.expected_time import (
    bouguerra_expected_time,
    daly_first_order_period,
    daly_higher_order_period,
    expected_completion_time,
    expected_lost_time,
    expected_recovery_time,
    expected_segments_time,
    young_period,
)
from repro.core.schedule import CheckpointPlan, Schedule, Segment, expected_makespan
from repro.core.chain_dp import (
    ChainDPResult,
    dp_makespan_recursive,
    optimal_chain_checkpoints,
    optimal_chain_checkpoints_budget,
)
from repro.core.independent import (
    IndependentScheduleResult,
    balanced_grouping,
    exhaustive_independent_schedule,
    optimal_group_count,
    schedule_independent_tasks,
)
from repro.core.dag_scheduling import (
    DagScheduleResult,
    linearize,
    schedule_dag,
    exhaustive_dag_schedule,
)
from repro.core.moldable import MoldableScheduler, MoldableTask, AllocationResult

__all__ = [
    "expected_completion_time",
    "expected_lost_time",
    "expected_recovery_time",
    "expected_segments_time",
    "bouguerra_expected_time",
    "young_period",
    "daly_first_order_period",
    "daly_higher_order_period",
    "Schedule",
    "Segment",
    "CheckpointPlan",
    "expected_makespan",
    "ChainDPResult",
    "optimal_chain_checkpoints",
    "optimal_chain_checkpoints_budget",
    "dp_makespan_recursive",
    "IndependentScheduleResult",
    "schedule_independent_tasks",
    "exhaustive_independent_schedule",
    "balanced_grouping",
    "optimal_group_count",
    "DagScheduleResult",
    "schedule_dag",
    "linearize",
    "exhaustive_dag_schedule",
    "MoldableScheduler",
    "MoldableTask",
    "AllocationResult",
]
