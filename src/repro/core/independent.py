"""Scheduling independent tasks with checkpoints (the strongly NP-complete case).

Proposition 2 of the paper shows that deciding an order and checkpoint
positions for ``n`` independent tasks -- even with all checkpoint and recovery
costs equal to a constant ``C`` and no downtime -- is NP-complete in the
strong sense (reduction from 3-PARTITION).  With independent tasks and
constant costs, the execution order inside a group and the order of the groups
do not matter (the memoryless property makes groups exchangeable); all that
matters is the *partition of the tasks into checkpointed groups*: a group of
total work ``W_g`` costs ``e^{lambda R} (1/lambda + D)(e^{lambda (W_g + C)} -
1)`` by Proposition 1, and the convexity argument in the proof shows the best
partition into ``m`` groups balances the group works.

This module provides:

* :func:`exhaustive_independent_schedule` -- exact optimum by enumerating all
  set partitions (Bell-number many, practical up to n ~ 11-12), used as the
  ground truth in experiments E4/E5;
* :func:`optimal_group_count` -- the number of groups ``m`` minimising the
  relaxed (perfectly balanced, divisible) objective ``g(m)`` analysed in the
  NP-completeness proof;
* :func:`balanced_grouping` -- LPT-style balanced partition of the works into
  ``m`` groups;
* :func:`schedule_independent_tasks` -- the production heuristic: try every
  candidate group count, balance with LPT, then improve by local search
  (single-task moves and pairwise swaps).  For instances coming from a YES
  3-PARTITION instance this recovers the optimal partition in most cases,
  and it is never worse than checkpoint-after-every-task or a single final
  checkpoint because those placements are included in the candidate set.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro._validation import (
    check_non_negative,
    check_positive,
    check_sequence_of_positive,
)
from repro.core.dp_kernels import resolve_dp_method
from repro.core.expected_time import _MAX_EXPONENT, expected_completion_time
from repro.core.schedule import CheckpointPlan, Schedule
from repro.workflows.generators import make_independent

__all__ = [
    "IndependentScheduleResult",
    "grouping_expected_time",
    "exhaustive_independent_schedule",
    "optimal_group_count",
    "balanced_grouping",
    "schedule_independent_tasks",
]


@dataclass(frozen=True)
class IndependentScheduleResult:
    """Result of an independent-task scheduling run.

    Attributes
    ----------
    groups:
        The partition of task indices (0-based) into checkpointed groups, in
        execution order.
    expected_makespan:
        Expected execution time of the partition.
    works:
        The task works the instance was built from.
    checkpoint_cost, recovery_cost, downtime, rate, initial_recovery:
        The instance parameters.
    exact:
        True when the result comes from exhaustive enumeration (guaranteed
        optimal), False for heuristics.
    """

    groups: Tuple[Tuple[int, ...], ...]
    expected_makespan: float
    works: Tuple[float, ...]
    checkpoint_cost: float
    recovery_cost: float
    downtime: float
    rate: float
    initial_recovery: float
    exact: bool

    @property
    def num_checkpoints(self) -> int:
        """Number of checkpoints (one per group)."""
        return len(self.groups)

    def group_works(self) -> List[float]:
        """Total work of each group, in execution order."""
        return [sum(self.works[i] for i in group) for group in self.groups]

    def to_schedule(self) -> Schedule:
        """Materialise the partition as a :class:`Schedule` over an independent workflow."""
        workflow = make_independent(
            list(self.works),
            checkpoint_cost=self.checkpoint_cost,
            recovery_cost=self.recovery_cost,
        )
        names = workflow.task_names()
        order = [names[i] for group in self.groups for i in group]
        positions = []
        offset = 0
        for group in self.groups:
            offset += len(group)
            positions.append(offset - 1)
        plan = CheckpointPlan.from_positions(len(order), positions)
        return Schedule(workflow, order, plan, initial_recovery=self.initial_recovery)


def grouping_expected_time(
    groups: Sequence[Sequence[int]],
    works: Sequence[float],
    checkpoint_cost: float,
    recovery_cost: float,
    downtime: float,
    rate: float,
    *,
    initial_recovery: Optional[float] = None,
) -> float:
    """Expected makespan of a given partition of independent tasks into groups.

    Each group ends with a checkpoint of duration ``checkpoint_cost``.  A
    failure inside group ``i > 0`` rolls back to the previous group's
    checkpoint (recovery ``recovery_cost``); a failure inside the first group
    rolls back to the initial state (recovery ``initial_recovery``, defaulting
    to ``recovery_cost`` to match the symmetric setting of the NP-hardness
    proof).
    """
    works = list(works)
    check_non_negative("checkpoint_cost", checkpoint_cost)
    check_non_negative("recovery_cost", recovery_cost)
    check_non_negative("downtime", downtime)
    check_positive("rate", rate)
    first_recovery = recovery_cost if initial_recovery is None else initial_recovery
    check_non_negative("initial_recovery", first_recovery)

    seen: set = set()
    for group in groups:
        for index in group:
            if index in seen:
                raise ValueError(f"task index {index} appears in more than one group")
            if not 0 <= index < len(works):
                raise ValueError(f"task index {index} out of range 0..{len(works) - 1}")
            seen.add(index)
    if len(seen) != len(works):
        missing = sorted(set(range(len(works))) - seen)
        raise ValueError(f"tasks {missing} are not assigned to any group")
    if any(len(group) == 0 for group in groups):
        raise ValueError("groups must not be empty")

    total = 0.0
    for position, group in enumerate(groups):
        group_work = sum(works[i] for i in group)
        recovery = first_recovery if position == 0 else recovery_cost
        total += expected_completion_time(
            group_work, checkpoint_cost, downtime, recovery, rate
        )
    return total


#: Hard cap on set-partition enumeration.  The Bell numbers explode past a
#: dozen items (``B_13`` is ~27.6 million partitions, each evaluated in
#: ``O(n)``); beyond this the enumeration silently hangs for hours, so the
#: generator refuses outright instead.
MAX_PARTITION_ITEMS = 13


def _set_partitions(items: Sequence[int]) -> Iterable[List[List[int]]]:
    """Enumerate all set partitions of ``items`` (Bell-number many).

    Raises
    ------
    ValueError
        If ``items`` has more than :data:`MAX_PARTITION_ITEMS` elements --
        enumerating the ``B_n`` partitions of a larger set would appear to
        hang; use :func:`schedule_independent_tasks` for such instances.
    """
    items = list(items)
    if len(items) > MAX_PARTITION_ITEMS:
        raise ValueError(
            f"refusing to enumerate the set partitions of {len(items)} items: the Bell "
            f"number B_{len(items)} is astronomically large and the enumeration would "
            f"appear to hang (the cap is MAX_PARTITION_ITEMS={MAX_PARTITION_ITEMS}); use "
            "the schedule_independent_tasks() heuristic for larger instances"
        )
    return _set_partitions_unchecked(items)


def _set_partitions_unchecked(items: List[int]) -> Iterable[List[List[int]]]:
    if not items:
        yield []
        return
    first, rest = items[0], items[1:]
    for partition in _set_partitions_unchecked(rest):
        # Put `first` in its own new block...
        yield [[first]] + [list(block) for block in partition]
        # ...or add it to each existing block.
        for index in range(len(partition)):
            new_partition = [list(block) for block in partition]
            new_partition[index].insert(0, first)
            yield new_partition


def exhaustive_independent_schedule(
    works: Sequence[float],
    checkpoint_cost: float,
    recovery_cost: float,
    downtime: float,
    rate: float,
    *,
    initial_recovery: Optional[float] = None,
    max_tasks: int = 13,
) -> IndependentScheduleResult:
    """Exact optimal partition of independent tasks by exhaustive enumeration.

    Enumerates every set partition of the task indices (the order of groups
    and of tasks within a group is irrelevant with constant costs) and keeps
    the one with the smallest expected makespan.  The number of set partitions
    is the Bell number ``B_n`` (e.g. ``B_12 = 4 213 597``), so the function
    refuses instances larger than ``max_tasks`` -- and, whatever ``max_tasks``
    says, larger than :data:`MAX_PARTITION_ITEMS`, the hard enumeration cap
    enforced by the partition generator itself (raising ``max_tasks`` past it
    only changes which guard rejects the instance).
    """
    works = check_sequence_of_positive("works", works)
    n = len(works)
    if n > max_tasks:
        raise ValueError(
            f"exhaustive enumeration over {n} tasks would explore B_{n} partitions; "
            f"the limit is max_tasks={max_tasks}. Use schedule_independent_tasks() instead."
        )
    best_groups: Optional[List[List[int]]] = None
    best_value = math.inf
    for partition in _set_partitions(list(range(n))):
        value = grouping_expected_time(
            partition,
            works,
            checkpoint_cost,
            recovery_cost,
            downtime,
            rate,
            initial_recovery=initial_recovery,
        )
        if value < best_value:
            best_value = value
            best_groups = [sorted(block) for block in partition]
    assert best_groups is not None
    first_recovery = recovery_cost if initial_recovery is None else initial_recovery
    return IndependentScheduleResult(
        groups=tuple(tuple(g) for g in best_groups),
        expected_makespan=best_value,
        works=tuple(works),
        checkpoint_cost=float(checkpoint_cost),
        recovery_cost=float(recovery_cost),
        downtime=float(downtime),
        rate=float(rate),
        initial_recovery=float(first_recovery),
        exact=True,
    )


def optimal_group_count(
    total_work: float,
    checkpoint_cost: float,
    rate: float,
    *,
    max_groups: int,
) -> int:
    """Group count ``m`` minimising the relaxed objective ``g(m)`` of the proof.

    The NP-completeness proof shows that, for a perfectly balanced partition
    of a divisible total work ``nT`` into ``m`` groups, the expectation is
    proportional to ``g(m) = m (e^{lambda (W_total / m + C)} - 1)``, a convex
    function of ``m``.  This helper minimises ``g`` over the integers
    ``1..max_groups``; it is used to seed the heuristic search with a good
    candidate group count.
    """
    check_positive("total_work", total_work)
    check_non_negative("checkpoint_cost", checkpoint_cost)
    check_positive("rate", rate)
    if max_groups < 1:
        raise ValueError(f"max_groups must be >= 1, got {max_groups}")

    def g(m: int) -> float:
        exponent = rate * (total_work / m + checkpoint_cost)
        if exponent > 600.0:
            return math.inf
        return m * math.expm1(exponent)

    best_m = 1
    best_value = g(1)
    for m in range(2, max_groups + 1):
        value = g(m)
        if value < best_value:
            best_value = value
            best_m = m
    return best_m


def balanced_grouping(works: Sequence[float], num_groups: int) -> List[List[int]]:
    """Partition task indices into ``num_groups`` groups with balanced total works.

    Uses the Longest-Processing-Time (LPT) greedy rule: sort tasks by
    decreasing work and always assign the next task to the currently lightest
    group.  Groups are returned sorted by their indices for determinism.
    """
    works = check_sequence_of_positive("works", works)
    n = len(works)
    if not 1 <= num_groups <= n:
        raise ValueError(f"num_groups must be in 1..{n}, got {num_groups}")
    order = sorted(range(n), key=lambda i: works[i], reverse=True)
    groups: List[List[int]] = [[] for _ in range(num_groups)]
    loads = [0.0] * num_groups
    for index in order:
        lightest = min(range(num_groups), key=lambda g: loads[g])
        groups[lightest].append(index)
        loads[lightest] += works[index]
    return [sorted(group) for group in groups if group]


def _local_search(
    groups: List[List[int]],
    works: Sequence[float],
    checkpoint_cost: float,
    recovery_cost: float,
    downtime: float,
    rate: float,
    initial_recovery: Optional[float],
    max_iterations: int,
) -> Tuple[List[List[int]], float]:
    """Improve a partition by single-task moves and pairwise swaps."""

    def evaluate(candidate: List[List[int]]) -> float:
        cleaned = [g for g in candidate if g]
        return grouping_expected_time(
            cleaned,
            works,
            checkpoint_cost,
            recovery_cost,
            downtime,
            rate,
            initial_recovery=initial_recovery,
        )

    current = [list(g) for g in groups]
    current_value = evaluate(current)
    for _ in range(max_iterations):
        improved = False
        # Single-task moves between groups.
        for src in range(len(current)):
            for task_pos in range(len(current[src])):
                for dst in range(len(current)):
                    if dst == src or len(current[src]) == 1:
                        continue
                    candidate = [list(g) for g in current]
                    task = candidate[src].pop(task_pos)
                    candidate[dst].append(task)
                    value = evaluate(candidate)
                    if value < current_value - 1e-15:
                        current = [sorted(g) for g in candidate if g]
                        current_value = value
                        improved = True
                        break
                if improved:
                    break
            if improved:
                break
        if improved:
            continue
        # Pairwise swaps between groups.
        for src, dst in itertools.combinations(range(len(current)), 2):
            for i in range(len(current[src])):
                for j in range(len(current[dst])):
                    candidate = [list(g) for g in current]
                    candidate[src][i], candidate[dst][j] = (
                        candidate[dst][j],
                        candidate[src][i],
                    )
                    value = evaluate(candidate)
                    if value < current_value - 1e-15:
                        current = [sorted(g) for g in candidate]
                        current_value = value
                        improved = True
                        break
                if improved:
                    break
            if improved:
                break
        if not improved:
            break
    return [sorted(g) for g in current if g], current_value


def _local_search_vectorized(
    groups: List[List[int]],
    works: Sequence[float],
    checkpoint_cost: float,
    recovery_cost: float,
    downtime: float,
    rate: float,
    initial_recovery: Optional[float],
    max_iterations: int,
    *,
    use_cache: bool = True,
) -> Tuple[List[List[int]], float]:
    """First-improvement local search with incremental delta scoring.

    Explores the same neighbourhood in the same order as :func:`_local_search`
    (single-task moves by ``(src, position, dst)``, then pairwise swaps by
    ``(src, dst, i, j)``) but scores every candidate of a round as one NumPy
    batch: a candidate only changes two groups, so its value is
    ``current + delta`` with ``delta`` built from the per-group Proposition 1
    costs -- no ``O(m)`` re-summation per candidate.  Accepted moves are
    re-evaluated in full (like the reference) so rounding never accumulates.

    With ``use_cache=True`` (the default) the per-group cost columns persist
    across rounds: an accepted move or swap only changes two groups, so only
    those two groups' move columns (and the swap-pair blocks touching them)
    are recomputed next round; every other group's columns are reused
    verbatim.  The group count never changes during the search (moves are
    forbidden from emptying a group and swaps preserve sizes), so group
    indices are stable cache keys.  All cached values are produced by the
    same elementwise expressions as a from-scratch round, so cached and
    uncached searches are bit-identical; ``use_cache=False`` simply marks
    every group dirty each round, which property tests use to pin that.

    One deliberate divergence from the reference: a candidate whose group
    exponent overflows is scored ``+inf`` (never accepted) instead of raising
    ``OverflowError`` out of the search like
    :func:`~repro.core.expected_time.expected_completion_time` does when the
    reference evaluates such a candidate in full.
    """

    works_arr = np.asarray(works, dtype=float)
    works_list = list(works)
    first_recovery = recovery_cost if initial_recovery is None else initial_recovery
    inv_plus_downtime = 1.0 / rate + downtime

    def evaluate(candidate: List[List[int]]) -> float:
        """Full re-evaluation of an accepted candidate, reference bits.

        Same accumulation loop as :func:`grouping_expected_time` (Python
        left-to-right sum of per-group :func:`expected_completion_time`
        values) minus the partition validation -- the search only produces
        valid partitions, and the instance parameters were validated by the
        initial :func:`grouping_expected_time` call below.
        """
        total = 0.0
        position = 0
        for group in candidate:
            if not group:
                continue
            group_work = sum(works_list[i] for i in group)
            recovery = first_recovery if position == 0 else recovery_cost
            total += expected_completion_time(
                group_work, checkpoint_cost, downtime, recovery, rate
            )
            position += 1
        return total

    def recovery_factor(recovery: float) -> float:
        # When lambda * R overflows the very first full evaluation below
        # raises OverflowError (same as the reference), so +inf never spreads.
        exponent = rate * recovery
        if exponent > _MAX_EXPONENT:
            return np.inf
        return float(np.exp(exponent)) * inv_plus_downtime

    factor_first = recovery_factor(first_recovery)
    factor_rest = recovery_factor(recovery_cost)

    def group_costs(new_works: np.ndarray, factors: np.ndarray) -> np.ndarray:
        """Proposition 1 cost of each candidate group, ``+inf`` on overflow."""
        exponents = rate * (new_works + checkpoint_cost)
        over = exponents > _MAX_EXPONENT
        if over.any():
            exponents = np.minimum(exponents, _MAX_EXPONENT)
        with np.errstate(over="ignore"):
            costs = factors * np.expm1(exponents)
        if over.any():
            costs = np.where(over, np.inf, costs)
        return costs

    current = [list(g) for g in groups]
    # The initial evaluation goes through the validating entry point so bad
    # instance parameters raise exactly as the reference search would.
    current_value = grouping_expected_time(
        [g for g in current if g],
        works,
        checkpoint_cost,
        recovery_cost,
        downtime,
        rate,
        initial_recovery=initial_recovery,
    )
    n = works_arr.size
    m = len(current)
    factors = np.full(m, factor_rest)
    factors[0] = factor_first

    # Per-group cache (group indices are stable: the group count never
    # changes mid-search).  ``dirty`` holds the groups whose columns must be
    # (re)built this round -- initially all of them.
    dirty = set(range(m))
    group_works = np.empty(m)
    e_cur = np.empty(m)
    # minus_blocks[g][k]: cost of group g without its k-th task.
    minus_blocks: List[np.ndarray] = [np.empty(0)] * m
    # plus_blocks[g][k, d]: cost of group d with group g's k-th task added.
    plus_blocks: List[np.ndarray] = [np.empty((0, m))] * m
    # swap_blocks[(src, dst)]: the (e_src, e_dst) matrices of the swap batch.
    swap_blocks: dict = {}

    for _ in range(max_iterations):
        if not use_cache:
            dirty = set(range(m))
            swap_blocks.clear()
        refresh = sorted(dirty)
        if refresh:
            for g in refresh:
                group_works[g] = sum(works_arr[i] for i in current[g])
            e_cur[refresh] = group_costs(group_works[refresh], factors[refresh])
            for g in refresh:
                w_g = works_arr[current[g]]
                minus_blocks[g] = group_costs(
                    group_works[g] - w_g, np.full(w_g.size, factors[g])
                )
                plus_blocks[g] = group_costs(
                    group_works[None, :] + w_g[:, None],
                    np.broadcast_to(factors, (w_g.size, m)),
                )
            clean = [g for g in range(m) if g not in dirty]
            if clean and len(refresh) < m:
                # Clean groups keep their rows; only the dirty destination
                # columns moved.  One batched call over every clean task --
                # elementwise, so identical to per-group recomputation.
                w_cat = np.concatenate([works_arr[current[g]] for g in clean])
                cols = group_costs(
                    group_works[refresh][None, :] + w_cat[:, None],
                    np.broadcast_to(factors[refresh], (w_cat.size, len(refresh))),
                )
                offset = 0
                for g in clean:
                    size = len(current[g])
                    plus_blocks[g][:, refresh] = cols[offset : offset + size]
                    offset += size
            dirty = set()

        sizes = np.array([len(g) for g in current], dtype=np.int64)
        g_t = np.repeat(np.arange(m), sizes)

        improved = False
        if m > 1:
            # --- Single-task moves: delta[t, d] for moving task t (rows in
            # the reference's (src, position) order) into group d (columns).
            # Row-major flattening therefore reproduces the reference's exact
            # candidate order, so "first improving" picks the same move.
            e_src_minus = np.concatenate(minus_blocks)
            e_dst_plus = np.vstack(plus_blocks)
            delta = (e_src_minus - e_cur[g_t])[:, None] + (e_dst_plus - e_cur[None, :])
            delta[np.arange(n), g_t] = np.inf  # dst == src
            delta[sizes[g_t] == 1, :] = np.inf  # the reference never empties a group
            improving = delta < -1e-15
            if improving.any():
                flat = int(np.argmax(improving))
                t_row, dst = divmod(flat, m)
                src = int(g_t[t_row])
                # Position of the task within its group (rows are grouped by
                # src in order, so subtract the offset of src's first row).
                task_pos = int(t_row - int(np.concatenate(([0], np.cumsum(sizes)))[src]))
                candidate = [list(g) for g in current]
                task = candidate[src].pop(task_pos)
                candidate[dst].append(task)
                current_value = evaluate(candidate)
                current = [sorted(g) for g in candidate if g]
                dirty = {src, dst}
                swap_blocks = {
                    pair: blocks
                    for pair, blocks in swap_blocks.items()
                    if src not in pair and dst not in pair
                }
                improved = True
        if improved:
            continue

        # --- Pairwise swaps, batched per group pair in the reference's
        # (src, dst) order; within a pair the (i, j) delta matrix flattens
        # row-major to the reference's inner order.
        for src, dst in itertools.combinations(range(m), 2):
            cached = swap_blocks.get((src, dst))
            if cached is None:
                wi = works_arr[current[src]]
                wj = works_arr[current[dst]]
                src_new = (group_works[src] - wi)[:, None] + wj[None, :]
                dst_new = (group_works[dst] - wj)[None, :] + wi[:, None]
                e_src = group_costs(src_new, np.full(src_new.shape, factors[src]))
                e_dst = group_costs(dst_new, np.full(dst_new.shape, factors[dst]))
                swap_blocks[(src, dst)] = (e_src, e_dst)
            else:
                e_src, e_dst = cached
            delta = (e_src - e_cur[src]) + (e_dst - e_cur[dst])
            improving = delta < -1e-15
            if improving.any():
                i, j = divmod(int(np.argmax(improving)), delta.shape[1])
                candidate = [list(g) for g in current]
                candidate[src][i], candidate[dst][j] = (
                    candidate[dst][j],
                    candidate[src][i],
                )
                current_value = evaluate(candidate)
                current = [sorted(g) for g in candidate]
                dirty = {src, dst}
                swap_blocks = {
                    pair: blocks
                    for pair, blocks in swap_blocks.items()
                    if src not in pair and dst not in pair
                }
                improved = True
                break
        if not improved:
            break
    return [sorted(g) for g in current if g], current_value


def schedule_independent_tasks(
    works: Sequence[float],
    checkpoint_cost: float,
    recovery_cost: float,
    downtime: float,
    rate: float,
    *,
    initial_recovery: Optional[float] = None,
    group_counts: Optional[Iterable[int]] = None,
    local_search_iterations: int = 200,
    method: str = "auto",
) -> IndependentScheduleResult:
    """Heuristic scheduler for independent tasks with constant checkpoint costs.

    The strategy follows the structure revealed by the NP-completeness proof:
    the optimum partitions the tasks into groups of near-equal works, with a
    group count close to the minimiser of the convex relaxed objective
    ``g(m)``.  For each candidate group count (by default, all of ``1..n``),
    an LPT balanced partition is built and then improved by local search; the
    best partition over all candidates is returned.

    This is a heuristic -- the problem is strongly NP-hard -- but it always
    dominates the trivial strategies (a single checkpoint at the end, and a
    checkpoint after every task) because both are among the candidates.

    ``method`` picks the local-search implementation: ``"auto"`` (default)
    batches every candidate move/swap of a round through the incremental
    NumPy scoring of :func:`_local_search_vectorized` on large instances and
    keeps the plain reference loops on small ones; ``"vectorized"`` /
    ``"reference"`` force one.  Both explore the same first-improvement
    neighbourhood in the same order.
    """
    works = check_sequence_of_positive("works", works)
    n = len(works)
    local_search = (
        _local_search_vectorized
        if resolve_dp_method(method, n) == "vectorized"
        else _local_search
    )
    if group_counts is None:
        if n <= 20:
            candidates = list(range(1, n + 1))
        else:
            # For larger instances, trying every group count with local search
            # is wasteful: the convexity analysis of the proof says the optimum
            # sits near the minimiser of g(m), so search a window around it
            # (plus the two trivial extremes so the heuristic always dominates
            # "one group" and "all singletons").
            centre = optimal_group_count(
                sum(works), checkpoint_cost, rate, max_groups=n
            )
            window = range(max(1, centre - 5), min(n, centre + 5) + 1)
            candidates = sorted(set(window) | {1, n})
    else:
        candidates = sorted(set(group_counts))
        for m in candidates:
            if not 1 <= m <= n:
                raise ValueError(f"group count {m} out of range 1..{n}")
        if not candidates:
            raise ValueError("group_counts must not be empty")

    best_groups: Optional[List[List[int]]] = None
    best_value = math.inf
    for m in candidates:
        groups = balanced_grouping(works, m)
        groups, value = local_search(
            groups,
            works,
            checkpoint_cost,
            recovery_cost,
            downtime,
            rate,
            initial_recovery,
            local_search_iterations,
        )
        if value < best_value:
            best_value = value
            best_groups = groups
    assert best_groups is not None
    first_recovery = recovery_cost if initial_recovery is None else initial_recovery
    return IndependentScheduleResult(
        groups=tuple(tuple(g) for g in best_groups),
        expected_makespan=best_value,
        works=tuple(works),
        checkpoint_cost=float(checkpoint_cost),
        recovery_cost=float(recovery_cost),
        downtime=float(downtime),
        rate=float(rate),
        initial_recovery=float(first_recovery),
        exact=False,
    )
