"""Optimal checkpoint placement for linear chains (the paper's Algorithm 1).

For an application whose DAG is a linear chain ``T1 -> T2 -> ... -> Tn``, the
only decision is *after which tasks to checkpoint* (the order is forced).  The
paper's Proposition 3 shows this is solvable in polynomial time by dynamic
programming: ``DPMAKESPAN(x, n)`` is the optimal expected time to execute the
last ``n - x + 1`` tasks starting right after the checkpoint that precedes
task ``x``, and satisfies::

    DPMAKESPAN(x, n) = min over j in {x, .., n} of
        E[T(w_x + ... + w_j, C_j, D, R_{x-1}, lambda)] + DPMAKESPAN(j+1, n)

with ``DPMAKESPAN(n+1, n) = 0``, where ``E[T(...)]`` is the Proposition 1
closed form.  Memoising the ``n`` distinct subproblems, each examined in
``O(n)`` work, gives the ``O(n^2)`` complexity of Proposition 3.

Two implementations are provided:

* :func:`dp_makespan_recursive` -- a literal transcription of the paper's
  pseudo-code (memoised recursion, 1-based indices, returns the pair
  ``(best, numTask)`` like the paper's Algorithm 1).  Kept primarily for
  fidelity and cross-checking;
* :func:`optimal_chain_checkpoints` -- an equivalent bottom-up DP with prefix
  sums, iterative (no recursion-depth limit), which reconstructs the full
  checkpoint placement and returns a :class:`ChainDPResult`.  This is the
  production entry point.

Both force a checkpoint after the last task (the base case of the paper's
Algorithm 1 charges ``C_n``); pass ``final_checkpoint=False`` to drop it, e.g.
when the final result does not need to be saved.

The production solvers run on the vectorized row kernels of
:mod:`repro.core.dp_kernels` by default (``method="auto"``): each DP row's
whole transition vector is one closed-form NumPy expression over the work
prefix sums, and the budget DP additionally sweeps its entire budget axis per
row.  The plain-Python loops are retained as ``method="reference"``; both
paths are **bit-identical** -- same expected times, same first-lowest-index
tie-breaking -- which the property tests and the analytic-solver benchmark
assert on every run.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro._validation import check_non_negative, check_positive
from repro.core.dp_kernels import (
    budget_dp_streaming,
    budget_dp_tables,
    chain_dp_tables,
    reconstruct_positions,
    resolve_dp_method,
)
from repro.core.expected_time import expected_completion_time
from repro.core.schedule import CheckpointPlan, Schedule
from repro.workflows.chain import LinearChain

__all__ = [
    "ChainDPResult",
    "optimal_chain_checkpoints",
    "optimal_chain_checkpoints_budget",
    "dp_makespan_recursive",
]


def _segment_cost(
    work: float,
    checkpoint: float,
    downtime: float,
    recovery: float,
    rate: float,
) -> float:
    """Proposition 1 cost of one segment, mapping overflow to +inf.

    During the DP search some candidate segments may be absurdly long (e.g.
    the whole chain without any checkpoint on a very failure-prone platform);
    their expectation overflows ``float``.  Such candidates are simply never
    optimal, so we treat them as infinitely bad instead of aborting the
    search.
    """
    try:
        return expected_completion_time(work, checkpoint, downtime, recovery, rate)
    except OverflowError:
        return math.inf


@dataclass(frozen=True)
class ChainDPResult:
    """Result of the linear-chain dynamic program.

    Attributes
    ----------
    expected_makespan:
        Optimal expected execution time of the chain.
    checkpoint_after:
        0-based indices of the tasks after which a checkpoint is taken, in
        increasing order.
    chain:
        The chain that was solved (kept so the result can rebuild a
        :class:`~repro.core.schedule.Schedule`).
    downtime, rate:
        The failure parameters the chain was solved for.
    """

    expected_makespan: float
    checkpoint_after: Tuple[int, ...]
    chain: LinearChain
    downtime: float
    rate: float

    @property
    def num_checkpoints(self) -> int:
        """Number of checkpoints in the optimal placement."""
        return len(self.checkpoint_after)

    def to_schedule(self) -> Schedule:
        """Materialise the optimal placement as a :class:`Schedule`."""
        return Schedule.for_chain(self.chain, self.checkpoint_after)

    def plan(self) -> CheckpointPlan:
        """The optimal placement as a :class:`CheckpointPlan`."""
        return CheckpointPlan.from_positions(self.chain.n, self.checkpoint_after)


def _reference_chain_tables(
    chain: LinearChain,
    downtime: float,
    rate: float,
    final_checkpoint: bool,
) -> Tuple[List[float], List[int]]:
    """Scalar reference DP tables (the pre-vectorization nested loops)."""
    n = chain.n
    prefix = chain.prefix_work()

    # best[x] = optimal expected time for tasks x..n-1 (0-based), starting
    # right after the checkpoint preceding task x; best[n] = 0.
    best: List[float] = [math.inf] * (n + 1)
    choice: List[int] = [-1] * n
    best[n] = 0.0

    for x in range(n - 1, -1, -1):
        recovery = chain.recovery_before(x)
        best_value = math.inf
        best_j = n - 1
        for j in range(x, n):
            work = prefix[j + 1] - prefix[x]
            if j == n - 1 and not final_checkpoint:
                ckpt_cost = 0.0
            else:
                ckpt_cost = chain.checkpoint_costs[j]
            cost = _segment_cost(work, ckpt_cost, downtime, recovery, rate)
            value = cost + best[j + 1]
            if value < best_value:
                best_value = value
                best_j = j
        best[x] = best_value
        choice[x] = best_j
    return best, choice


def optimal_chain_checkpoints(
    chain: LinearChain,
    downtime: float,
    rate: float,
    *,
    final_checkpoint: bool = True,
    method: str = "auto",
) -> ChainDPResult:
    """Optimal checkpoint placement for a linear chain (Proposition 3).

    Parameters
    ----------
    chain:
        The linear chain (works ``w_i``, checkpoint costs ``C_i``, recovery
        costs ``R_i``, initial recovery ``R_0``).
    downtime:
        Downtime ``D >= 0`` after each failure.
    rate:
        Platform failure rate ``lambda > 0``.
    final_checkpoint:
        When True (default, matching the paper's Algorithm 1), a checkpoint is
        always taken after the last task and its cost ``C_n`` is charged.
        When False, the final segment ends without a checkpoint.
    method:
        ``"auto"`` (default) solves each DP row as one vectorized NumPy
        transition vector on chains large enough to amortise the ufunc
        dispatch, and falls back to the plain-Python loops below that;
        ``"vectorized"`` / ``"reference"`` force one path.  Both are
        bit-identical (same values, same lowest-index tie-breaking).

    Returns
    -------
    ChainDPResult
        The optimal expected makespan and checkpoint positions.

    Notes
    -----
    Complexity is ``O(n^2)`` time and ``O(n)`` space, using prefix sums of the
    work array so each candidate segment cost is evaluated in ``O(1)``.
    """
    downtime = check_non_negative("downtime", downtime)
    rate = check_positive("rate", rate)
    n = chain.n
    if resolve_dp_method(method, n) == "vectorized":
        prefix = np.array(chain.prefix_work())
        best, choice = chain_dp_tables(
            prefix,
            np.array(chain.checkpoint_costs, dtype=float),
            chain.recovery_before,
            downtime,
            rate,
            final_checkpoint=final_checkpoint,
        )
    else:
        best, choice = _reference_chain_tables(chain, downtime, rate, final_checkpoint)

    if not math.isfinite(best[0]):
        raise OverflowError(
            "the optimal expected makespan overflows float: even the best checkpoint "
            "placement yields an astronomically large expectation; check the failure "
            "rate and task durations"
        )

    return ChainDPResult(
        expected_makespan=float(best[0]),
        checkpoint_after=reconstruct_positions(choice, n, final_checkpoint),
        chain=chain,
        downtime=downtime,
        rate=rate,
    )


def _reference_budget_tables(
    chain: LinearChain,
    downtime: float,
    rate: float,
    budget_cap: int,
    final_checkpoint: bool,
) -> Tuple[List[List[float]], List[List[int]]]:
    """Scalar reference tables of the budgeted DP (the pre-vectorization loops)."""
    n = chain.n
    prefix = chain.prefix_work()

    # best[x][b] = optimal expected time for tasks x..n-1 with at most b
    # checkpoints remaining, starting right after the checkpoint preceding x.
    infinity = math.inf
    best = [[infinity] * (budget_cap + 1) for _ in range(n + 1)]
    choice = [[-1] * (budget_cap + 1) for _ in range(n + 1)]
    for b in range(budget_cap + 1):
        best[n][b] = 0.0
    for x in range(n - 1, -1, -1):
        recovery = chain.recovery_before(x)
        for b in range(budget_cap + 1):
            best_value = infinity
            best_j = -1
            # Option 1: run to the end without any further checkpoint (allowed
            # only when no final checkpoint is required).
            if not final_checkpoint:
                work = prefix[n] - prefix[x]
                cost = _segment_cost(work, 0.0, downtime, recovery, rate)
                if cost < best_value:
                    best_value = cost
                    best_j = n  # sentinel: no checkpoint in this tail
            # Option 2: place the next checkpoint after some task j (consumes
            # one unit of budget).
            if b >= 1:
                for j in range(x, n):
                    work = prefix[j + 1] - prefix[x]
                    cost = _segment_cost(
                        work, chain.checkpoint_costs[j], downtime, recovery, rate
                    )
                    value = cost + best[j + 1][b - 1]
                    if value < best_value:
                        best_value = value
                        best_j = j
            best[x][b] = best_value
            choice[x][b] = best_j
    return best, choice


def optimal_chain_checkpoints_budget(
    chain: LinearChain,
    downtime: float,
    rate: float,
    max_checkpoints: int,
    *,
    final_checkpoint: bool = True,
    method: str = "auto",
) -> ChainDPResult:
    """Optimal placement of at most ``max_checkpoints`` checkpoints on a chain.

    A practical variant of Algorithm 1 for platforms where checkpoint storage
    or bandwidth is rationed (e.g. burst-buffer quotas): the schedule may take
    at most ``max_checkpoints`` checkpoints, counting the final one when
    ``final_checkpoint`` is True.  The dynamic program adds the remaining
    budget to the state, giving ``O(n^2 * max_checkpoints)`` time.

    With ``max_checkpoints >= n`` the result coincides with
    :func:`optimal_chain_checkpoints` (the budget is not binding); with
    ``max_checkpoints = 1`` and ``final_checkpoint=True`` it degenerates to
    the single-final-checkpoint placement.

    ``method`` selects the execution path exactly as in
    :func:`optimal_chain_checkpoints`; the vectorized kernel computes each
    row's segment costs once and sweeps the whole budget dimension in one
    broadcast ``argmin``, and is bit-identical to the reference loops.  The
    additional ``method="streaming"`` runs
    :func:`~repro.core.dp_kernels.budget_dp_streaming`: the same recurrence
    swept two rolling budget columns at a time, never materialising the
    ``(n+1) x (budget+1)`` tables -- peak memory ``O(n * sqrt(budget))``
    instead of ``O(n * budget)``, with bit-identical makespans and positions
    (see ``docs/performance.md``).

    Raises
    ------
    ValueError
        If ``max_checkpoints`` is smaller than 1 while a final checkpoint is
        required, or negative.
    """
    downtime = check_non_negative("downtime", downtime)
    rate = check_positive("rate", rate)
    n = chain.n
    if max_checkpoints < 0:
        raise ValueError(f"max_checkpoints must be >= 0, got {max_checkpoints}")
    if final_checkpoint and max_checkpoints < 1:
        raise ValueError(
            "max_checkpoints must be >= 1 when a final checkpoint is required"
        )
    budget_cap = min(max_checkpoints, n)
    if method == "streaming":
        best_final, streamed = budget_dp_streaming(
            np.array(chain.prefix_work()),
            np.array(chain.checkpoint_costs, dtype=float),
            chain.recovery_before,
            downtime,
            rate,
            budget_cap,
            final_checkpoint=final_checkpoint,
        )
        if not math.isfinite(best_final):
            raise OverflowError(
                "no placement within the checkpoint budget has a finite expected "
                "makespan; increase max_checkpoints or check the instance parameters"
            )
        return ChainDPResult(
            expected_makespan=best_final,
            checkpoint_after=streamed,
            chain=chain,
            downtime=downtime,
            rate=rate,
        )
    if resolve_dp_method(method, n) == "vectorized":
        best_arr, choice_arr = budget_dp_tables(
            np.array(chain.prefix_work()),
            np.array(chain.checkpoint_costs, dtype=float),
            chain.recovery_before,
            downtime,
            rate,
            budget_cap,
            final_checkpoint=final_checkpoint,
        )
        best_final = float(best_arr[0, budget_cap])
        choice = choice_arr
    else:
        best, choice = _reference_budget_tables(
            chain, downtime, rate, budget_cap, final_checkpoint
        )
        best_final = best[0][budget_cap]

    if not math.isfinite(best_final):
        raise OverflowError(
            "no placement within the checkpoint budget has a finite expected makespan; "
            "increase max_checkpoints or check the instance parameters"
        )

    positions: List[int] = []
    x, b = 0, budget_cap
    while x < n:
        j = int(choice[x][b])
        if j == n:
            break  # tail executed without further checkpoints
        positions.append(j)
        x = j + 1
        b -= 1

    return ChainDPResult(
        expected_makespan=best_final,
        checkpoint_after=tuple(positions),
        chain=chain,
        downtime=downtime,
        rate=rate,
    )


def dp_makespan_recursive(
    chain: LinearChain,
    downtime: float,
    rate: float,
    *,
    x: int = 1,
) -> Tuple[float, int]:
    """Literal transcription of the paper's Algorithm 1 (``DPMAKESPAN(x, n)``).

    Indices are 1-based as in the paper.  The function returns the couple
    ``(best, numTask)``: the optimal expectation of the time needed to execute
    tasks ``x..n``, and the index of the task that precedes the first
    checkpoint at the outermost recursion level (used to reconstruct the
    solution).  Calls are memoised, giving the ``O(n^2)`` complexity of
    Proposition 3.

    This implementation exists for fidelity and cross-validation against
    :func:`optimal_chain_checkpoints`; it always checkpoints after the last
    task, exactly like the paper's pseudo-code.
    """
    downtime = check_non_negative("downtime", downtime)
    rate = check_positive("rate", rate)
    n = chain.n
    if not 1 <= x <= n:
        raise ValueError(f"x must be in 1..{n}, got {x}")
    prefix = chain.prefix_work()
    memo: Dict[int, Tuple[float, int]] = {}

    def factor(index: int) -> float:
        """The multiplicative factor e^{lambda R_{index-1}} (1/lambda + D)."""
        recovery = chain.recovery_before(index - 1)
        return math.exp(rate * recovery) * (1.0 / rate + downtime)

    def segment_expectation(start: int, end: int) -> float:
        """E[T] for executing tasks start..end (1-based) and checkpointing after end."""
        work = prefix[end] - prefix[start - 1]
        ckpt = chain.checkpoint_costs[end - 1]
        exponent = rate * (work + ckpt)
        if exponent > 600.0:
            return math.inf
        return factor(start) * math.expm1(exponent)

    def dp(start: int) -> Tuple[float, int]:
        if start in memo:
            return memo[start]
        if start == n:
            result = (segment_expectation(n, n), n)
            memo[start] = result
            return result
        best = segment_expectation(start, n)
        num_task = n
        for j in range(start, n):
            exp_succ, _ = dp(j + 1)
            cur = exp_succ + segment_expectation(start, j)
            if cur < best:
                best = cur
                num_task = j
        memo[start] = (best, num_task)
        return memo[start]

    return dp(x)


def reconstruct_recursive_solution(
    chain: LinearChain,
    downtime: float,
    rate: float,
) -> ChainDPResult:
    """Run the recursive Algorithm 1 and reconstruct the full checkpoint placement.

    The paper's pseudo-code only returns the first checkpoint position; the
    complete placement is obtained by iterating from that position, exactly as
    the authors intend ("needed to reconstruct the solution").
    """
    n = chain.n
    positions: List[int] = []
    x = 1
    total: Optional[float] = None
    while x <= n:
        best, num_task = dp_makespan_recursive(chain, downtime, rate, x=x)
        if total is None:
            total = best
        positions.append(num_task - 1)  # convert to 0-based
        x = num_task + 1
    assert total is not None
    return ChainDPResult(
        expected_makespan=total,
        checkpoint_after=tuple(positions),
        chain=chain,
        downtime=downtime,
        rate=rate,
    )
