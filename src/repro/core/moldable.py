"""Moldable tasks: choosing how many processors to give each task (Section 6, ext. 2).

The paper's core model is *rigid* ("full parallelism"): every task runs on all
``p`` processors.  The second extension discussed in Section 6 allows
*moldable* tasks, which can execute on an arbitrary number of processors; the
expected time of a task on ``q`` processors is obtained by instantiating
Equation 6 with the workload models of Section 3 (``W(q)``), the checkpoint
cost models (``C(q) = R(q)``), and the failure rate ``lambda = q *
lambda_proc``.  The paper notes that the resulting resource-allocation problem
is difficult (approximation algorithms exist only for failure-free platforms)
and leaves it open; this module provides the direct instantiation of
Equation 6 plus sensible heuristics, which is what experiment E9 exercises.

Provided functionality:

* :class:`MoldableTask` -- a task described by its total sequential work, its
  memory footprint and a workload model;
* :func:`best_allocation_single_task` -- exhaustive search of the processor
  count minimising the Proposition 1 expectation of one task followed by its
  checkpoint (exact, since the search space is ``1..p_max``);
* :class:`MoldableScheduler` -- per-task allocation for a chain of moldable
  tasks, with either a checkpoint after every task (each task is then an
  independent Proposition 1 segment, so per-task optimisation is exact), or a
  checkpoint placement refined by the chain DP under the conservative
  platform-wide failure rate (a documented heuristic).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro._validation import check_non_negative, check_positive, check_positive_int
from repro.core.chain_dp import optimal_chain_checkpoints
from repro.core.expected_time import expected_completion_time
from repro.models.checkpoint import CheckpointCostModel, ConstantCheckpointCost
from repro.models.workload import PerfectlyParallelWorkload, WorkloadModel
from repro.workflows.chain import LinearChain

__all__ = [
    "MoldableTask",
    "AllocationResult",
    "best_allocation_single_task",
    "MoldableScheduler",
]


@dataclass(frozen=True)
class MoldableTask:
    """A task that can run on any number of processors.

    Parameters
    ----------
    name:
        Task identifier.
    sequential_work:
        Total sequential load ``W_total`` of the task.
    memory_footprint:
        Size ``V`` of the data a checkpoint after this task must save.
    workload:
        The ``W(q)`` scaling model (perfectly parallel by default).
    """

    name: str
    sequential_work: float
    memory_footprint: float = 0.0
    workload: WorkloadModel = PerfectlyParallelWorkload()

    def __post_init__(self) -> None:
        if not isinstance(self.name, str) or not self.name:
            raise ValueError(f"task name must be a non-empty string, got {self.name!r}")
        check_positive("sequential_work", self.sequential_work)
        check_non_negative("memory_footprint", self.memory_footprint)

    def time_on(self, num_processors: int) -> float:
        """Failure-free execution time on ``num_processors`` processors."""
        return self.workload.time(self.sequential_work, num_processors)


@dataclass(frozen=True)
class AllocationResult:
    """Processor allocations and expected times for a sequence of moldable tasks."""

    allocations: Tuple[int, ...]
    per_task_expected: Tuple[float, ...]
    expected_makespan: float
    checkpoint_after: Tuple[int, ...]

    @property
    def num_tasks(self) -> int:
        """Number of tasks covered by the allocation."""
        return len(self.allocations)


def best_allocation_single_task(
    task: MoldableTask,
    lambda_proc: float,
    downtime: float,
    checkpoint_model: CheckpointCostModel,
    *,
    max_processors: int,
    min_processors: int = 1,
) -> Tuple[int, float]:
    """Processor count minimising the Prop. 1 expectation of one checkpointed task.

    For each candidate ``q`` in ``min_processors..max_processors`` the
    expectation ``E[T(W(q), C(q), D, R(q), q * lambda_proc)]`` is evaluated
    and the best ``q`` is returned together with its expectation.  Candidates
    whose expectation overflows are skipped (they can never be optimal).
    """
    check_positive("lambda_proc", lambda_proc)
    check_non_negative("downtime", downtime)
    check_positive_int("max_processors", max_processors)
    check_positive_int("min_processors", min_processors)
    if min_processors > max_processors:
        raise ValueError(
            f"min_processors ({min_processors}) must not exceed max_processors ({max_processors})"
        )
    best_q = -1
    best_value = math.inf
    for q in range(min_processors, max_processors + 1):
        work = task.time_on(q)
        ckpt = checkpoint_model.checkpoint_time(task.memory_footprint, q)
        rec = checkpoint_model.recovery_time(task.memory_footprint, q)
        rate = lambda_proc * q
        try:
            value = expected_completion_time(work, ckpt, downtime, rec, rate)
        except OverflowError:
            continue
        if value < best_value:
            best_value = value
            best_q = q
    if best_q < 0:
        raise OverflowError(
            f"no processor count in {min_processors}..{max_processors} gives a finite "
            f"expected time for task {task.name!r}; the instance parameters are extreme"
        )
    return best_q, best_value


class MoldableScheduler:
    """Allocate processors to a chain of moldable tasks on a failure-prone platform.

    Parameters
    ----------
    lambda_proc:
        Failure rate of a single processor.
    downtime:
        Downtime ``D`` after each failure.
    checkpoint_model:
        ``C(q) = R(q)`` scaling model (constant by default).
    max_processors:
        Total number of processors available; each task may use any number up
        to this bound (tasks run one after another, so they do not compete).
    """

    def __init__(
        self,
        lambda_proc: float,
        downtime: float,
        *,
        checkpoint_model: Optional[CheckpointCostModel] = None,
        max_processors: int,
    ) -> None:
        self.lambda_proc = check_positive("lambda_proc", lambda_proc)
        self.downtime = check_non_negative("downtime", downtime)
        self.checkpoint_model = (
            checkpoint_model if checkpoint_model is not None else ConstantCheckpointCost(alpha=1.0)
        )
        self.max_processors = check_positive_int("max_processors", max_processors)

    def allocate_checkpoint_everywhere(
        self, tasks: Sequence[MoldableTask]
    ) -> AllocationResult:
        """Give every task its individually optimal allocation; checkpoint after each task.

        With a checkpoint after every task, each task is an independent
        Proposition 1 segment whose only free parameter is its processor
        count, so per-task exhaustive search is *exact* for this checkpoint
        policy.  (Whether that policy itself is optimal is the open problem
        the paper leaves for future work.)
        """
        tasks = list(tasks)
        if not tasks:
            raise ValueError("tasks must not be empty")
        allocations: List[int] = []
        expectations: List[float] = []
        for task in tasks:
            q, value = best_allocation_single_task(
                task,
                self.lambda_proc,
                self.downtime,
                self.checkpoint_model,
                max_processors=self.max_processors,
            )
            allocations.append(q)
            expectations.append(value)
        return AllocationResult(
            allocations=tuple(allocations),
            per_task_expected=tuple(expectations),
            expected_makespan=sum(expectations),
            checkpoint_after=tuple(range(len(tasks))),
        )

    def allocate_with_chain_dp(
        self,
        tasks: Sequence[MoldableTask],
        *,
        final_checkpoint: bool = True,
    ) -> AllocationResult:
        """Per-task allocation followed by chain-DP checkpoint placement (heuristic).

        First every task receives its individually optimal allocation (as in
        :meth:`allocate_checkpoint_everywhere`).  Then the resulting concrete
        chain -- with per-task durations ``W_i(q_i)`` and costs ``C_i(q_i)``
        -- is handed to the chain DP of Section 5 using the *platform-wide*
        failure rate ``max_processors * lambda_proc``.  Using the full
        platform rate is conservative (failures of processors a task does not
        use would not actually interrupt it), so the returned expectation is
        an upper bound on the true expectation of the produced schedule; the
        checkpoint placement itself remains a sensible heuristic.  This is the
        construction the paper hints at when suggesting to "use the different
        workload models ... and then instantiate Equation 6".
        """
        tasks = list(tasks)
        if not tasks:
            raise ValueError("tasks must not be empty")
        per_task = self.allocate_checkpoint_everywhere(tasks)
        works = []
        ckpts = []
        recs = []
        for task, q in zip(tasks, per_task.allocations):
            works.append(task.time_on(q))
            ckpts.append(self.checkpoint_model.checkpoint_time(task.memory_footprint, q))
            recs.append(self.checkpoint_model.recovery_time(task.memory_footprint, q))
        chain = LinearChain(
            works=works,
            checkpoint_costs=ckpts,
            recovery_costs=recs,
            names=[task.name for task in tasks],
        )
        platform_rate = self.lambda_proc * self.max_processors
        dp = optimal_chain_checkpoints(
            chain, self.downtime, platform_rate, final_checkpoint=final_checkpoint
        )
        return AllocationResult(
            allocations=per_task.allocations,
            per_task_expected=per_task.per_task_expected,
            expected_makespan=dp.expected_makespan,
            checkpoint_after=dp.checkpoint_after,
        )
