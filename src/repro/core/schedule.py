"""Schedules: a task order plus checkpoint decisions, and their exact evaluation.

Under the paper's full-parallelism assumption (Section 2), executing a
workflow amounts to choosing

1. a *linearisation* of the DAG (an execution order respecting all
   dependences), and
2. after which task completions to take a checkpoint.

A :class:`Schedule` captures both decisions for a given
:class:`~repro.workflows.dag.Workflow`.  The decision "checkpoint after
position k" is held in a :class:`CheckpointPlan`.  The schedule can be cut
into :class:`Segment` objects -- maximal blocks of tasks separated by
checkpoints -- and its exact expected makespan under Exponential failures is
the sum of the Proposition 1 expectations of its segments
(:func:`expected_makespan`), which is the decomposition used by both the
NP-hardness proof and the chain DP.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Tuple

from repro._validation import check_non_negative, check_positive
from repro.core.expected_time import expected_completion_time
from repro.models.checkpoint import FrontierCheckpointCost
from repro.workflows.chain import LinearChain
from repro.workflows.dag import Workflow

__all__ = ["CheckpointPlan", "Segment", "Schedule", "expected_makespan"]


@dataclass(frozen=True)
class CheckpointPlan:
    """Which positions of a linearised execution are followed by a checkpoint.

    ``flags[k]`` is True when a checkpoint is taken right after the task at
    position ``k`` of the execution order.
    """

    flags: Tuple[bool, ...]

    def __post_init__(self) -> None:
        flags = tuple(bool(f) for f in self.flags)
        if not flags:
            raise ValueError("a checkpoint plan must cover at least one task")
        object.__setattr__(self, "flags", flags)

    def __len__(self) -> int:
        return len(self.flags)

    def __getitem__(self, index: int) -> bool:
        return self.flags[index]

    @property
    def num_checkpoints(self) -> int:
        """Total number of checkpoints taken."""
        return sum(self.flags)

    def checkpoint_positions(self) -> List[int]:
        """Positions (0-based) after which a checkpoint is taken."""
        return [i for i, flag in enumerate(self.flags) if flag]

    @classmethod
    def never(cls, n: int) -> "CheckpointPlan":
        """No checkpoint at all."""
        return cls(flags=tuple([False] * n))

    @classmethod
    def after_every_task(cls, n: int) -> "CheckpointPlan":
        """A checkpoint after every task."""
        return cls(flags=tuple([True] * n))

    @classmethod
    def every_k(cls, n: int, k: int, *, include_last: bool = True) -> "CheckpointPlan":
        """A checkpoint after every ``k``-th task (positions k-1, 2k-1, ...)."""
        if k <= 0:
            raise ValueError(f"k must be > 0, got {k}")
        flags = [(i + 1) % k == 0 for i in range(n)]
        if include_last and n > 0:
            flags[-1] = True
        return cls(flags=tuple(flags))

    @classmethod
    def from_positions(cls, n: int, positions: Iterable[int]) -> "CheckpointPlan":
        """A checkpoint after each listed position (0-based)."""
        flags = [False] * n
        for pos in positions:
            if not 0 <= pos < n:
                raise ValueError(f"checkpoint position {pos} out of range 0..{n - 1}")
            flags[pos] = True
        return cls(flags=tuple(flags))

    def with_final_checkpoint(self) -> "CheckpointPlan":
        """Return a copy that checkpoints after the last task."""
        flags = list(self.flags)
        flags[-1] = True
        return CheckpointPlan(flags=tuple(flags))


@dataclass(frozen=True)
class Segment:
    """A maximal block of tasks between two checkpoints.

    Attributes
    ----------
    tasks:
        Names of the tasks in the block, in execution order.
    work:
        Total work of the block (failure-free duration).
    checkpoint_cost:
        Duration of the checkpoint ending the block, or 0 if the block is the
        final one and is not checkpointed.
    recovery_cost:
        Duration of the recovery used when a failure strikes inside this
        block: the cost of rolling back to the checkpoint preceding the block
        (or the initial recovery cost for the first block).
    checkpointed:
        Whether the block ends with a checkpoint.
    """

    tasks: Tuple[str, ...]
    work: float
    checkpoint_cost: float
    recovery_cost: float
    checkpointed: bool

    def __post_init__(self) -> None:
        if not self.tasks:
            raise ValueError("a segment must contain at least one task")
        check_non_negative("work", self.work)
        check_non_negative("checkpoint_cost", self.checkpoint_cost)
        check_non_negative("recovery_cost", self.recovery_cost)

    def expected_time(self, downtime: float, rate: float) -> float:
        """Proposition 1 expectation for this segment."""
        return expected_completion_time(
            self.work, self.checkpoint_cost, downtime, self.recovery_cost, rate
        )


class Schedule:
    """A linearised execution order plus a checkpoint plan for a workflow.

    Parameters
    ----------
    workflow:
        The workflow being scheduled.
    order:
        A permutation of the task names respecting all dependences.
    plan:
        Checkpoint decisions, one flag per position of ``order``.
    initial_recovery:
        Cost of restarting from scratch when a failure strikes before the
        first checkpoint (``R_0``); defaults to 0.
    checkpoint_model:
        Optional :class:`~repro.models.checkpoint.FrontierCheckpointCost`
        implementing the frontier-dependent cost of Section 6; when omitted,
        the paper's base model is used (the checkpoint after position ``k``
        costs ``C`` of the task at position ``k``, and recovering to it costs
        that task's ``R``).
    """

    def __init__(
        self,
        workflow: Workflow,
        order: Sequence[str],
        plan: CheckpointPlan,
        *,
        initial_recovery: float = 0.0,
        checkpoint_model: Optional[FrontierCheckpointCost] = None,
    ) -> None:
        self.workflow = workflow
        self.order = workflow.validate_order(order)
        if len(plan) != len(self.order):
            raise ValueError(
                f"plan covers {len(plan)} positions but the order has {len(self.order)} tasks"
            )
        self.plan = plan
        self.initial_recovery = check_non_negative("initial_recovery", initial_recovery)
        self.checkpoint_model = checkpoint_model

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------

    @classmethod
    def for_chain(
        cls,
        chain: LinearChain,
        checkpoint_after: Iterable[int],
        *,
        checkpoint_model: Optional[FrontierCheckpointCost] = None,
    ) -> "Schedule":
        """Build a schedule for a linear chain from 0-based checkpoint positions."""
        workflow = chain.to_workflow()
        order = workflow.chain_order()
        plan = CheckpointPlan.from_positions(len(order), checkpoint_after)
        return cls(
            workflow,
            order,
            plan,
            initial_recovery=chain.initial_recovery,
            checkpoint_model=checkpoint_model,
        )

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.order)

    @property
    def num_checkpoints(self) -> int:
        """Number of checkpoints the schedule takes."""
        return self.plan.num_checkpoints

    def _checkpoint_cost_at(self, position: int, last_checkpoint: int) -> float:
        if self.checkpoint_model is not None:
            return self.checkpoint_model.cost(self.order, last_checkpoint, position)
        return self.workflow.task(self.order[position]).checkpoint_cost

    def _recovery_cost_at(self, checkpoint_position: int) -> float:
        if self.checkpoint_model is not None:
            return self.checkpoint_model.recovery(self.order, checkpoint_position)
        return self.workflow.task(self.order[checkpoint_position]).recovery_cost

    def segments(self) -> List[Segment]:
        """Cut the schedule into maximal blocks separated by checkpoints."""
        segments: List[Segment] = []
        block: List[str] = []
        block_work = 0.0
        last_checkpoint = -1
        current_recovery = self.initial_recovery
        for position, name in enumerate(self.order):
            task = self.workflow.task(name)
            block.append(name)
            block_work += task.work
            if self.plan[position]:
                segments.append(
                    Segment(
                        tasks=tuple(block),
                        work=block_work,
                        checkpoint_cost=self._checkpoint_cost_at(position, last_checkpoint),
                        recovery_cost=current_recovery,
                        checkpointed=True,
                    )
                )
                current_recovery = self._recovery_cost_at(position)
                last_checkpoint = position
                block = []
                block_work = 0.0
        if block:
            segments.append(
                Segment(
                    tasks=tuple(block),
                    work=block_work,
                    checkpoint_cost=0.0,
                    recovery_cost=current_recovery,
                    checkpointed=False,
                )
            )
        return segments

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------

    def expected_makespan(self, downtime: float, rate: float) -> float:
        """Exact expected makespan under Exponential failures of rate ``rate``.

        By memorylessness, the expectation decomposes as the sum of the
        Proposition 1 expectations of the segments.
        """
        check_non_negative("downtime", downtime)
        check_positive("rate", rate)
        return sum(seg.expected_time(downtime, rate) for seg in self.segments())

    def failure_free_time(self) -> float:
        """Makespan when no failure ever strikes: total work plus checkpoint costs."""
        return sum(seg.work + seg.checkpoint_cost for seg in self.segments())

    def describe(self) -> str:
        """Multi-line human-readable description of the schedule."""
        lines = [f"Schedule over {len(self)} tasks, {self.num_checkpoints} checkpoint(s):"]
        for index, segment in enumerate(self.segments()):
            suffix = "checkpoint" if segment.checkpointed else "no checkpoint"
            lines.append(
                f"  segment {index}: {', '.join(segment.tasks)} "
                f"(work={segment.work:g}, {suffix})"
            )
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (
            f"Schedule(tasks={len(self)}, checkpoints={self.num_checkpoints}, "
            f"workflow={self.workflow.name!r})"
        )


def expected_makespan(schedule: Schedule, downtime: float, rate: float) -> float:
    """Module-level convenience wrapper around :meth:`Schedule.expected_makespan`."""
    return schedule.expected_makespan(downtime, rate)
