"""Expected time to execute a work segment followed by a checkpoint.

This module implements the paper's Proposition 1, its building blocks
(Equations 2-5), and the alternative formulas from the related work that the
paper compares against:

* the exact closed form (Equation 6)::

      E[T(W, C, D, R, lambda)] = e^{lambda R} (1/lambda + D) (e^{lambda (W+C)} - 1)

* ``E[T_lost]`` (Equation 4) and ``E[T_rec]`` (Equation 5), useful on their
  own and for the validation experiments;

* Young's first-order and Daly's higher-order optimal checkpoint *periods*
  for divisible jobs (references [22] and [7]);

* the Bouguerra-et-al.-style formula (reference [12]) that the paper points
  out is inaccurate because it charges a recovery before *every* execution
  attempt, including the first one.  We implement it for the comparison
  experiment (E2), not for production use.

Numerical care: the formula involves ``e^{lambda (W+C)} - 1``.  When
``lambda (W + C)`` is tiny this difference loses precision if computed
naively, so :func:`expected_completion_time` uses ``expm1``.  When the
exponent is large (very failure-prone platform or very long segment) the
result overflows ``float``; we raise :class:`OverflowError` with a clear
message instead of silently returning ``inf``, because a schedule with such a
segment is essentially never going to complete and the caller almost certainly
passed wrong units.

The transcendentals go through NumPy's scalar ufuncs (:data:`_exp`,
:data:`_expm1`) rather than :mod:`math`: NumPy's ``exp``/``expm1`` are
internally consistent between scalar calls and array sweeps but differ from
glibc's ``libm`` by up to 1 ulp on some inputs, so sharing the ufuncs is what
lets the vectorized DP kernels (:mod:`repro.core.dp_kernels`) reproduce this
scalar reference *bit for bit* -- the same engine-neutrality trick the
Monte-Carlo engines use for their shared delay plans.
"""

from __future__ import annotations

import math
from typing import Iterable, Tuple

import numpy as np

from repro._validation import check_non_negative, check_positive

__all__ = [
    "ANALYTIC_NUMERICS",
    "expected_completion_time",
    "expected_lost_time",
    "expected_recovery_time",
    "expected_segments_time",
    "bouguerra_expected_time",
    "young_period",
    "daly_first_order_period",
    "daly_higher_order_period",
]

# Beyond this value of lambda * (W + C + R) the expectation exceeds ~1e260 and
# downstream arithmetic (sums over segments) would overflow anyway.
_MAX_EXPONENT = 600.0

#: Generation tag of the analytic transcendentals.  Cached or deduplicated
#: artifacts whose *values* embed analytic results (experiment tables, not
#: Monte-Carlo samples) include this tag in their keys, so switching libm
#: generations (math.* -> NumPy ufuncs in PR 5, <= 1 ulp) recomputes them
#: instead of replaying stale bits.
ANALYTIC_NUMERICS = "np-ufunc"


def _exp(value: float) -> float:
    """``e^value`` through the same ufunc the vectorized DP kernels apply to arrays."""
    return float(np.exp(value))


def _expm1(value: float) -> float:
    """``e^value - 1`` through the same ufunc the vectorized DP kernels apply to arrays."""
    return float(np.expm1(value))


def _checked_exponent(value: float, what: str) -> float:
    if value > _MAX_EXPONENT:
        raise OverflowError(
            f"{what} = {value:.3g} is too large: the expected time would exceed "
            "1e260 time units. The segment is effectively never going to complete; "
            "check the failure rate and the work/checkpoint durations (unit mismatch?)."
        )
    return value


def expected_completion_time(
    work: float,
    checkpoint: float,
    downtime: float,
    recovery: float,
    rate: float,
) -> float:
    """Exact expected time to execute ``work`` and checkpoint it (Proposition 1).

    The segment of duration ``work`` is executed on a platform whose failures
    form a Poisson process of rate ``rate`` (the paper's ``lambda``, i.e. the
    *platform* rate ``p * lambda_proc``).  After the work completes, a
    checkpoint of duration ``checkpoint`` is taken.  Whenever a failure
    strikes (during work, checkpoint, or recovery -- but not during downtime),
    the platform is down for ``downtime``, then a recovery of duration
    ``recovery`` is attempted, and the whole segment restarts from the
    recovered state.

    Parameters
    ----------
    work:
        Duration ``W >= 0`` of the work segment (failure-free).
    checkpoint:
        Duration ``C >= 0`` of the checkpoint taken after the work.
    downtime:
        Downtime ``D >= 0`` after each failure.
    recovery:
        Recovery duration ``R >= 0`` after each downtime.
    rate:
        Platform failure rate ``lambda > 0``.

    Returns
    -------
    float
        ``E[T(W, C, D, R, lambda)] = e^{lambda R} (1/lambda + D)
        (e^{lambda (W + C)} - 1)``.

    Notes
    -----
    The formula is exact for Exponential failures and any values of ``W``,
    ``C``, ``D``, ``R`` (they may in turn depend on the number of processors,
    see :mod:`repro.models`).  When ``W + C = 0`` the result is 0: nothing to
    do, nothing to checkpoint.
    """
    work = check_non_negative("work", work)
    checkpoint = check_non_negative("checkpoint", checkpoint)
    downtime = check_non_negative("downtime", downtime)
    recovery = check_non_negative("recovery", recovery)
    rate = check_positive("rate", rate)
    if work + checkpoint == 0.0:
        return 0.0
    exponent = _checked_exponent(rate * (work + checkpoint), "lambda * (W + C)")
    rec_exponent = _checked_exponent(rate * recovery, "lambda * R")
    return _exp(rec_exponent) * (1.0 / rate + downtime) * _expm1(exponent)


def expected_lost_time(work: float, checkpoint: float, rate: float) -> float:
    """Expected time lost to an interrupted attempt, ``E[T_lost]`` (Equation 4).

    This is the expected amount of time spent computing before the first
    failure, *knowing* that this failure occurs within the next ``W + C``
    units of time::

        E[T_lost] = 1/lambda - (W + C) / (e^{lambda (W + C)} - 1)
    """
    work = check_non_negative("work", work)
    checkpoint = check_non_negative("checkpoint", checkpoint)
    rate = check_positive("rate", rate)
    total = work + checkpoint
    if total == 0.0:
        return 0.0
    exponent = _checked_exponent(rate * total, "lambda * (W + C)")
    return 1.0 / rate - total / _expm1(exponent)


def expected_recovery_time(downtime: float, recovery: float, rate: float) -> float:
    """Expected time to complete downtime plus recovery, ``E[T_rec]`` (Equation 5).

    Failures can strike during recovery (forcing another downtime and another
    recovery attempt) but not during downtime::

        E[T_rec] = D e^{lambda R} + (1/lambda)(e^{lambda R} - 1)
    """
    downtime = check_non_negative("downtime", downtime)
    recovery = check_non_negative("recovery", recovery)
    rate = check_positive("rate", rate)
    exponent = _checked_exponent(rate * recovery, "lambda * R")
    return downtime * _exp(exponent) + _expm1(exponent) / rate


def expected_segments_time(
    segments: Iterable[Tuple[float, float, float]],
    downtime: float,
    rate: float,
) -> float:
    """Expected total time of a sequence of independently checkpointed segments.

    Each segment is a tuple ``(work, checkpoint, recovery)`` where ``recovery``
    is the cost of rolling back to the *start* of that segment (i.e. to the
    checkpoint that precedes it, or to the initial state for the first
    segment).  By the memoryless property and linearity of expectation, the
    expected makespan is simply the sum of the per-segment Proposition 1
    expectations -- this is the decomposition both the chain DP (Section 5)
    and the NP-hardness proof (Section 4) rely on.
    """
    total = 0.0
    for index, (work, checkpoint, recovery) in enumerate(segments):
        try:
            total += expected_completion_time(work, checkpoint, downtime, recovery, rate)
        except (ValueError, OverflowError) as exc:
            raise type(exc)(f"segment {index}: {exc}") from exc
    return total


def bouguerra_expected_time(
    work: float,
    checkpoint: float,
    downtime: float,
    recovery: float,
    rate: float,
) -> float:
    """Bouguerra-et-al.-style expectation that charges a recovery before every attempt.

    The paper notes (Section 3) that the formula in reference [12] is
    inaccurate because "a recovery always takes place before execution, which
    is false for the first attempt".  Modelling that assumption amounts to
    executing a segment of work ``R + W`` (recovery, then work) before the
    checkpoint, with the same retry structure, i.e.::

        E_bouguerra = (1/lambda + D) (e^{lambda (R + W + C)} - 1)

    which over-estimates the exact value of Proposition 1 whenever ``R > 0``
    (and coincides with it when ``R = 0``).  Provided for comparison
    experiments only.
    """
    work = check_non_negative("work", work)
    checkpoint = check_non_negative("checkpoint", checkpoint)
    downtime = check_non_negative("downtime", downtime)
    recovery = check_non_negative("recovery", recovery)
    rate = check_positive("rate", rate)
    if work + checkpoint + recovery == 0.0:
        return 0.0
    exponent = _checked_exponent(rate * (recovery + work + checkpoint), "lambda * (R + W + C)")
    return (1.0 / rate + downtime) * _expm1(exponent)


def young_period(checkpoint: float, rate: float) -> float:
    """Young's first-order approximation of the optimal checkpoint period [22].

    ``T_opt ~ sqrt(2 C / lambda)``, valid for divisible jobs when the
    checkpoint cost is small compared to the platform MTBF.  The returned
    period is the amount of *work* between two checkpoints (excluding the
    checkpoint itself).
    """
    checkpoint = check_positive("checkpoint", checkpoint)
    rate = check_positive("rate", rate)
    return math.sqrt(2.0 * checkpoint / rate)


def daly_first_order_period(checkpoint: float, rate: float) -> float:
    """Daly's first-order optimal period, identical to Young's formula [7]."""
    return young_period(checkpoint, rate)


def daly_higher_order_period(checkpoint: float, rate: float) -> float:
    """Daly's higher-order approximation of the optimal checkpoint period [7].

    ``T_opt ~ sqrt(2 C (M + D + R)) [1 + ...] - C`` in Daly's original
    notation; with an Exponential platform of rate ``lambda`` (MTBF
    ``M = 1/lambda``) the commonly used form is::

        T_opt = sqrt(2 C / lambda) * [1 + (1/3) sqrt(C lambda / 2)
                + (1/9) (C lambda / 2)] - C          if C < 2 / lambda
        T_opt = 1 / lambda                            otherwise

    The result is clamped to be positive (for very large ``C`` the first-order
    term minus ``C`` could go negative, in which case checkpointing more often
    than "always" makes no sense and the MTBF is returned).
    """
    checkpoint = check_positive("checkpoint", checkpoint)
    rate = check_positive("rate", rate)
    mtbf = 1.0 / rate
    if checkpoint >= 2.0 * mtbf:
        return mtbf
    half = checkpoint * rate / 2.0
    period = math.sqrt(2.0 * checkpoint / rate) * (
        1.0 + math.sqrt(half) / 3.0 + half / 9.0
    ) - checkpoint
    return max(period, min(mtbf, checkpoint))
