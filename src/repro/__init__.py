"""repro -- checkpoint scheduling for computational workflows under failures.

A production-quality reproduction of

    Yves Robert, Frédéric Vivien, Dounia Zaidouni.
    "On the complexity of scheduling checkpoints for computational workflows."
    INRIA Research Report RR-7907 / DSN 2012 workshops.

The library provides:

* the exact expected-time formula of Proposition 1
  (:func:`expected_completion_time`) and the approximations it supersedes;
* the optimal O(n^2) dynamic program for linear chains of Proposition 3
  (:func:`optimal_chain_checkpoints`);
* exact and heuristic schedulers for independent tasks (the strongly
  NP-complete case of Proposition 2) and arbitrary DAGs;
* the executable 3-PARTITION reduction from the NP-completeness proof;
* workload / checkpoint-cost scaling models, moldable-task allocation, and
  work-maximisation heuristics for non-Exponential failure laws (the
  extensions of Section 6);
* a discrete-event simulator and Monte-Carlo estimator used to validate the
  analytic results;
* classical baselines (Young / Daly periodic checkpointing, trivial
  placements).

Quick start::

    from repro import LinearChain, optimal_chain_checkpoints

    chain = LinearChain(
        works=[10.0, 4.0, 7.0],
        checkpoint_costs=[1.0, 0.5, 2.0],
        recovery_costs=[1.0, 0.5, 2.0],
    )
    result = optimal_chain_checkpoints(chain, downtime=0.5, rate=0.01)
    print(result.expected_makespan, result.checkpoint_after)
"""

from repro.failures import (
    ExponentialFailure,
    FailureTrace,
    LogNormalFailure,
    Platform,
    WeibullFailure,
    generate_trace,
)
from repro.workflows import (
    LinearChain,
    Task,
    Workflow,
    fork_join,
    in_tree,
    load_chain,
    load_workflow,
    make_chain,
    make_independent,
    montage_like,
    out_tree,
    random_layered_dag,
    save_chain,
    save_workflow,
    uniform_random_chain,
    workflow_to_dot,
)
from repro.models import (
    AmdahlWorkload,
    ConstantCheckpointCost,
    FrontierCheckpointCost,
    NumericalKernelWorkload,
    PerfectlyParallelWorkload,
    ProportionalCheckpointCost,
)
from repro.core import (
    AllocationResult,
    ChainDPResult,
    CheckpointPlan,
    DagScheduleResult,
    IndependentScheduleResult,
    MoldableScheduler,
    MoldableTask,
    Schedule,
    Segment,
    bouguerra_expected_time,
    daly_first_order_period,
    daly_higher_order_period,
    exhaustive_dag_schedule,
    exhaustive_independent_schedule,
    expected_completion_time,
    expected_lost_time,
    expected_makespan,
    expected_recovery_time,
    expected_segments_time,
    linearize,
    optimal_chain_checkpoints,
    optimal_chain_checkpoints_budget,
    schedule_dag,
    schedule_independent_tasks,
    young_period,
)
from repro.analysis import (
    PlacementPenalty,
    ThreePartitionInstance,
    WasteBreakdown,
    brute_force_chain_checkpoints,
    brute_force_independent_schedule,
    generate_no_instance,
    generate_yes_instance,
    placement_penalty,
    rate_sensitivity_sweep,
    schedule_to_three_partition,
    simulated_waste_breakdown,
    solve_three_partition,
    three_partition_to_schedule,
    waste_breakdown,
)
from repro.simulation import (
    CampaignResult,
    CampaignRunner,
    MonteCarloEstimate,
    MonteCarloEstimator,
    SimulationResult,
    estimate_expected_completion_time,
    simulate_schedule,
)
from repro.baselines import (
    checkpoint_all_chain,
    checkpoint_every_k_chain,
    checkpoint_none_chain,
    daly_period_chain,
    divisible_expected_makespan,
    evaluate_chain_strategies,
    optimal_periodic_policy,
    periodic_expected_time,
    work_maximization_chain,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # failures
    "ExponentialFailure",
    "WeibullFailure",
    "LogNormalFailure",
    "Platform",
    "FailureTrace",
    "generate_trace",
    # workflows
    "Task",
    "Workflow",
    "LinearChain",
    "make_chain",
    "make_independent",
    "uniform_random_chain",
    "fork_join",
    "in_tree",
    "out_tree",
    "random_layered_dag",
    "montage_like",
    "save_workflow",
    "load_workflow",
    "save_chain",
    "load_chain",
    "workflow_to_dot",
    # models
    "PerfectlyParallelWorkload",
    "AmdahlWorkload",
    "NumericalKernelWorkload",
    "ConstantCheckpointCost",
    "ProportionalCheckpointCost",
    "FrontierCheckpointCost",
    # core
    "expected_completion_time",
    "expected_lost_time",
    "expected_recovery_time",
    "expected_segments_time",
    "bouguerra_expected_time",
    "young_period",
    "daly_first_order_period",
    "daly_higher_order_period",
    "Schedule",
    "Segment",
    "CheckpointPlan",
    "expected_makespan",
    "ChainDPResult",
    "optimal_chain_checkpoints",
    "optimal_chain_checkpoints_budget",
    "IndependentScheduleResult",
    "schedule_independent_tasks",
    "exhaustive_independent_schedule",
    "DagScheduleResult",
    "schedule_dag",
    "exhaustive_dag_schedule",
    "linearize",
    "MoldableScheduler",
    "MoldableTask",
    "AllocationResult",
    # analysis
    "ThreePartitionInstance",
    "three_partition_to_schedule",
    "schedule_to_three_partition",
    "solve_three_partition",
    "generate_yes_instance",
    "generate_no_instance",
    "brute_force_chain_checkpoints",
    "brute_force_independent_schedule",
    "WasteBreakdown",
    "waste_breakdown",
    "simulated_waste_breakdown",
    "PlacementPenalty",
    "placement_penalty",
    "rate_sensitivity_sweep",
    # simulation
    "simulate_schedule",
    "SimulationResult",
    "MonteCarloEstimator",
    "MonteCarloEstimate",
    "estimate_expected_completion_time",
    "CampaignRunner",
    "CampaignResult",
    # baselines
    "periodic_expected_time",
    "optimal_periodic_policy",
    "divisible_expected_makespan",
    "checkpoint_all_chain",
    "checkpoint_none_chain",
    "checkpoint_every_k_chain",
    "daly_period_chain",
    "evaluate_chain_strategies",
    "work_maximization_chain",
]
