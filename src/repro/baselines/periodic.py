"""Periodic checkpointing of divisible jobs (Young, Daly, and exact policies).

The related-work section of the paper recalls the large body of literature on
checkpointing *divisible* jobs: the job can be cut anywhere into chunks, a
checkpoint is taken after each chunk, and for Exponential failures the optimal
policy is periodic (same-size chunks).  Young [22] and Daly [7] give
first-order and higher-order approximations of the optimal period; the exact
expected makespan of any periodic policy follows from Proposition 1 applied to
each chunk.

These divisible-job policies serve two purposes in the reproduction:

* experiment E2 compares the approximate periods against the exact optimum
  obtained by minimising the Prop.-1-based expected makespan over the number
  of chunks;
* experiment E6 uses the Daly period as a baseline placement rule on task
  chains (checkpoint after the task that makes the elapsed work exceed the
  period), to quantify the benefit of the paper's DP, which respects task
  boundaries.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from repro._validation import check_non_negative, check_positive, check_positive_int
from repro.core.expected_time import expected_completion_time, young_period

__all__ = [
    "PeriodicPolicy",
    "periodic_expected_time",
    "optimal_periodic_policy",
    "divisible_expected_makespan",
]


@dataclass(frozen=True)
class PeriodicPolicy:
    """A periodic checkpointing policy for a divisible job.

    Attributes
    ----------
    num_chunks:
        Number of equal chunks the job is cut into (one checkpoint per chunk).
    chunk_work:
        Work per chunk.
    expected_makespan:
        Exact expected makespan of the policy (Prop. 1 per chunk).
    """

    num_chunks: int
    chunk_work: float
    expected_makespan: float

    @property
    def period(self) -> float:
        """The checkpointing period (work between two checkpoints)."""
        return self.chunk_work


def periodic_expected_time(
    total_work: float,
    num_chunks: int,
    checkpoint: float,
    downtime: float,
    recovery: float,
    rate: float,
    *,
    initial_recovery: Optional[float] = None,
) -> float:
    """Exact expected makespan of cutting ``total_work`` into ``num_chunks`` equal chunks.

    Each chunk of work ``total_work / num_chunks`` is followed by a checkpoint
    of duration ``checkpoint``; failures roll back to the previous chunk's
    checkpoint (cost ``recovery``), or to the initial state for the first
    chunk (cost ``initial_recovery``, default ``0``).
    """
    check_positive("total_work", total_work)
    check_positive_int("num_chunks", num_chunks)
    chunk = total_work / num_chunks
    first_recovery = 0.0 if initial_recovery is None else initial_recovery
    total = expected_completion_time(chunk, checkpoint, downtime, first_recovery, rate)
    if num_chunks > 1:
        total += (num_chunks - 1) * expected_completion_time(
            chunk, checkpoint, downtime, recovery, rate
        )
    return total


def optimal_periodic_policy(
    total_work: float,
    checkpoint: float,
    downtime: float,
    recovery: float,
    rate: float,
    *,
    initial_recovery: Optional[float] = None,
    max_chunks: Optional[int] = None,
) -> PeriodicPolicy:
    """Best periodic policy by exact evaluation over the number of chunks.

    The expected makespan as a function of the (integer) number of chunks is
    convex (same argument as the ``g(m)`` analysis of the NP-hardness proof),
    so the search scans increasing chunk counts and stops at the first local
    minimum; ``max_chunks`` bounds the scan defensively.
    """
    check_positive("total_work", total_work)
    check_non_negative("checkpoint", checkpoint)
    check_positive("rate", rate)
    if max_chunks is None:
        # The optimum is near total_work / young_period; scan a generous range.
        if checkpoint > 0:
            guess = total_work / young_period(checkpoint, rate)
        else:
            guess = total_work * rate
        max_chunks = max(int(4 * guess) + 10, 64)

    best_policy: Optional[PeriodicPolicy] = None
    previous_value = math.inf
    for m in range(1, max_chunks + 1):
        try:
            value = periodic_expected_time(
                total_work, m, checkpoint, downtime, recovery, rate,
                initial_recovery=initial_recovery,
            )
        except OverflowError:
            value = math.inf
        if best_policy is None or value < best_policy.expected_makespan:
            best_policy = PeriodicPolicy(
                num_chunks=m, chunk_work=total_work / m, expected_makespan=value
            )
        if value > previous_value and best_policy.num_chunks < m - 1:
            # Convexity: once the value starts increasing past the minimum we can stop.
            break
        previous_value = value
    assert best_policy is not None
    return best_policy


def divisible_expected_makespan(
    total_work: float,
    period: float,
    checkpoint: float,
    downtime: float,
    recovery: float,
    rate: float,
    *,
    initial_recovery: Optional[float] = None,
) -> float:
    """Expected makespan of a divisible job checkpointed every ``period`` units of work.

    The job is cut into ``ceil(total_work / period)`` chunks: all full-size
    except possibly the last one.  This evaluates the approximate policies of
    Young and Daly exactly so they can be compared to the optimum.
    """
    check_positive("total_work", total_work)
    check_positive("period", period)
    num_full = int(total_work // period)
    remainder = total_work - num_full * period
    chunks = [period] * num_full
    if remainder > 1e-12 * total_work:
        chunks.append(remainder)
    if not chunks:
        chunks = [total_work]
    first_recovery = 0.0 if initial_recovery is None else initial_recovery
    total = 0.0
    for index, chunk in enumerate(chunks):
        rec = first_recovery if index == 0 else recovery
        total += expected_completion_time(chunk, checkpoint, downtime, rec, rate)
    return total
