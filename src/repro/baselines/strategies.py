"""Simple checkpoint-placement strategies for task chains.

These are the natural baselines against which the optimal DP of Section 5 is
compared in experiment E6:

* ``checkpoint_all`` -- a checkpoint after every task (safe but pays every
  checkpoint cost);
* ``checkpoint_none`` -- a single checkpoint at the very end (cheap in a
  failure-free world, catastrophic when failures are frequent);
* ``checkpoint_every_k`` -- a checkpoint after every ``k``-th task;
* ``daly_period`` -- checkpoint after the first task that makes the work
  accumulated since the last checkpoint reach Daly's (or Young's) period,
  i.e. the divisible-job rule adapted to task boundaries.

Each strategy returns a :class:`~repro.core.chain_dp.ChainDPResult`-compatible
placement (positions + exact expected makespan) so results are directly
comparable with the DP output.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence

from repro._validation import check_non_negative, check_positive, check_positive_int
from repro.core.chain_dp import ChainDPResult, optimal_chain_checkpoints
from repro.core.expected_time import daly_higher_order_period, young_period
from repro.core.schedule import Schedule
from repro.workflows.chain import LinearChain

__all__ = [
    "checkpoint_all_chain",
    "checkpoint_none_chain",
    "checkpoint_every_k_chain",
    "daly_period_chain",
    "evaluate_chain_strategies",
]


def _placement_result(
    chain: LinearChain,
    positions: Sequence[int],
    downtime: float,
    rate: float,
) -> ChainDPResult:
    """Package an explicit placement with its exact expected makespan."""
    schedule = Schedule.for_chain(chain, positions)
    value = schedule.expected_makespan(downtime, rate)
    return ChainDPResult(
        expected_makespan=value,
        checkpoint_after=tuple(sorted(positions)),
        chain=chain,
        downtime=downtime,
        rate=rate,
    )


def checkpoint_all_chain(chain: LinearChain, downtime: float, rate: float) -> ChainDPResult:
    """A checkpoint after every task of the chain."""
    check_non_negative("downtime", downtime)
    check_positive("rate", rate)
    return _placement_result(chain, list(range(chain.n)), downtime, rate)


def checkpoint_none_chain(
    chain: LinearChain,
    downtime: float,
    rate: float,
    *,
    final_checkpoint: bool = True,
) -> ChainDPResult:
    """No intermediate checkpoint (optionally a single one after the last task)."""
    check_non_negative("downtime", downtime)
    check_positive("rate", rate)
    positions = [chain.n - 1] if final_checkpoint else []
    return _placement_result(chain, positions, downtime, rate)


def checkpoint_every_k_chain(
    chain: LinearChain,
    k: int,
    downtime: float,
    rate: float,
    *,
    final_checkpoint: bool = True,
) -> ChainDPResult:
    """A checkpoint after every ``k``-th task (and after the last one if requested)."""
    check_positive_int("k", k)
    check_non_negative("downtime", downtime)
    check_positive("rate", rate)
    positions = [i for i in range(chain.n) if (i + 1) % k == 0]
    if final_checkpoint and (chain.n - 1) not in positions:
        positions.append(chain.n - 1)
    return _placement_result(chain, positions, downtime, rate)


def daly_period_chain(
    chain: LinearChain,
    downtime: float,
    rate: float,
    *,
    use_higher_order: bool = True,
    final_checkpoint: bool = True,
) -> ChainDPResult:
    """Checkpoint placement driven by the Young/Daly period, snapped to task boundaries.

    The divisible-job rule "checkpoint every ``P`` units of work" is adapted
    to non-divisible tasks by checkpointing after the first task that makes
    the work accumulated since the previous checkpoint reach ``P``.  The
    period uses the chain's *average* checkpoint cost, which is what a user of
    the Young/Daly formula would plug in when costs vary per task.
    """
    check_non_negative("downtime", downtime)
    check_positive("rate", rate)
    mean_checkpoint = sum(chain.checkpoint_costs) / chain.n
    if mean_checkpoint <= 0.0:
        # Checkpoints are free: the divisible-job rule says checkpoint everywhere.
        return checkpoint_all_chain(chain, downtime, rate)
    if use_higher_order:
        period = daly_higher_order_period(mean_checkpoint, rate)
    else:
        period = young_period(mean_checkpoint, rate)
    positions: List[int] = []
    accumulated = 0.0
    for index in range(chain.n):
        accumulated += chain.works[index]
        if accumulated >= period:
            positions.append(index)
            accumulated = 0.0
    if final_checkpoint and (chain.n - 1) not in positions:
        positions.append(chain.n - 1)
    if not positions:
        positions = [chain.n - 1]
    return _placement_result(chain, positions, downtime, rate)


def evaluate_chain_strategies(
    chain: LinearChain,
    downtime: float,
    rate: float,
    *,
    every_k: Sequence[int] = (2, 5),
    final_checkpoint: bool = True,
    only: Optional[Sequence[str]] = None,
    method: str = "auto",
) -> Dict[str, ChainDPResult]:
    """Evaluate the optimal DP and every baseline strategy on the same chain.

    Returns a mapping from strategy name to its placement/expected makespan;
    the "optimal_dp" entry is always included (unless excluded via ``only``)
    and is guaranteed to have the smallest expected makespan of the set (the
    DP explores a superset of these placements).

    ``only`` restricts evaluation to the named strategies -- scenario specs
    that compare a subset then skip the ``O(n^2)`` DP solve (or the other
    placements) entirely; unknown names raise ``KeyError`` listing the full
    catalog.  ``method`` is forwarded to the DP solver
    (:func:`~repro.core.chain_dp.optimal_chain_checkpoints`).
    """
    builders: Dict[str, Callable[[], ChainDPResult]] = {
        "optimal_dp": lambda: optimal_chain_checkpoints(
            chain, downtime, rate, final_checkpoint=final_checkpoint, method=method
        ),
        "checkpoint_all": lambda: checkpoint_all_chain(chain, downtime, rate),
        "checkpoint_none": lambda: checkpoint_none_chain(
            chain, downtime, rate, final_checkpoint=final_checkpoint
        ),
        "daly_period": lambda: daly_period_chain(
            chain, downtime, rate, final_checkpoint=final_checkpoint
        ),
        "young_period": lambda: daly_period_chain(
            chain, downtime, rate, use_higher_order=False, final_checkpoint=final_checkpoint
        ),
    }
    for k in every_k:
        if 1 <= k <= chain.n:
            builders[f"every_{k}"] = (
                lambda step=k: checkpoint_every_k_chain(
                    chain, step, downtime, rate, final_checkpoint=final_checkpoint
                )
            )
    if only is None:
        requested = list(builders)
    else:
        requested = list(dict.fromkeys(only))
        unknown = [name for name in requested if name not in builders]
        if unknown:
            raise KeyError(
                f"unknown strategies {unknown!r}; available: {sorted(builders)}"
            )
    results: Dict[str, ChainDPResult] = {name: builders[name]() for name in requested}
    return results
