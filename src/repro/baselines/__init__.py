"""Baseline checkpointing strategies the paper compares against or builds upon."""

from repro.baselines.periodic import (
    PeriodicPolicy,
    divisible_expected_makespan,
    optimal_periodic_policy,
    periodic_expected_time,
)
from repro.baselines.strategies import (
    checkpoint_all_chain,
    checkpoint_every_k_chain,
    checkpoint_none_chain,
    daly_period_chain,
    evaluate_chain_strategies,
)
from repro.baselines.work_maximization import (
    WorkMaximizationResult,
    expected_work_before_failure,
    work_maximization_chain,
)

__all__ = [
    "PeriodicPolicy",
    "periodic_expected_time",
    "optimal_periodic_policy",
    "divisible_expected_makespan",
    "checkpoint_all_chain",
    "checkpoint_none_chain",
    "checkpoint_every_k_chain",
    "daly_period_chain",
    "evaluate_chain_strategies",
    "WorkMaximizationResult",
    "expected_work_before_failure",
    "work_maximization_chain",
]
