"""Work-maximisation checkpoint placement for general failure laws.

When failures are not Exponential, no closed form exists for the expected
makespan (Section 6, third extension), so minimising it directly is out of
reach.  Bouguerra, Trystram and Wagner [20] -- the work that motivated the
paper -- instead *maximise the expected amount of work saved before the first
failure*, a natural greedy surrogate: the more progress is safely committed by
checkpoints before the failure strikes, the less will have to be re-executed.

For a chain executed from time 0 with checkpoints after a chosen set of tasks,
the work of a segment is saved iff the first failure strikes after that
segment's checkpoint has committed.  Hence, writing ``tau_k`` for the absolute
completion time of the ``k``-th checkpointed segment and ``S`` for the
survival function of the time to the first failure::

    E[saved work] = sum_k  W_k * S(tau_k)

This module provides the exact evaluation of that objective for any
:class:`~repro.failures.distributions.FailureDistribution`
(:func:`expected_work_before_failure`) and two solvers
(:func:`work_maximization_chain`):

* exhaustive enumeration of the ``2^{n-1}`` placements for small chains
  (exact);
* a dynamic program over (position of the last checkpoint, number of
  checkpoints placed) for longer chains -- exact whenever all checkpoint
  costs are equal (the elapsed time then only depends on those two state
  variables), and a documented approximation using the mean checkpoint cost
  otherwise.  This mirrors the pseudo-polynomial DP of [20].
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro._validation import check_non_negative
from repro.core.schedule import Schedule
from repro.failures.distributions import FailureDistribution
from repro.workflows.chain import LinearChain

__all__ = [
    "WorkMaximizationResult",
    "expected_work_before_failure",
    "work_maximization_chain",
]


@dataclass(frozen=True)
class WorkMaximizationResult:
    """Result of the work-maximisation placement.

    Attributes
    ----------
    checkpoint_after:
        0-based positions of the checkpoints.
    expected_saved_work:
        Value of the objective (expected work committed before the first
        failure) for this placement.
    exact:
        True when the placement is the exact maximiser (exhaustive search, or
        DP with equal checkpoint costs).
    """

    chain: LinearChain
    checkpoint_after: Tuple[int, ...]
    expected_saved_work: float
    exact: bool

    @property
    def num_checkpoints(self) -> int:
        """Number of checkpoints in the placement."""
        return len(self.checkpoint_after)

    def to_schedule(self) -> Schedule:
        """Materialise the placement as a :class:`Schedule` for simulation."""
        return Schedule.for_chain(self.chain, self.checkpoint_after)


def expected_work_before_failure(
    chain: LinearChain,
    checkpoint_after: Sequence[int],
    law: FailureDistribution,
) -> float:
    """Expected work saved before the first failure, for an explicit placement.

    ``checkpoint_after`` lists the 0-based task indices followed by a
    checkpoint.  Work that is executed but not yet protected by a committed
    checkpoint when the first failure strikes counts for nothing (it will have
    to be re-executed), matching the objective of [20].
    """
    positions = sorted(set(checkpoint_after))
    for position in positions:
        if not 0 <= position < chain.n:
            raise ValueError(f"checkpoint position {position} out of range 0..{chain.n - 1}")
    prefix = chain.prefix_work()
    total = 0.0
    elapsed = 0.0
    previous = -1
    for position in positions:
        segment_work = prefix[position + 1] - prefix[previous + 1]
        elapsed += segment_work + chain.checkpoint_costs[position]
        total += segment_work * law.survival(elapsed)
        previous = position
    return total


def _exhaustive(
    chain: LinearChain, law: FailureDistribution, final_checkpoint: bool
) -> WorkMaximizationResult:
    n = chain.n
    # With a forced final checkpoint only the first n-1 positions are free;
    # otherwise every position (including the last) is a free choice.
    free = list(range(n - 1)) if final_checkpoint else list(range(n))
    best_positions: Tuple[int, ...] = ()
    best_value = -math.inf
    for r in range(len(free) + 1):
        for subset in itertools.combinations(free, r):
            positions = list(subset)
            if final_checkpoint:
                positions.append(n - 1)
            value = expected_work_before_failure(chain, positions, law)
            if value > best_value:
                best_value = value
                best_positions = tuple(sorted(positions))
    return WorkMaximizationResult(
        chain=chain,
        checkpoint_after=best_positions,
        expected_saved_work=best_value,
        exact=True,
    )


def _dynamic_program(
    chain: LinearChain, law: FailureDistribution, final_checkpoint: bool
) -> WorkMaximizationResult:
    n = chain.n
    prefix = chain.prefix_work()
    costs = chain.checkpoint_costs
    uniform = len(set(costs)) == 1
    mean_cost = sum(costs) / n

    def elapsed_at(position: int, num_checkpoints: int) -> float:
        # Absolute time at which the checkpoint after `position` commits,
        # assuming `num_checkpoints` checkpoints (including this one) have
        # been taken so far.  Exact when all costs are equal; otherwise the
        # mean cost is used as an approximation.
        if uniform:
            return prefix[position + 1] + num_checkpoints * costs[0]
        return prefix[position + 1] + num_checkpoints * mean_cost

    # value[i][m] = best expected saved work when the m-th checkpoint is taken
    # right after task i (0-based), considering tasks 0..i only.
    value: List[List[float]] = [[-math.inf] * (n + 1) for _ in range(n)]
    parent: List[List[Optional[Tuple[int, int]]]] = [[None] * (n + 1) for _ in range(n)]
    for i in range(n):
        work = prefix[i + 1]
        value[i][1] = work * law.survival(elapsed_at(i, 1))
    for m in range(2, n + 1):
        for i in range(m - 1, n):
            gain_time = elapsed_at(i, m)
            for j in range(m - 2, i):
                if value[j][m - 1] == -math.inf:
                    continue
                segment_work = prefix[i + 1] - prefix[j + 1]
                candidate = value[j][m - 1] + segment_work * law.survival(gain_time)
                if candidate > value[i][m]:
                    value[i][m] = candidate
                    parent[i][m] = (j, m - 1)

    best_value = 0.0
    best_state: Optional[Tuple[int, int]] = None
    if final_checkpoint:
        # The last checkpoint must sit after the final task.
        for m in range(1, n + 1):
            if value[n - 1][m] > best_value:
                best_value = value[n - 1][m]
                best_state = (n - 1, m)
    else:
        for i in range(n):
            for m in range(1, n + 1):
                if value[i][m] > best_value:
                    best_value = value[i][m]
                    best_state = (i, m)

    positions: List[int] = []
    state = best_state
    while state is not None:
        i, m = state
        positions.append(i)
        state = parent[i][m]
    positions.sort()
    if final_checkpoint and (n - 1) not in positions:
        positions.append(n - 1)

    # Re-evaluate the placement exactly (the DP may have used the mean cost).
    exact_value = expected_work_before_failure(chain, positions, law)
    return WorkMaximizationResult(
        chain=chain,
        checkpoint_after=tuple(positions),
        expected_saved_work=exact_value,
        exact=uniform,
    )


def work_maximization_chain(
    chain: LinearChain,
    law: FailureDistribution,
    *,
    final_checkpoint: bool = True,
    exhaustive_limit: int = 16,
) -> WorkMaximizationResult:
    """Checkpoint placement maximising the expected work saved before the first failure.

    Parameters
    ----------
    chain:
        The task chain.
    law:
        Distribution of the time to the platform's first failure (for a
        platform of ``p`` processors with per-processor law ``F``, the time to
        the first failure is the minimum of ``p`` draws; pass that
        superposed law, or the per-processor law for ``p = 1`` as in [20]).
    final_checkpoint:
        Whether a checkpoint after the last task is mandatory (default True,
        consistent with the rest of the library).
    exhaustive_limit:
        Chains with at most this many tasks are solved exactly by exhaustive
        enumeration; longer chains use the dynamic program.
    """
    check_non_negative("exhaustive_limit", exhaustive_limit)
    if chain.n <= exhaustive_limit:
        return _exhaustive(chain, law, final_checkpoint)
    return _dynamic_program(chain, law, final_checkpoint)
