"""In-memory read model of the job store for the serving hot path.

Status traffic ("is my job done yet?") outnumbers every other request the
service sees, and at gateway throughput it must never queue behind sqlite or
starve the compute workers.  :class:`ServiceSnapshot` keeps a live copy of
every job record in plain dictionaries, refreshed *push-style*: it
subscribes to :meth:`JobStore.subscribe`, so each state transition (submit,
claim, per-chunk progress, finalize, cancel, restart recovery) lands in the
snapshot on the mutating thread, and the read endpoints
(``GET /v1/jobs``, ``GET /v1/jobs/{id}``, ``/v1/healthz``) are answered
entirely from memory.  The hottest representation -- the serialized JSON
body of ``GET /v1/jobs/{id}`` -- is cached per job and invalidated on
transition, so steady-state polling costs one dict lookup, zero
serialization and zero sqlite.

The snapshot is a *cache of truth, not truth*: the sqlite store remains the
system of record (durability, restart recovery), the snapshot is rebuilt
from it with :meth:`prime` at gateway start.

Example::

    >>> from repro.service.jobs import JobStore
    >>> store = JobStore()
    >>> snapshot = ServiceSnapshot(store)
    >>> snapshot.attach()                 # prime + subscribe
    >>> job = store.submit("campaign", {})
    >>> snapshot.get(job.id)["state"]     # no store read involved
    'queued'
    >>> snapshot.counts()["queued"]
    1
"""

from __future__ import annotations

import json
import threading
from typing import Any, Dict, List, Optional

from repro.devtools.lockwatch import tracked_lock
from repro.obs import metrics as _metrics
from repro.service.jobs import JOB_STATES, JobRecord, JobStore

__all__ = ["ServiceSnapshot"]


class ServiceSnapshot:
    """Push-refreshed in-memory view of every job in a :class:`JobStore`.

    Parameters
    ----------
    store:
        The job store to mirror.  :meth:`attach` primes the snapshot from it
        and subscribes for transitions; :meth:`detach` unsubscribes.

    Thread-safety: transitions arrive on scheduler/HTTP threads while the
    gateway's event loop reads concurrently; every access takes the
    snapshot's lock (all operations are dict updates or shallow copies, so
    the critical sections are tiny).

    Example::

        >>> from repro.service import JobStore, ServiceSnapshot
        >>> store = JobStore()
        >>> snapshot = ServiceSnapshot(store)
        >>> snapshot.attach()            # prime + subscribe for transitions
        >>> len(snapshot)
        0
        >>> snapshot.job_bytes("nope") is None   # pre-serialized hot path
        True
        >>> snapshot.detach()
        >>> store.close()
    """

    def __init__(self, store: JobStore) -> None:
        self._store = store
        self._lock = tracked_lock("service.snapshot")
        self._records: Dict[str, JobRecord] = {}
        self._body_cache: Dict[str, bytes] = {}
        self._attached = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def attach(self) -> None:
        """Prime from the store and start receiving transitions (idempotent)."""
        if self._attached:
            return
        self._store.subscribe(self.on_record)
        self._attached = True
        self.prime()

    def detach(self) -> None:
        """Stop receiving transitions (the snapshot keeps its last state)."""
        if self._attached:
            self._store.unsubscribe(self.on_record)
            self._attached = False

    def prime(self) -> None:
        """(Re)load every job from the store -- the one bulk sqlite read."""
        records = self._store.list_jobs()
        with self._lock:
            self._records = {record.id: record for record in records}
            self._body_cache.clear()
        self._refresh_gauges()

    def on_record(self, record: JobRecord) -> None:
        """Store listener: fold one fresh record into the snapshot."""
        with self._lock:
            self._records[record.id] = record
            self._body_cache.pop(record.id, None)
        _metrics.get_registry().counter(
            "repro_snapshot_refreshes_total",
            "Job-state transitions folded into the in-memory snapshot.",
        ).inc()
        self._refresh_gauges()

    # ------------------------------------------------------------------
    # Read API (what the gateway serves from)
    # ------------------------------------------------------------------

    def get(self, job_id: str) -> Optional[Dict[str, Any]]:
        """Full job dict (including result) or None -- memory only."""
        with self._lock:
            record = self._records.get(job_id)
        return record.to_dict() if record is not None else None

    def record(self, job_id: str) -> Optional[JobRecord]:
        """The raw :class:`JobRecord`, or None when unknown."""
        with self._lock:
            return self._records.get(job_id)

    def job_bytes(self, job_id: str) -> Optional[bytes]:
        """Serialized ``{"job": {...}}`` response body for one job.

        Cached until the job's next transition: the steady-state status poll
        costs a dict lookup, not a ``json.dumps``.
        """
        with self._lock:
            body = self._body_cache.get(job_id)
            if body is not None:
                return body
            record = self._records.get(job_id)
            if record is None:
                return None
            body = json.dumps({"job": record.to_dict()}).encode("utf-8")
            self._body_cache[job_id] = body
            return body

    def list_jobs(
        self,
        *,
        state: Optional[str] = None,
        kind: Optional[str] = None,
        limit: Optional[int] = None,
    ) -> List[Dict[str, Any]]:
        """Job summaries (no result payloads), newest first -- memory only.

        Mirrors :meth:`JobStore.list_jobs` filtering exactly, including the
        :exc:`ValueError` on an unknown ``state`` (the HTTP 400 contract).
        """
        if state is not None and state not in JOB_STATES:
            raise ValueError(f"unknown state {state!r}; expected one of {JOB_STATES}")
        with self._lock:
            records = list(self._records.values())
        records.sort(key=lambda record: record.submitted_at, reverse=True)
        out: List[Dict[str, Any]] = []
        for record in records:
            if state is not None and record.state != state:
                continue
            if kind is not None and record.kind != kind:
                continue
            out.append(record.to_dict(include_result=False))
            if limit is not None and len(out) >= int(limit):
                break
        return out

    def counts(self) -> Dict[str, int]:
        """Number of jobs per state (all states present) -- memory only."""
        counts = {state: 0 for state in JOB_STATES}
        with self._lock:
            for record in self._records.values():
                counts[record.state] += 1
        return counts

    def __len__(self) -> int:
        with self._lock:
            return len(self._records)

    def _refresh_gauges(self) -> None:
        _metrics.get_registry().gauge(
            "repro_snapshot_jobs", "Jobs held by the in-memory snapshot."
        ).set(len(self))

    def __repr__(self) -> str:
        return f"ServiceSnapshot(jobs={len(self)}, attached={self._attached})"
