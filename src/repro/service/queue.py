"""Scheduler: drains the job queue onto the execution runtime.

The :class:`JobScheduler` is the compute half of the scenario service (the
HTTP half lives in :mod:`repro.service.server`).  It owns

* validation -- submitted payloads are materialised into
  :class:`~repro.runtime.scenario.ScenarioSpec` objects or checked against
  the experiment registry *at submission time*, so malformed requests are
  rejected before they ever enter the queue;
* deduplication -- a campaign submission is content-hashed (the scenario's
  own :meth:`~repro.runtime.scenario.ScenarioSpec.cache_key` plus the chunk
  plan; an experiment by its id and parameters), and a queued, running or
  completed job with the same hash is returned instead of re-enqueuing the
  work.  Together with the shared
  :class:`~repro.runtime.cache.ResultCache` this makes submission idempotent
  end to end: identical requests cost one simulation, ever;
* execution -- a small pool of worker threads claims queued jobs and runs
  them through the existing runtime (:meth:`ScenarioSpec.run` /
  :func:`~repro.experiments.registry.run_experiment`) on the scheduler's
  backend.  Threads, not processes, because a job's real parallelism lives
  inside the backend (a :class:`~repro.runtime.backends.ProcessPoolBackend`
  fans each job's chunks out) -- the workers only coordinate;
* progress and cancellation -- each campaign's per-chunk
  ``progress(done, total)`` callback writes live progress into the store and
  polls the job's ``cancel_requested`` flag, raising :class:`JobCancelled`
  between chunks when an abort was requested.
"""

from __future__ import annotations

import logging
import threading
import time
from typing import Any, Dict, Optional, Tuple

from repro.core.expected_time import ANALYTIC_NUMERICS
from repro.devtools.lockwatch import tracked_condition
from repro.experiments.registry import EXPERIMENTS, run_experiment
from repro.obs import metrics as _metrics
from repro.obs import tracing as _tracing
from repro.obs.logging import get_logger, log_event
from repro.runtime.backends import ExecutionBackend, resolve_backend
from repro.runtime.cache import ResultCache
from repro.runtime.hashing import stable_hash
from repro.runtime.scenario import ScenarioSpec
from repro.service.jobs import JobRecord, JobStore

_logger = get_logger("service.queue")

__all__ = ["JobCancelled", "JobScheduler", "campaign_result_payload", "table_payload"]


class JobCancelled(RuntimeError):
    """Raised inside a worker when a running job's cancellation is requested."""


def campaign_result_payload(result) -> Dict[str, Any]:
    """JSON-compatible form of a :class:`~repro.simulation.campaign.CampaignResult`.

    The full per-strategy makespan samples are included: JSON serialises
    floats via ``repr``, which round-trips IEEE-754 doubles exactly, so a
    client can rebuild a bit-identical ``CampaignResult`` from the payload
    (the acceptance test of the service pins this down).
    """
    return {
        "type": "campaign",
        "num_runs": result.num_runs,
        "makespans": {
            name: [float(x) for x in samples]
            for name, samples in result.makespans.items()
        },
        "summary": {
            name: {"mean": result.mean(name), "std": result.std(name)}
            for name in result.makespans
        },
        "ranking": result.ranking(),
    }


def table_payload(table) -> Dict[str, Any]:
    """JSON-compatible form of a :class:`~repro.experiments.reporting.ResultTable`."""
    return {
        "type": "table",
        "title": table.title,
        "columns": list(table.columns),
        "rows": [
            {key: _json_value(value) for key, value in row.items()}
            for row in table.rows
        ],
    }


def _json_value(value: Any) -> Any:
    """Coerce numpy scalars (and anything with ``item()``) to plain JSON values."""
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    item = getattr(value, "item", None)
    if callable(item):
        return item()
    return str(value)


class JobScheduler:
    """Executes queued jobs from a :class:`JobStore` on worker threads.

    Parameters
    ----------
    store:
        The persistent job store.  Jobs left ``running`` by a previous
        process are re-queued immediately (restart recovery).
    num_workers:
        Worker threads draining the queue; each runs one job at a time.
    backend:
        Backend spec shared by every job's chunk fan-out (``None``, a worker
        count, ``"processes"``, or an instance); owned and closed by the
        scheduler when it materialised the spec itself.
    cache:
        Optional shared result cache: jobs and direct library calls that
        describe the same scenario replay each other's entries.
    chunk_size:
        Default chunk size for campaign jobs (a job may override it).

    Example::

        >>> from repro.service import JobScheduler, JobStore
        >>> scheduler = JobScheduler(JobStore(), num_workers=2)
        >>> scheduler.start()
        >>> record, reused = scheduler.submit_campaign(spec.to_dict())  # doctest: +SKIP
        >>> scheduler.stop()

    Submissions validate the spec before any row exists and deduplicate by
    scenario content hash (``reused`` is True when an equivalent job --
    queued, running or done -- already answered the submission).  Both HTTP
    front ends are thin shells over this class.
    """

    #: Upper bound on a single chunk, in replications.  Running jobs cancel
    #: cooperatively *between* chunks, so the largest chunk bounds the
    #: service's cancellation latency (25k replications is seconds at scalar
    #: event-loop speed, not minutes).  Oversized requests are *rejected*
    #: (a clean HTTP 400), never silently shrunk: the chunk plan is part of
    #: a scenario's sample identity, and a server that altered it would
    #: serve different samples than a direct run of the same spec.
    MAX_CHUNK_SIZE = 25_000

    def __init__(
        self,
        store: JobStore,
        *,
        num_workers: int = 1,
        backend=None,
        cache: Optional[ResultCache] = None,
        chunk_size: Optional[int] = None,
    ) -> None:
        if num_workers < 1:
            raise ValueError(f"num_workers must be >= 1, got {num_workers}")
        self.store = store
        self.num_workers = num_workers
        self._owns_backend = not isinstance(backend, ExecutionBackend)
        self.backend = resolve_backend(backend)
        self.cache = cache
        # The server-wide default is validated at construction, not first
        # use: a misconfigured deployment (chunk_size > MAX_CHUNK_SIZE, or
        # not an integer) must fail at startup with a clear error instead of
        # failing every campaign it later serves.
        self.chunk_size = self._validated_chunk_size(chunk_size)
        self._threads: list = []
        self._stop = threading.Event()
        self._wake = tracked_condition("service.queue.wake")
        self._abandoned_workers = False
        self.recovered = store.recover_interrupted()

    # ------------------------------------------------------------------
    # Submission (validation + dedupe)
    # ------------------------------------------------------------------

    def submit_campaign(
        self,
        scenario: Dict[str, Any],
        *,
        chunk_size: Optional[int] = None,
    ) -> Tuple[JobRecord, bool]:
        """Enqueue a :class:`ScenarioSpec` campaign (or reuse an equivalent job).

        ``scenario`` is the spec's plain-dict form; it is validated here so a
        bad submission fails fast with a :exc:`ValueError`/:exc:`TypeError`/
        :exc:`KeyError` instead of a failed job.  Returns ``(record, reused)``
        where ``reused`` is True when an existing queued/running/done job
        with the same scenario hash (and chunk plan) was returned instead of
        a new one.
        """
        spec = ScenarioSpec.from_dict(scenario)
        chunk_size = self._validated_chunk_size(chunk_size, num_runs=spec.num_runs)
        effective_chunk = chunk_size if chunk_size is not None else self.chunk_size
        dedupe_key = stable_hash({
            "service_job": "campaign",
            "scenario": spec.cache_key(),
            "num_runs": spec.num_runs,
            "chunk_size": effective_chunk,
        })
        payload = {"scenario": spec.to_dict()}
        if chunk_size is not None:
            payload["chunk_size"] = chunk_size
        return self._submit("campaign", payload, dedupe_key)

    def submit_experiment(
        self,
        experiment: str,
        *,
        engine: Optional[str] = None,
        params: Optional[Dict[str, Any]] = None,
    ) -> Tuple[JobRecord, bool]:
        """Enqueue a registry experiment (E1-E10) run.

        ``params`` are forwarded to the experiment function as keyword
        arguments (e.g. ``{"num_runs": 500, "seed": 3}``).
        """
        key = experiment.upper()
        if key not in EXPERIMENTS:
            raise KeyError(
                f"unknown experiment {experiment!r}; available: {sorted(EXPERIMENTS)}"
            )
        params = dict(params or {})
        if "chunk_size" in params:
            # The Monte-Carlo-heavy experiments accept a chunk_size; bound it
            # like a campaign's (their num_runs defaults differ per
            # experiment, so only the type and cap checks apply).
            params["chunk_size"] = self._validated_chunk_size(params["chunk_size"])
        # Experiment tables embed *analytic* values, so their dedupe key
        # carries the analytic-numerics generation: jobs persisted before a
        # libm switch (math.* -> NumPy ufuncs in PR 5, <= 1 ulp) re-run
        # instead of replaying stale bits.  Campaign/scenario jobs do not
        # need the tag -- their samples come from the simulation engines,
        # whose numerics are unchanged.
        dedupe_key = stable_hash({
            "service_job": "experiment",
            "experiment": key,
            "engine": engine,
            "params": params,
            "analytic_numerics": ANALYTIC_NUMERICS,
        })
        payload: Dict[str, Any] = {"experiment": key, "params": params}
        if engine is not None:
            payload["engine"] = engine
        return self._submit("experiment", payload, dedupe_key)

    def _validated_chunk_size(
        self, chunk_size: Optional[int], num_runs: Optional[int] = None
    ) -> Optional[int]:
        """Validate (and canonicalise) a submission's chunk size.

        * non-integers and values below 1 raise (the HTTP layer turns the
          :exc:`TypeError`/:exc:`ValueError` into a 400);
        * a chunk size above ``num_runs`` is clamped *down to* ``num_runs``
          -- a sample-preserving rewrite, because every chunk size at or
          above the budget yields the very same single-chunk plan (same
          sizes, same spawned RNG streams), so the clamped job serves
          bit-identical samples and deduplicates with the canonical
          spelling;
        * anything still above :attr:`MAX_CHUNK_SIZE` is rejected: chunks
          are the unit of progress and cooperative cancellation, and one
          absurdly long chunk would make a running job uninterruptible.
        """
        if chunk_size is None:
            return None
        if isinstance(chunk_size, bool) or not isinstance(chunk_size, int):
            raise TypeError(
                f"chunk_size must be an integer, got {type(chunk_size).__name__}"
            )
        if chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
        if num_runs is not None and chunk_size > num_runs:
            chunk_size = num_runs
        if chunk_size > self.MAX_CHUNK_SIZE:
            raise ValueError(
                f"chunk_size {chunk_size} exceeds the service cap of "
                f"{self.MAX_CHUNK_SIZE} replications; running jobs cancel "
                "cooperatively between chunks, so oversized chunks would make "
                "cancellation unresponsive"
            )
        return chunk_size

    def _submit(
        self, kind: str, payload: Dict[str, Any], dedupe_key: str
    ) -> Tuple[JobRecord, bool]:
        record, reused = self.store.submit_or_reuse(kind, payload, dedupe_key)
        registry = _metrics.get_registry()
        if reused:
            registry.counter(
                "repro_jobs_deduplicated_total",
                "Submissions answered by an existing equivalent job.",
                labelnames=("kind",),
            ).inc(kind=kind)
        else:
            registry.counter(
                "repro_jobs_submitted_total",
                "Jobs newly enqueued, by kind.",
                labelnames=("kind",),
            ).inc(kind=kind)
            self._update_queue_depth()
            with self._wake:
                self._wake.notify_all()
        log_event(
            _logger, "job.submitted",
            job_id=record.id, kind=kind, reused=reused, state=record.state,
        )
        return record, reused

    def _update_queue_depth(self) -> None:
        _metrics.get_registry().gauge(
            "repro_job_queue_depth", "Jobs currently waiting in the queue."
        ).set(self.store.counts()["queued"])

    # ------------------------------------------------------------------
    # Worker loop
    # ------------------------------------------------------------------

    @property
    def abandoned_workers(self) -> bool:
        """True when :meth:`stop` timed out and left a worker mid-job."""
        return self._abandoned_workers

    def start(self) -> None:
        """Start the worker threads (idempotent)."""
        if self._threads:
            return
        self._stop.clear()
        for index in range(self.num_workers):
            thread = threading.Thread(
                target=self._worker_loop, name=f"repro-job-worker-{index}", daemon=True
            )
            thread.start()
            self._threads.append(thread)

    def stop(self, *, wait: bool = True, timeout: Optional[float] = None) -> None:
        """Stop the workers after their current job; close owned resources.

        ``timeout`` bounds the per-worker join: a worker still executing a
        long job after the timeout is *abandoned* (the threads are daemons,
        so they die with the process) instead of blocking shutdown -- the job
        it was running is re-queued by restart recovery on the next start.
        An owned backend is only closed when every worker actually exited
        (closing a process pool out from under a running job would block on
        it all the same).
        """
        self._stop.set()
        with self._wake:
            self._wake.notify_all()
        if wait:
            for thread in self._threads:
                thread.join(timeout)
        if any(thread.is_alive() for thread in self._threads):
            self._abandoned_workers = True
            log_event(
                _logger, "scheduler.workers_abandoned", level=logging.WARNING,
                still_running=[t.name for t in self._threads if t.is_alive()],
            )
        self._threads = []
        if self._owns_backend and not self._abandoned_workers:
            self.backend.close()

    def _worker_loop(self) -> None:
        while not self._stop.is_set():
            job = self.store.claim_next()
            if job is None:
                with self._wake:
                    # A submit that lands between claim_next and this wait
                    # notifies before we sleep and is simply picked up by the
                    # timeout; the notification only shortens the idle wait.
                    self._wake.wait(timeout=0.1)
                continue
            self.execute(job)

    def run_pending(self, *, max_jobs: Optional[int] = None) -> int:
        """Synchronously drain the queue in the calling thread.

        The threadless twin of :meth:`start` -- used by tests and one-shot
        tooling that want deterministic scheduling.  Returns the number of
        jobs executed.
        """
        executed = 0
        while max_jobs is None or executed < max_jobs:
            job = self.store.claim_next()
            if job is None:
                break
            self.execute(job)
            executed += 1
        return executed

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def execute(self, job: JobRecord) -> None:
        """Run one claimed job to a terminal state (never raises).

        The execution runs under a trace whose correlation id *is* the job
        id, so every span (cache lookups, chunks -- even in pool workers) and
        log line it produces can be grepped by the id a client already
        holds.  On completion the wall-time is decomposed into the
        queue-wait / compute / cache phases and persisted next to the job.
        """
        registry = _metrics.get_registry()
        queue_wait = max((job.started_at or time.time()) - job.submitted_at, 0.0)
        registry.histogram(
            "repro_job_claim_seconds",
            "Delay between job submission and a worker claiming it.",
        ).observe(queue_wait)
        self._update_queue_depth()
        outcome = "done"
        error: Optional[BaseException] = None
        result: Optional[Dict[str, Any]] = None
        start = time.perf_counter()
        with _tracing.start_trace(job.id) as trace:
            try:
                if self.store.cancel_requested(job.id):
                    raise JobCancelled(job.id)
                with _tracing.span("job.run", kind=job.kind):
                    if job.kind == "campaign":
                        result = self._execute_campaign(job)
                    elif job.kind == "experiment":
                        result = self._execute_experiment(job)
                    else:
                        raise ValueError(f"unknown job kind {job.kind!r}")
            except JobCancelled:
                outcome = "cancelled"
            except Exception as exc:  # noqa: BLE001  # repro: noqa[broad-except] - the failure is persisted on the job record just below, not swallowed
                outcome = "failed"
                error = exc
        run_s = time.perf_counter() - start
        # Cache get/put run in this thread (chunk workers never touch the
        # cache), so the trace's cache.* spans account the job's cache time
        # exactly; the remainder of the wall-time is compute.
        cache_s = min(trace.durations("cache."), run_s)
        self.store.record_phases(job.id, {
            "queue_wait_s": queue_wait,
            "compute_s": max(run_s - cache_s, 0.0),
            "cache_s": cache_s,
        })
        # Persist the span tree whatever the outcome -- a failed job's trace
        # is the one an operator most wants to read.  Chunk spans recorded in
        # pool workers were absorbed into this trace during the merge, so the
        # stored tree covers the whole execution.
        if trace.spans or trace.dropped:
            self.store.record_trace(job.id, {
                "correlation_id": trace.correlation_id,
                "dropped": trace.dropped,
                "spans": trace.spans,
            })
        if outcome == "cancelled":
            self.store.mark_cancelled(job.id)
            registry.counter(
                "repro_jobs_cancelled_total",
                "Jobs cancelled, by kind.",
                labelnames=("kind",),
            ).inc(kind=job.kind)
            log_event(
                _logger, "job.cancelled",
                job_id=job.id, kind=job.kind, correlation_id=job.id,
            )
        elif outcome == "failed":
            message = f"{type(error).__name__}: {error}"
            self.store.fail(job.id, message)
            log_event(
                _logger, "job.failed", level=logging.ERROR,
                job_id=job.id, kind=job.kind, error=message,
                exc_info=error, correlation_id=job.id,
            )
        else:
            self.store.finish(job.id, result)
            log_event(
                _logger, "job.completed",
                job_id=job.id, kind=job.kind, duration_s=round(run_s, 6),
                correlation_id=job.id,
            )
        registry.counter(
            "repro_jobs_completed_total",
            "Executed jobs by kind and terminal outcome.",
            labelnames=("kind", "outcome"),
        ).inc(kind=job.kind, outcome=outcome)
        registry.histogram(
            "repro_job_run_seconds",
            "Wall-time of executed jobs, by kind.",
            labelnames=("kind",),
        ).observe(run_s, kind=job.kind)
        self._update_queue_depth()

    def _progress_hook(self, job_id: str):
        def hook(done: int, total: int) -> None:
            if self.store.cancel_requested(job_id):
                raise JobCancelled(job_id)
            self.store.update_progress(job_id, done, total)

        return hook

    def _execute_campaign(self, job: JobRecord) -> Dict[str, Any]:
        spec = ScenarioSpec.from_dict(job.spec["scenario"])
        chunk_size = job.spec.get("chunk_size", self.chunk_size)
        result = spec.run(
            backend=self.backend,
            cache=self.cache,
            chunk_size=chunk_size,
            progress=self._progress_hook(job.id),
        )
        payload = campaign_result_payload(result)
        payload["scenario_key"] = spec.cache_key()
        return payload

    def _execute_experiment(self, job: JobRecord) -> Dict[str, Any]:
        # Monte-Carlo-heavy experiments (E1, E8) report real per-chunk
        # counts through the hook -- and therefore also honour cooperative
        # cancellation mid-experiment; run_experiment itself provides the
        # 0/1 -> 1/1 fallback for experiments without progress support.
        table = run_experiment(
            job.spec["experiment"],
            backend=self.backend,
            cache=self.cache,
            engine=job.spec.get("engine"),
            progress=self._progress_hook(job.id),
            **job.spec.get("params", {}),
        )
        return table_payload(table)
