"""Scenario service: a job-queue + HTTP API subsystem serving campaign workloads.

Everything below :mod:`repro.runtime` executes one-shot, in-process.  This
package adds the long-lived serving surface the ROADMAP's production goal
needs: a coordinator process that accepts campaign submissions over HTTP,
queues them durably, executes them through the existing backends/cache/engine
machinery, and reports progress -- the single-host ancestor of a sharded
multi-host scheduler (the architecture Dask-style centralized schedulers
demonstrate at scale).

Four layers, each usable on its own:

* :mod:`repro.service.jobs` -- the persistence layer: a sqlite3-backed
  :class:`~repro.service.jobs.JobStore` (in-memory fallback) whose job rows
  survive server restarts;
* :mod:`repro.service.queue` -- the scheduler: worker threads draining the
  store, validating and deduplicating submissions by scenario content hash,
  executing :class:`~repro.runtime.scenario.ScenarioSpec` campaigns and
  registry experiments with per-chunk progress and cooperative cancellation;
* :mod:`repro.service.server` -- the threaded HTTP API
  (:class:`~repro.service.server.ScenarioServer`, stdlib
  ``ThreadingHTTPServer``): ``/v1/jobs``, ``/v1/scenarios``, ``/v1/healthz``,
  ``/v1/metrics``;
* :mod:`repro.service.gateway` -- the asyncio front end
  (:class:`~repro.service.gateway.GatewayServer`): the same ``/v1`` surface
  served from an in-memory :class:`~repro.service.snapshot.ServiceSnapshot`,
  plus SSE progress streams (``/v1/jobs/{id}/events``), per-client
  :class:`~repro.service.ratelimit.TokenBucketLimiter` rate limiting and an
  :class:`~repro.service.audit.AuditTrail`;
* :mod:`repro.service.client` -- the Python client
  (:class:`~repro.service.client.ServiceClient`) and result reconstruction.

The ``repro serve`` / ``repro submit`` / ``repro jobs`` / ``repro metrics``
CLI sub-commands wrap these layers; ``docs/api.md`` has the full endpoint
reference and ``docs/architecture.md`` the life of a job.  Every layer is
instrumented through :mod:`repro.obs` (request/job counters and latency
histograms, correlation-id tracing, structured JSON logs).
"""

from repro.service.audit import AuditTrail
from repro.service.client import ServiceClient, ServiceError
from repro.service.gateway import GatewayServer
from repro.service.jobs import JOB_STATES, JobRecord, JobStore
from repro.service.queue import JobCancelled, JobScheduler
from repro.service.ratelimit import RateLimitDecision, TokenBucketLimiter
from repro.service.server import ScenarioServer
from repro.service.snapshot import ServiceSnapshot

__all__ = [
    "JOB_STATES",
    "AuditTrail",
    "GatewayServer",
    "JobCancelled",
    "JobRecord",
    "JobScheduler",
    "JobStore",
    "RateLimitDecision",
    "ScenarioServer",
    "ServiceClient",
    "ServiceError",
    "ServiceSnapshot",
    "TokenBucketLimiter",
]
