"""HTTP API of the scenario service.

A deliberately small, dependency-free JSON-over-HTTP surface on the stdlib's
:class:`~http.server.ThreadingHTTPServer` (one thread per request; the heavy
lifting happens on the scheduler's workers, so request handlers only touch
the job store).  Endpoints:

=======  ==========================  ===============================================
Method   Path                        Meaning
=======  ==========================  ===============================================
GET      ``/v1/healthz``             liveness + job counts + compact stats summary
GET      ``/v1/metrics``             process metrics (Prometheus text;
                                     ``?format=json`` for the JSON snapshot)
GET      ``/v1/scenarios``           catalog: experiments, engines, sweepable fields
POST     ``/v1/scenarios/preview``   expand a sweep without running it
POST     ``/v1/jobs``                submit a campaign or experiment job
GET      ``/v1/jobs``                list jobs (``?state=``, ``?kind=``, ``?limit=``)
GET      ``/v1/jobs/{id}``           one job: state, progress, timings, result
GET      ``/v1/jobs/{id}/trace``     the job's persisted span tree (404 until the
                                     job has executed)
DELETE   ``/v1/jobs/{id}``           cancel (immediate if queued, cooperative if
                                     running)
GET      ``/v1/debug/flight``        flight-recorder dump: recent spans/errors
=======  ==========================  ===============================================

Responses are JSON; errors are ``{"error": message}`` with a 4xx status.
Submission replies carry ``"deduplicated": true`` (and status 200 instead of
201) when an equivalent job already existed.

Every request runs under its own short correlation id: log lines the request
produces (including the scheduler's ``job.submitted``) can be stitched back
to it, and an unexpected handler error becomes a clean 500 plus a structured
ERROR event instead of a raw traceback on stderr.
"""

from __future__ import annotations

import dataclasses
import json
import logging
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Callable, Dict, Optional, Tuple
from urllib.parse import parse_qs, urlsplit

from repro.experiments.registry import experiment_descriptions
from repro.obs import metrics as _metrics
from repro.obs import tracing as _tracing
from repro.obs.logging import get_logger, log_event
from repro.runtime.backends import ENGINES
from repro.runtime.scenario import ScenarioSpec, expand_scenarios
from repro.service.queue import JobScheduler

__all__ = ["ScenarioServer", "catalog_payload", "sweep_preview_payload"]

_logger = get_logger("service.server")


def catalog_payload() -> Dict[str, Any]:
    """The ``GET /v1/scenarios`` response body.

    Shared by both HTTP front ends; the catalog is static per process, so
    the asyncio gateway caches its serialized form.
    """
    sweepable = sorted(
        f.name for f in dataclasses.fields(ScenarioSpec) if f.name != "name"
    )
    return {
        "experiments": experiment_descriptions(),
        "engines": list(ENGINES),
        "sweepable_fields": sweepable,
        "preview": "POST {scenario, axes} to /v1/scenarios/preview to expand "
                   "a sweep without running it",
    }


def sweep_preview_payload(body: Dict[str, Any]) -> Dict[str, Any]:
    """Expand a ``{scenario, axes}`` preview request into its response payload.

    Shared by both HTTP front ends (the threaded :class:`ScenarioServer` and
    the asyncio gateway), so ``POST /v1/scenarios/preview`` behaves
    identically whichever one answers.  Raises :exc:`ValueError` /
    :exc:`TypeError` / :exc:`KeyError` for malformed requests (the HTTP
    layer renders those as a 400).

    Example::

        >>> payload = sweep_preview_payload({
        ...     "scenario": {"name": "s", "chain": {"n": 3, "seed": 1},
        ...                  "failure": {"kind": "exponential", "mtbf": 10.0},
        ...                  "strategies": ["optimal_dp"], "num_runs": 10},
        ...     "axes": {"num_runs": [10, 20]},
        ... })
        >>> payload["count"]
        2
    """
    base = ScenarioSpec.from_dict(body.get("scenario", {}))
    axes = body.get("axes", {})
    if not isinstance(axes, dict):
        raise ValueError('"axes" must map field names to value lists')
    if "failure" in axes:
        axes = dict(axes)
        axes["failure"] = [
            spec if not isinstance(spec, dict) else base.failure.__class__(**spec)
            for spec in axes["failure"]
        ]
    if "chain" in axes:
        axes = dict(axes)
        axes["chain"] = [
            spec if not isinstance(spec, dict) else base.chain.__class__(**spec)
            for spec in axes["chain"]
        ]
    expanded = expand_scenarios(base, **axes)
    return {
        "count": len(expanded),
        "scenarios": [
            {
                "name": spec.name,
                "cache_key": spec.cache_key(),
                "num_runs": spec.num_runs,
                "engine": spec.engine,
                "scenario": spec.to_dict(),
            }
            for spec in expanded
        ],
    }

#: Known route templates, used as the ``route`` metric label so per-job URLs
#: (``/v1/jobs/<16-hex-id>``) cannot explode the label cardinality.
_ROUTES = (
    "/v1/healthz",
    "/v1/metrics",
    "/v1/scenarios",
    "/v1/scenarios/preview",
    "/v1/jobs",
    "/v1/debug/flight",
)


def _route_label(path: str) -> str:
    if path in _ROUTES:
        return path
    if path.startswith("/v1/jobs/"):
        if path.endswith("/trace"):
            return "/v1/jobs/{id}/trace"
        return "/v1/jobs/{id}"
    return "other"


class _ServiceRequestHandler(BaseHTTPRequestHandler):
    """Routes one HTTP request to the scheduler/store behind the server."""

    server_version = "repro-scenario-service/1"
    protocol_version = "HTTP/1.1"

    # The ScenarioServer attaches itself here (class created per server).
    service: "ScenarioServer"

    # ------------------------------------------------------------------
    # Verbs
    # ------------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 - BaseHTTPRequestHandler API
        self._dispatch("GET", self._route_get)

    def do_POST(self) -> None:  # noqa: N802
        self._dispatch("POST", self._route_post)

    def do_DELETE(self) -> None:  # noqa: N802
        self._dispatch("DELETE", self._route_delete)

    def _route_get(self, path: str, query: Dict[str, list]) -> None:
        if path == "/v1/healthz":
            self._send(200, self.service.health())
        elif path == "/v1/metrics":
            self._serve_metrics(query)
        elif path == "/v1/scenarios":
            self._send(200, self.service.catalog())
        elif path == "/v1/jobs":
            self._list_jobs(query)
        elif path == "/v1/debug/flight":
            self._serve_flight(query)
        elif path.startswith("/v1/jobs/") and path.endswith("/trace"):
            self._get_trace(path[len("/v1/jobs/"):-len("/trace")])
        elif path.startswith("/v1/jobs/"):
            self._get_job(path[len("/v1/jobs/"):])
        else:
            self._send(404, {"error": f"no such path: {path}"})

    def _route_post(self, path: str, query: Dict[str, list]) -> None:
        if path == "/v1/jobs":
            self._submit_job()
        elif path == "/v1/scenarios/preview":
            self._preview_sweep()
        else:
            self._send(404, {"error": f"no such path: {path}"})

    def _route_delete(self, path: str, query: Dict[str, list]) -> None:
        if path.startswith("/v1/jobs/"):
            self._cancel_job(path[len("/v1/jobs/"):])
        else:
            self._send(404, {"error": f"no such path: {path}"})

    def _dispatch(
        self, method: str, router: Callable[[str, Dict[str, list]], None]
    ) -> None:
        """Route one request under its own trace, timing and error boundary.

        Unexpected handler exceptions become a JSON 500 plus a structured
        ERROR event carrying the request's correlation id -- never a raw
        traceback dumped by the socketserver machinery.
        """
        path, query = self._split_path()
        route = _route_label(path)
        self._status: Optional[int] = None
        start = time.perf_counter()
        with _tracing.start_trace(collect=False):
            try:
                router(path, query)
            except Exception as exc:  # noqa: BLE001 - boundary of the HTTP thread
                log_event(
                    _logger, "http.request_error", level=logging.ERROR,
                    method=method, path=path,
                    error=f"{type(exc).__name__}: {exc}", exc_info=exc,
                )
                if self._status is None:
                    try:
                        self._send(500, {"error": "internal server error"})
                    except OSError:  # pragma: no cover - client hung up mid-reply
                        pass
            duration = time.perf_counter() - start
            status = self._status if self._status is not None else 500
            registry = _metrics.get_registry()
            registry.counter(
                "repro_http_requests_total",
                "HTTP requests by method, route template and status code.",
                labelnames=("method", "route", "status"),
            ).inc(method=method, route=route, status=str(status))
            registry.histogram(
                "repro_http_request_seconds",
                "HTTP request latency by route template.",
                labelnames=("route",),
            ).observe(duration, route=route)
            log_event(
                _logger, "http.request", level=logging.DEBUG,
                method=method, path=path, status=status,
                duration_s=round(duration, 6),
            )

    def _serve_metrics(self, query: Dict[str, list]) -> None:
        registry = _metrics.get_registry()
        if query.get("format", [None])[0] == "json":
            self._send(200, {"metrics": registry.snapshot()})
        else:
            self._send_text(
                200,
                registry.render_prometheus(),
                content_type="text/plain; version=0.0.4; charset=utf-8",
            )

    # ------------------------------------------------------------------
    # Handlers
    # ------------------------------------------------------------------

    def _list_jobs(self, query: Dict[str, list]) -> None:
        try:
            records = self.service.scheduler.store.list_jobs(
                state=query.get("state", [None])[0],
                kind=query.get("kind", [None])[0],
                limit=int(query["limit"][0]) if "limit" in query else None,
            )
        except ValueError as exc:
            self._send(400, {"error": str(exc)})
            return
        # Listings omit result payloads (a done campaign's samples can be
        # megabytes); fetch the job by id for the full record.
        self._send(
            200, {"jobs": [record.to_dict(include_result=False) for record in records]}
        )

    def _get_job(self, job_id: str) -> None:
        record = self.service.scheduler.store.get(job_id)
        if record is None:
            self._send(404, {"error": f"no such job: {job_id}"})
        else:
            self._send(200, {"job": record.to_dict()})

    def _get_trace(self, job_id: str) -> None:
        store = self.service.scheduler.store
        record = store.get(job_id)
        if record is None:
            self._send(404, {"error": f"no such job: {job_id}"})
            return
        trace = store.get_trace(job_id)
        if trace is None:
            # Distinct message from the unknown-job 404: the job exists, its
            # trace does not (yet) -- it has not executed, or predates the
            # trace pipeline.
            self._send(404, {"error": f"no trace recorded for job: {job_id}"})
            return
        self._send(200, {"job_id": job_id, "trace": trace})

    def _serve_flight(self, query: Dict[str, list]) -> None:
        from repro.obs.flight import get_flight_recorder

        payload = get_flight_recorder().snapshot()
        kind = query.get("kind", [None])[0]
        if kind is not None:
            payload["events"] = [e for e in payload["events"] if e["kind"] == kind]
        self._send(200, {"flight": payload})

    def _cancel_job(self, job_id: str) -> None:
        record = self.service.scheduler.store.get(job_id)
        if record is None:
            self._send(404, {"error": f"no such job: {job_id}"})
            return
        updated = self.service.scheduler.store.request_cancel(job_id)
        if record.state == "queued" and updated.state == "cancelled":
            # Immediate cancellation of a queued job: it will never reach a
            # worker, so count it here (running jobs are counted by the
            # scheduler when their cooperative cancel lands).
            _metrics.get_registry().counter(
                "repro_jobs_cancelled_total",
                "Jobs cancelled, by kind.",
                labelnames=("kind",),
            ).inc(kind=record.kind)
            self.service.scheduler._update_queue_depth()
        log_event(
            _logger, "job.cancel_requested",
            job_id=job_id, kind=record.kind, state=updated.state,
        )
        self._send(200, {"job": updated.to_dict(include_result=False)})

    def _submit_job(self) -> None:
        body = self._read_json()
        if body is None:
            return
        kind = body.get("kind", "campaign")
        try:
            if kind == "campaign":
                if "scenario" not in body:
                    raise ValueError('a campaign submission needs a "scenario" object')
                record, reused = self.service.scheduler.submit_campaign(
                    body["scenario"], chunk_size=body.get("chunk_size")
                )
            elif kind == "experiment":
                if "experiment" not in body:
                    raise ValueError('an experiment submission needs an "experiment" id')
                record, reused = self.service.scheduler.submit_experiment(
                    body["experiment"],
                    engine=body.get("engine"),
                    params=body.get("params"),
                )
            else:
                raise ValueError(
                    f"unknown job kind {kind!r}; expected 'campaign' or 'experiment'"
                )
        except (KeyError, TypeError, ValueError) as exc:
            self._send(400, {"error": str(exc)})
            return
        self._send(
            200 if reused else 201,
            {"job": record.to_dict(include_result=False), "deduplicated": reused},
        )

    def _preview_sweep(self) -> None:
        body = self._read_json()
        if body is None:
            return
        try:
            payload = sweep_preview_payload(body)
        except (KeyError, TypeError, ValueError) as exc:
            self._send(400, {"error": str(exc)})
            return
        self._send(200, payload)

    # ------------------------------------------------------------------
    # Plumbing
    # ------------------------------------------------------------------

    def _split_path(self) -> Tuple[str, Dict[str, list]]:
        parts = urlsplit(self.path)
        return parts.path.rstrip("/") or "/", parse_qs(parts.query)

    def _read_json(self) -> Optional[Dict[str, Any]]:
        try:
            length = int(self.headers.get("Content-Length") or 0)
        except ValueError:
            length = 0
        raw = self.rfile.read(length) if length else b""
        try:
            body = json.loads(raw.decode("utf-8")) if raw else {}
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            self._send(400, {"error": f"invalid JSON body: {exc}"})
            return None
        if not isinstance(body, dict):
            self._send(400, {"error": "the request body must be a JSON object"})
            return None
        return body

    def _send(self, status: int, payload: Dict[str, Any]) -> None:
        self._send_bytes(status, json.dumps(payload).encode("utf-8"), "application/json")

    def _send_text(self, status: int, text: str, *, content_type: str) -> None:
        self._send_bytes(status, text.encode("utf-8"), content_type)

    def _send_bytes(self, status: int, data: bytes, content_type: str) -> None:
        self._status = status
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(data)))
        self.end_headers()
        self.wfile.write(data)

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        if self.service.verbose:
            super().log_message(format, *args)


class ScenarioServer:
    """The scenario service's HTTP front-end.

    Wraps a :class:`JobScheduler` in a :class:`~http.server.ThreadingHTTPServer`.
    ``port=0`` binds an ephemeral port (query :attr:`port` after
    construction) -- how the tests and the CI smoke step avoid collisions.

    Use :meth:`serve_forever` for a foreground server (the CLI) or
    :meth:`start` / :meth:`shutdown` for a background one (tests, notebooks).
    Starting the server also starts the scheduler's workers.

    This is the simple, thread-per-connection fallback
    (``repro serve --server threaded``); the default front end is the
    asyncio :class:`~repro.service.gateway.GatewayServer`, which adds SSE
    progress, rate limiting and the audit trail.  Both serve identical
    payloads on the shared ``/v1`` routes.

    Example::

        >>> from repro.service import JobScheduler, JobStore, ScenarioServer
        >>> server = ScenarioServer(JobScheduler(JobStore()), port=0)
        >>> server.start()
        >>> server.url                          # doctest: +ELLIPSIS
        'http://127.0.0.1:...'
        >>> server.shutdown()
    """

    def __init__(
        self,
        scheduler: JobScheduler,
        *,
        host: str = "127.0.0.1",
        port: int = 8765,
        verbose: bool = False,
    ) -> None:
        self.scheduler = scheduler
        self.verbose = verbose
        self.started_at = time.time()
        handler = type("_BoundServiceHandler", (_ServiceRequestHandler,), {"service": self})
        self._httpd = ThreadingHTTPServer((host, port), handler)
        self._httpd.daemon_threads = True
        self._thread: Optional[threading.Thread] = None

    @property
    def host(self) -> str:
        return self._httpd.server_address[0]

    @property
    def port(self) -> int:
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        """Base URL clients should use."""
        return f"http://{self.host}:{self.port}"

    # ------------------------------------------------------------------
    # Introspection payloads (shared by handler and health checks)
    # ------------------------------------------------------------------

    def health(self) -> Dict[str, Any]:
        counts = self.scheduler.store.counts()
        registry = _metrics.get_registry()
        cache = self.scheduler.cache
        return {
            "status": "ok",
            "jobs": counts,
            "workers": self.scheduler.num_workers,
            "backend": repr(self.scheduler.backend),
            # `is not None`, not truthiness: ResultCache.__len__ makes an
            # empty cache falsy, and an attached-but-cold cache must still
            # show up here.
            "cache": repr(cache) if cache is not None else None,
            "uptime_seconds": time.time() - self.started_at,
            # Compact counters for humans and smoke checks; the full
            # time-series view lives at /v1/metrics.
            "stats": {
                "http_requests": registry.total("repro_http_requests_total"),
                "jobs_submitted": registry.total("repro_jobs_submitted_total"),
                "jobs_deduplicated": registry.total("repro_jobs_deduplicated_total"),
                "jobs_executed": registry.total("repro_jobs_completed_total"),
                "queue_depth": counts["queued"],
                "cache_hits": cache.hits if cache is not None else 0,
                "cache_misses": cache.misses if cache is not None else 0,
            },
        }

    def catalog(self) -> Dict[str, Any]:
        return catalog_payload()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def serve_forever(self) -> None:
        """Run in the calling thread until :meth:`shutdown` (or Ctrl-C).

        On the way out (including Ctrl-C) workers get a bounded grace period
        to finish their current job, then are abandoned: a foreground server
        must stop when asked, and a job cut short mid-run is exactly what
        restart recovery re-queues on the next start.
        """
        self.scheduler.start()
        log_event(
            _logger, "server.started",
            host=self.host, port=self.port, workers=self.scheduler.num_workers,
        )
        try:
            self._httpd.serve_forever(poll_interval=0.1)
        finally:
            self._httpd.server_close()
            self.scheduler.stop(timeout=2.0)

    def start(self) -> None:
        """Serve in a background thread (returns once the socket is live)."""
        self.scheduler.start()
        self._thread = threading.Thread(
            target=self._httpd.serve_forever, kwargs={"poll_interval": 0.05},
            name="repro-scenario-server", daemon=True,
        )
        self._thread.start()

    def shutdown(self) -> None:
        """Stop serving and stop the scheduler's workers."""
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join()
            self._thread = None
        self.scheduler.stop()

    def __enter__(self) -> "ScenarioServer":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()
