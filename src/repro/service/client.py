"""Python client for the scenario service.

A thin, dependency-free (urllib) wrapper over the HTTP API of
:mod:`repro.service.server`, plus the one non-trivial conversion: rebuilding
a :class:`~repro.simulation.campaign.CampaignResult` from a finished job's
payload (bit-identical to the samples the server computed, because JSON
round-trips IEEE-754 doubles exactly).

>>> client = ServiceClient("http://127.0.0.1:8765")   # doctest: +SKIP
>>> job = client.submit_campaign(spec)                # doctest: +SKIP
>>> done = client.wait(job["id"])                     # doctest: +SKIP
>>> result = client.campaign_result(done)             # doctest: +SKIP
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from typing import Any, Callable, Dict, List, Optional, Union

from repro.runtime.scenario import ScenarioSpec
from repro.simulation.campaign import CampaignResult

__all__ = ["ServiceClient", "ServiceError"]


class ServiceError(RuntimeError):
    """An HTTP request the service rejected (or could not complete).

    Attributes
    ----------
    status:
        HTTP status code, or None for transport-level failures.
    payload:
        Decoded JSON error body when the server provided one.
    """

    def __init__(self, message: str, *, status: Optional[int] = None, payload=None) -> None:
        super().__init__(message)
        self.status = status
        self.payload = payload


class ServiceClient:
    """Talks to a running scenario service.

    Parameters
    ----------
    base_url:
        Server address, e.g. ``"http://127.0.0.1:8765"``.
    timeout:
        Per-request socket timeout in seconds.
    client_key:
        Optional identity sent as the ``X-Client-Key`` header on every
        request -- the key the gateway's per-client rate limiter buckets
        by (defaults to the peer IP server-side, so clients sharing a NAT
        or host should set distinct keys).

    Example::

        >>> client = ServiceClient("http://127.0.0.1:8765", client_key="me")
        >>> job = client.submit_campaign(spec)            # doctest: +SKIP
        >>> done = client.wait(job["id"], stream=True)    # doctest: +SKIP
        >>> result = ServiceClient.campaign_result(done)  # doctest: +SKIP

    ``wait(stream=True)`` follows the gateway's SSE event stream (no
    polling) and falls back to polling against servers without the events
    route; either way a 429 from the rate limiter is absorbed by sleeping
    the server-announced ``retry_after`` -- a throttled wait is slowed,
    never failed.
    """

    def __init__(
        self,
        base_url: str = "http://127.0.0.1:8765",
        *,
        timeout: float = 30.0,
        client_key: Optional[str] = None,
    ) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout
        self.client_key = client_key

    # ------------------------------------------------------------------
    # Raw transport
    # ------------------------------------------------------------------

    def _headers(self, **extra: str) -> Dict[str, str]:
        headers = dict(extra)
        if self.client_key is not None:
            headers["X-Client-Key"] = self.client_key
        return headers

    def _request(
        self, method: str, path: str, payload: Optional[Dict[str, Any]] = None
    ) -> Dict[str, Any]:
        data = json.dumps(payload).encode("utf-8") if payload is not None else None
        request = urllib.request.Request(
            self.base_url + path,
            data=data,
            method=method,
            headers=self._headers(**({"Content-Type": "application/json"} if data else {})),
        )
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as response:
                return json.loads(response.read().decode("utf-8"))
        except urllib.error.HTTPError as exc:
            try:
                body = json.loads(exc.read().decode("utf-8"))
                message = body.get("error", str(exc))
            except Exception:  # noqa: BLE001  # repro: noqa[broad-except] - unreadable error body falls back to str(exc); the enclosing handler raises ServiceError
                body, message = None, str(exc)
            raise ServiceError(
                f"{method} {path} failed ({exc.code}): {message}",
                status=exc.code, payload=body,
            ) from exc
        except urllib.error.URLError as exc:
            raise ServiceError(
                f"cannot reach the scenario service at {self.base_url}: {exc.reason}"
            ) from exc

    # ------------------------------------------------------------------
    # Endpoints
    # ------------------------------------------------------------------

    def health(self) -> Dict[str, Any]:
        """``GET /v1/healthz``."""
        return self._request("GET", "/v1/healthz")

    def metrics(self) -> Dict[str, Any]:
        """``GET /v1/metrics?format=json`` -- the server's metric snapshot."""
        return self._request("GET", "/v1/metrics?format=json")["metrics"]

    def metrics_text(self) -> str:
        """``GET /v1/metrics`` -- raw Prometheus text exposition."""
        request = urllib.request.Request(
            self.base_url + "/v1/metrics", method="GET", headers=self._headers()
        )
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as response:
                return response.read().decode("utf-8")
        except urllib.error.HTTPError as exc:
            raise ServiceError(
                f"GET /v1/metrics failed ({exc.code})", status=exc.code
            ) from exc
        except urllib.error.URLError as exc:
            raise ServiceError(
                f"cannot reach the scenario service at {self.base_url}: {exc.reason}"
            ) from exc

    def job_stats(self, job_id: str) -> Optional[Dict[str, float]]:
        """The per-phase timing breakdown of one job (None until executed).

        Phases are ``queue_wait_s`` / ``compute_s`` / ``cache_s``, recorded
        by the scheduler when the job reaches a terminal state.
        """
        return self.job(job_id)["timings"].get("phases")

    def job_trace(self, job_id: str) -> Dict[str, Any]:
        """``GET /v1/jobs/{id}/trace`` -- the job's persisted span-tree payload.

        Returns ``{"correlation_id", "dropped", "spans": [...]}``.  Raises
        :class:`ServiceError` with status 404 while the job has not executed
        yet (or predates trace persistence).  Render the spans with
        :func:`repro.obs.render_span_tree` -- that is what
        ``repro jobs --trace ID`` does.
        """
        return self._request("GET", f"/v1/jobs/{job_id}/trace")["trace"]

    def debug_flight(self, *, kind: Optional[str] = None) -> Dict[str, Any]:
        """``GET /v1/debug/flight`` -- the server's flight-recorder dump.

        Returns ``{"capacity", "recorded_total", "dropped", "events": [...]}``,
        optionally filtered to one event ``kind`` (``span``, ``log``,
        ``error``).
        """
        path = "/v1/debug/flight" + (f"?kind={kind}" if kind is not None else "")
        return self._request("GET", path)["flight"]

    def scenarios(self) -> Dict[str, Any]:
        """``GET /v1/scenarios`` -- the experiment/engine catalog."""
        return self._request("GET", "/v1/scenarios")

    def preview_sweep(
        self, scenario: Union[ScenarioSpec, Dict[str, Any]], axes: Dict[str, List[Any]]
    ) -> Dict[str, Any]:
        """``POST /v1/scenarios/preview`` -- expand a sweep without running it."""
        if isinstance(scenario, ScenarioSpec):
            scenario = scenario.to_dict()
        return self._request(
            "POST", "/v1/scenarios/preview", {"scenario": scenario, "axes": axes}
        )

    def submit_campaign(
        self,
        scenario: Union[ScenarioSpec, Dict[str, Any]],
        *,
        chunk_size: Optional[int] = None,
    ) -> Dict[str, Any]:
        """Submit a campaign; returns the job dict (``job["deduplicated"]`` set).

        Accepts a :class:`ScenarioSpec` or its plain-dict form.
        """
        if isinstance(scenario, ScenarioSpec):
            scenario = scenario.to_dict()
        body: Dict[str, Any] = {"kind": "campaign", "scenario": scenario}
        if chunk_size is not None:
            body["chunk_size"] = chunk_size
        reply = self._request("POST", "/v1/jobs", body)
        job = reply["job"]
        job["deduplicated"] = reply.get("deduplicated", False)
        return job

    def submit_experiment(
        self,
        experiment: str,
        *,
        engine: Optional[str] = None,
        params: Optional[Dict[str, Any]] = None,
    ) -> Dict[str, Any]:
        """Submit a registry experiment (E1-E10) run."""
        body: Dict[str, Any] = {"kind": "experiment", "experiment": experiment}
        if engine is not None:
            body["engine"] = engine
        if params:
            body["params"] = params
        reply = self._request("POST", "/v1/jobs", body)
        job = reply["job"]
        job["deduplicated"] = reply.get("deduplicated", False)
        return job

    def job(self, job_id: str) -> Dict[str, Any]:
        """``GET /v1/jobs/{id}`` -- full record including any result."""
        return self._request("GET", f"/v1/jobs/{job_id}")["job"]

    def jobs(
        self,
        *,
        state: Optional[str] = None,
        kind: Optional[str] = None,
        limit: Optional[int] = None,
    ) -> List[Dict[str, Any]]:
        """``GET /v1/jobs`` -- job summaries, newest first."""
        query = "&".join(
            f"{key}={value}"
            for key, value in (("state", state), ("kind", kind), ("limit", limit))
            if value is not None
        )
        path = "/v1/jobs" + (f"?{query}" if query else "")
        return self._request("GET", path)["jobs"]

    def cancel(self, job_id: str) -> Dict[str, Any]:
        """``DELETE /v1/jobs/{id}`` -- request cancellation."""
        return self._request("DELETE", f"/v1/jobs/{job_id}")["job"]

    def events(self, job_id: str, *, timeout: Optional[float] = None):
        """``GET /v1/jobs/{id}/events`` -- yield ``(event, data)`` SSE pairs.

        A generator over the server-sent-events progress stream the asyncio
        gateway serves: ``("progress", {...})`` per observed transition, a
        terminal ``("end", {...})``, and ``("heartbeat", None)`` for the
        keep-alive comments quiet streams carry.  ``data`` is the decoded
        JSON payload (job id, state, chunk progress -- never the result;
        fetch that with :meth:`job` after the ``end`` event).

        Raises :class:`ServiceError` on HTTP errors -- including 404 from
        servers without SSE support (the threaded ``ScenarioServer``), which
        is what :meth:`wait` uses to fall back to polling.

        Example::

            >>> for event, data in client.events(job["id"]):   # doctest: +SKIP
            ...     if event == "end":
            ...         break
        """
        request = urllib.request.Request(
            f"{self.base_url}/v1/jobs/{job_id}/events",
            method="GET",
            headers=self._headers(Accept="text/event-stream"),
        )
        try:
            response = urllib.request.urlopen(
                request, timeout=self.timeout if timeout is None else timeout
            )
        except urllib.error.HTTPError as exc:
            try:
                body = json.loads(exc.read().decode("utf-8"))
                message = body.get("error", str(exc))
            except Exception:  # noqa: BLE001  # repro: noqa[broad-except] - unreadable error body falls back to str(exc); the enclosing handler raises ServiceError
                body, message = None, str(exc)
            raise ServiceError(
                f"GET /v1/jobs/{job_id}/events failed ({exc.code}): {message}",
                status=exc.code, payload=body,
            ) from exc
        except urllib.error.URLError as exc:
            raise ServiceError(
                f"cannot reach the scenario service at {self.base_url}: {exc.reason}"
            ) from exc
        with response:
            event_name: str = "message"
            data_lines: List[str] = []
            while True:
                try:
                    raw = response.readline()
                except OSError as exc:
                    raise ServiceError(
                        f"event stream for job {job_id} interrupted: {exc}"
                    ) from exc
                if not raw:
                    return  # server closed the stream
                line = raw.decode("utf-8").rstrip("\r\n")
                if not line:  # blank line terminates one frame
                    if data_lines:
                        data = "\n".join(data_lines)
                        try:
                            payload: Any = json.loads(data)
                        except json.JSONDecodeError:
                            payload = data
                        yield event_name, payload
                    event_name, data_lines = "message", []
                    continue
                if line.startswith(":"):
                    yield "heartbeat", None
                    continue
                field, _, value = line.partition(":")
                if value.startswith(" "):
                    value = value[1:]
                if field == "event":
                    event_name = value
                elif field == "data":
                    data_lines.append(value)

    def wait(
        self,
        job_id: str,
        *,
        timeout: float = 300.0,
        poll_interval: float = 0.2,
        max_poll_interval: float = 2.0,
        on_progress: Optional[Callable[[Dict[str, Any]], None]] = None,
        stream: bool = False,
    ) -> Dict[str, Any]:
        """Wait until the job reaches a terminal state; returns its record.

        Raises :class:`ServiceError` when ``timeout`` elapses first.  The
        returned job may be ``done``, ``failed`` or ``cancelled`` -- the
        caller decides what failure means for it.

        With ``stream=True`` the client follows the gateway's SSE progress
        stream (:meth:`events`) instead of polling: each transition arrives
        pushed, and the terminal record is fetched once at the end.  Against
        a server without SSE support (404 on the events route) it falls back
        to polling transparently.

        ``on_progress`` is called with the freshly observed record whenever
        its observable state changes (job state, chunk progress, or the
        first observation), which is how ``repro submit --wait`` renders a
        live progress line.  When polling, the interval starts at
        ``poll_interval`` and backs off by half its value per unchanged poll
        up to ``max_poll_interval``, so short jobs return promptly while
        long jobs do not hammer the service; any observed change resets the
        interval to ``poll_interval``.

        A rate-limited service (429) never fails a ``wait``: the client
        sleeps exactly the ``retry_after`` the server announced and retries,
        within the same overall ``timeout``.
        """
        if stream:
            try:
                return self._wait_streaming(
                    job_id, timeout=timeout, on_progress=on_progress
                )
            except ServiceError as exc:
                if exc.status != 404:
                    raise
                # No SSE route (threaded server) or the job is unknown: the
                # polling path answers both correctly.
        deadline = time.monotonic() + timeout
        interval = poll_interval
        last_seen: Optional[tuple] = None
        while True:
            record = self._job_with_backoff(job_id, deadline)
            observed = (record["state"], record["progress"]["chunks_done"],
                        record["progress"]["chunks_total"])
            if observed != last_seen:
                interval = poll_interval
                if on_progress is not None:
                    on_progress(record)
                last_seen = observed
            else:
                interval = min(interval + poll_interval / 2, max_poll_interval)
            if record["state"] in ("done", "failed", "cancelled"):
                return record
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise ServiceError(
                    f"job {job_id} still {record['state']!r} after {timeout:g}s"
                )
            # Never sleep past the caller's deadline: a backed-off interval
            # must not stretch the effective timeout.
            time.sleep(min(interval, remaining))

    def _job_with_backoff(self, job_id: str, deadline: float) -> Dict[str, Any]:
        """``job()`` that sleeps out 429 throttling instead of failing."""
        while True:
            try:
                return self.job(job_id)
            except ServiceError as exc:
                if exc.status != 429 or time.monotonic() >= deadline:
                    raise
                retry = float((exc.payload or {}).get("retry_after") or 0.1)
                remaining = max(deadline - time.monotonic(), 0.01)
                time.sleep(min(retry + 0.01, remaining))

    def _wait_streaming(
        self,
        job_id: str,
        *,
        timeout: float,
        on_progress: Optional[Callable[[Dict[str, Any]], None]],
    ) -> Dict[str, Any]:
        """SSE-driven wait: consume events until terminal, then fetch the record.

        SSE frames carry a compact flat payload; it is reshaped into the
        record form the polling path delivers (``progress`` sub-dict) so
        ``on_progress`` callbacks work identically either way.  The deadline
        is enforced at every event *and* heartbeat, so a stalled job cannot
        outlive ``timeout`` by more than one heartbeat interval.  A 429 when
        opening the stream is slept out (``retry_after``) and retried.
        """
        deadline = time.monotonic() + timeout
        last_seen: Optional[tuple] = None
        last_state = "unknown"
        while True:
            try:
                for event, payload in self.events(job_id):
                    if time.monotonic() > deadline:
                        raise ServiceError(
                            f"job {job_id} still {last_state!r} after {timeout:g}s"
                        )
                    if event == "heartbeat" or not isinstance(payload, dict):
                        continue
                    record_view = {
                        "id": payload.get("id", job_id),
                        "state": payload.get("state"),
                        "error": payload.get("error"),
                        "progress": {
                            "chunks_done": payload.get("chunks_done", 0),
                            "chunks_total": payload.get("chunks_total", 0),
                        },
                    }
                    last_state = record_view["state"]
                    observed = (record_view["state"],
                                record_view["progress"]["chunks_done"],
                                record_view["progress"]["chunks_total"])
                    if observed != last_seen:
                        if on_progress is not None:
                            on_progress(record_view)
                        last_seen = observed
                    if event == "end" or last_state in ("done", "failed",
                                                        "cancelled"):
                        # The stream never carries result payloads (they can
                        # be megabytes); one final fetch has the full record.
                        return self._job_with_backoff(job_id, deadline)
                raise ServiceError(
                    f"event stream for job {job_id} ended before the job finished"
                )
            except ServiceError as exc:
                if exc.status != 429 or time.monotonic() >= deadline:
                    raise
                retry = float((exc.payload or {}).get("retry_after") or 0.1)
                time.sleep(min(retry + 0.01, max(deadline - time.monotonic(), 0.01)))

    # ------------------------------------------------------------------
    # Result reconstruction
    # ------------------------------------------------------------------

    @staticmethod
    def campaign_result(job: Dict[str, Any]) -> CampaignResult:
        """Rebuild the :class:`CampaignResult` of a finished campaign job.

        The makespan samples are bit-identical to what a direct
        :meth:`ScenarioSpec.run` with the same spec produces: the server
        serialises the raw doubles and JSON round-trips them exactly.
        """
        if job.get("state") != "done":
            raise ValueError(
                f"job {job.get('id')!r} is {job.get('state')!r}, not done"
                + (f": {job['error']}" if job.get("error") else "")
            )
        result = job["result"]
        if not result or result.get("type") != "campaign":
            raise ValueError(f"job {job.get('id')!r} did not produce a campaign result")
        return CampaignResult(
            makespans={name: list(samples) for name, samples in result["makespans"].items()},
            num_runs=int(result["num_runs"]),
        )
