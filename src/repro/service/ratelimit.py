"""Rolling-window token-bucket rate limiting for the serving front end.

The gateway admits requests through a :class:`TokenBucketLimiter`: every
client key owns a bucket holding up to ``burst`` tokens that refills
continuously at ``rate`` tokens per second (the rolling-window formulation --
there is no discrete window edge to thunder against, capacity smears over
time).  A request spends one token; a client that has drained its bucket is
told exactly how long until the next token exists, which the HTTP layer
surfaces as ``429 Too Many Requests`` plus a ``Retry-After`` header.

The limiter is transport-agnostic and thread-safe: the asyncio gateway calls
it from its event loop, tests drive it with a fake clock, and nothing in it
knows about HTTP.

Example::

    >>> clock = iter([0.0, 0.0, 0.0, 10.0]).__next__
    >>> limiter = TokenBucketLimiter(rate=1.0, burst=2, clock=clock)
    >>> limiter.check("alice").allowed, limiter.check("alice").allowed
    (True, True)
    >>> blocked = limiter.check("alice")          # bucket empty at t=0
    >>> (blocked.allowed, blocked.retry_after)
    (False, 1.0)
    >>> limiter.check("alice").allowed            # 10 s later: refilled
    True
"""

from __future__ import annotations

import threading

from repro.devtools.lockwatch import tracked_lock
import time
from dataclasses import dataclass
from typing import Callable, Dict, Optional

__all__ = ["RateLimitDecision", "TokenBucketLimiter"]


@dataclass(frozen=True)
class RateLimitDecision:
    """The outcome of one admission check.

    Attributes
    ----------
    allowed:
        True when the request may proceed (a token was spent).
    retry_after:
        Seconds until the *next* token exists, rounded up to the limiter's
        resolution; ``0.0`` when allowed.  This is exactly the value a
        ``Retry-After`` header should carry.
    remaining:
        Whole tokens left in the bucket after this decision (a convenience
        for ``X-RateLimit-Remaining``-style headers and tests).
    """

    allowed: bool
    retry_after: float
    remaining: int


class _Bucket:
    __slots__ = ("tokens", "updated")

    def __init__(self, tokens: float, updated: float) -> None:
        self.tokens = tokens
        self.updated = updated


class TokenBucketLimiter:
    """Per-key token buckets refilled continuously (rolling window).

    Parameters
    ----------
    rate:
        Sustained admission rate in requests per second per key.
    burst:
        Bucket capacity: how many requests a key may issue back-to-back
        after being idle.  Defaults to ``max(1, round(rate))`` -- one
        second's worth of traffic.
    clock:
        Monotonic time source, injectable for tests (defaults to
        :func:`time.monotonic`).
    max_keys:
        Soft cap on tracked buckets; when exceeded, buckets that have been
        idle long enough to be full again are dropped (they are
        indistinguishable from fresh ones, so forgetting them is lossless).

    Example::

        >>> limiter = TokenBucketLimiter(rate=100.0, burst=5)
        >>> all(limiter.check("k").allowed for _ in range(5))
        True
    """

    def __init__(
        self,
        rate: float,
        burst: Optional[int] = None,
        *,
        clock: Callable[[], float] = time.monotonic,
        max_keys: int = 10_000,
    ) -> None:
        if rate <= 0:
            raise ValueError(f"rate must be > 0 requests/second, got {rate}")
        if burst is None:
            burst = max(1, round(rate))
        if burst < 1:
            raise ValueError(f"burst must be >= 1, got {burst}")
        self.rate = float(rate)
        self.burst = int(burst)
        self._clock = clock
        self._max_keys = max_keys
        self._lock = tracked_lock("service.ratelimit")
        self._buckets: Dict[str, _Bucket] = {}

    def check(self, key: str, *, cost: float = 1.0) -> RateLimitDecision:
        """Admit or reject one request for ``key``; spends ``cost`` tokens.

        Refill happens lazily at check time: ``tokens += elapsed * rate``
        capped at ``burst``.  Rejections do *not* consume tokens, so a
        hammering client is never pushed further into debt than "wait for
        one token".
        """
        now = self._clock()
        with self._lock:
            bucket = self._buckets.get(key)
            if bucket is None:
                if len(self._buckets) >= self._max_keys:
                    self._prune(now)
                bucket = self._buckets[key] = _Bucket(float(self.burst), now)
            else:
                elapsed = max(now - bucket.updated, 0.0)
                bucket.tokens = min(bucket.tokens + elapsed * self.rate, float(self.burst))
                bucket.updated = now
            if bucket.tokens >= cost:
                bucket.tokens -= cost
                return RateLimitDecision(True, 0.0, int(bucket.tokens))
            retry_after = (cost - bucket.tokens) / self.rate
            return RateLimitDecision(False, retry_after, 0)

    def _prune(self, now: float) -> None:
        """Drop buckets idle long enough to be full again (lossless)."""
        full_after = self.burst / self.rate
        for key in [
            key
            for key, bucket in self._buckets.items()
            if now - bucket.updated >= full_after
        ]:
            del self._buckets[key]

    def __len__(self) -> int:
        """Number of keys currently tracked."""
        with self._lock:
            return len(self._buckets)

    def __repr__(self) -> str:
        return (
            f"TokenBucketLimiter(rate={self.rate:g}/s, burst={self.burst}, "
            f"keys={len(self)})"
        )
