"""Append-only audit trail of service control-plane actions.

Every *mutating* request the serving front end accepts -- job submissions,
deduplicated resubmissions, cancellations -- is recorded as one JSON object
per line in an append-only file: who asked (the client key the rate limiter
also sees), when, what (job id, kind, the spec's content hash) and under
which correlation id (the same id :mod:`repro.obs` threads through logs and
spans, so an audit line can be joined against the request's log lines and
the job's chunk spans).

The trail is deliberately minimal: a flat JSONL file is greppable, rotates
with standard tooling, appends atomically under the trail's lock, and needs
no database.  Without a path the trail records in memory only -- enough for
tests and ephemeral servers to assert on.

Example::

    >>> trail = AuditTrail()                      # in-memory
    >>> entry = trail.record("job.submit", client="127.0.0.1",
    ...                      job_id="abc123", kind="campaign")
    >>> entry["action"], entry["client"]
    ('job.submit', '127.0.0.1')
    >>> len(trail.entries())
    1
"""

from __future__ import annotations

import json
import os
import threading
import time
from typing import Any, Dict, List, Optional

from repro.obs import metrics as _metrics

__all__ = ["AuditTrail"]


class AuditTrail:
    """Thread-safe append-only JSONL audit log.

    Parameters
    ----------
    path:
        File to append to (parent directories are created).  ``None`` keeps
        the trail in memory only.
    keep_in_memory:
        How many recent entries :meth:`entries`/:meth:`tail` can return
        without re-reading the file.  In-memory trails ignore the cap's
        file-backing aspect but still bound their retention.

    Example::

        >>> import tempfile, os
        >>> path = os.path.join(tempfile.mkdtemp(), "audit.jsonl")
        >>> trail = AuditTrail(path)
        >>> _ = trail.record("job.cancel", job_id="deadbeef")
        >>> with open(path) as handle:
        ...     json.loads(handle.readline())["action"]
        'job.cancel'
    """

    def __init__(
        self, path: Optional[os.PathLike] = None, *, keep_in_memory: int = 1000
    ) -> None:
        self.path = None if path is None else os.fspath(path)
        self._keep = max(int(keep_in_memory), 1)
        self._lock = threading.Lock()
        self._recent: List[Dict[str, Any]] = []
        self._handle = None
        if self.path is not None:
            parent = os.path.dirname(os.path.abspath(self.path))
            os.makedirs(parent, exist_ok=True)
            self._handle = open(self.path, "a", encoding="utf-8")  # noqa: SIM115

    def record(self, action: str, **fields: Any) -> Dict[str, Any]:
        """Append one entry; returns the entry as written.

        ``action`` is a dotted event name (``job.submit``, ``job.dedupe``,
        ``job.cancel``); ``fields`` are arbitrary JSON-compatible values
        (``None`` values are dropped).  A ``ts`` (unix seconds) field is
        always added.
        """
        entry: Dict[str, Any] = {"ts": time.time(), "action": action}
        entry.update({key: value for key, value in fields.items() if value is not None})
        line = json.dumps(entry, sort_keys=True)
        with self._lock:
            if self._handle is not None:
                self._handle.write(line + "\n")
                self._handle.flush()
            self._recent.append(entry)
            del self._recent[: -self._keep]
        _metrics.get_registry().counter(
            "repro_audit_records_total",
            "Audit-trail entries appended, by action.",
            labelnames=("action",),
        ).inc(action=action)
        return entry

    def entries(self) -> List[Dict[str, Any]]:
        """The retained recent entries, oldest first."""
        with self._lock:
            return list(self._recent)

    def tail(self, n: int = 10) -> List[Dict[str, Any]]:
        """The last ``n`` retained entries, oldest first."""
        with self._lock:
            return list(self._recent[-n:])

    def close(self) -> None:
        """Flush and close the backing file (in-memory trails: no-op)."""
        with self._lock:
            if self._handle is not None:
                self._handle.close()
                self._handle = None

    def __enter__(self) -> "AuditTrail":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __len__(self) -> int:
        with self._lock:
            return len(self._recent)

    def __repr__(self) -> str:
        where = self.path if self.path is not None else ":memory:"
        return f"AuditTrail(path={where!r}, entries={len(self)})"
