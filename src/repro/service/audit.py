"""Append-only audit trail of service control-plane actions.

Every *mutating* request the serving front end accepts -- job submissions,
deduplicated resubmissions, cancellations -- is recorded as one JSON object
per line in an append-only file: who asked (the client key the rate limiter
also sees), when, what (job id, kind, the spec's content hash) and under
which correlation id (the same id :mod:`repro.obs` threads through logs and
spans, so an audit line can be joined against the request's log lines and
the job's chunk spans).

The trail is deliberately minimal: a flat JSONL file is greppable, appends
atomically under the trail's lock, and needs no database.  Without a path
the trail records in memory only -- enough for tests and ephemeral servers
to assert on.  Long-lived servers can bound disk usage with built-in
size-based rotation (``max_bytes``/``max_files``): when the active file
would grow past ``max_bytes`` it is rolled over to ``<path>.1`` (older
rollovers shifting to ``.2``, ``.3``, ...) and the oldest file past
``max_files`` is deleted.

Example::

    >>> trail = AuditTrail()                      # in-memory
    >>> entry = trail.record("job.submit", client="127.0.0.1",
    ...                      job_id="abc123", kind="campaign")
    >>> entry["action"], entry["client"]
    ('job.submit', '127.0.0.1')
    >>> len(trail.entries())
    1
"""

from __future__ import annotations

import json
import os
import threading
import time
from typing import Any, Dict, List, Optional

from repro.devtools.lockwatch import tracked_lock
from repro.obs import metrics as _metrics

__all__ = ["AuditTrail"]


class AuditTrail:
    """Thread-safe append-only JSONL audit log.

    Parameters
    ----------
    path:
        File to append to (parent directories are created).  ``None`` keeps
        the trail in memory only.
    keep_in_memory:
        How many recent entries :meth:`entries`/:meth:`tail` can return
        without re-reading the file.  In-memory trails ignore the cap's
        file-backing aspect but still bound their retention.
    max_bytes:
        Size threshold for rotation.  When appending an entry would push the
        active file past this many bytes, the file is first rolled over to
        ``<path>.1`` (existing rollovers shift up by one).  ``None`` (the
        default) disables rotation; ignored for in-memory trails.
    max_files:
        How many rotated files (``<path>.1`` ... ``<path>.N``) to retain;
        the oldest is deleted on rollover.  The active file is not counted.

    Example::

        >>> import tempfile, os
        >>> path = os.path.join(tempfile.mkdtemp(), "audit.jsonl")
        >>> trail = AuditTrail(path)
        >>> _ = trail.record("job.cancel", job_id="deadbeef")
        >>> with open(path) as handle:
        ...     json.loads(handle.readline())["action"]
        'job.cancel'
    """

    def __init__(
        self,
        path: Optional[os.PathLike] = None,
        *,
        keep_in_memory: int = 1000,
        max_bytes: Optional[int] = None,
        max_files: int = 5,
    ) -> None:
        self.path = None if path is None else os.fspath(path)
        self._keep = max(int(keep_in_memory), 1)
        if max_bytes is not None and int(max_bytes) <= 0:
            raise ValueError(f"max_bytes must be positive, got {max_bytes}")
        self.max_bytes = None if max_bytes is None else int(max_bytes)
        self.max_files = max(int(max_files), 1)
        self.rotations = 0
        self._lock = tracked_lock("service.audit")
        self._recent: List[Dict[str, Any]] = []
        self._handle = None
        self._size = 0
        if self.path is not None:
            parent = os.path.dirname(os.path.abspath(self.path))
            os.makedirs(parent, exist_ok=True)
            self._handle = open(self.path, "a", encoding="utf-8")  # noqa: SIM115
            self._size = os.path.getsize(self.path)

    def record(self, action: str, **fields: Any) -> Dict[str, Any]:
        """Append one entry; returns the entry as written.

        ``action`` is a dotted event name (``job.submit``, ``job.dedupe``,
        ``job.cancel``); ``fields`` are arbitrary JSON-compatible values
        (``None`` values are dropped).  A ``ts`` (unix seconds) field is
        always added.
        """
        entry: Dict[str, Any] = {"ts": time.time(), "action": action}
        entry.update({key: value for key, value in fields.items() if value is not None})
        line = json.dumps(entry, sort_keys=True) + "\n"
        with self._lock:
            if self._handle is not None:
                encoded = len(line.encode("utf-8"))
                # Rotate *before* the write that would cross the threshold,
                # so the active file never exceeds max_bytes (a single entry
                # larger than the cap still lands in a fresh file).
                if (
                    self.max_bytes is not None
                    and self._size > 0
                    and self._size + encoded > self.max_bytes
                ):
                    self._rotate_locked()
                self._handle.write(line)
                self._handle.flush()
                self._size += encoded
            self._recent.append(entry)
            del self._recent[: -self._keep]
        _metrics.get_registry().counter(
            "repro_audit_records_total",
            "Audit-trail entries appended, by action.",
            labelnames=("action",),
        ).inc(action=action)
        return entry

    def _rotate_locked(self) -> None:
        """Roll the active file over to ``.1`` (caller holds the lock)."""
        self._handle.close()
        oldest = f"{self.path}.{self.max_files}"
        if os.path.exists(oldest):
            os.remove(oldest)
        for index in range(self.max_files - 1, 0, -1):
            src = f"{self.path}.{index}"
            if os.path.exists(src):
                os.replace(src, f"{self.path}.{index + 1}")
        os.replace(self.path, f"{self.path}.1")
        self._handle = open(self.path, "a", encoding="utf-8")  # noqa: SIM115
        self._size = 0
        self.rotations += 1
        _metrics.get_registry().counter(
            "repro_audit_rotations_total",
            "Audit-trail size-based file rollovers.",
        ).inc()

    def rotated_paths(self) -> List[str]:
        """Existing rotated files, newest (``.1``) first; empty in memory."""
        if self.path is None:
            return []
        return [
            path
            for index in range(1, self.max_files + 1)
            if os.path.exists(path := f"{self.path}.{index}")
        ]

    def entries(self) -> List[Dict[str, Any]]:
        """The retained recent entries, oldest first."""
        with self._lock:
            return list(self._recent)

    def tail(self, n: int = 10) -> List[Dict[str, Any]]:
        """The last ``n`` retained entries, oldest first."""
        with self._lock:
            return list(self._recent[-n:])

    def close(self) -> None:
        """Flush and close the backing file (in-memory trails: no-op)."""
        with self._lock:
            if self._handle is not None:
                self._handle.close()
                self._handle = None

    def __enter__(self) -> "AuditTrail":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __len__(self) -> int:
        with self._lock:
            return len(self._recent)

    def __repr__(self) -> str:
        where = self.path if self.path is not None else ":memory:"
        return f"AuditTrail(path={where!r}, entries={len(self)})"
