"""Persistent job store: the state of every campaign the service has seen.

The scenario service must remember submitted jobs across process restarts --
a coordinator that forgets its queue on redeploy cannot serve long-running
campaigns.  :class:`JobStore` persists every job (its submitted spec, state,
progress, timings, result and error) in a single-file sqlite3 database, the
stdlib's crash-safe embedded store; passing no path keeps the same schema in
a private in-memory database for tests and throwaway servers.

The store is deliberately dumb: it knows nothing about scenarios, engines or
HTTP.  It offers the five primitives the scheduler needs --

* :meth:`JobStore.submit` to append a ``queued`` job, and
  :meth:`JobStore.submit_or_reuse` -- its atomic find-or-submit twin keyed by
  a ``dedupe_key`` (the scenario content hash), which is what makes
  submission idempotent even under concurrent identical requests,
* :meth:`JobStore.claim_next` to atomically move the oldest ``queued`` job to
  ``running`` (safe against concurrent worker threads),
* :meth:`JobStore.update_progress` / :meth:`JobStore.finish` /
  :meth:`JobStore.fail` / :meth:`JobStore.mark_cancelled` to record outcomes,
* :meth:`JobStore.request_cancel` for cooperative cancellation (queued jobs
  cancel immediately; running jobs get a flag their progress hook polls),
* :meth:`JobStore.recover_interrupted` to re-queue jobs that were ``running``
  when a previous server process died.

Job states form a small machine::

    queued --> running --> done | failed | cancelled
       |
       +-----------------> cancelled
"""

from __future__ import annotations

import json
import logging
import os
import sqlite3
import threading
import time
import uuid
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple

from repro.devtools.lockwatch import tracked_lock
from repro.obs import metrics as _metrics

__all__ = ["JOB_STATES", "JobRecord", "JobStore"]

#: Every state a job can be in; the last three are terminal.
JOB_STATES = ("queued", "running", "done", "failed", "cancelled")

_SCHEMA = """
CREATE TABLE IF NOT EXISTS jobs (
    id               TEXT PRIMARY KEY,
    kind             TEXT NOT NULL,
    spec             TEXT NOT NULL,
    dedupe_key       TEXT,
    state            TEXT NOT NULL,
    chunks_done      INTEGER NOT NULL DEFAULT 0,
    chunks_total     INTEGER NOT NULL DEFAULT 0,
    result           TEXT,
    error            TEXT,
    cancel_requested INTEGER NOT NULL DEFAULT 0,
    submitted_at     REAL NOT NULL,
    started_at       REAL,
    finished_at      REAL,
    phases           TEXT
);
CREATE INDEX IF NOT EXISTS jobs_state ON jobs (state, submitted_at);
CREATE INDEX IF NOT EXISTS jobs_dedupe ON jobs (dedupe_key);
CREATE TABLE IF NOT EXISTS traces (
    job_id      TEXT PRIMARY KEY REFERENCES jobs (id),
    trace       TEXT NOT NULL,
    recorded_at REAL NOT NULL
);
"""


@dataclass(frozen=True)
class JobRecord:
    """Immutable snapshot of one job row.

    ``spec`` is the submitted request payload (plain JSON data) and
    ``result`` the execution outcome (also plain JSON data), so a record
    round-trips through the HTTP API without further conversion.
    """

    id: str
    kind: str
    spec: Dict[str, Any]
    state: str
    dedupe_key: Optional[str] = None
    chunks_done: int = 0
    chunks_total: int = 0
    result: Optional[Dict[str, Any]] = None
    error: Optional[str] = None
    cancel_requested: bool = False
    submitted_at: float = 0.0
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    #: Per-phase wall-time breakdown recorded at completion (seconds):
    #: ``queue_wait_s`` / ``compute_s`` / ``cache_s`` (see JobScheduler).
    phases: Optional[Dict[str, float]] = None

    @property
    def is_terminal(self) -> bool:
        """True once the job can never change state again."""
        return self.state in ("done", "failed", "cancelled")

    def to_dict(self, *, include_result: bool = True) -> Dict[str, Any]:
        """JSON-compatible form (the HTTP representation of a job)."""
        payload: Dict[str, Any] = {
            "id": self.id,
            "kind": self.kind,
            "spec": self.spec,
            "state": self.state,
            "progress": {"chunks_done": self.chunks_done, "chunks_total": self.chunks_total},
            "cancel_requested": self.cancel_requested,
            "timings": {
                "submitted_at": self.submitted_at,
                "started_at": self.started_at,
                "finished_at": self.finished_at,
                "phases": self.phases,
            },
            "error": self.error,
        }
        if include_result:
            payload["result"] = self.result
        return payload


class JobStore:
    """sqlite3-backed store of service jobs, usable from many threads.

    Parameters
    ----------
    path:
        Database file, created on first use.  ``None`` keeps the store in
        memory (same schema and semantics, gone when the store is closed) --
        the fallback for tests and ephemeral servers.

    One connection is shared across threads behind a lock: the store's
    operations are short transactions, and a single writer sidesteps
    sqlite's writer-starvation corner cases without WAL tuning.

    Every mutation notifies listeners registered with :meth:`subscribe`
    (the gateway's read snapshot and SSE hub are both fed this way), with
    the fresh :class:`JobRecord`, on the mutating thread.

    Example::

        >>> store = JobStore()                  # JobStore("jobs.db") persists
        >>> record = store.submit("campaign", {"scenario": {}})
        >>> record.state
        'queued'
        >>> store.get(record.id).id == record.id
        True
        >>> store.close()
    """

    def __init__(self, path: Optional[os.PathLike] = None) -> None:
        self.path = None if path is None else os.fspath(path)
        if self.path is not None:
            parent = os.path.dirname(os.path.abspath(self.path))
            os.makedirs(parent, exist_ok=True)
        self._lock = tracked_lock("service.jobs.store", threading.RLock)
        self._listeners: List[Callable[[JobRecord], None]] = []
        self._conn = sqlite3.connect(
            self.path if self.path is not None else ":memory:",
            check_same_thread=False,
        )
        self._conn.row_factory = sqlite3.Row
        with self._lock, self._conn:
            self._conn.executescript(_SCHEMA)
            # Schema migration for databases created before the per-job
            # phase breakdown existed (pre-observability PRs).
            columns = {
                row["name"]
                for row in self._conn.execute("PRAGMA table_info(jobs)").fetchall()
            }
            if "phases" not in columns:
                self._conn.execute("ALTER TABLE jobs ADD COLUMN phases TEXT")

    @contextmanager
    def _timed_op(self, op: str) -> Iterator[None]:
        """Time one store operation into ``repro_jobstore_op_seconds{op}``."""
        start = time.perf_counter()
        try:
            yield
        finally:
            _metrics.get_registry().histogram(
                "repro_jobstore_op_seconds",
                "Duration of JobStore sqlite operations.",
                labelnames=("op",),
            ).observe(time.perf_counter() - start, op=op)

    # ------------------------------------------------------------------
    # Change listeners
    # ------------------------------------------------------------------

    def subscribe(self, listener: Callable[[JobRecord], None]) -> None:
        """Register a callback invoked with the fresh record after every change.

        This is the seam the asyncio gateway's in-memory snapshot and its SSE
        progress streams hang off: instead of polling sqlite, read models are
        *pushed* every state transition (submit, claim, progress, finalize,
        cancel, recovery).  Listeners run synchronously on whichever thread
        performed the mutation -- they must be fast, must not raise, and must
        never call back into the store (deadlock by re-entrancy).

        Example::

            >>> store = JobStore()
            >>> seen = []
            >>> store.subscribe(lambda record: seen.append(record.state))
            >>> job = store.submit("campaign", {})
            >>> store.claim_next() is not None
            True
            >>> seen
            ['queued', 'running']
        """
        with self._lock:
            self._listeners.append(listener)

    def unsubscribe(self, listener: Callable[[JobRecord], None]) -> None:
        """Remove a previously registered listener (no-op when unknown)."""
        with self._lock:
            if listener in self._listeners:
                self._listeners.remove(listener)

    def _notify(self, job_id: str) -> None:
        """Push the current record for ``job_id`` to every listener."""
        if not self._listeners:
            return
        record = self.get(job_id)
        if record is None:  # pragma: no cover - row deleted underneath us
            return
        for listener in list(self._listeners):
            try:
                listener(record)
            except Exception:  # noqa: BLE001 - a read model must not kill writers
                logging.getLogger("repro.service.jobs").exception(
                    "job-store listener failed for job %s", job_id
                )

    # ------------------------------------------------------------------
    # Submission and lookup
    # ------------------------------------------------------------------

    def submit(
        self,
        kind: str,
        spec: Dict[str, Any],
        *,
        dedupe_key: Optional[str] = None,
    ) -> JobRecord:
        """Append a new ``queued`` job and return its record."""
        job_id = uuid.uuid4().hex[:16]
        now = time.time()
        with self._timed_op("submit"), self._lock, self._conn:
            self._conn.execute(
                "INSERT INTO jobs (id, kind, spec, dedupe_key, state, submitted_at)"
                " VALUES (?, ?, ?, ?, 'queued', ?)",
                (job_id, kind, json.dumps(spec), dedupe_key, now),
            )
        self._notify(job_id)
        return self.get(job_id)

    def submit_or_reuse(
        self, kind: str, spec: Dict[str, Any], dedupe_key: str
    ) -> "Tuple[JobRecord, bool]":
        """Atomic find-or-submit: the deduplication primitive.

        Returns ``(record, reused)``.  The lookup and the insert happen under
        the store lock, so two threads submitting the same content
        concurrently can never both enqueue it -- the idempotency guarantee
        ('identical requests cost one simulation, ever') holds under the
        threaded HTTP server, not just sequentially.
        """
        with self._lock:
            existing = self.find_reusable(dedupe_key)
            if existing is not None:
                return existing, True
            return self.submit(kind, spec, dedupe_key=dedupe_key), False

    def get(self, job_id: str) -> Optional[JobRecord]:
        """The record for ``job_id``, or None when unknown."""
        with self._lock:
            row = self._conn.execute(
                "SELECT * FROM jobs WHERE id = ?", (job_id,)
            ).fetchone()
        return self._record(row) if row is not None else None

    def find_reusable(self, dedupe_key: str) -> Optional[JobRecord]:
        """The newest queued/running/done job with this dedupe key, if any.

        Failed and cancelled jobs are never reused: resubmitting after a
        failure must produce a fresh attempt.
        """
        with self._lock:
            row = self._conn.execute(
                "SELECT * FROM jobs WHERE dedupe_key = ? AND state IN"
                " ('queued', 'running', 'done')"
                " ORDER BY submitted_at DESC LIMIT 1",
                (dedupe_key,),
            ).fetchone()
        return self._record(row) if row is not None else None

    def list_jobs(
        self,
        *,
        state: Optional[str] = None,
        kind: Optional[str] = None,
        limit: Optional[int] = None,
    ) -> List[JobRecord]:
        """All jobs, newest first, optionally filtered by state and/or kind."""
        query = "SELECT * FROM jobs"
        clauses, params = [], []
        if state is not None:
            if state not in JOB_STATES:
                raise ValueError(f"unknown state {state!r}; expected one of {JOB_STATES}")
            clauses.append("state = ?")
            params.append(state)
        if kind is not None:
            clauses.append("kind = ?")
            params.append(kind)
        if clauses:
            query += " WHERE " + " AND ".join(clauses)
        query += " ORDER BY submitted_at DESC"
        if limit is not None:
            query += " LIMIT ?"
            params.append(int(limit))
        with self._lock:
            rows = self._conn.execute(query, params).fetchall()
        return [self._record(row) for row in rows]

    def counts(self) -> Dict[str, int]:
        """Number of jobs per state (states with no jobs included as 0)."""
        with self._lock:
            rows = self._conn.execute(
                "SELECT state, COUNT(*) AS n FROM jobs GROUP BY state"
            ).fetchall()
        counts = {state: 0 for state in JOB_STATES}
        for row in rows:
            counts[row["state"]] = row["n"]
        return counts

    # ------------------------------------------------------------------
    # Scheduler primitives
    # ------------------------------------------------------------------

    def claim_next(self) -> Optional[JobRecord]:
        """Atomically move the oldest ``queued`` job to ``running``.

        Returns the claimed record, or None when the queue is empty.  The
        select-then-update pair runs under the store lock and in one sqlite
        transaction, so two worker threads can never claim the same job.
        """
        with self._timed_op("claim_next"), self._lock, self._conn:
            row = self._conn.execute(
                "SELECT id FROM jobs WHERE state = 'queued'"
                " ORDER BY submitted_at LIMIT 1"
            ).fetchone()
            if row is None:
                return None
            claimed = self._conn.execute(
                "UPDATE jobs SET state = 'running', started_at = ?"
                " WHERE id = ? AND state = 'queued'",
                (time.time(), row["id"]),
            ).rowcount
            if not claimed:  # pragma: no cover - only under external writers
                return None
        self._notify(row["id"])
        return self.get(row["id"])

    def update_progress(self, job_id: str, done: int, total: int) -> None:
        """Record chunk progress for a running job."""
        with self._timed_op("update_progress"), self._lock, self._conn:
            self._conn.execute(
                "UPDATE jobs SET chunks_done = ?, chunks_total = ? WHERE id = ?",
                (int(done), int(total), job_id),
            )
        self._notify(job_id)

    def record_phases(self, job_id: str, phases: Dict[str, float]) -> None:
        """Persist a job's wall-time phase breakdown (seconds per phase).

        Written by the scheduler when execution finishes (whatever the
        outcome); surfaced through :meth:`JobRecord.to_dict` under
        ``timings.phases`` and by ``repro jobs --stats``.
        """
        with self._timed_op("record_phases"), self._lock, self._conn:
            self._conn.execute(
                "UPDATE jobs SET phases = ? WHERE id = ?",
                (json.dumps({k: float(v) for k, v in phases.items()}), job_id),
            )
        self._notify(job_id)

    def record_trace(self, job_id: str, trace: Dict[str, Any]) -> None:
        """Persist a job's finished span-record tree payload.

        ``trace`` is the plain-dict form the scheduler builds from the job's
        :class:`~repro.obs.tracing.Trace` -- ``{"correlation_id", "dropped",
        "spans": [...]}`` -- stored as one JSON blob in the ``traces`` table
        (created by ``_SCHEMA`` on every connect, the table analogue of the
        ``phases`` column migration, so pre-trace databases upgrade in
        place).  Re-recording replaces the previous trace (a recovered,
        re-executed job keeps only its final attempt's tree).  Traces are not
        pushed to listeners: the read models track job *state*, traces are
        fetched on demand.
        """
        with self._timed_op("record_trace"), self._lock, self._conn:
            self._conn.execute(
                "INSERT INTO traces (job_id, trace, recorded_at) VALUES (?, ?, ?)"
                " ON CONFLICT (job_id) DO UPDATE SET trace = excluded.trace,"
                " recorded_at = excluded.recorded_at",
                (job_id, json.dumps(trace), time.time()),
            )

    def get_trace(self, job_id: str) -> Optional[Dict[str, Any]]:
        """The persisted trace payload for ``job_id``, or None when absent."""
        with self._timed_op("get_trace"), self._lock:
            row = self._conn.execute(
                "SELECT trace FROM traces WHERE job_id = ?", (job_id,)
            ).fetchone()
        return json.loads(row["trace"]) if row is not None else None

    def finish(self, job_id: str, result: Dict[str, Any]) -> None:
        """Mark a job ``done`` with its result payload."""
        self._finalize(job_id, "done", result=result)

    def fail(self, job_id: str, error: str) -> None:
        """Mark a job ``failed`` with an error message."""
        self._finalize(job_id, "failed", error=error)

    def mark_cancelled(self, job_id: str) -> None:
        """Mark a job ``cancelled`` (its execution was abandoned)."""
        self._finalize(job_id, "cancelled")

    def _finalize(
        self,
        job_id: str,
        state: str,
        *,
        result: Optional[Dict[str, Any]] = None,
        error: Optional[str] = None,
    ) -> None:
        with self._timed_op("finalize"), self._lock, self._conn:
            self._conn.execute(
                "UPDATE jobs SET state = ?, result = ?, error = ?, finished_at = ?"
                " WHERE id = ?",
                (
                    state,
                    json.dumps(result) if result is not None else None,
                    error,
                    time.time(),
                    job_id,
                ),
            )
        self._notify(job_id)

    def request_cancel(self, job_id: str) -> Optional[JobRecord]:
        """Ask for a job to be cancelled; returns the updated record.

        A ``queued`` job is cancelled on the spot.  A ``running`` job gets
        its ``cancel_requested`` flag set and keeps running until its
        progress hook notices (cooperative cancellation between chunks).
        Terminal jobs are returned unchanged; unknown ids return None.
        """
        with self._lock, self._conn:
            record = self.get(job_id)
            if record is None or record.is_terminal:
                return record
            if record.state == "queued":
                self._conn.execute(
                    "UPDATE jobs SET state = 'cancelled', cancel_requested = 1,"
                    " finished_at = ? WHERE id = ? AND state = 'queued'",
                    (time.time(), job_id),
                )
            else:
                self._conn.execute(
                    "UPDATE jobs SET cancel_requested = 1 WHERE id = ?", (job_id,)
                )
        self._notify(job_id)
        return self.get(job_id)

    def cancel_requested(self, job_id: str) -> bool:
        """True when cancellation has been requested for this job."""
        with self._lock:
            row = self._conn.execute(
                "SELECT cancel_requested FROM jobs WHERE id = ?", (job_id,)
            ).fetchone()
        return bool(row["cancel_requested"]) if row is not None else False

    def recover_interrupted(self) -> int:
        """Re-queue jobs left ``running`` by a dead server process.

        Called once at scheduler start-up: any job still marked running
        cannot actually be running (this process just started), so it is
        returned to the queue with its progress reset.  Returns the number of
        recovered jobs.
        """
        with self._lock, self._conn:
            interrupted = [
                row["id"]
                for row in self._conn.execute(
                    "SELECT id FROM jobs WHERE state = 'running'"
                ).fetchall()
            ]
            self._conn.execute(
                "UPDATE jobs SET state = 'queued', started_at = NULL,"
                " chunks_done = 0, chunks_total = 0 WHERE state = 'running'"
            )
        for job_id in interrupted:
            self._notify(job_id)
        return len(interrupted)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def close(self) -> None:
        """Close the underlying connection (in-memory stores lose their data)."""
        with self._lock:
            self._conn.close()

    def __enter__(self) -> "JobStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        where = self.path if self.path is not None else ":memory:"
        return f"JobStore(path={where!r})"

    @staticmethod
    def _record(row: sqlite3.Row) -> JobRecord:
        return JobRecord(
            id=row["id"],
            kind=row["kind"],
            spec=json.loads(row["spec"]),
            state=row["state"],
            dedupe_key=row["dedupe_key"],
            chunks_done=row["chunks_done"],
            chunks_total=row["chunks_total"],
            result=json.loads(row["result"]) if row["result"] is not None else None,
            error=row["error"],
            cancel_requested=bool(row["cancel_requested"]),
            submitted_at=row["submitted_at"],
            started_at=row["started_at"],
            finished_at=row["finished_at"],
            phases=json.loads(row["phases"]) if row["phases"] is not None else None,
        )
