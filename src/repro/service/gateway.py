"""Asyncio serving gateway: the high-throughput HTTP front end.

The threaded :class:`~repro.service.server.ScenarioServer` spends one OS
thread per connection and one sqlite read per status poll -- fine for a lab,
but the ROADMAP's "millions of users" target needs a front end whose cost
per request is a dict lookup, not a thread context switch.  This module is
that front end, on nothing but the stdlib:

* **asyncio transport** -- :func:`asyncio.start_server` with a small
  HTTP/1.1 parser (keep-alive and pipelining, request-body size limits,
  graceful shutdown).  One event loop serves every connection;
* **snapshot reads** -- the read-heavy endpoints (``GET /v1/jobs``,
  ``GET /v1/jobs/{id}``, ``/v1/scenarios``, ``/v1/healthz``,
  ``/v1/metrics``) are answered from a
  :class:`~repro.service.snapshot.ServiceSnapshot` refreshed push-style on
  job-state transitions, so status traffic never touches sqlite and never
  starves the compute workers;
* **thread-pool seam** -- the few write paths (``POST /v1/jobs``,
  ``DELETE /v1/jobs/{id}``, ``POST /v1/scenarios/preview``) run on a small
  :class:`~concurrent.futures.ThreadPoolExecutor` against the *existing*
  :class:`~repro.service.queue.JobScheduler`/:class:`~repro.service.jobs.JobStore`,
  keeping validation, dedupe and bit-identical execution semantics exactly
  as the threaded server has them;
* **rate limiting** -- a per-client-key
  :class:`~repro.service.ratelimit.TokenBucketLimiter`; throttled requests
  get ``429`` plus a ``Retry-After`` header (and the precise float in the
  JSON body);
* **audit trail** -- submissions and cancellations append to an
  :class:`~repro.service.audit.AuditTrail` (JSONL), carrying the request's
  correlation id;
* **SSE progress** -- ``GET /v1/jobs/{id}/events`` streams server-sent
  events (``progress`` per observed transition, a terminal ``end``), fed by
  the same store-listener seam as the snapshot, so
  ``ServiceClient.wait(stream=True)`` and ``repro submit --wait`` follow a
  job without polling.

Results served through the gateway are bit-identical to direct runs: the
gateway never touches specs, chunk plans or RNG streams -- it is purely a
faster door to the same scheduler.

Example::

    >>> from repro.service import GatewayServer, JobScheduler, JobStore
    >>> scheduler = JobScheduler(JobStore())
    >>> with GatewayServer(scheduler, port=0) as gateway:   # doctest: +SKIP
    ...     print(gateway.url)
"""

from __future__ import annotations

import asyncio
import json
import logging
import math
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Dict, List, Optional, Tuple
from urllib.parse import parse_qs, urlsplit

from repro.devtools.lockwatch import tracked_lock
from repro.obs import metrics as _metrics
from repro.obs import tracing as _tracing
from repro.obs.logging import get_logger, log_event
from repro.service.audit import AuditTrail
from repro.service.jobs import JobRecord
from repro.service.queue import JobScheduler
from repro.service.ratelimit import TokenBucketLimiter
from repro.service.server import catalog_payload, sweep_preview_payload
from repro.service.snapshot import ServiceSnapshot

__all__ = ["GatewayServer"]

_logger = get_logger("service.gateway")

_REASONS = {  # repro: noqa[module-state] - read-only HTTP reason table, never mutated after import
    200: "OK",
    201: "Created",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    429: "Too Many Requests",
    431: "Request Header Fields Too Large",
    500: "Internal Server Error",
}

#: Routes exempt from rate limiting: liveness and metrics scrapes are the
#: operator's window into an overloaded service -- throttling them would
#: blind exactly the person trying to diagnose the overload.
_RATE_EXEMPT = ("/v1/healthz", "/v1/metrics")


def _route_label(path: str) -> str:
    """Metric label for a path (templated, so ids cannot explode cardinality)."""
    if path in ("/v1/healthz", "/v1/metrics", "/v1/scenarios",
                "/v1/scenarios/preview", "/v1/jobs", "/v1/debug/flight"):
        return path
    if path.startswith("/v1/jobs/"):
        if path.endswith("/events"):
            return "/v1/jobs/{id}/events"
        if path.endswith("/trace"):
            return "/v1/jobs/{id}/trace"
        return "/v1/jobs/{id}"
    return "other"


def _sse_frame(event: str, data: Dict[str, Any]) -> bytes:
    """One server-sent-events frame: ``event:`` + ``data:`` + blank line."""
    return f"event: {event}\ndata: {json.dumps(data)}\n\n".encode("utf-8")


def _progress_payload(record: JobRecord) -> Dict[str, Any]:
    """The compact job-state dict SSE events carry (no result payload)."""
    return {
        "id": record.id,
        "state": record.state,
        "chunks_done": record.chunks_done,
        "chunks_total": record.chunks_total,
        "error": record.error,
    }


class _JobEventHub:
    """Fans job-store transitions out to per-job SSE subscriber queues.

    The store listener side runs on whatever thread mutated the store
    (scheduler workers, gateway write pool); delivery hops onto the event
    loop via ``call_soon_threadsafe``.  Subscription management happens on
    the loop only.
    """

    def __init__(self) -> None:
        self._lock = tracked_lock("service.gateway.event_hub")
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._queues: Dict[str, List[asyncio.Queue]] = {}

    def bind(self, loop: asyncio.AbstractEventLoop) -> None:
        self._loop = loop

    def on_record(self, record: JobRecord) -> None:
        """Store listener (any thread): push the transition to subscribers."""
        with self._lock:
            loop = self._loop
            if loop is None or record.id not in self._queues:
                return
        payload = _progress_payload(record)
        try:
            loop.call_soon_threadsafe(self._push, record.id, payload)
        except RuntimeError:  # pragma: no cover - loop already closed
            pass

    def _push(self, job_id: str, payload: Dict[str, Any]) -> None:
        with self._lock:
            queues = list(self._queues.get(job_id, ()))
        for queue in queues:
            queue.put_nowait(payload)

    def subscribe(self, job_id: str) -> "asyncio.Queue[Dict[str, Any]]":
        queue: asyncio.Queue = asyncio.Queue()
        with self._lock:
            self._queues.setdefault(job_id, []).append(queue)
        return queue

    def unsubscribe(self, job_id: str, queue: "asyncio.Queue") -> None:
        with self._lock:
            queues = self._queues.get(job_id)
            if queues and queue in queues:
                queues.remove(queue)
                if not queues:
                    del self._queues[job_id]

    def subscriber_count(self, job_id: Optional[str] = None) -> int:
        """Open SSE subscriptions (for one job, or in total)."""
        with self._lock:
            if job_id is not None:
                return len(self._queues.get(job_id, ()))
            return sum(len(queues) for queues in self._queues.values())


class GatewayServer:
    """The asyncio HTTP front end of the scenario service.

    Serves the same ``/v1`` surface as the threaded
    :class:`~repro.service.server.ScenarioServer` (plus
    ``GET /v1/jobs/{id}/events``), against the same scheduler -- pick one
    per deployment with ``repro serve --server {asyncio,threaded}``.

    Parameters
    ----------
    scheduler:
        The :class:`JobScheduler` that validates, dedupes and executes jobs.
    host, port:
        Bind address; ``port=0`` picks an ephemeral port (read :attr:`port`
        after :meth:`start`).
    rate_limit, burst:
        Per-client-key admission rate (requests/second) and bucket capacity;
        ``None`` disables limiting.  ``/v1/healthz`` and ``/v1/metrics`` are
        always exempt.
    audit:
        An :class:`AuditTrail` for submissions/cancellations (defaults to an
        in-memory trail; pass one with a path to persist JSONL).
    max_body_bytes:
        Largest accepted request body; larger submissions get ``413`` and
        the connection is closed.
    keepalive_timeout:
        Idle seconds after which a keep-alive connection is dropped.
    sse_heartbeat:
        Seconds between ``: keep-alive`` comment frames on quiet SSE
        streams (also bounds how quickly a dead client is detected).

    Example::

        >>> from repro.service import GatewayServer, JobScheduler, JobStore
        >>> scheduler = JobScheduler(JobStore())
        >>> gateway = GatewayServer(scheduler, port=0)
        >>> gateway.start()                    # binds + starts workers
        >>> gateway.url                        # doctest: +ELLIPSIS
        'http://127.0.0.1:...'
        >>> gateway.shutdown()
    """

    def __init__(
        self,
        scheduler: JobScheduler,
        *,
        host: str = "127.0.0.1",
        port: int = 8765,
        rate_limit: Optional[float] = None,
        burst: Optional[int] = None,
        audit: Optional[AuditTrail] = None,
        max_body_bytes: int = 8 * 1024 * 1024,
        keepalive_timeout: float = 75.0,
        sse_heartbeat: float = 15.0,
        verbose: bool = False,
    ) -> None:
        self.scheduler = scheduler
        self.snapshot = ServiceSnapshot(scheduler.store)
        self.limiter = (
            TokenBucketLimiter(rate_limit, burst) if rate_limit is not None else None
        )
        self.audit = audit if audit is not None else AuditTrail()
        self.max_body_bytes = int(max_body_bytes)
        self.keepalive_timeout = float(keepalive_timeout)
        self.sse_heartbeat = float(sse_heartbeat)
        self.verbose = verbose
        self.started_at = time.time()
        self._configured_host = host
        self._configured_port = port
        self._bound_addr: Optional[Tuple[str, int]] = None
        self._hub = _JobEventHub()
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._stop_event: Optional[asyncio.Event] = None
        self._closing = False
        self._conn_tasks: "set[asyncio.Task]" = set()
        self._thread: Optional[threading.Thread] = None
        self._startup_error: Optional[BaseException] = None
        # Writes are rare and short (a validation + a sqlite insert); a small
        # pool keeps them off the event loop without meaningful overhead.
        self._pool = ThreadPoolExecutor(
            max_workers=4, thread_name_prefix="repro-gateway-write"
        )
        self._catalog_bytes: Optional[bytes] = None

    # ------------------------------------------------------------------
    # Addressing
    # ------------------------------------------------------------------

    @property
    def host(self) -> str:
        return self._bound_addr[0] if self._bound_addr else self._configured_host

    @property
    def port(self) -> int:
        return self._bound_addr[1] if self._bound_addr else self._configured_port

    @property
    def url(self) -> str:
        """Base URL clients should use."""
        return f"http://{self.host}:{self.port}"

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def start(self) -> None:
        """Serve in a background thread (returns once the socket is bound)."""
        if self._thread is not None:
            return
        self._attach()
        ready = threading.Event()
        self._thread = threading.Thread(
            target=self._run_loop, args=(ready,), name="repro-gateway", daemon=True
        )
        self._thread.start()
        ready.wait(timeout=10.0)
        if self._startup_error is not None:
            error, self._startup_error = self._startup_error, None
            self._thread.join()
            self._thread = None
            self._detach()
            self.scheduler.stop()  # the workers started in _attach
            raise error
        if self._bound_addr is None:
            raise RuntimeError("gateway failed to bind within 10s")

    def shutdown(self) -> None:
        """Graceful stop: close the listener, drain connections, stop workers."""
        self._request_stop()
        if self._thread is not None:
            self._thread.join(timeout=10.0)
            self._thread = None
        self._detach()
        self.scheduler.stop()

    def serve_forever(self) -> None:
        """Run in the calling thread until :meth:`shutdown` (or Ctrl-C).

        The scheduler's workers get the same bounded grace period on the way
        out as under the threaded server: a job cut short mid-run is exactly
        what restart recovery re-queues on the next start.
        """
        self._attach()
        try:
            asyncio.run(self._amain(None))
        finally:
            self._detach()
            self.scheduler.stop(timeout=2.0)

    def __enter__(self) -> "GatewayServer":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    def _attach(self) -> None:
        self.scheduler.start()
        self.snapshot.attach()
        self.scheduler.store.subscribe(self._hub.on_record)

    def _detach(self) -> None:
        self.scheduler.store.unsubscribe(self._hub.on_record)
        self.snapshot.detach()
        self._pool.shutdown(wait=False)

    def _request_stop(self) -> None:
        loop, stop = self._loop, self._stop_event
        if loop is not None and stop is not None:
            try:
                loop.call_soon_threadsafe(stop.set)
            except RuntimeError:  # pragma: no cover - loop already closed
                pass

    def _run_loop(self, ready: threading.Event) -> None:
        try:
            asyncio.run(self._amain(ready))
        except BaseException as exc:  # noqa: BLE001  # repro: noqa[broad-except] - stored as _startup_error and re-raised by start()
            self._startup_error = exc
        finally:
            ready.set()

    async def _amain(self, ready: Optional[threading.Event]) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop_event = asyncio.Event()
        self._closing = False
        self._hub.bind(self._loop)
        server = await asyncio.start_server(
            self._handle_connection,
            self._configured_host,
            self._configured_port,
            limit=65536,
        )
        self._bound_addr = server.sockets[0].getsockname()[:2]
        log_event(
            _logger, "gateway.started",
            host=self.host, port=self.port, workers=self.scheduler.num_workers,
            rate_limit=self.limiter.rate if self.limiter else None,
        )
        if ready is not None:
            ready.set()
        try:
            await self._stop_event.wait()
        finally:
            self._closing = True
            server.close()
            await server.wait_closed()
            # In-flight requests get a short grace period; whatever is still
            # open after it (idle keep-alives, SSE streams) is cancelled.
            pending = {task for task in self._conn_tasks if not task.done()}
            if pending:
                await asyncio.wait(pending, timeout=0.5)
                for task in pending:
                    task.cancel()
                await asyncio.gather(*pending, return_exceptions=True)
            log_event(_logger, "gateway.stopped", host=self.host, port=self.port)

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
        registry = _metrics.get_registry()
        registry.counter(
            "repro_gateway_connections_total", "TCP connections accepted."
        ).inc()
        gauge = registry.gauge(
            "repro_gateway_open_connections", "Currently open gateway connections."
        )
        gauge.inc()
        peer = writer.get_extra_info("peername")
        client_host = peer[0] if isinstance(peer, tuple) else "?"
        try:
            await self._connection_loop(reader, writer, client_host)
        except (ConnectionResetError, BrokenPipeError, asyncio.CancelledError):
            pass  # client went away, or shutdown cancelled us mid-request
        finally:
            gauge.dec()
            if task is not None:
                self._conn_tasks.discard(task)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):  # pragma: no cover
                pass

    async def _connection_loop(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        client_host: str,
    ) -> None:
        while not self._closing:
            try:
                head = await asyncio.wait_for(
                    reader.readuntil(b"\r\n\r\n"), timeout=self.keepalive_timeout
                )
            except (asyncio.IncompleteReadError, ConnectionResetError):
                return  # clean close (or mid-header hangup) between requests
            except asyncio.TimeoutError:
                return  # idle keep-alive expired
            except asyncio.LimitOverrunError:
                await self._write_simple(
                    writer, 431, {"error": "request headers too large"}, close=True
                )
                return
            try:
                method, target, version, headers = _parse_head(head)
            except ValueError as exc:
                await self._write_simple(
                    writer, 400, {"error": f"malformed request: {exc}"}, close=True
                )
                return
            try:
                length = int(headers.get("content-length") or 0)
            except ValueError:
                await self._write_simple(
                    writer, 400, {"error": "invalid Content-Length"}, close=True
                )
                return
            if length > self.max_body_bytes:
                # The body is not read: closing is the only safe resync.
                await self._write_simple(
                    writer, 413,
                    {"error": f"request body exceeds {self.max_body_bytes} bytes"},
                    close=True,
                )
                return
            body = await reader.readexactly(length) if length else b""
            keep_alive = self._keep_alive(version, headers)
            close = await self._handle_request(
                writer, method, target, headers, body, client_host, keep_alive
            )
            if close or not keep_alive:
                return

    @staticmethod
    def _keep_alive(version: str, headers: Dict[str, str]) -> bool:
        connection = headers.get("connection", "").lower()
        if version == "HTTP/1.0":
            return connection == "keep-alive"
        return connection != "close"

    # ------------------------------------------------------------------
    # Request dispatch
    # ------------------------------------------------------------------

    async def _handle_request(
        self,
        writer: asyncio.StreamWriter,
        method: str,
        target: str,
        headers: Dict[str, str],
        body: bytes,
        client_host: str,
        keep_alive: bool,
    ) -> bool:
        """Serve one parsed request; returns True when the connection must close."""
        parts = urlsplit(target)
        path = parts.path.rstrip("/") or "/"
        query = parse_qs(parts.query)
        route = _route_label(path)
        start = time.perf_counter()
        status = 500
        close = False
        client_key = headers.get("x-client-key") or client_host
        try:
            if self.limiter is not None and path not in _RATE_EXEMPT:
                decision = self.limiter.check(client_key)
                if not decision.allowed:
                    status = 429
                    _metrics.get_registry().counter(
                        "repro_ratelimit_throttled_total",
                        "Requests rejected by the rate limiter, by route.",
                        labelnames=("route",),
                    ).inc(route=route)
                    await self._write_json(
                        writer, 429,
                        {
                            "error": "rate limit exceeded; retry later",
                            "retry_after": decision.retry_after,
                        },
                        keep_alive=keep_alive,
                        extra_headers=(
                            ("Retry-After", str(max(1, math.ceil(decision.retry_after)))),
                        ),
                    )
                    return close
            if route == "/v1/jobs/{id}/events" and method == "GET":
                status = await self._serve_events(writer, path[len("/v1/jobs/"):-len("/events")])
                close = True  # an event stream uses up its connection
            else:
                status, payload, content_type = await self._respond(
                    method, path, query, body, client_key
                )
                await self._write_payload(
                    writer, status, payload, content_type, keep_alive=keep_alive
                )
        except (ConnectionResetError, BrokenPipeError):
            close = True
        except asyncio.CancelledError:
            raise
        except Exception as exc:  # noqa: BLE001 - boundary of the event loop
            log_event(
                _logger, "http.request_error", level=logging.ERROR,
                method=method, path=path,
                error=f"{type(exc).__name__}: {exc}", exc_info=exc,
            )
            status = 500
            try:
                await self._write_json(
                    writer, 500, {"error": "internal server error"},
                    keep_alive=False,
                )
            except (ConnectionResetError, BrokenPipeError):  # pragma: no cover
                pass
            close = True
        duration = time.perf_counter() - start
        registry = _metrics.get_registry()
        registry.counter(
            "repro_http_requests_total",
            "HTTP requests by method, route template and status code.",
            labelnames=("method", "route", "status"),
        ).inc(method=method, route=route, status=str(status))
        registry.histogram(
            "repro_http_request_seconds",
            "HTTP request latency by route template.",
            labelnames=("route",),
        ).observe(duration, route=route)
        if self.verbose:
            log_event(
                _logger, "http.request", level=logging.DEBUG,
                method=method, path=path, status=status,
                duration_s=round(duration, 6), client=client_key,
            )
        return close

    async def _respond(
        self,
        method: str,
        path: str,
        query: Dict[str, list],
        body: bytes,
        client_key: str,
    ) -> Tuple[int, bytes, str]:
        """Route one non-streaming request to (status, body bytes, content type)."""
        if method == "GET":
            if path.startswith("/v1/jobs/") and path.endswith("/trace"):
                # Traces are fetched on demand from sqlite (they are not part
                # of the push-refreshed snapshot: span trees are post-mortem
                # data, not hot status), so the read hops onto the pool.
                return await self._run_write(
                    self._do_trace, path[len("/v1/jobs/"):-len("/trace")]
                )
            if path == "/v1/debug/flight":
                return self._serve_flight(query)
            if path.startswith("/v1/jobs/"):
                job_bytes = self.snapshot.job_bytes(path[len("/v1/jobs/"):])
                if job_bytes is None:
                    return _json_response(
                        404, {"error": f"no such job: {path[len('/v1/jobs/'):]}"}
                    )
                return 200, job_bytes, "application/json"
            if path == "/v1/jobs":
                return self._list_jobs(query)
            if path == "/v1/healthz":
                return _json_response(200, self.health())
            if path == "/v1/metrics":
                return self._serve_metrics(query)
            if path == "/v1/scenarios":
                return 200, self._catalog(), "application/json"
            return _json_response(404, {"error": f"no such path: {path}"})
        if method == "POST":
            payload = _decode_json_body(body)
            if isinstance(payload, str):  # decode error message
                return _json_response(400, {"error": payload})
            if path == "/v1/jobs":
                return await self._run_write(self._do_submit, payload, client_key)
            if path == "/v1/scenarios/preview":
                return await self._run_write(self._do_preview, payload, client_key)
            return _json_response(404, {"error": f"no such path: {path}"})
        if method == "DELETE":
            if path.startswith("/v1/jobs/"):
                return await self._run_write(
                    self._do_cancel, path[len("/v1/jobs/"):], client_key
                )
            return _json_response(404, {"error": f"no such path: {path}"})
        return _json_response(405, {"error": f"method {method} not allowed"})

    # ------------------------------------------------------------------
    # Read endpoints (snapshot-only)
    # ------------------------------------------------------------------

    def _list_jobs(self, query: Dict[str, list]) -> Tuple[int, bytes, str]:
        try:
            jobs = self.snapshot.list_jobs(
                state=query.get("state", [None])[0],
                kind=query.get("kind", [None])[0],
                limit=int(query["limit"][0]) if "limit" in query else None,
            )
        except ValueError as exc:
            return _json_response(400, {"error": str(exc)})
        return _json_response(200, {"jobs": jobs})

    def _serve_metrics(self, query: Dict[str, list]) -> Tuple[int, bytes, str]:
        registry = _metrics.get_registry()
        if query.get("format", [None])[0] == "json":
            return _json_response(200, {"metrics": registry.snapshot()})
        return (
            200,
            registry.render_prometheus().encode("utf-8"),
            "text/plain; version=0.0.4; charset=utf-8",
        )

    def _serve_flight(self, query: Dict[str, list]) -> Tuple[int, bytes, str]:
        from repro.obs.flight import get_flight_recorder

        payload = get_flight_recorder().snapshot()
        kind = query.get("kind", [None])[0]
        if kind is not None:
            payload["events"] = [e for e in payload["events"] if e["kind"] == kind]
        return _json_response(200, {"flight": payload})

    def _do_trace(self, job_id: str) -> Tuple[int, Dict[str, Any]]:
        store = self.scheduler.store
        if store.get(job_id) is None:
            return 404, {"error": f"no such job: {job_id}"}
        trace = store.get_trace(job_id)
        if trace is None:
            return 404, {"error": f"no trace recorded for job: {job_id}"}
        return 200, {"job_id": job_id, "trace": trace}

    def _catalog(self) -> bytes:
        if self._catalog_bytes is None:
            self._catalog_bytes = json.dumps(catalog_payload()).encode("utf-8")
        return self._catalog_bytes

    def health(self) -> Dict[str, Any]:
        """Liveness payload; job counts come from the snapshot, not sqlite."""
        counts = self.snapshot.counts()
        registry = _metrics.get_registry()
        cache = self.scheduler.cache
        return {
            "status": "ok",
            "server": "asyncio-gateway",
            "jobs": counts,
            "workers": self.scheduler.num_workers,
            "backend": repr(self.scheduler.backend),
            "cache": repr(cache) if cache is not None else None,
            "uptime_seconds": time.time() - self.started_at,
            "rate_limit": (
                {"rate_per_s": self.limiter.rate, "burst": self.limiter.burst}
                if self.limiter is not None
                else None
            ),
            "audit_log": self.audit.path,
            "stats": {
                "http_requests": registry.total("repro_http_requests_total"),
                "jobs_submitted": registry.total("repro_jobs_submitted_total"),
                "jobs_deduplicated": registry.total("repro_jobs_deduplicated_total"),
                "jobs_executed": registry.total("repro_jobs_completed_total"),
                "queue_depth": counts["queued"],
                "open_sse_streams": self._hub.subscriber_count(),
                "cache_hits": cache.hits if cache is not None else 0,
                "cache_misses": cache.misses if cache is not None else 0,
            },
        }

    # ------------------------------------------------------------------
    # Write endpoints (thread-pool seam onto the scheduler)
    # ------------------------------------------------------------------

    async def _run_write(self, fn, *args) -> Tuple[int, bytes, str]:
        loop = asyncio.get_running_loop()
        status, payload = await loop.run_in_executor(self._pool, fn, *args)
        return _json_response(status, payload)

    def _do_submit(
        self, body: Dict[str, Any], client_key: str
    ) -> Tuple[int, Dict[str, Any]]:
        correlation_id = _tracing.new_correlation_id()
        with _tracing.start_trace(correlation_id, collect=False):
            kind = body.get("kind", "campaign")
            try:
                if kind == "campaign":
                    if "scenario" not in body:
                        raise ValueError('a campaign submission needs a "scenario" object')
                    record, reused = self.scheduler.submit_campaign(
                        body["scenario"], chunk_size=body.get("chunk_size")
                    )
                elif kind == "experiment":
                    if "experiment" not in body:
                        raise ValueError('an experiment submission needs an "experiment" id')
                    record, reused = self.scheduler.submit_experiment(
                        body["experiment"],
                        engine=body.get("engine"),
                        params=body.get("params"),
                    )
                else:
                    raise ValueError(
                        f"unknown job kind {kind!r}; expected 'campaign' or 'experiment'"
                    )
            except (KeyError, TypeError, ValueError) as exc:
                return 400, {"error": str(exc)}
            self.audit.record(
                "job.dedupe" if reused else "job.submit",
                client=client_key,
                job_id=record.id,
                kind=record.kind,
                spec_hash=record.dedupe_key,
                correlation_id=correlation_id,
            )
            return (
                200 if reused else 201,
                {"job": record.to_dict(include_result=False), "deduplicated": reused},
            )

    def _do_preview(
        self, body: Dict[str, Any], client_key: str
    ) -> Tuple[int, Dict[str, Any]]:
        try:
            return 200, sweep_preview_payload(body)
        except (KeyError, TypeError, ValueError) as exc:
            return 400, {"error": str(exc)}

    def _do_cancel(self, job_id: str, client_key: str) -> Tuple[int, Dict[str, Any]]:
        correlation_id = _tracing.new_correlation_id()
        with _tracing.start_trace(correlation_id, collect=False):
            store = self.scheduler.store
            record = store.get(job_id)
            if record is None:
                return 404, {"error": f"no such job: {job_id}"}
            updated = store.request_cancel(job_id)
            if record.state == "queued" and updated.state == "cancelled":
                _metrics.get_registry().counter(
                    "repro_jobs_cancelled_total",
                    "Jobs cancelled, by kind.",
                    labelnames=("kind",),
                ).inc(kind=record.kind)
                self.scheduler._update_queue_depth()
            self.audit.record(
                "job.cancel",
                client=client_key,
                job_id=job_id,
                kind=record.kind,
                state=updated.state,
                spec_hash=record.dedupe_key,
                correlation_id=correlation_id,
            )
            log_event(
                _logger, "job.cancel_requested",
                job_id=job_id, kind=record.kind, state=updated.state,
            )
            return 200, {"job": updated.to_dict(include_result=False)}

    # ------------------------------------------------------------------
    # Server-sent events
    # ------------------------------------------------------------------

    async def _serve_events(self, writer: asyncio.StreamWriter, job_id: str) -> int:
        """Stream ``progress`` events until the job is terminal; returns status.

        The subscription is registered *before* the initial state is read,
        so a transition landing in between is delivered, never lost
        (duplicates are possible and harmless -- progress is monotone).
        """
        queue = self._hub.subscribe(job_id)
        registry = _metrics.get_registry()
        events = registry.counter(
            "repro_sse_events_total",
            "Server-sent events emitted, by event name.",
            labelnames=("event",),
        )
        try:
            record = self.snapshot.record(job_id)
            if record is None:
                await self._write_json(
                    writer, 404, {"error": f"no such job: {job_id}"}, keep_alive=False
                )
                return 404
            registry.counter(
                "repro_sse_streams_total", "SSE progress streams opened."
            ).inc()
            head = (
                "HTTP/1.1 200 OK\r\n"
                "Content-Type: text/event-stream\r\n"
                "Cache-Control: no-cache\r\n"
                "Connection: close\r\n\r\n"
            )
            writer.write(head.encode("latin-1"))
            payload = _progress_payload(record)
            terminal = payload["state"] in ("done", "failed", "cancelled")
            writer.write(_sse_frame("end" if terminal else "progress", payload))
            events.inc(event="end" if terminal else "progress")
            await writer.drain()
            while not terminal:
                try:
                    payload = await asyncio.wait_for(
                        queue.get(), timeout=self.sse_heartbeat
                    )
                except asyncio.TimeoutError:
                    # Heartbeat comment: keeps proxies open and surfaces dead
                    # clients (the write raises once the socket is gone).
                    writer.write(b": keep-alive\n\n")
                    await writer.drain()
                    continue
                terminal = payload["state"] in ("done", "failed", "cancelled")
                writer.write(_sse_frame("end" if terminal else "progress", payload))
                events.inc(event="end" if terminal else "progress")
                await writer.drain()
            return 200
        finally:
            self._hub.unsubscribe(job_id, queue)

    # ------------------------------------------------------------------
    # Response plumbing
    # ------------------------------------------------------------------

    async def _write_payload(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        body: bytes,
        content_type: str,
        *,
        keep_alive: bool,
        extra_headers: Tuple[Tuple[str, str], ...] = (),
    ) -> None:
        head = (
            f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: {'keep-alive' if keep_alive else 'close'}\r\n"
        )
        for name, value in extra_headers:
            head += f"{name}: {value}\r\n"
        writer.write(head.encode("latin-1") + b"\r\n" + body)
        await writer.drain()

    async def _write_json(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        payload: Dict[str, Any],
        *,
        keep_alive: bool,
        extra_headers: Tuple[Tuple[str, str], ...] = (),
    ) -> None:
        body = json.dumps(payload).encode("utf-8")
        await self._write_payload(
            writer, status, body, "application/json",
            keep_alive=keep_alive, extra_headers=extra_headers,
        )

    async def _write_simple(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        payload: Dict[str, Any],
        *,
        close: bool,
    ) -> None:
        try:
            await self._write_json(writer, status, payload, keep_alive=not close)
        except (ConnectionResetError, BrokenPipeError):  # pragma: no cover
            pass

    def __repr__(self) -> str:
        return f"GatewayServer(url={self.url!r}, jobs={len(self.snapshot)})"


def _json_response(status: int, payload: Dict[str, Any]) -> Tuple[int, bytes, str]:
    return status, json.dumps(payload).encode("utf-8"), "application/json"


def _decode_json_body(body: bytes):
    """Decoded JSON object, or an error *string* for the 400 response."""
    if not body:
        return {}
    try:
        payload = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        return f"invalid JSON body: {exc}"
    if not isinstance(payload, dict):
        return "the request body must be a JSON object"
    return payload


def _parse_head(head: bytes) -> Tuple[str, str, str, Dict[str, str]]:
    """Parse request line + headers from one ``\\r\\n\\r\\n``-terminated block."""
    try:
        text = head.decode("latin-1")
    except UnicodeDecodeError as exc:  # pragma: no cover - latin-1 never fails
        raise ValueError(str(exc)) from exc
    lines = text.split("\r\n")
    parts = lines[0].split(" ")
    if len(parts) != 3:
        raise ValueError(f"bad request line: {lines[0]!r}")
    method, target, version = parts
    if version not in ("HTTP/1.0", "HTTP/1.1"):
        raise ValueError(f"unsupported protocol version: {version!r}")
    headers: Dict[str, str] = {}
    for line in lines[1:]:
        if not line:
            continue
        name, sep, value = line.partition(":")
        if not sep or not name or name != name.strip() or " " in name:
            raise ValueError(f"malformed header line: {line!r}")
        headers[name.lower()] = value.strip()
    return method, target, version, headers
