"""Platform model: ``p`` identical processors subject to failures.

The paper (Section 2) executes the whole application on ``p`` identical
processors under *full parallelism* (every task uses all processors), with a
coordinated checkpoint/rollback-recovery protocol at the system level.  A
failure of any single processor therefore interrupts the whole platform, which
is why the platform-level failure process is the superposition of the ``p``
per-processor processes.

This module provides:

* :class:`Platform` -- the static description (number of processors,
  per-processor failure law, downtime), able to produce the platform-level
  failure law (exact for Exponential, simulated for other laws) and to act as
  a failure-time source for the discrete-event simulator;
* :class:`ProcessorState` -- bookkeeping of a single processor's age, used
  when the failure law is not memoryless;
* the cascading-downtime upper bound discussed at the end of Section 3
  (a processor may fail while another one is down).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro._validation import (
    check_non_negative,
    check_positive,
    check_positive_int,
)
from repro.failures.distributions import (
    ExponentialFailure,
    FailureDistribution,
)

__all__ = ["Platform", "ProcessorState"]


@dataclass
class ProcessorState:
    """Dynamic state of one processor inside a simulated platform.

    Attributes
    ----------
    index:
        Processor index in ``0..p-1``.
    next_failure:
        Absolute time of this processor's next failure.
    age:
        Time elapsed since this processor's last failure (or since the start
        of the simulation).  Only meaningful for non-memoryless laws.
    """

    index: int
    next_failure: float
    age: float = 0.0


@dataclass(frozen=True)
class Platform:
    """A platform of ``num_processors`` identical, individually failing processors.

    Parameters
    ----------
    num_processors:
        Number of processors ``p >= 1``.  The paper is agnostic to the
        granularity: a "processor" may be a core, a socket, or a cluster node.
    failure_law:
        Inter-arrival law of failures of a *single* processor.
    downtime:
        Downtime ``D >= 0`` incurred after each failure before recovery can
        start (rejuvenation/reboot or replacement by a spare).  Failures may
        strike during recovery but not during downtime (Section 2).
    rejuvenate_all_on_failure:
        When True, *all* processors restart their failure clocks after any
        platform failure -- the assumption the paper attributes to Bouguerra
        et al. [12] and criticises as unreasonable for Weibull laws.  Making
        it a platform field (rather than a per-call flag) lets every consumer
        of the platform -- the scalar
        :class:`~repro.simulation.engine.RenewalPlatformFailureSource`, the
        vectorized :func:`~repro.simulation.vectorized.simulate_renewal_batch`
        and :meth:`platform_failure_times` -- honour the same semantics, so
        experiments can quantify the difference on either engine.  For
        Exponential laws the flag has no observable effect (memorylessness).
    """

    num_processors: int = 1
    failure_law: FailureDistribution = field(
        default_factory=lambda: ExponentialFailure(rate=1e-5)
    )
    downtime: float = 0.0
    rejuvenate_all_on_failure: bool = False

    def __post_init__(self) -> None:
        check_positive_int("num_processors", self.num_processors)
        check_non_negative("downtime", self.downtime)
        if not isinstance(self.failure_law, FailureDistribution):
            raise TypeError(
                "failure_law must be a FailureDistribution, got "
                f"{type(self.failure_law).__name__}"
            )
        if not isinstance(self.rejuvenate_all_on_failure, bool):
            raise TypeError(
                "rejuvenate_all_on_failure must be a bool, got "
                f"{type(self.rejuvenate_all_on_failure).__name__}"
            )
        object.__setattr__(self, "downtime", float(self.downtime))

    # ------------------------------------------------------------------
    # Analytic view (Exponential platforms)
    # ------------------------------------------------------------------

    @property
    def is_exponential(self) -> bool:
        """True when the per-processor failure law is Exponential."""
        return isinstance(self.failure_law, ExponentialFailure)

    def platform_rate(self) -> float:
        """Platform failure rate ``lambda = p * lambda_proc`` (Exponential only).

        Raises
        ------
        ValueError
            If the per-processor law is not Exponential: for Weibull or
            log-normal laws the superposition is not a renewal process with a
            single scalar rate, and the paper (Section 6) resorts to
            simulation in that case.
        """
        if not self.is_exponential:
            raise ValueError(
                "platform_rate() is only defined for Exponential failure laws; "
                "use platform_failure_times() / the simulator for other laws"
            )
        law: ExponentialFailure = self.failure_law  # type: ignore[assignment]
        return law.rate * self.num_processors

    def platform_failure_law(self) -> ExponentialFailure:
        """Return the Exponential law of platform-level failures (Exponential only)."""
        return ExponentialFailure(rate=self.platform_rate())

    def platform_mtbf(self) -> float:
        """Mean time between *platform* failures.

        Exact (``1 / (p * lambda_proc)``) for Exponential laws; for other laws
        the per-processor MTBF divided by ``p`` is returned as the standard
        approximation used throughout the resilience literature.
        """
        if self.is_exponential:
            return 1.0 / self.platform_rate()
        return self.failure_law.mean() / self.num_processors

    def expected_downtime(self) -> float:
        """Expected downtime per failure, accounting for cascading downtimes.

        With a single processor the downtime has the constant value ``D``.
        With several processors a processor can fail while another one is
        down, leading to cascading downtimes; the exact expectation is
        unknown, but the paper (end of Section 3, citing RR-7876) notes that
        the lower bound ``D(p) = D(1) = D`` is very accurate in practice and
        that an upper bound can be computed.  We return the lower bound ``D``
        here and expose the upper bound separately.
        """
        return self.downtime

    def downtime_upper_bound(self) -> float:
        """Upper bound on the expected downtime per failure with cascades.

        While the platform is down (for ``D`` time units) each of the other
        ``p - 1`` processors may fail; each such failure can prolong the
        outage by at most another ``D``.  Iterating the argument gives the
        geometric bound ``D / (1 - q)`` where ``q`` is the probability that at
        least one of the remaining processors fails during a window of length
        ``D``.  The bound is only meaningful when ``q < 1``; otherwise
        ``inf`` is returned.
        """
        if self.downtime == 0.0 or self.num_processors == 1:
            return self.downtime
        # Probability that at least one of the other p-1 processors fails
        # during a window of length D.
        survive_one = self.failure_law.survival(self.downtime)
        q = 1.0 - survive_one ** (self.num_processors - 1)
        if q >= 1.0:
            return math.inf
        return self.downtime / (1.0 - q)

    # ------------------------------------------------------------------
    # Simulation view (any law)
    # ------------------------------------------------------------------

    def initial_states(self, rng: np.random.Generator) -> List[ProcessorState]:
        """Draw the initial next-failure time of every processor."""
        return [
            ProcessorState(index=i, next_failure=float(self.failure_law.sample(rng)))
            for i in range(self.num_processors)
        ]

    def platform_failure_times(
        self,
        rng: np.random.Generator,
        horizon: float,
        *,
        rejuvenate_all_on_failure: Optional[bool] = None,
    ) -> List[float]:
        """Generate the absolute platform-level failure times up to ``horizon``.

        The platform process is the superposition of the ``p`` per-processor
        renewal processes: each processor independently fails and is renewed
        (its clock restarts) after its own failures.

        Parameters
        ----------
        rng:
            Source of randomness.
        horizon:
            Generate failures strictly before this absolute time.
        rejuvenate_all_on_failure:
            When True, *all* processors are rejuvenated (their failure clocks
            restart) after any platform failure.  ``None`` (the default)
            inherits the platform's own ``rejuvenate_all_on_failure`` field;
            an explicit bool overrides it for this call.
        """
        check_positive("horizon", horizon)
        if rejuvenate_all_on_failure is None:
            rejuvenate_all_on_failure = self.rejuvenate_all_on_failure
        states = self.initial_states(rng)
        failures: List[float] = []
        guard = 0
        max_events = 10_000_000
        while True:
            nxt = min(states, key=lambda s: s.next_failure)
            t = nxt.next_failure
            if t >= horizon:
                break
            failures.append(t)
            if rejuvenate_all_on_failure:
                for s in states:
                    s.next_failure = t + float(self.failure_law.sample(rng))
            else:
                nxt.next_failure = t + float(self.failure_law.sample(rng))
            guard += 1
            if guard > max_events:
                raise RuntimeError(
                    "platform_failure_times generated more than "
                    f"{max_events} events; horizon={horizon} is probably too large "
                    "for the given failure law"
                )
        return failures

    def sample_time_to_next_failure(
        self,
        rng: np.random.Generator,
        states: Optional[List[ProcessorState]] = None,
        now: float = 0.0,
    ) -> float:
        """Sample the delay until the next platform failure.

        For Exponential laws this is a single draw from the superposed law;
        for other laws it requires per-processor state, which the caller can
        maintain via :meth:`initial_states` and update itself, or omit to get
        a fresh (stationary-ignored) superposition draw.
        """
        if self.is_exponential:
            return float(self.platform_failure_law().sample(rng))
        if states is None:
            draws = [float(self.failure_law.sample(rng)) for _ in range(self.num_processors)]
            return min(draws)
        return min(s.next_failure for s in states) - now

    def describe(self) -> str:
        """Human-readable one-line description of the platform."""
        law = type(self.failure_law).__name__
        return (
            f"Platform(p={self.num_processors}, law={law}, "
            f"MTBF_platform={self.platform_mtbf():.6g}, D={self.downtime})"
        )
