"""Failure inter-arrival time distributions.

The paper's core results assume that processor failure inter-arrival times
follow an Exponential distribution of parameter ``lambda_proc`` so that, with
``p`` processors running in full parallelism, the *platform* failure
inter-arrival times follow an Exponential distribution of parameter
``lambda = p * lambda_proc`` (Section 2).  Section 6 points out that Weibull
and log-normal laws are considered more realistic in practice and that only
simulation/heuristic approaches are available for them; those two laws are
provided here so that the simulator and the heuristic schedulers can exercise
the non-memoryless case.

Every distribution exposes the same small interface
(:class:`FailureDistribution`): density, CDF, survival, hazard rate, mean,
sampling, and conditional residual-life sampling (needed by the simulator when
a law is not memoryless).
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro._validation import check_positive, check_non_negative, check_positive_int

__all__ = [
    "FailureDistribution",
    "ExponentialFailure",
    "WeibullFailure",
    "LogNormalFailure",
    "inverse_normal_cdf",
    "superposed_rate",
]

# Coefficients of Wichura's algorithm AS241 (PPND16): three rational
# approximations to the inverse of the standard normal CDF, accurate to
# ~1e-15 relative over the full double range.  Hand-rolled here because the
# project deliberately depends only on NumPy (no scipy.special.ndtri).
_AS241_A = (
    3.3871328727963666080e0, 1.3314166789178437745e2, 1.9715909503065514427e3,
    1.3731693765509461125e4, 4.5921953931549871457e4, 6.7265770927008700853e4,
    3.3430575583588128105e4, 2.5090809287301226727e3,
)
_AS241_B = (
    1.0, 4.2313330701600911252e1, 6.8718700749205790830e2,
    5.3941960214247511077e3, 2.1213794301586595867e4, 3.9307895800092710610e4,
    2.8729085735721942674e4, 5.2264952788528545610e3,
)
_AS241_C = (
    1.42343711074968357734e0, 4.63033784615654529590e0,
    5.76949722146069140550e0, 3.64784832476320460504e0,
    1.27045825245236838258e0, 2.41780725177450611770e-1,
    2.27238449892691845833e-2, 7.74545014278341407640e-4,
)
_AS241_D = (
    1.0, 2.05319162663775882187e0, 1.67638483018380384940e0,
    6.89767334985100004550e-1, 1.48103976427480074590e-1,
    1.51986665636164571966e-2, 5.47593808499534494600e-4,
    1.05075007164441684324e-9,
)
_AS241_E = (
    6.65790464350110377720e0, 5.46378491116411436990e0,
    1.78482653991729133580e0, 2.96560571828504891230e-1,
    2.65321895265761230930e-2, 1.24266094738807843860e-3,
    2.71155556874348757815e-5, 2.01033439929228813265e-7,
)
_AS241_F = (
    1.0, 5.99832206555887937690e-1, 1.36929880922735805310e-1,
    1.48753612908506148525e-2, 7.86869131145613259100e-4,
    1.84631831751005468180e-5, 1.42151175831644588870e-7,
    2.04426310338993978564e-15,
)


def _as241_poly(coeffs, r: np.ndarray) -> np.ndarray:
    """Evaluate an AS241 polynomial (ascending coefficients) via Horner."""
    out = np.full_like(r, coeffs[-1])
    for coeff in reversed(coeffs[:-1]):
        out = out * r + coeff
    return out


def inverse_normal_cdf(p) -> np.ndarray:
    """Vectorized inverse of the standard normal CDF (quantile function).

    Implements Wichura's algorithm AS241 (routine PPND16), a piecewise
    rational approximation with ~1e-15 relative accuracy: the central region
    ``|p - 0.5| <= 0.425`` uses one rational in ``0.180625 - q**2``, the tails
    two rationals in ``sqrt(-log(min(p, 1-p)))``.  ``p <= 0`` maps to
    ``-inf`` and ``p >= 1`` to ``+inf``.

    This is the closed-form core of
    :meth:`LogNormalFailure._inverse_survival_batch`; kept public because an
    exact normal quantile with no scipy dependency is useful on its own.
    """
    p = np.asarray(p, dtype=float)
    scalar_input = p.ndim == 0
    p = np.atleast_1d(p)
    out = np.empty_like(p)

    low = p <= 0.0
    high = p >= 1.0
    out[low] = -np.inf
    out[high] = np.inf

    valid = ~(low | high)
    q = p[valid] - 0.5
    result = np.empty_like(q)

    central = np.abs(q) <= 0.425
    if central.any():
        r = 0.180625 - q[central] ** 2
        result[central] = q[central] * (
            _as241_poly(_AS241_A, r) / _as241_poly(_AS241_B, r)
        )
    tail = ~central
    if tail.any():
        q_tail = q[tail]
        r = np.where(q_tail < 0.0, p[valid][tail], 1.0 - p[valid][tail])
        r = np.sqrt(-np.log(r))
        near = r <= 5.0
        value = np.empty_like(r)
        if near.any():
            rn = r[near] - 1.6
            value[near] = _as241_poly(_AS241_C, rn) / _as241_poly(_AS241_D, rn)
        if (~near).any():
            rf = r[~near] - 5.0
            value[~near] = _as241_poly(_AS241_E, rf) / _as241_poly(_AS241_F, rf)
        result[tail] = np.where(q_tail < 0.0, -value, value)

    out[valid] = result
    return out[0] if scalar_input else out


class FailureDistribution(ABC):
    """Abstract base class for failure inter-arrival time laws.

    Subclasses model the distribution of the time between two consecutive
    failures of a *single* processor.  All times are expressed in the same
    (arbitrary) unit as task durations.
    """

    #: Whether the law is memoryless (only the Exponential law is).
    memoryless: bool = False

    @abstractmethod
    def pdf(self, t: float) -> float:
        """Probability density at time ``t >= 0``."""

    @abstractmethod
    def cdf(self, t: float) -> float:
        """Probability that a failure strikes within ``t`` time units."""

    @abstractmethod
    def mean(self) -> float:
        """Mean time between failures (MTBF) of a single processor."""

    @abstractmethod
    def sample(self, rng: np.random.Generator, size: Optional[int] = None):
        """Draw one sample (``size is None``) or an array of samples."""

    def survival(self, t: float) -> float:
        """Probability that no failure strikes within ``t`` time units."""
        return 1.0 - self.cdf(t)

    def hazard(self, t: float) -> float:
        """Instantaneous failure (hazard) rate at time ``t``."""
        s = self.survival(t)
        if s <= 0.0:
            return math.inf
        return self.pdf(t) / s

    def conditional_survival(self, t: float, age: float) -> float:
        """P(no failure in the next ``t`` units | the processor has age ``age``)."""
        t = check_non_negative("t", t)
        age = check_non_negative("age", age)
        s_age = self.survival(age)
        if s_age <= 0.0:
            return 0.0
        return self.survival(age + t) / s_age

    def sample_residual(self, rng: np.random.Generator, age: float) -> float:
        """Sample the residual life of a processor that has been up for ``age`` units.

        For memoryless laws this is an ordinary sample.  For other laws we use
        inverse-transform sampling of the conditional distribution
        ``P(X - age <= t | X > age)``.
        """
        age = check_non_negative("age", age)
        if self.memoryless or age == 0.0:
            return float(self.sample(rng))
        s_age = self.survival(age)
        if s_age <= 0.0:
            # The processor has (numerically) certainly failed; residual is 0.
            return 0.0
        u = rng.uniform()
        # Solve survival(age + t) / survival(age) = 1 - u  for t.
        target = s_age * (1.0 - u)
        return max(0.0, self._inverse_survival(target) - age)

    def sample_residual_batch(
        self, rng: np.random.Generator, ages: np.ndarray
    ) -> np.ndarray:
        """Sample residual lives for a whole batch of processor ages at once.

        Batch counterpart of :meth:`sample_residual`, used by the vectorized
        simulation engine (:mod:`repro.simulation.vectorized`) when many
        replications query aged processors in lock-step.  One uniform draw is
        consumed per entry and pushed through the conditional
        inverse-transform ``survival(age + t) = survival(age) * (1 - u)``, so
        for strictly positive ages the result is element-wise identical to
        calling :meth:`sample_residual` with the same underlying uniforms.
        (The scalar method short-circuits ``age == 0`` to an ordinary sample
        for speed; the batch variant keeps the inverse transform throughout,
        which is the same distribution drawn through a different map.)

        Memoryless laws ignore the ages entirely and return plain samples.
        """
        ages = np.asarray(ages, dtype=float)
        if np.any(ages < 0.0) or not np.all(np.isfinite(ages)):
            raise ValueError("ages must be finite and >= 0")
        if self.memoryless:
            return np.asarray(self.sample(rng, size=ages.shape), dtype=float)
        u = rng.uniform(size=ages.shape)
        s_age = self.survival_batch(ages)
        targets = s_age * (1.0 - u)
        residual = self._inverse_survival_batch(targets) - ages
        # Numerically dead processors (survival(age) == 0) get residual 0.
        return np.where(s_age <= 0.0, 0.0, np.maximum(residual, 0.0))

    def survival_batch(self, t: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`survival`; subclasses override with closed forms."""
        flat = np.asarray(t, dtype=float).ravel()
        out = np.array([self.survival(float(x)) for x in flat])
        return out.reshape(np.shape(t))

    def _inverse_survival_batch(self, s: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`_inverse_survival`.

        The base implementation falls back to the scalar bisection per
        element (exactly matching the scalar results); Exponential and
        Weibull override it with closed forms.
        """
        flat = np.asarray(s, dtype=float).ravel()
        out = np.array([self._inverse_survival(float(x)) for x in flat])
        return out.reshape(np.shape(s))

    def _inverse_survival(self, s: float) -> float:
        """Return ``t`` such that ``survival(t) = s`` (monotone bisection fallback)."""
        if s >= 1.0:
            return 0.0
        if s <= 0.0:
            return math.inf
        lo, hi = 0.0, max(self.mean(), 1.0)
        while self.survival(hi) > s:
            hi *= 2.0
            if hi > 1e18:
                return hi
        for _ in range(200):
            mid = 0.5 * (lo + hi)
            if self.survival(mid) > s:
                lo = mid
            else:
                hi = mid
            if hi - lo <= 1e-12 * max(1.0, hi):
                break
        return 0.5 * (lo + hi)

    def mtbf(self) -> float:
        """Alias for :meth:`mean` using the usual resilience-community acronym."""
        return self.mean()


@dataclass(frozen=True)
class ExponentialFailure(FailureDistribution):
    """Exponential failure law of rate ``rate`` (the paper's ``lambda``).

    The mean time between failures is ``1 / rate``.  This law is memoryless,
    which is the property that makes the closed-form expectation of
    Proposition 1 possible.

    Parameters
    ----------
    rate:
        Failure rate ``lambda > 0`` (failures per time unit).
    """

    rate: float

    def __post_init__(self) -> None:
        check_positive("rate", self.rate)
        object.__setattr__(self, "rate", float(self.rate))

    memoryless = True

    def pdf(self, t: float) -> float:
        if t < 0.0:
            return 0.0
        return self.rate * math.exp(-self.rate * t)

    def cdf(self, t: float) -> float:
        if t <= 0.0:
            return 0.0
        return -math.expm1(-self.rate * t)

    def survival(self, t: float) -> float:
        if t <= 0.0:
            return 1.0
        return math.exp(-self.rate * t)

    def hazard(self, t: float) -> float:
        return self.rate

    def mean(self) -> float:
        return 1.0 / self.rate

    def sample(self, rng: np.random.Generator, size: Optional[int] = None):
        out = rng.exponential(scale=1.0 / self.rate, size=size)
        return float(out) if size is None else out

    def survival_batch(self, t: np.ndarray) -> np.ndarray:
        t = np.asarray(t, dtype=float)
        return np.where(t <= 0.0, 1.0, np.exp(-self.rate * np.maximum(t, 0.0)))

    def _inverse_survival_batch(self, s: np.ndarray) -> np.ndarray:
        s = np.asarray(s, dtype=float)
        with np.errstate(divide="ignore"):
            out = -np.log(np.clip(s, 0.0, 1.0)) / self.rate
        return np.where(s >= 1.0, 0.0, np.where(s <= 0.0, np.inf, out))

    def scaled(self, factor: float) -> "ExponentialFailure":
        """Return the superposition of ``factor`` independent copies of this law.

        For Exponential laws the superposition of ``p`` i.i.d. processes is
        again Exponential with rate ``p * rate`` (Section 2 of the paper).
        """
        check_positive("factor", factor)
        return ExponentialFailure(rate=self.rate * factor)

    @classmethod
    def from_mtbf(cls, mtbf: float) -> "ExponentialFailure":
        """Build the law from a mean time between failures."""
        check_positive("mtbf", mtbf)
        return cls(rate=1.0 / mtbf)


@dataclass(frozen=True)
class WeibullFailure(FailureDistribution):
    """Weibull failure law with shape ``shape`` (k) and scale ``scale`` (lambda).

    Field studies of HPC systems (Schroeder & Gibson, Heath et al., Liu et
    al., Heien et al. -- the paper's references [8-11]) report Weibull shapes
    below 1, i.e. a decreasing hazard rate ("infant mortality").  The law is
    *not* memoryless, so no closed-form expected makespan exists and the
    schedulers fall back to simulation-evaluated heuristics (Section 6).

    Parameters
    ----------
    shape:
        Weibull shape parameter ``k > 0``.  ``k = 1`` degenerates to the
        Exponential law; ``k < 1`` means a decreasing hazard rate.
    scale:
        Weibull scale parameter ``lambda > 0`` (same unit as task durations).
    """

    shape: float
    scale: float

    def __post_init__(self) -> None:
        check_positive("shape", self.shape)
        check_positive("scale", self.scale)
        object.__setattr__(self, "shape", float(self.shape))
        object.__setattr__(self, "scale", float(self.scale))

    def pdf(self, t: float) -> float:
        if t < 0.0:
            return 0.0
        if t == 0.0:
            if self.shape < 1.0:
                return math.inf
            if self.shape == 1.0:
                return 1.0 / self.scale
            return 0.0
        z = t / self.scale
        return (self.shape / self.scale) * z ** (self.shape - 1.0) * math.exp(-(z ** self.shape))

    def cdf(self, t: float) -> float:
        if t <= 0.0:
            return 0.0
        return -math.expm1(-((t / self.scale) ** self.shape))

    def survival(self, t: float) -> float:
        if t <= 0.0:
            return 1.0
        return math.exp(-((t / self.scale) ** self.shape))

    def hazard(self, t: float) -> float:
        if t < 0.0:
            return 0.0
        if t == 0.0:
            return self.pdf(0.0)
        return (self.shape / self.scale) * (t / self.scale) ** (self.shape - 1.0)

    def mean(self) -> float:
        return self.scale * math.gamma(1.0 + 1.0 / self.shape)

    def sample(self, rng: np.random.Generator, size: Optional[int] = None):
        out = self.scale * rng.weibull(self.shape, size=size)
        return float(out) if size is None else out

    def _inverse_survival(self, s: float) -> float:
        if s >= 1.0:
            return 0.0
        if s <= 0.0:
            return math.inf
        return self.scale * (-math.log(s)) ** (1.0 / self.shape)

    def survival_batch(self, t: np.ndarray) -> np.ndarray:
        t = np.asarray(t, dtype=float)
        return np.where(
            t <= 0.0, 1.0, np.exp(-((np.maximum(t, 0.0) / self.scale) ** self.shape))
        )

    def _inverse_survival_batch(self, s: np.ndarray) -> np.ndarray:
        s = np.asarray(s, dtype=float)
        with np.errstate(divide="ignore"):
            out = self.scale * (-np.log(np.clip(s, 0.0, 1.0))) ** (1.0 / self.shape)
        return np.where(s >= 1.0, 0.0, np.where(s <= 0.0, np.inf, out))

    @classmethod
    def from_mtbf(cls, mtbf: float, shape: float) -> "WeibullFailure":
        """Build a Weibull law with the given MTBF and shape."""
        check_positive("mtbf", mtbf)
        check_positive("shape", shape)
        scale = mtbf / math.gamma(1.0 + 1.0 / shape)
        return cls(shape=shape, scale=scale)


@dataclass(frozen=True)
class LogNormalFailure(FailureDistribution):
    """Log-normal failure law: ``log X ~ Normal(mu, sigma^2)``.

    Heien et al. [11] advocate log-normal fits for inter-failure times of
    large parallel systems.  Like Weibull, the law is not memoryless.

    Parameters
    ----------
    mu:
        Mean of the underlying normal distribution (of ``log X``).
    sigma:
        Standard deviation of the underlying normal distribution, ``> 0``.
    """

    mu: float
    sigma: float

    def __post_init__(self) -> None:
        check_positive("sigma", self.sigma)
        if not math.isfinite(float(self.mu)):
            raise ValueError(f"mu must be finite, got {self.mu!r}")
        object.__setattr__(self, "mu", float(self.mu))
        object.__setattr__(self, "sigma", float(self.sigma))

    def pdf(self, t: float) -> float:
        if t <= 0.0:
            return 0.0
        z = (math.log(t) - self.mu) / self.sigma
        return math.exp(-0.5 * z * z) / (t * self.sigma * math.sqrt(2.0 * math.pi))

    def cdf(self, t: float) -> float:
        if t <= 0.0:
            return 0.0
        z = (math.log(t) - self.mu) / (self.sigma * math.sqrt(2.0))
        return 0.5 * (1.0 + math.erf(z))

    def mean(self) -> float:
        return math.exp(self.mu + 0.5 * self.sigma * self.sigma)

    def sample(self, rng: np.random.Generator, size: Optional[int] = None):
        out = rng.lognormal(mean=self.mu, sigma=self.sigma, size=size)
        return float(out) if size is None else out

    def _inverse_survival_batch(self, s: np.ndarray) -> np.ndarray:
        """Closed-form vectorized inverse survival via the normal quantile.

        ``survival(t) = s`` means ``Phi((log t - mu) / sigma) = 1 - s``, so
        ``t = exp(mu - sigma * Phi^{-1}(s))`` (using the symmetry
        ``Phi^{-1}(1 - s) = -Phi^{-1}(s)``, which keeps full precision for
        tiny survival values where ``1 - s`` would round) with
        :func:`inverse_normal_cdf` standing in for ``Phi^{-1}``.  Replaces the
        base class's per-element bisection -- itself limited to ~1e-7 in the
        deep tail by the ``1 - cdf`` cancellation inside ``survival`` -- with
        an AS241 evaluation accurate to ~1e-15: the log-normal counterpart of
        the Weibull ``-log`` closed form, and the step that makes
        :meth:`sample_residual_batch` loop-free for this law.
        """
        s = np.asarray(s, dtype=float)
        with np.errstate(over="ignore"):
            out = np.exp(self.mu - self.sigma * inverse_normal_cdf(np.clip(s, 0.0, 1.0)))
        return np.where(s >= 1.0, 0.0, np.where(s <= 0.0, np.inf, out))

    @classmethod
    def from_mtbf(cls, mtbf: float, sigma: float) -> "LogNormalFailure":
        """Build a log-normal law with the given MTBF and log-space std-dev."""
        check_positive("mtbf", mtbf)
        check_positive("sigma", sigma)
        mu = math.log(mtbf) - 0.5 * sigma * sigma
        return cls(mu=mu, sigma=sigma)


def superposed_rate(lambda_proc: float, num_processors: int) -> float:
    """Platform failure rate for ``num_processors`` Exponential processors.

    For Exponential laws, the superposition of ``p`` independent processes of
    rate ``lambda_proc`` is a Poisson process of rate ``p * lambda_proc``
    (Section 2 of the paper).  For non-Exponential laws no such scalar exists;
    use :class:`repro.failures.platform.Platform` to simulate the
    superposition instead.
    """
    check_positive("lambda_proc", lambda_proc)
    check_positive_int("num_processors", num_processors)
    return lambda_proc * num_processors
