"""Failure models: probability laws, platform model, and synthetic traces.

This subpackage is the "substrate" the paper assumes: a platform of ``p``
identical processors whose failure inter-arrival times follow a given
probability law.  The paper's analysis (Sections 3-5) uses the Exponential
law; Section 6 discusses Weibull and log-normal laws, which are provided here
for the simulation-based extensions.
"""

from repro.failures.distributions import (
    ExponentialFailure,
    FailureDistribution,
    LogNormalFailure,
    WeibullFailure,
    superposed_rate,
)
from repro.failures.platform import Platform, ProcessorState
from repro.failures.traces import (
    FailureEvent,
    FailureTrace,
    TraceStatistics,
    generate_trace,
    merge_traces,
)

__all__ = [
    "FailureDistribution",
    "ExponentialFailure",
    "WeibullFailure",
    "LogNormalFailure",
    "superposed_rate",
    "Platform",
    "ProcessorState",
    "FailureEvent",
    "FailureTrace",
    "TraceStatistics",
    "generate_trace",
    "merge_traces",
]
