"""Synthetic failure traces and trace statistics.

The paper's companion work [13] evaluates heuristics "using either synthetic
traces or failure logs of production clusters" from the Failure Trace Archive
[21].  Production logs are not redistributable here, so this module provides a
faithful synthetic substitute: traces are generated from any
:class:`~repro.failures.distributions.FailureDistribution` (Exponential,
Weibull with shape < 1 as reported by Schroeder & Gibson, or log-normal as
advocated by Heien et al.) and can be replayed deterministically by the
discrete-event simulator, exactly as archived logs would be.

A :class:`FailureTrace` is simply a sorted sequence of absolute failure
timestamps for a whole platform, together with per-event metadata (which
processor failed).  :class:`TraceStatistics` computes the usual summary
statistics (MTBF, coefficient of variation, empirical hazard behaviour) used
to sanity-check that generated traces have the intended characteristics, and
offers simple moment-based fitting back to each supported law.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, List, Optional, Tuple

import numpy as np

from repro._validation import check_positive, check_positive_int
from repro.failures.distributions import (
    ExponentialFailure,
    FailureDistribution,
    LogNormalFailure,
    WeibullFailure,
)

__all__ = [
    "FailureEvent",
    "FailureTrace",
    "TraceStatistics",
    "generate_trace",
    "merge_traces",
]


@dataclass(frozen=True, order=True)
class FailureEvent:
    """A single failure event in a trace.

    Attributes
    ----------
    time:
        Absolute timestamp of the failure (same unit as task durations).
    processor:
        Index of the processor that failed (0-based); ``-1`` when unknown.
    """

    time: float
    processor: int = -1

    def __post_init__(self) -> None:
        if self.time < 0.0 or not math.isfinite(self.time):
            raise ValueError(f"failure time must be finite and >= 0, got {self.time!r}")


@dataclass(frozen=True)
class FailureTrace:
    """An immutable, time-sorted sequence of platform failure events."""

    events: Tuple[FailureEvent, ...]
    horizon: float
    num_processors: int = 1

    def __post_init__(self) -> None:
        check_positive("horizon", self.horizon)
        check_positive_int("num_processors", self.num_processors)
        events = tuple(sorted(self.events, key=lambda e: e.time))
        object.__setattr__(self, "events", events)
        for event in events:
            if event.time > self.horizon:
                raise ValueError(
                    f"event at t={event.time} exceeds trace horizon {self.horizon}"
                )

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    @property
    def times(self) -> List[float]:
        """Absolute failure timestamps, sorted increasingly."""
        return [e.time for e in self.events]

    def inter_arrival_times(self) -> List[float]:
        """Delays between consecutive platform failures (first delay from t=0)."""
        times = self.times
        if not times:
            return []
        deltas = [times[0]]
        deltas.extend(b - a for a, b in zip(times, times[1:]))
        return deltas

    def failures_in(self, start: float, end: float) -> List[FailureEvent]:
        """Events with ``start <= time < end``."""
        if end < start:
            raise ValueError(f"end ({end}) must be >= start ({start})")
        return [e for e in self.events if start <= e.time < end]

    def next_failure_after(self, t: float) -> Optional[FailureEvent]:
        """First event strictly after time ``t``, or None if the trace is exhausted."""
        for event in self.events:
            if event.time > t:
                return event
        return None

    def shifted(self, offset: float) -> "FailureTrace":
        """Return a copy of the trace with all timestamps shifted by ``offset``."""
        if offset < 0 and self.events and self.events[0].time + offset < 0:
            raise ValueError("shift would produce negative timestamps")
        events = tuple(
            FailureEvent(time=e.time + offset, processor=e.processor) for e in self.events
        )
        return FailureTrace(
            events=events, horizon=self.horizon + max(offset, 0.0),
            num_processors=self.num_processors,
        )

    def statistics(self) -> "TraceStatistics":
        """Summary statistics of the trace."""
        return TraceStatistics.from_trace(self)


@dataclass(frozen=True)
class TraceStatistics:
    """Summary statistics of a failure trace.

    Attributes
    ----------
    count:
        Number of failures in the trace.
    mtbf:
        Empirical mean inter-arrival time (platform level).
    std:
        Empirical standard deviation of inter-arrival times.
    cv:
        Coefficient of variation (std / mean); 1 for Exponential, > 1 for
        Weibull shapes below one, typically < 1 for shapes above one.
    min_gap, max_gap:
        Extreme inter-arrival times.
    """

    count: int
    mtbf: float
    std: float
    cv: float
    min_gap: float
    max_gap: float

    @classmethod
    def from_trace(cls, trace: FailureTrace) -> "TraceStatistics":
        gaps = trace.inter_arrival_times()
        if not gaps:
            return cls(count=0, mtbf=math.inf, std=0.0, cv=0.0, min_gap=math.inf, max_gap=0.0)
        arr = np.asarray(gaps, dtype=float)
        mean = float(arr.mean())
        std = float(arr.std(ddof=1)) if len(arr) > 1 else 0.0
        cv = std / mean if mean > 0 else 0.0
        return cls(
            count=len(gaps),
            mtbf=mean,
            std=std,
            cv=cv,
            min_gap=float(arr.min()),
            max_gap=float(arr.max()),
        )

    def fit_exponential(self) -> ExponentialFailure:
        """Moment-fit an Exponential law to the trace (rate = 1 / MTBF)."""
        if not math.isfinite(self.mtbf) or self.mtbf <= 0:
            raise ValueError("cannot fit a law to an empty trace")
        return ExponentialFailure(rate=1.0 / self.mtbf)

    def fit_weibull(self) -> WeibullFailure:
        """Moment-fit a Weibull law (matching mean and coefficient of variation).

        Uses a bisection on the shape parameter: the Weibull CV is a strictly
        decreasing function of the shape.
        """
        if not math.isfinite(self.mtbf) or self.mtbf <= 0:
            raise ValueError("cannot fit a law to an empty trace")
        if self.cv <= 0:
            # Degenerate trace (constant gaps): return a high-shape Weibull.
            return WeibullFailure.from_mtbf(self.mtbf, shape=10.0)
        target_cv = self.cv

        def weibull_cv(shape: float) -> float:
            g1 = math.gamma(1.0 + 1.0 / shape)
            g2 = math.gamma(1.0 + 2.0 / shape)
            return math.sqrt(max(g2 / (g1 * g1) - 1.0, 0.0))

        lo, hi = 0.05, 50.0
        for _ in range(200):
            mid = 0.5 * (lo + hi)
            if weibull_cv(mid) > target_cv:
                lo = mid
            else:
                hi = mid
        shape = 0.5 * (lo + hi)
        return WeibullFailure.from_mtbf(self.mtbf, shape=shape)

    def fit_lognormal(self) -> LogNormalFailure:
        """Moment-fit a log-normal law (matching mean and coefficient of variation)."""
        if not math.isfinite(self.mtbf) or self.mtbf <= 0:
            raise ValueError("cannot fit a law to an empty trace")
        sigma2 = math.log(1.0 + self.cv * self.cv) if self.cv > 0 else 1e-6
        sigma = math.sqrt(sigma2)
        mu = math.log(self.mtbf) - 0.5 * sigma2
        return LogNormalFailure(mu=mu, sigma=sigma)


def generate_trace(
    law: FailureDistribution,
    horizon: float,
    *,
    num_processors: int = 1,
    rng: Optional[np.random.Generator] = None,
    seed: Optional[int] = None,
) -> FailureTrace:
    """Generate a synthetic platform failure trace.

    Each of the ``num_processors`` processors fails according to an
    independent renewal process with inter-arrival law ``law``; the platform
    trace is the superposition of the per-processor traces (any single
    processor failure interrupts the coordinated application).

    Parameters
    ----------
    law:
        Per-processor failure inter-arrival law.
    horizon:
        Length of the trace (absolute time).
    num_processors:
        Platform size ``p``.
    rng, seed:
        Randomness source; ``seed`` is ignored when ``rng`` is given.
    """
    check_positive("horizon", horizon)
    check_positive_int("num_processors", num_processors)
    if rng is None:
        rng = np.random.default_rng(seed)
    events: List[FailureEvent] = []
    for proc in range(num_processors):
        t = 0.0
        while True:
            t += float(law.sample(rng))
            if t >= horizon:
                break
            events.append(FailureEvent(time=t, processor=proc))
            if len(events) > 5_000_000:
                raise RuntimeError(
                    "generate_trace produced more than 5e6 events; "
                    "reduce the horizon or the failure rate"
                )
    return FailureTrace(events=tuple(events), horizon=horizon, num_processors=num_processors)


def merge_traces(traces: Iterable[FailureTrace]) -> FailureTrace:
    """Merge several traces into a single platform trace (superposition).

    The merged horizon is the minimum of the input horizons (beyond which at
    least one input trace carries no information), and processor indices are
    re-numbered to remain unique.
    """
    traces = list(traces)
    if not traces:
        raise ValueError("merge_traces requires at least one trace")
    horizon = min(t.horizon for t in traces)
    events: List[FailureEvent] = []
    offset = 0
    total_procs = 0
    for trace in traces:
        for event in trace.events:
            if event.time < horizon:
                proc = event.processor + offset if event.processor >= 0 else -1
                events.append(FailureEvent(time=event.time, processor=proc))
        offset += trace.num_processors
        total_procs += trace.num_processors
    return FailureTrace(events=tuple(events), horizon=horizon, num_processors=total_procs)
