"""Trend tables for the bench perf-history JSONL (stdlib-only).

``benchmarks/harness.py --history PATH`` appends one flat JSON record per
benchmark run (``bench``, ``mode``, ``metric``, ``value``, plus the
provenance stamp: ``git_sha``, ``python``, ``numpy``, ``cpu_count``).  The CI
bench-smoke job threads one such file through its cache, so after a few
pushes it holds a per-benchmark timing series.  This module turns that file
into a human-readable trend table:

* one row per ``(bench, mode, metric)`` series -- run count, best and latest
  value, the latest-vs-best ratio, a unicode sparkline of the recent values,
  and the short commit of the latest record;
* ``scripts/plot_perf_history.py`` and ``repro bench-history`` are thin CLIs
  over :func:`render_trends`.

Only the standard library is used: the file is read on operator machines and
CI log steps where NumPy may not be importable (matching
``scripts/check_bench_regression.py``, which consumes the same file).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, Dict, List, Optional, Sequence, Tuple

__all__ = [
    "load_history",
    "group_series",
    "sparkline",
    "render_trends",
    "main",
]

SeriesKey = Tuple[str, str, str]

#: Eight-level bar glyphs for the inline trend sparkline.
_SPARK_LEVELS = "▁▂▃▄▅▆▇█"


def load_history(path: str) -> List[Dict[str, Any]]:
    """Parse the JSONL history, skipping blank or malformed lines.

    Tolerant by design: the history file is appended by many CI runs and may
    contain partial lines from interrupted jobs; a broken line loses one
    record, never the table.
    """
    records: List[Dict[str, Any]] = []
    with open(path, "r", encoding="utf-8") as handle:
        for number, line in enumerate(handle, 1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                print(f"{path}:{number}: skipping malformed line", file=sys.stderr)
                continue
            if isinstance(record, dict) and "bench" in record and "value" in record:
                records.append(record)
    return records


def group_series(records: Sequence[Dict[str, Any]]) -> Dict[SeriesKey, List[Dict[str, Any]]]:
    """Group records by (bench, mode, metric), preserving append order."""
    series: Dict[SeriesKey, List[Dict[str, Any]]] = {}
    for record in records:
        key = (
            str(record.get("bench")),
            str(record.get("mode", "full")),
            str(record.get("metric", "seconds")),
        )
        series.setdefault(key, []).append(record)
    return series


def sparkline(values: Sequence[float]) -> str:
    """A unicode bar-per-value trend line, scaled to the series' own range."""
    if not values:
        return ""
    lo, hi = min(values), max(values)
    if hi <= lo:
        return _SPARK_LEVELS[0] * len(values)
    span = hi - lo
    return "".join(
        _SPARK_LEVELS[
            min(int((value - lo) / span * len(_SPARK_LEVELS)), len(_SPARK_LEVELS) - 1)
        ]
        for value in values
    )


def _format_value(value: float) -> str:
    magnitude = abs(value)
    if magnitude != 0 and (magnitude >= 1e4 or magnitude < 1e-3):
        return f"{value:.3g}"
    return f"{value:.4f}".rstrip("0").rstrip(".")


def render_trends(
    records: Sequence[Dict[str, Any]],
    *,
    bench: Optional[str] = None,
    mode: Optional[str] = None,
    last: int = 20,
) -> str:
    """The per-benchmark trend table as aligned text.

    ``bench`` filters series by substring match on the benchmark name;
    ``mode`` filters exactly (``quick``/``full``); ``last`` bounds the
    sparkline (and the latest-vs-best window is always the whole series, so
    an old regression stays visible however long the tail grows).
    """
    series = group_series(records)
    rows: List[Tuple[str, ...]] = []
    for (name, run_mode, metric), entries in sorted(series.items()):
        if bench and bench not in name:
            continue
        if mode and run_mode != mode:
            continue
        try:
            values = [float(entry["value"]) for entry in entries]
        except (TypeError, ValueError):
            continue
        best = min(values)
        latest = values[-1]
        ratio = latest / best if best > 0 else float("inf")
        latest_sha = entries[-1].get("git_sha") or ""
        rows.append((
            name,
            run_mode,
            metric,
            str(len(values)),
            _format_value(best),
            _format_value(latest),
            f"{ratio:.2f}x",
            sparkline(values[-max(last, 1):]),
            str(latest_sha)[:10],
        ))
    header = (
        "bench", "mode", "metric", "runs", "best", "latest",
        "vs_best", f"trend (last {max(last, 1)})", "latest_sha",
    )
    if not rows:
        return "no matching perf records"
    widths = [
        max(len(header[i]), *(len(row[i]) for row in rows))
        for i in range(len(header))
    ]
    lines = [
        "  ".join(header[i].ljust(widths[i]) for i in range(len(header))).rstrip(),
        "  ".join("-" * widths[i] for i in range(len(header))),
    ]
    for row in rows:
        lines.append(
            "  ".join(row[i].ljust(widths[i]) for i in range(len(header))).rstrip()
        )
    return "\n".join(lines)


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point shared by the script and ``repro bench-history``."""
    parser = argparse.ArgumentParser(
        prog="plot_perf_history",
        description="Render the bench perf-history JSONL as a trend table.",
    )
    parser.add_argument(
        "history", help="path to the JSONL history file "
        "(benchmarks/harness.py --history PATH)",
    )
    parser.add_argument(
        "--bench", default=None, metavar="SUBSTRING",
        help="only series whose benchmark name contains SUBSTRING",
    )
    parser.add_argument(
        "--mode", default=None, choices=("quick", "full"),
        help="only series recorded in this mode",
    )
    parser.add_argument(
        "--last", type=int, default=20, metavar="N",
        help="sparkline length: the N most recent values (default 20)",
    )
    args = parser.parse_args(argv)
    try:
        records = load_history(args.history)
    except OSError as error:
        print(f"cannot read {args.history}: {error}", file=sys.stderr)
        return 1
    print(render_trends(records, bench=args.bench, mode=args.mode, last=args.last))
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via scripts/ wrapper
    sys.exit(main())
