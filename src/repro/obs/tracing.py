"""Monotonic-clock timing spans with correlation-id propagation.

A *span* times one named unit of work (an HTTP request, a job execution, a
simulation chunk) with ``time.perf_counter`` and always feeds a
``repro_span_seconds{span=...}`` histogram in the active metrics registry.
When a :class:`Trace` is active in the current context, finished spans are
additionally appended to it as structured records carrying the trace's
correlation id -- that is how a single id follows a request from the HTTP
handler, through the scheduler's worker thread, down to individual chunks.

Crossing process boundaries (``ProcessPoolBackend``) cannot share a
``contextvars`` context, so the chunk-task payload carries a plain-dict
:func:`context_snapshot` which the worker re-activates with
:func:`shipping_trace`: the spans a chunk produces in a child process are
collected there and travel back to the submitting process inside the chunk
result payload, where :func:`absorb_spans` folds them into the live trace
(re-parented under the span that fanned the chunks out).  That is how a
job's *persisted* trace tree contains its pool workers' chunk spans.

Finished span records also flow through a process-wide *sink* seam
(:func:`add_span_sink`): the always-on flight recorder and the optional
OTLP exporter both hang off it without the span path knowing either exists.

Everything here is pay-for-what-you-use: with no active trace, no sinks
beyond the flight recorder and DEBUG logging off, a span costs three clock
reads, one histogram observation and one ring-buffer append.
"""

from __future__ import annotations

import contextvars
import logging
import os
import time
import uuid
from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Optional

from repro.obs import metrics as _metrics
from repro.obs.logging import get_logger, log_event

__all__ = [
    "Trace",
    "absorb_spans",
    "activate",
    "add_span_sink",
    "context_snapshot",
    "current_correlation_id",
    "current_trace",
    "new_correlation_id",
    "remove_span_sink",
    "render_span_tree",
    "shipping_trace",
    "span",
    "span_tree",
    "start_trace",
]

_trace_logger = get_logger("trace")

#: Hard cap on retained span records per trace: a runaway job cannot grow an
#: unbounded list in the scheduler's memory.  Overflow is counted, not kept.
MAX_SPANS_PER_TRACE = 10_000


class Trace:
    """A correlation id plus the span records collected under it."""

    def __init__(self, correlation_id: str, *, collect: bool = True) -> None:
        self.correlation_id = correlation_id
        self.collect = collect
        self.spans: List[Dict[str, Any]] = []
        self.dropped = 0
        self._stack: List[str] = []  # names of open spans (parent linkage)
        # Owning process: a fork-started pool worker inherits the parent's
        # contextvars, so the active trace it sees is a dead copy -- the pid
        # mismatch is how shipping_trace() tells that apart from genuine
        # serial in-context execution.
        self.pid = os.getpid()

    def add(self, record: Dict[str, Any]) -> None:
        if not self.collect:
            return
        if len(self.spans) >= MAX_SPANS_PER_TRACE:
            self.dropped += 1
            _metrics.get_registry().counter(
                "repro_trace_spans_dropped_total",
                "Span records discarded past MAX_SPANS_PER_TRACE.",
            ).inc()
            return
        self.spans.append(record)

    def durations(self, prefix: str = "") -> float:
        """Total seconds spent in spans whose name starts with ``prefix``."""
        return sum(
            record["duration_s"]
            for record in self.spans
            if record["name"].startswith(prefix)
        )


_ACTIVE: contextvars.ContextVar[Optional[Trace]] = contextvars.ContextVar(
    "repro_trace", default=None
)

#: Process-wide observers of finished span records.  Sinks receive every
#: record (traced or not) on the thread that closed the span; they must be
#: fast and must never raise into the instrumented code path.
_SPAN_SINKS: List[Any] = []  # repro: noqa[module-state] - append-only at process setup; the hot path iterates a list() snapshot


def add_span_sink(sink) -> None:
    """Register ``sink(record)`` to observe every finished span record.

    This is the seam the flight recorder (always on) and the OTLP exporter
    (opt-in) attach through: the span path stays ignorant of both.  Records
    absorbed from pool workers via :func:`absorb_spans` flow through the
    sinks of the *absorbing* process, so an exporter sees chunk spans even
    though they finished in a child.
    """
    if sink not in _SPAN_SINKS:
        _SPAN_SINKS.append(sink)


def remove_span_sink(sink) -> None:
    """Unregister a sink added with :func:`add_span_sink` (no-op if absent)."""
    if sink in _SPAN_SINKS:
        _SPAN_SINKS.remove(sink)


def _emit_to_sinks(record: Dict[str, Any]) -> None:
    for sink in list(_SPAN_SINKS):
        try:
            sink(record)
        except Exception:  # noqa: BLE001  # repro: noqa[broad-except] - observers must never raise into the instrumented path; a logging sink here could itself be the failing sink
            pass


def new_correlation_id() -> str:
    """A short random id, unique enough to grep a fleet's logs by."""
    return uuid.uuid4().hex[:16]


def current_trace() -> Optional[Trace]:
    return _ACTIVE.get()


def current_correlation_id() -> Optional[str]:
    trace = _ACTIVE.get()
    return trace.correlation_id if trace is not None else None


@contextmanager
def start_trace(
    correlation_id: Optional[str] = None, *, collect: bool = True
) -> Iterator[Trace]:
    """Activate a new trace in this context; yields the :class:`Trace`.

    The trace object stays readable after the block exits (the scheduler
    inspects ``trace.spans`` for the per-job phase breakdown even when the
    job raised).

    Example::

        >>> with start_trace() as trace:
        ...     with span("job.compute"):
        ...         pass
        >>> len(trace.spans), trace.spans[0]["name"]
        (1, 'job.compute')
    """
    trace = Trace(correlation_id or new_correlation_id(), collect=collect)
    token = _ACTIVE.set(trace)
    try:
        yield trace
    finally:
        _ACTIVE.reset(token)


def context_snapshot() -> Optional[Dict[str, str]]:
    """Picklable capture of the active trace context (or None).

    Small by design: it rides in every chunk-task payload sent to pool
    workers, so it must never grow state that varies between runs (cache
    keys hash spec payloads, not task tuples -- but keep it lean anyway).
    """
    correlation_id = current_correlation_id()
    if correlation_id is None:
        return None
    return {"correlation_id": correlation_id}


@contextmanager
def activate(snapshot: Optional[Dict[str, str]]) -> Iterator[Optional[Trace]]:
    """Re-enter a snapshotted context inside a worker (no-op for None).

    Spans run under the snapshotted correlation id for logs and metrics but
    their records are not collected -- use :func:`shipping_trace` when the
    records must travel back to the submitting process.
    """
    if not snapshot:
        yield None
        return
    current = _ACTIVE.get()
    if current is not None and current.correlation_id == snapshot["correlation_id"]:
        # Already in the originating context (serial in-thread execution):
        # keep collecting into it so the parent trace sees the chunk spans.
        yield current
        return
    with start_trace(snapshot["correlation_id"], collect=False) as trace:
        yield trace


@contextmanager
def shipping_trace(snapshot: Optional[Dict[str, str]]) -> Iterator[List[Dict[str, Any]]]:
    """Activate a snapshotted context around a chunk; collect shippable spans.

    Yields a list that, *after the block exits*, holds the span records the
    chunk produced and that must be shipped back to the submitting process
    (inside the chunk's result payload -- plain dicts, picklable).  Three
    cases:

    * no snapshot: spans are untraced, nothing to ship (empty list);
    * the chunk runs inside the originating trace's own context (serial
      in-thread execution): records were collected *directly* into the live
      parent trace, so shipping them again would double-count -- the list
      stays empty;
    * the chunk runs in another process or thread: a fresh collecting trace
      captures the records and the list is filled on exit.

    The submitting side folds shipped records into its live trace with
    :func:`absorb_spans`.
    """
    shipped: List[Dict[str, Any]] = []
    if not snapshot:
        yield shipped
        return
    current = _ACTIVE.get()
    if (
        current is not None
        and current.correlation_id == snapshot["correlation_id"]
        and current.pid == os.getpid()
    ):
        # Genuinely inside the originating trace (serial in-thread): records
        # already land in the live trace.  A fork-started worker fails the
        # pid check -- its inherited trace is a copy the parent never sees.
        yield shipped
        return
    with start_trace(snapshot["correlation_id"]) as trace:
        yield shipped
    shipped.extend(trace.spans)


def absorb_spans(records: Optional[List[Dict[str, Any]]]) -> None:
    """Fold span records shipped from a worker back into the active trace.

    Records with no parent (a chunk's root span) are re-parented under the
    currently open span of the absorbing context -- typically ``job.run`` --
    so the persisted tree shows chunks where they logically ran.  Absorbed
    records also flow through the span sinks (the worker's sinks fired in
    the worker process, invisible here).  No active trace: records are still
    sinked, then discarded.
    """
    if not records:
        return
    trace = _ACTIVE.get()
    parent = trace._stack[-1] if trace is not None and trace._stack else None
    for record in records:
        if record.get("parent") is None and parent is not None:
            record["parent"] = parent
        if trace is not None:
            trace.add(record)
        _emit_to_sinks(record)


@contextmanager
def span(
    name: str,
    *,
    registry: Optional[_metrics.MetricsRegistry] = None,
    **attrs: Any,
) -> Iterator[Dict[str, Any]]:
    """Time a block; yields a mutable record the body may annotate.

    Always observes ``repro_span_seconds{span=name}``.  When a trace is
    active the finished record (name, duration, parent span, attributes,
    correlation id) is appended to it; when DEBUG logging is on for
    ``repro.trace`` the record is also emitted as a JSON event.

    Example::

        >>> with span("cache.read", namespace="campaign") as record:
        ...     record["hit"] = True   # annotate the span from the body
    """
    trace = _ACTIVE.get()
    record: Dict[str, Any] = {"name": name}
    if attrs:
        record["attrs"] = attrs
    if trace is not None:
        trace._stack.append(name)
    start = time.perf_counter()
    try:
        yield record
    finally:
        duration = time.perf_counter() - start
        record["duration_s"] = duration
        # Wall-clock end time: perf_counter has no epoch, and exporters
        # (OTLP start/end nanos) and the flight recorder need one.
        record["ts"] = time.time()
        if trace is not None:
            trace._stack.pop()
            record["parent"] = trace._stack[-1] if trace._stack else None
            record["correlation_id"] = trace.correlation_id
            trace.add(record)
        _emit_to_sinks(record)
        reg = registry if registry is not None else _metrics.get_registry()
        reg.histogram(
            "repro_span_seconds",
            "Duration of named timing spans.",
            labelnames=("span",),
        ).observe(duration, span=name)
        if _trace_logger.isEnabledFor(logging.DEBUG):
            log_event(
                _trace_logger,
                "span",
                level=logging.DEBUG,
                span=name,
                duration_s=round(duration, 6),
                parent=record.get("parent"),
                **attrs,
            )


# ----------------------------------------------------------------------
# Trace-tree reconstruction (for persisted per-job traces)
# ----------------------------------------------------------------------


def span_tree(records: List[Dict[str, Any]]) -> List[Dict[str, Any]]:
    """Rebuild the parent/child structure of a trace's span records.

    Records are appended in *completion* order (a child span closes before
    the parent that opened it) and carry the parent's *name*, so a finishing
    span adopts every so-far-unparented record that names it.  Identically
    named spans at different depths could in principle misbind, but the
    instrumented names (``job.run``, ``mc.chunk``, ``cache.get``...) never
    nest under themselves.

    Returns a list of root nodes ``{"record", "children", "self_s"}`` in
    completion order, where ``self_s`` is the span's own time: its duration
    minus its direct children's (clamped at zero -- absorbed pool chunks
    overlap their parent wall-clock when they ran concurrently).
    """
    pending: List[Dict[str, Any]] = []
    for record in records:
        node = {"record": record, "children": [], "self_s": 0.0}
        adopted = [n for n in pending if n["record"].get("parent") == record["name"]]
        if adopted:
            node["children"] = adopted
            pending = [n for n in pending if n not in adopted]
        child_time = sum(c["record"].get("duration_s", 0.0) for c in node["children"])
        node["self_s"] = max(record.get("duration_s", 0.0) - child_time, 0.0)
        pending.append(node)
    return pending


def render_span_tree(records: List[Dict[str, Any]], *, indent: int = 2) -> str:
    """Human-readable indented tree of a trace's spans.

    One line per span -- name, duration, self time and attributes -- nested
    by parentage (the ``repro jobs --trace`` rendering)::

        job.run                  0.1530s  self 0.0021s  kind=campaign
          campaign.chunk         0.0724s  self 0.0724s  engine=scalar runs=50
          campaign.chunk         0.0713s  self 0.0713s  engine=scalar runs=50
          cache.put              0.0072s  self 0.0072s  namespace=campaign
    """
    lines: List[str] = []

    def _walk(nodes: List[Dict[str, Any]], depth: int) -> None:
        for node in nodes:
            record = node["record"]
            name = " " * (indent * depth) + record.get("name", "?")
            attrs = record.get("attrs") or {}
            suffix = "".join(f"  {k}={v}" for k, v in attrs.items())
            lines.append(
                f"{name:<28s} {record.get('duration_s', 0.0):9.4f}s"
                f"  self {node['self_s']:.4f}s{suffix}"
            )
            _walk(node["children"], depth + 1)

    _walk(span_tree(records), 0)
    return "\n".join(lines)
