"""Monotonic-clock timing spans with correlation-id propagation.

A *span* times one named unit of work (an HTTP request, a job execution, a
simulation chunk) with ``time.perf_counter`` and always feeds a
``repro_span_seconds{span=...}`` histogram in the active metrics registry.
When a :class:`Trace` is active in the current context, finished spans are
additionally appended to it as structured records carrying the trace's
correlation id -- that is how a single id follows a request from the HTTP
handler, through the scheduler's worker thread, down to individual chunks.

Crossing process boundaries (``ProcessPoolBackend``) cannot share a
``contextvars`` context, so the chunk-task payload carries a plain-dict
:func:`context_snapshot` which the worker re-activates with
:func:`activate`.  The snapshot is deliberately tiny (just the correlation
id): span *records* collected in a child process stay in that process --
only its log lines (inherited stderr) and, on fork-start platforms, its
registry observations within the same chunk call are visible.

Everything here is pay-for-what-you-use: with no active trace and DEBUG
logging off, a span costs two clock reads and one histogram observation.
"""

from __future__ import annotations

import contextvars
import logging
import time
import uuid
from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Optional

from repro.obs import metrics as _metrics
from repro.obs.logging import get_logger, log_event

__all__ = [
    "Trace",
    "activate",
    "context_snapshot",
    "current_correlation_id",
    "current_trace",
    "new_correlation_id",
    "span",
    "start_trace",
]

_trace_logger = get_logger("trace")

#: Hard cap on retained span records per trace: a runaway job cannot grow an
#: unbounded list in the scheduler's memory.  Overflow is counted, not kept.
MAX_SPANS_PER_TRACE = 10_000


class Trace:
    """A correlation id plus the span records collected under it."""

    def __init__(self, correlation_id: str, *, collect: bool = True) -> None:
        self.correlation_id = correlation_id
        self.collect = collect
        self.spans: List[Dict[str, Any]] = []
        self.dropped = 0
        self._stack: List[str] = []  # names of open spans (parent linkage)

    def add(self, record: Dict[str, Any]) -> None:
        if not self.collect:
            return
        if len(self.spans) >= MAX_SPANS_PER_TRACE:
            self.dropped += 1
            return
        self.spans.append(record)

    def durations(self, prefix: str = "") -> float:
        """Total seconds spent in spans whose name starts with ``prefix``."""
        return sum(
            record["duration_s"]
            for record in self.spans
            if record["name"].startswith(prefix)
        )


_ACTIVE: contextvars.ContextVar[Optional[Trace]] = contextvars.ContextVar(
    "repro_trace", default=None
)


def new_correlation_id() -> str:
    """A short random id, unique enough to grep a fleet's logs by."""
    return uuid.uuid4().hex[:16]


def current_trace() -> Optional[Trace]:
    return _ACTIVE.get()


def current_correlation_id() -> Optional[str]:
    trace = _ACTIVE.get()
    return trace.correlation_id if trace is not None else None


@contextmanager
def start_trace(
    correlation_id: Optional[str] = None, *, collect: bool = True
) -> Iterator[Trace]:
    """Activate a new trace in this context; yields the :class:`Trace`.

    The trace object stays readable after the block exits (the scheduler
    inspects ``trace.spans`` for the per-job phase breakdown even when the
    job raised).

    Example::

        >>> with start_trace() as trace:
        ...     with span("job.compute"):
        ...         pass
        >>> len(trace.spans), trace.spans[0]["name"]
        (1, 'job.compute')
    """
    trace = Trace(correlation_id or new_correlation_id(), collect=collect)
    token = _ACTIVE.set(trace)
    try:
        yield trace
    finally:
        _ACTIVE.reset(token)


def context_snapshot() -> Optional[Dict[str, str]]:
    """Picklable capture of the active trace context (or None).

    Small by design: it rides in every chunk-task payload sent to pool
    workers, so it must never grow state that varies between runs (cache
    keys hash spec payloads, not task tuples -- but keep it lean anyway).
    """
    correlation_id = current_correlation_id()
    if correlation_id is None:
        return None
    return {"correlation_id": correlation_id}


@contextmanager
def activate(snapshot: Optional[Dict[str, str]]) -> Iterator[Optional[Trace]]:
    """Re-enter a snapshotted context inside a worker (no-op for None)."""
    if not snapshot:
        yield None
        return
    current = _ACTIVE.get()
    if current is not None and current.correlation_id == snapshot["correlation_id"]:
        # Already in the originating context (serial in-thread execution):
        # keep collecting into it so the parent trace sees the chunk spans.
        yield current
        return
    # Workers only need the id for logs/metrics; collecting span records in
    # a child process would be invisible to the parent anyway.
    with start_trace(snapshot["correlation_id"], collect=False) as trace:
        yield trace


@contextmanager
def span(
    name: str,
    *,
    registry: Optional[_metrics.MetricsRegistry] = None,
    **attrs: Any,
) -> Iterator[Dict[str, Any]]:
    """Time a block; yields a mutable record the body may annotate.

    Always observes ``repro_span_seconds{span=name}``.  When a trace is
    active the finished record (name, duration, parent span, attributes,
    correlation id) is appended to it; when DEBUG logging is on for
    ``repro.trace`` the record is also emitted as a JSON event.

    Example::

        >>> with span("cache.read", namespace="campaign") as record:
        ...     record["hit"] = True   # annotate the span from the body
    """
    trace = _ACTIVE.get()
    record: Dict[str, Any] = {"name": name}
    if attrs:
        record["attrs"] = attrs
    if trace is not None:
        trace._stack.append(name)
    start = time.perf_counter()
    try:
        yield record
    finally:
        duration = time.perf_counter() - start
        record["duration_s"] = duration
        if trace is not None:
            trace._stack.pop()
            record["parent"] = trace._stack[-1] if trace._stack else None
            record["correlation_id"] = trace.correlation_id
            trace.add(record)
        reg = registry if registry is not None else _metrics.get_registry()
        reg.histogram(
            "repro_span_seconds",
            "Duration of named timing spans.",
            labelnames=("span",),
        ).observe(duration, span=name)
        if _trace_logger.isEnabledFor(logging.DEBUG):
            log_event(
                _trace_logger,
                "span",
                level=logging.DEBUG,
                span=name,
                duration_s=round(duration, 6),
                parent=record.get("parent"),
                **attrs,
            )
