"""Observability substrate: metrics, timing spans, structured logs.

Stdlib-only and pay-for-what-you-use.  The modules layer cleanly:

* :mod:`repro.obs.metrics` -- thread-safe ``Counter`` / ``Gauge`` /
  ``Histogram`` in a ``MetricsRegistry`` with Prometheus text rendering;
* :mod:`repro.obs.tracing` -- ``span()`` context managers feeding duration
  histograms, correlation ids propagated request → job → chunk, and a span
  *sink* seam observers hang off;
* :mod:`repro.obs.logging` -- one-JSON-object-per-line structured events on
  the ``repro.*`` logger tree;
* :mod:`repro.obs.flight` -- always-on bounded ring buffer of recent
  span/error events for post-mortem dumps (``GET /v1/debug/flight``);
* :mod:`repro.obs.export` -- opt-in stdlib-only OTLP/HTTP JSON span
  exporter (``repro serve --otlp-endpoint URL``).

Instrumentation throughout the tree records into the process-global
registry by default; tests swap in their own via ``use_registry``.
"""

from repro.obs.export import OtlpSpanExporter, default_instance_id
from repro.obs.flight import FlightRecorder, get_flight_recorder, set_flight_recorder
from repro.obs.logging import JsonLineFormatter, configure_logging, get_logger, log_event
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
    set_registry,
    use_registry,
)
from repro.obs.tracing import (
    Trace,
    absorb_spans,
    activate,
    add_span_sink,
    context_snapshot,
    current_correlation_id,
    current_trace,
    new_correlation_id,
    remove_span_sink,
    render_span_tree,
    shipping_trace,
    span,
    span_tree,
    start_trace,
)

__all__ = [
    "DEFAULT_BUCKETS",
    "Counter",
    "FlightRecorder",
    "Gauge",
    "Histogram",
    "JsonLineFormatter",
    "MetricsRegistry",
    "OtlpSpanExporter",
    "Trace",
    "absorb_spans",
    "activate",
    "add_span_sink",
    "configure_logging",
    "context_snapshot",
    "current_correlation_id",
    "current_trace",
    "default_instance_id",
    "get_flight_recorder",
    "get_logger",
    "get_registry",
    "log_event",
    "new_correlation_id",
    "remove_span_sink",
    "render_span_tree",
    "set_flight_recorder",
    "set_registry",
    "shipping_trace",
    "span",
    "span_tree",
    "start_trace",
    "use_registry",
]
