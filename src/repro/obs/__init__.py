"""Observability substrate: metrics, timing spans, structured logs.

Stdlib-only and pay-for-what-you-use.  The three modules layer cleanly:

* :mod:`repro.obs.metrics` -- thread-safe ``Counter`` / ``Gauge`` /
  ``Histogram`` in a ``MetricsRegistry`` with Prometheus text rendering;
* :mod:`repro.obs.tracing` -- ``span()`` context managers feeding duration
  histograms, plus correlation ids propagated request → job → chunk;
* :mod:`repro.obs.logging` -- one-JSON-object-per-line structured events on
  the ``repro.*`` logger tree.

Instrumentation throughout the tree records into the process-global
registry by default; tests swap in their own via ``use_registry``.
"""

from repro.obs.logging import JsonLineFormatter, configure_logging, get_logger, log_event
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
    set_registry,
    use_registry,
)
from repro.obs.tracing import (
    Trace,
    activate,
    context_snapshot,
    current_correlation_id,
    current_trace,
    new_correlation_id,
    span,
    start_trace,
)

__all__ = [
    "DEFAULT_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "JsonLineFormatter",
    "MetricsRegistry",
    "Trace",
    "activate",
    "configure_logging",
    "context_snapshot",
    "current_correlation_id",
    "current_trace",
    "get_logger",
    "get_registry",
    "log_event",
    "new_correlation_id",
    "set_registry",
    "span",
    "start_trace",
    "use_registry",
]
