"""Stdlib-only OTLP/HTTP span exporter (JSON encoding).

Ships finished span records to an OpenTelemetry collector's
``/v1/traces`` endpoint using nothing but :mod:`urllib` and a background
thread -- the repo's no-new-dependencies rule applied to telemetry.  The
exporter is **off by default** and opt-in per process
(``repro serve --otlp-endpoint URL``); attaching it registers a span sink
(:func:`repro.obs.tracing.add_span_sink`), so the instrumented code paths
never know it exists.

Design constraints, in order:

* the span path must never block -- records go into a bounded queue; when
  the queue is full the record is *dropped and counted*
  (``repro_otlp_spans_dropped_total{reason="queue_full"}``), never waited
  on;
* the collector being down must cost nothing but counters -- batches are
  retried with exponential backoff on 5xx/transport errors, then dropped
  and counted (``reason="send_failed"``); 4xx responses are dropped
  immediately (retrying a rejected payload cannot succeed);
* shutdown flushes -- :meth:`OtlpSpanExporter.shutdown` drains the queue
  into final batches before the thread exits, so short-lived CLI runs
  export their spans too.

The OTLP mapping is honest about what a correlation-id tracer has: the
16-hex correlation id left-pads to the 32-hex ``traceId``, span ids are
random, and the parent *name* (all this tracer records) rides as the
``repro.parent`` attribute rather than a ``parentSpanId``.  ``resource``
attributes carry ``service.name`` and a per-process
``service.instance.id`` -- the label that will distinguish coordinator
from workers once the campaign fabric shards across hosts.
"""

from __future__ import annotations

import json
import os
import queue
import socket
import threading
import time
import urllib.error
import urllib.request
import uuid
from typing import Any, Dict, List, Optional

from repro.devtools.lockwatch import tracked_lock
from repro.obs import metrics as _metrics
from repro.obs import tracing as _tracing

__all__ = ["OtlpSpanExporter", "default_instance_id"]


def default_instance_id() -> str:
    """``host:pid`` -- unique per process, stable for the process lifetime."""
    return f"{socket.gethostname()}:{os.getpid()}"


def _otlp_value(value: Any) -> Dict[str, Any]:
    """One OTLP ``AnyValue`` (JSON encoding)."""
    if isinstance(value, bool):
        return {"boolValue": value}
    if isinstance(value, int):
        return {"intValue": str(value)}
    if isinstance(value, float):
        return {"doubleValue": value}
    return {"stringValue": str(value)}


def _otlp_attributes(mapping: Dict[str, Any]) -> List[Dict[str, Any]]:
    return [{"key": key, "value": _otlp_value(value)} for key, value in mapping.items()]


def _trace_id(correlation_id: Optional[str]) -> str:
    """32-hex OTLP trace id from a 16-hex correlation id (random if absent)."""
    if correlation_id:
        try:
            int(correlation_id, 16)
        except ValueError:
            pass
        else:
            return correlation_id.rjust(32, "0")[-32:]
    return uuid.uuid4().hex


class OtlpSpanExporter:
    """Background OTLP/HTTP JSON exporter for finished span records.

    Parameters
    ----------
    endpoint:
        Collector URL, e.g. ``http://collector:4318/v1/traces``.
    service_name, instance_id:
        The ``resource`` identity every batch carries
        (``service.instance.id`` defaults to ``host:pid``).
    max_queue:
        Bound on spans waiting to be batched; overflow is dropped+counted.
    batch_size, flush_interval:
        A batch is sent when it reaches ``batch_size`` spans or the oldest
        queued span has waited ``flush_interval`` seconds.
    max_retries, backoff_s:
        Retries per batch on 5xx/transport failure, with exponential
        backoff starting at ``backoff_s``.
    timeout:
        Per-POST socket timeout.

    Example::

        >>> exporter = OtlpSpanExporter("http://127.0.0.1:4318/v1/traces")
        >>> exporter.start()            # doctest: +SKIP
        >>> exporter.shutdown()         # doctest: +SKIP
    """

    def __init__(
        self,
        endpoint: str,
        *,
        service_name: str = "repro-scenario-service",
        instance_id: Optional[str] = None,
        max_queue: int = 2048,
        batch_size: int = 128,
        flush_interval: float = 2.0,
        max_retries: int = 3,
        backoff_s: float = 0.25,
        timeout: float = 10.0,
    ) -> None:
        self.endpoint = endpoint
        self.service_name = service_name
        self.instance_id = instance_id if instance_id is not None else default_instance_id()
        self.batch_size = max(int(batch_size), 1)
        self.flush_interval = float(flush_interval)
        self.max_retries = max(int(max_retries), 0)
        self.backoff_s = float(backoff_s)
        self.timeout = float(timeout)
        self._queue: "queue.Queue[Dict[str, Any]]" = queue.Queue(maxsize=max(int(max_queue), 1))
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self._lock = tracked_lock("obs.export")
        # Local mirrors of the registry counters: tests and health payloads
        # read them without depending on which registry was active.
        self.exported = 0
        self.dropped_queue_full = 0
        self.dropped_send_failed = 0
        self.batches_sent = 0
        self.batches_failed = 0
        # Test seam: monkeypatched to avoid real sleeps in backoff tests.
        self._sleep = time.sleep

    # ------------------------------------------------------------------
    # Span-sink side (hot path: must never block)
    # ------------------------------------------------------------------

    def export(self, record: Dict[str, Any]) -> None:
        """Enqueue one finished span record (the registered span sink)."""
        try:
            self._queue.put_nowait(record)
        except queue.Full:
            with self._lock:
                self.dropped_queue_full += 1
            self._drop_counter().inc(reason="queue_full")

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def start(self) -> "OtlpSpanExporter":
        """Attach as a span sink and start the background sender (idempotent)."""
        if self._thread is not None:
            return self
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, name="repro-otlp-export", daemon=True
        )
        self._thread.start()
        _tracing.add_span_sink(self.export)
        return self

    def shutdown(self, *, timeout: float = 10.0) -> None:
        """Detach the sink, flush what is queued, stop the thread."""
        _tracing.remove_span_sink(self.export)
        if self._thread is None:
            return
        self._stop.set()
        self._thread.join(timeout)
        self._thread = None

    def __enter__(self) -> "OtlpSpanExporter":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    def stats(self) -> Dict[str, int]:
        """Counters for health payloads and tests."""
        with self._lock:
            return {
                "exported": self.exported,
                "dropped_queue_full": self.dropped_queue_full,
                "dropped_send_failed": self.dropped_send_failed,
                "batches_sent": self.batches_sent,
                "batches_failed": self.batches_failed,
                "queued": self._queue.qsize(),
            }

    # ------------------------------------------------------------------
    # Background sender
    # ------------------------------------------------------------------

    def _run(self) -> None:
        while not self._stop.is_set():
            batch = self._collect_batch()
            if batch:
                self._send_with_retry(batch)
        # Shutdown flush: drain whatever the span path enqueued before the
        # sink was detached.
        while True:
            batch = self._drain_nowait()
            if not batch:
                break
            self._send_with_retry(batch)

    def _collect_batch(self) -> List[Dict[str, Any]]:
        """Block for the first span, then gather until size or interval."""
        try:
            first = self._queue.get(timeout=0.2)
        except queue.Empty:
            return []
        batch = [first]
        deadline = time.monotonic() + self.flush_interval
        while len(batch) < self.batch_size and not self._stop.is_set():
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                break
            try:
                batch.append(self._queue.get(timeout=min(remaining, 0.2)))
            except queue.Empty:
                continue
        return batch

    def _drain_nowait(self) -> List[Dict[str, Any]]:
        batch: List[Dict[str, Any]] = []
        while len(batch) < self.batch_size:
            try:
                batch.append(self._queue.get_nowait())
            except queue.Empty:
                break
        return batch

    def _send_with_retry(self, batch: List[Dict[str, Any]]) -> bool:
        body = json.dumps(self.encode_batch(batch)).encode("utf-8")
        request = urllib.request.Request(
            self.endpoint,
            data=body,
            method="POST",
            headers={"Content-Type": "application/json"},
        )
        for attempt in range(self.max_retries + 1):
            try:
                with urllib.request.urlopen(request, timeout=self.timeout):
                    pass
            except urllib.error.HTTPError as exc:
                if 400 <= exc.code < 500:
                    # The collector rejected the payload; retrying cannot help.
                    return self._count_failure(batch)
            except (urllib.error.URLError, OSError, TimeoutError):
                pass
            else:
                with self._lock:
                    self.exported += len(batch)
                    self.batches_sent += 1
                _metrics.get_registry().counter(
                    "repro_otlp_spans_exported_total",
                    "Span records delivered to the OTLP collector.",
                ).inc(len(batch))
                return True
            if attempt < self.max_retries:
                self._sleep(self.backoff_s * (2 ** attempt))
        return self._count_failure(batch)

    def _count_failure(self, batch: List[Dict[str, Any]]) -> bool:
        with self._lock:
            self.dropped_send_failed += len(batch)
            self.batches_failed += 1
        self._drop_counter().inc(len(batch), reason="send_failed")
        return False

    def _drop_counter(self):
        return _metrics.get_registry().counter(
            "repro_otlp_spans_dropped_total",
            "Span records the OTLP exporter had to drop, by reason.",
            labelnames=("reason",),
        )

    # ------------------------------------------------------------------
    # OTLP JSON encoding
    # ------------------------------------------------------------------

    def encode_batch(self, batch: List[Dict[str, Any]]) -> Dict[str, Any]:
        """One ``ExportTraceServiceRequest`` (JSON) for a list of records."""
        spans = []
        for record in batch:
            end_ts = record.get("ts") or time.time()
            duration = float(record.get("duration_s", 0.0))
            attrs = dict(record.get("attrs") or {})
            if record.get("parent"):
                attrs["repro.parent"] = record["parent"]
            spans.append({
                "traceId": _trace_id(record.get("correlation_id")),
                "spanId": uuid.uuid4().hex[:16],
                "name": record.get("name", "span"),
                "kind": 1,  # SPAN_KIND_INTERNAL
                "startTimeUnixNano": str(int((end_ts - duration) * 1e9)),
                "endTimeUnixNano": str(int(end_ts * 1e9)),
                "attributes": _otlp_attributes(attrs),
            })
        return {
            "resourceSpans": [{
                "resource": {
                    "attributes": _otlp_attributes({
                        "service.name": self.service_name,
                        "service.instance.id": self.instance_id,
                    })
                },
                "scopeSpans": [{
                    "scope": {"name": "repro.obs"},
                    "spans": spans,
                }],
            }]
        }

    def __repr__(self) -> str:
        return (
            f"OtlpSpanExporter(endpoint={self.endpoint!r}, "
            f"instance_id={self.instance_id!r})"
        )
