"""Structured JSON logging for the ``repro.*`` logger tree.

One event per line, machine-parseable, with the active correlation id (when
a trace is running -- see :mod:`repro.obs.tracing`) injected automatically so
a job's log lines can be stitched back together across threads.

The module is inert until :func:`configure_logging` is called: importing it
only attaches a ``NullHandler`` to the ``repro`` root logger so that the
service's new ERROR-level events do not leak through logging's last-resort
stderr handler in library/test use.  ``repro serve`` calls
:func:`configure_logging` so operators get the JSON stream on stderr.
"""

from __future__ import annotations

import json
import logging
import sys
from typing import Any, Optional, TextIO

__all__ = ["JsonLineFormatter", "configure_logging", "get_logger", "log_event"]

_ROOT = "repro"

# Library default: swallow events unless the embedding application (or
# `repro serve`) configures a handler.  Without this, logging's lastResort
# handler would print our new error events into every existing failure-path
# test and every quiet CLI run.
logging.getLogger(_ROOT).addHandler(logging.NullHandler())


class JsonLineFormatter(logging.Formatter):
    """Render each record as a single sorted-key JSON object."""

    def format(self, record: logging.LogRecord) -> str:
        payload: dict = {
            "ts": round(record.created, 6),
            "level": record.levelname.lower(),
            "logger": record.name,
            "event": record.getMessage(),
        }
        fields = getattr(record, "repro_fields", None)
        if fields:
            payload.update(fields)
        if record.exc_info and record.exc_info[0] is not None:
            payload["exception"] = self.formatException(record.exc_info)
        return json.dumps(payload, sort_keys=True, default=str)


def get_logger(name: str = "") -> logging.Logger:
    """A logger under the ``repro`` tree (``get_logger("service.queue")``)."""
    return logging.getLogger(f"{_ROOT}.{name}" if name else _ROOT)


def log_event(
    logger: logging.Logger,
    event: str,
    *,
    level: int = logging.INFO,
    exc_info: Any = None,
    **fields: Any,
) -> None:
    """Emit one structured event.

    ``fields`` become top-level JSON keys; the active trace's correlation id
    is injected as ``correlation_id`` when one exists and the caller did not
    supply their own.  The ``isEnabledFor`` early-out keeps disabled levels
    (DEBUG span chatter in production) at the cost of one dict lookup.

    Example::

        >>> log_event(get_logger("service"), "job.claimed",
        ...           job_id="j-1234", queue_wait_s=0.19)
        # -> {"ts": ..., "event": "job.claimed", "logger": "repro.service",
        #     "job_id": "j-1234", "queue_wait_s": 0.19,
        #     "correlation_id": "..."}   (one JSON object per line)
    """
    if not logger.isEnabledFor(level):
        return
    if "correlation_id" not in fields:
        # Imported lazily: tracing imports this module for its span logs.
        from repro.obs.tracing import current_correlation_id

        correlation_id = current_correlation_id()
        if correlation_id is not None:
            fields["correlation_id"] = correlation_id
    if level >= logging.WARNING:
        # WARNING+ events also land in the always-on flight recorder, so a
        # post-mortem dump shows recent errors even with handlers swallowed.
        # Imported lazily: flight imports tracing which imports this module.
        from repro.obs.flight import get_flight_recorder

        get_flight_recorder().record_log(
            logging.getLevelName(level).lower(), event, fields
        )
    logger.log(level, event, exc_info=exc_info, extra={"repro_fields": fields})


def configure_logging(
    *,
    level: int = logging.INFO,
    stream: Optional[TextIO] = None,
) -> logging.Handler:
    """Attach a JSON-lines stream handler to the ``repro`` root logger.

    Idempotent: a previous handler installed by this function is replaced,
    not stacked, so repeated calls (tests, CLI re-entry) never double-log.
    Returns the installed handler (tests use it to redirect the stream).

    Example::

        >>> import logging
        >>> handler = configure_logging(level=logging.DEBUG)  # doctest: +SKIP

    This is what ``repro serve --verbose`` calls; without it the ``repro.*``
    loggers follow whatever logging setup the host application has.
    """
    root = logging.getLogger(_ROOT)
    for handler in list(root.handlers):
        if getattr(handler, "_repro_obs_handler", False):
            root.removeHandler(handler)
    handler = logging.StreamHandler(stream if stream is not None else sys.stderr)
    handler.setFormatter(JsonLineFormatter())
    handler._repro_obs_handler = True  # type: ignore[attr-defined]
    root.addHandler(handler)
    root.setLevel(level)
    root.propagate = False
    return handler
