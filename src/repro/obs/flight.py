"""Flight recorder: an always-on ring buffer of recent observability events.

When a gateway wedges or a job misbehaves in production, the operator's
first question is "what happened in the last few seconds?" -- and the
answer is usually gone: DEBUG logging was off, the span records left with
their trace.  The flight recorder keeps that answer cheaply: a bounded
:class:`collections.deque` of the most recent span completions and
WARNING+ log events, always on (one lock + append per event), dumped on
demand via ``GET /v1/debug/flight`` or ``repro debug flight`` without any
prior configuration.  It is a post-mortem instrument, not a log: old
events are silently overwritten, nothing is persisted.

The default recorder registers itself as a span sink
(:func:`repro.obs.tracing.add_span_sink`) when this module is imported --
which :mod:`repro.obs` does -- and :func:`repro.obs.logging.log_event`
feeds it WARNING+ events lazily.

Example::

    >>> recorder = FlightRecorder(capacity=4)
    >>> recorder.record("span", name="job.run", duration_s=0.5)
    >>> [e["kind"] for e in recorder.events()]
    ['span']
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Any, Dict, List, Optional

from repro.devtools.lockwatch import tracked_lock
from repro.obs.tracing import add_span_sink

__all__ = ["FlightRecorder", "get_flight_recorder", "set_flight_recorder"]

#: Default ring capacity: enough for minutes of service traffic (spans are
#: coarse -- requests, jobs, chunks), small enough to never matter in RSS.
DEFAULT_CAPACITY = 512


class FlightRecorder:
    """Thread-safe bounded ring of recent ``{"kind", "ts", ...}`` events.

    Parameters
    ----------
    capacity:
        Maximum retained events; older ones are overwritten.

    Events carry a monotonically increasing ``seq`` so a reader can tell
    how much history the ring dropped between two dumps
    (``recorded_total - len(events)`` events are gone).
    """

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = int(capacity)
        self._lock = tracked_lock("obs.flight")
        self._events: "deque[Dict[str, Any]]" = deque(maxlen=self.capacity)
        self._seq = 0

    def record(self, kind: str, **fields: Any) -> None:
        """Append one event (``kind`` plus arbitrary JSON-compatible fields)."""
        event: Dict[str, Any] = {"kind": kind, "ts": fields.pop("ts", None) or time.time()}
        event.update({k: v for k, v in fields.items() if v is not None})
        with self._lock:
            self._seq += 1
            event["seq"] = self._seq
            self._events.append(event)

    def record_span(self, record: Dict[str, Any]) -> None:
        """Span-sink adapter: keep the interesting fields of a finished span."""
        self.record(
            "span",
            ts=record.get("ts"),
            name=record.get("name"),
            duration_s=record.get("duration_s"),
            parent=record.get("parent"),
            correlation_id=record.get("correlation_id"),
            attrs=record.get("attrs"),
        )

    def record_log(self, level: str, event: str, fields: Dict[str, Any]) -> None:
        """Log-feed adapter (WARNING+ events from :func:`log_event`)."""
        self.record(
            "error" if level in ("error", "critical") else "log",
            level=level,
            event=event,
            correlation_id=fields.get("correlation_id"),
            error=fields.get("error"),
        )

    def events(
        self, *, kind: Optional[str] = None, limit: Optional[int] = None
    ) -> List[Dict[str, Any]]:
        """Retained events, oldest first, optionally filtered by kind."""
        with self._lock:
            events = list(self._events)
        if kind is not None:
            events = [event for event in events if event["kind"] == kind]
        if limit is not None:
            events = events[-int(limit):]
        return events

    def snapshot(self) -> Dict[str, Any]:
        """The dump payload of ``GET /v1/debug/flight``."""
        with self._lock:
            events = list(self._events)
            total = self._seq
        return {
            "capacity": self.capacity,
            "recorded_total": total,
            "dropped": max(total - len(events), 0),
            "events": events,
        }

    def clear(self) -> None:
        """Drop every retained event (the sequence counter keeps counting)."""
        with self._lock:
            self._events.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._events)

    def __repr__(self) -> str:
        return f"FlightRecorder(capacity={self.capacity}, events={len(self)})"


_default = FlightRecorder()


def get_flight_recorder() -> FlightRecorder:
    """The process-wide recorder the span sink and log feed write to."""
    return _default


def set_flight_recorder(recorder: FlightRecorder) -> FlightRecorder:
    """Swap the process-wide recorder (tests); returns the previous one."""
    global _default
    previous, _default = _default, recorder
    return previous


def _span_sink(record: Dict[str, Any]) -> None:
    _default.record_span(record)


# Always on: importing repro.obs (which every instrumented module does)
# installs the recorder.  One deque append per span -- spans are coarse.
add_span_sink(_span_sink)
