"""Thread-safe metrics primitives and a Prometheus-compatible registry.

The observability substrate of the whole tree: counters, gauges and
fixed-bucket histograms that any layer (runtime, service, CLI) can record
into without coordinating with the others.  Design constraints, in order:

* **cheap** -- recording a sample is a dict lookup plus a lock-protected
  float add, so the instrumented seams (one observation per HTTP request,
  per job, per simulation *chunk* -- never per replication) cost nanoseconds
  against work units that take milliseconds to minutes;
* **inert** -- metrics never touch RNG streams, hashing or cache keys, so an
  instrumented run is bit-identical to an uninstrumented one (pinned by
  ``tests/test_obs.py``);
* **dependency-free** -- the wire format is the Prometheus text exposition
  format rendered by :meth:`MetricsRegistry.render_prometheus`, consumable
  by ``curl`` and every metrics stack, with a JSON ``snapshot`` twin for
  programmatic callers.

A process-global default registry (:func:`get_registry`) is what production
code records into; tests inject their own via :func:`use_registry` /
:func:`set_registry` so assertions never race with background threads of
other fixtures.

Labels follow the Prometheus model: a metric is declared once with a fixed
tuple of label *names*, and every observation supplies the label *values*
as keyword arguments.  Children are keyed by the frozen tuple of values.
"""

from __future__ import annotations

import math
import re
import threading

from repro.devtools.lockwatch import tracked_lock
from bisect import bisect_left
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = [
    "DEFAULT_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "get_registry",
    "set_registry",
    "use_registry",
]

#: Default histogram bucket upper bounds (seconds): spans the sub-millisecond
#: sqlite ops through multi-minute campaign jobs.  ``+Inf`` is implicit.
DEFAULT_BUCKETS = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
    0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0, 120.0,
)

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")


def _check_name(name: str) -> str:
    if not isinstance(name, str) or not _NAME_RE.match(name):
        raise ValueError(f"invalid metric name {name!r}")
    return name


def _escape_label_value(value: str) -> str:
    return value.replace("\\", r"\\").replace('"', r"\"").replace("\n", r"\n")


def _format_value(value: float) -> str:
    """Prometheus-style number rendering: integral values without a dot."""
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    if value != value:  # NaN
        return "NaN"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


class _Metric:
    """Shared machinery of every metric type: labels, locking, children."""

    kind = "untyped"

    def __init__(self, name: str, help: str = "", labelnames: Sequence[str] = ()) -> None:
        self.name = _check_name(name)
        self.help = help
        self.labelnames = tuple(labelnames)
        for label in self.labelnames:
            if not _LABEL_RE.match(label):
                raise ValueError(f"invalid label name {label!r} on metric {name!r}")
        self._lock = tracked_lock("obs.metrics.metric")
        self._children: Dict[Tuple[str, ...], Any] = {}

    def _key(self, labels: Dict[str, Any]) -> Tuple[str, ...]:
        if set(labels) != set(self.labelnames):
            raise ValueError(
                f"metric {self.name!r} takes labels {self.labelnames}, "
                f"got {tuple(sorted(labels))}"
            )
        return tuple(str(labels[name]) for name in self.labelnames)

    def _label_suffix(self, key: Tuple[str, ...], extra: str = "") -> str:
        pairs = [
            f'{name}="{_escape_label_value(value)}"'
            for name, value in zip(self.labelnames, key)
        ]
        if extra:
            pairs.append(extra)
        return "{" + ",".join(pairs) + "}" if pairs else ""

    def children(self) -> List[Tuple[Tuple[str, ...], Any]]:
        """Snapshot of ``(label_values, child_state)`` pairs, insertion order."""
        with self._lock:
            return list(self._children.items())


class Counter(_Metric):
    """A monotonically increasing count (requests, jobs, cache hits)."""

    kind = "counter"

    def inc(self, amount: float = 1.0, **labels: Any) -> None:
        """Add ``amount`` (default 1) to the child selected by ``labels``."""
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease (got {amount})")
        key = self._key(labels)
        with self._lock:
            self._children[key] = self._children.get(key, 0.0) + float(amount)

    def value(self, **labels: Any) -> float:
        """Current value of one child (0.0 when never incremented)."""
        key = self._key(labels)
        with self._lock:
            return self._children.get(key, 0.0)

    def total(self) -> float:
        """Sum over every child."""
        with self._lock:
            return sum(self._children.values())


class Gauge(_Metric):
    """A value that can go up and down (queue depth, throughput)."""

    kind = "gauge"

    def set(self, value: float, **labels: Any) -> None:
        key = self._key(labels)
        with self._lock:
            self._children[key] = float(value)

    def inc(self, amount: float = 1.0, **labels: Any) -> None:
        key = self._key(labels)
        with self._lock:
            self._children[key] = self._children.get(key, 0.0) + float(amount)

    def dec(self, amount: float = 1.0, **labels: Any) -> None:
        self.inc(-amount, **labels)

    def value(self, **labels: Any) -> float:
        key = self._key(labels)
        with self._lock:
            return self._children.get(key, 0.0)

    def total(self) -> float:
        with self._lock:
            return sum(self._children.values())


class _HistogramChild:
    __slots__ = ("bucket_counts", "sum", "count")

    def __init__(self, num_buckets: int) -> None:
        self.bucket_counts = [0] * (num_buckets + 1)  # +1 for the +Inf bucket
        self.sum = 0.0
        self.count = 0


class Histogram(_Metric):
    """Fixed-bucket distribution of observed values (latencies, durations).

    Buckets are *upper bounds* in increasing order; an implicit ``+Inf``
    bucket catches everything beyond the last bound.  Cumulative bucket
    counts (the Prometheus ``le`` convention) are computed at render time so
    the hot :meth:`observe` path is a single list increment.
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str = "",
        labelnames: Sequence[str] = (),
        buckets: Optional[Sequence[float]] = None,
    ) -> None:
        super().__init__(name, help, labelnames)
        bounds = tuple(float(b) for b in (buckets if buckets is not None else DEFAULT_BUCKETS))
        if not bounds or list(bounds) != sorted(set(bounds)):
            raise ValueError(f"histogram buckets must be distinct and increasing, got {bounds}")
        self.buckets = bounds

    def observe(self, value: float, **labels: Any) -> None:
        """Record one observation into the child selected by ``labels``."""
        value = float(value)
        key = self._key(labels)
        index = bisect_left(self.buckets, value)  # le buckets: value == bound lands inside
        with self._lock:
            child = self._children.get(key)
            if child is None:
                child = self._children[key] = _HistogramChild(len(self.buckets))
            child.bucket_counts[index] += 1
            child.sum += value
            child.count += 1

    def count(self, **labels: Any) -> int:
        """Number of observations of one child (0 when never observed)."""
        key = self._key(labels)
        with self._lock:
            child = self._children.get(key)
            return child.count if child is not None else 0

    def sum_value(self, **labels: Any) -> float:
        key = self._key(labels)
        with self._lock:
            child = self._children.get(key)
            return child.sum if child is not None else 0.0

    def total(self) -> float:
        with self._lock:
            return float(sum(child.count for child in self._children.values()))


class MetricsRegistry:
    """Named collection of metrics with get-or-create declaration semantics.

    Declaring the same metric twice returns the existing instance (so every
    call site can carry its own declaration); re-declaring with a different
    type or label set raises, catching drift between call sites early.

    Example::

        >>> registry = MetricsRegistry()
        >>> registry.counter("requests_total", labelnames=("route",)).inc(route="/v1/jobs")
        >>> registry.total("requests_total")
        1.0
        >>> print(registry.render_prometheus())  # doctest: +ELLIPSIS
        # TYPE requests_total counter
        requests_total{route="/v1/jobs"} 1...
    """

    def __init__(self) -> None:
        self._lock = tracked_lock("obs.metrics.registry", threading.RLock)
        self._metrics: Dict[str, _Metric] = {}

    # ------------------------------------------------------------------
    # Declaration (get-or-create)
    # ------------------------------------------------------------------

    def counter(self, name: str, help: str = "", labelnames: Sequence[str] = ()) -> Counter:
        return self._get_or_create(Counter, name, help, labelnames)

    def gauge(self, name: str, help: str = "", labelnames: Sequence[str] = ()) -> Gauge:
        return self._get_or_create(Gauge, name, help, labelnames)

    def histogram(
        self,
        name: str,
        help: str = "",
        labelnames: Sequence[str] = (),
        buckets: Optional[Sequence[float]] = None,
    ) -> Histogram:
        return self._get_or_create(Histogram, name, help, labelnames, buckets=buckets)

    def _get_or_create(self, cls, name, help, labelnames, **kwargs) -> Any:
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if type(existing) is not cls or existing.labelnames != tuple(labelnames):
                    raise ValueError(
                        f"metric {name!r} already registered as {existing.kind} with "
                        f"labels {existing.labelnames}; cannot re-declare as "
                        f"{cls.kind} with labels {tuple(labelnames)}"
                    )
                return existing
            metric = cls(name, help, labelnames, **kwargs)
            self._metrics[name] = metric
            return metric

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def get(self, name: str) -> Optional[_Metric]:
        with self._lock:
            return self._metrics.get(name)

    def metrics(self) -> List[_Metric]:
        with self._lock:
            return list(self._metrics.values())

    def total(self, name: str) -> float:
        """Sum over every child of ``name`` (0.0 for unknown metrics).

        Counters and gauges sum their values; histograms sum their
        observation counts.  The one-line way to ask "did anything happen"
        (health summaries, the CI smoke gate).
        """
        metric = self.get(name)
        return metric.total() if metric is not None else 0.0

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------

    def render_prometheus(self) -> str:
        """The registry in the Prometheus text exposition format."""
        lines: List[str] = []
        for metric in self.metrics():
            if metric.help:
                lines.append(f"# HELP {metric.name} {metric.help}")
            lines.append(f"# TYPE {metric.name} {metric.kind}")
            if isinstance(metric, Histogram):
                self._render_histogram(metric, lines)
            else:
                for key, value in metric.children():
                    lines.append(
                        f"{metric.name}{metric._label_suffix(key)} {_format_value(value)}"
                    )
        return "\n".join(lines) + ("\n" if lines else "")

    @staticmethod
    def _render_histogram(metric: Histogram, lines: List[str]) -> None:
        for key, child in metric.children():
            cumulative = 0
            for bound, bucket_count in zip(
                list(metric.buckets) + [math.inf], child.bucket_counts
            ):
                cumulative += bucket_count
                le = f'le="{_format_value(bound)}"'
                lines.append(
                    f"{metric.name}_bucket{metric._label_suffix(key, le)} {cumulative}"
                )
            lines.append(
                f"{metric.name}_sum{metric._label_suffix(key)} {_format_value(child.sum)}"
            )
            lines.append(f"{metric.name}_count{metric._label_suffix(key)} {child.count}")

    def snapshot(self) -> Dict[str, Any]:
        """JSON-compatible dump of every metric (the ``?format=json`` twin)."""
        out: Dict[str, Any] = {}
        for metric in self.metrics():
            entry: Dict[str, Any] = {
                "kind": metric.kind,
                "help": metric.help,
                "labelnames": list(metric.labelnames),
            }
            if isinstance(metric, Histogram):
                entry["buckets"] = list(metric.buckets)
                entry["values"] = [
                    {
                        "labels": dict(zip(metric.labelnames, key)),
                        "count": child.count,
                        "sum": child.sum,
                        "bucket_counts": list(child.bucket_counts),
                    }
                    for key, child in metric.children()
                ]
            else:
                entry["values"] = [
                    {"labels": dict(zip(metric.labelnames, key)), "value": value}
                    for key, value in metric.children()
                ]
            out[metric.name] = entry
        return out


# ----------------------------------------------------------------------
# Process-global default registry (with injection for tests)
# ----------------------------------------------------------------------

_global_registry = MetricsRegistry()
_global_lock = tracked_lock("obs.metrics.global")


def get_registry() -> MetricsRegistry:
    """The registry un-injected call sites record into."""
    return _global_registry


def set_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Replace the process-global registry; returns the previous one."""
    global _global_registry
    if not isinstance(registry, MetricsRegistry):
        raise TypeError(f"expected a MetricsRegistry, got {type(registry).__name__}")
    with _global_lock:
        previous, _global_registry = _global_registry, registry
    return previous


class use_registry:
    """Context manager swapping the global registry in, restoring on exit.

    >>> registry = MetricsRegistry()
    >>> with use_registry(registry):
    ...     get_registry().counter("c").inc()
    >>> registry.total("c")
    1.0
    """

    def __init__(self, registry: MetricsRegistry) -> None:
        self.registry = registry
        self._previous: Optional[MetricsRegistry] = None

    def __enter__(self) -> MetricsRegistry:
        self._previous = set_registry(self.registry)
        return self.registry

    def __exit__(self, *exc_info) -> None:
        assert self._previous is not None
        set_registry(self._previous)
