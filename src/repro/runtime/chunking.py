"""Deterministic chunking of a replication budget.

The contract that makes parallel simulation trustworthy is: *the chunk plan
depends only on the request, never on the execution resources*.  A budget of
``num_runs`` replications is always cut into the same chunk sizes, and chunk
``i`` always receives the ``i``-th child of ``numpy.random.SeedSequence(seed)``
-- whether the chunks then execute in-process, on 2 workers or on 32.
Re-assembling the per-chunk samples in chunk order therefore reproduces the
exact same sample sequence on any backend, which is what the regression test
``tests/test_runtime.py::TestBackendEquivalence`` pins down.

``SeedSequence.spawn`` gives statistically independent streams (each child
mixes a distinct ``spawn_key`` into the entropy pool), so chunks never share
or overlap random numbers -- the classic hazard of naive ``seed + i``
schemes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro._validation import check_positive_int

__all__ = ["ChunkPlan", "plan_chunks", "spawn_chunk_seeds", "DEFAULT_CHUNK_SIZE"]

#: Default number of replications per chunk.  Large enough that the per-chunk
#: dispatch overhead (pickling the work description, one IPC round-trip) is
#: amortised over many simulated runs, small enough that a typical budget of a
#: few thousand runs still fans out over every worker of a pool.
DEFAULT_CHUNK_SIZE = 250


@dataclass(frozen=True)
class ChunkPlan:
    """How a replication budget is split into independently-seeded chunks.

    Attributes
    ----------
    num_runs:
        Total replication budget; always equals ``sum(sizes)``.
    sizes:
        Chunk sizes in execution order.  All chunks have ``chunk_size`` runs
        except possibly the last.
    chunk_size:
        The nominal chunk size the plan was built with (part of cache keys:
        changing it changes the per-chunk RNG streams and hence the samples).
    """

    num_runs: int
    sizes: Tuple[int, ...]
    chunk_size: int

    @property
    def num_chunks(self) -> int:
        return len(self.sizes)

    def seeds(self, seed: Optional[int]) -> List[np.random.SeedSequence]:
        """One independent :class:`~numpy.random.SeedSequence` per chunk."""
        return spawn_chunk_seeds(seed, self.num_chunks)


def plan_chunks(num_runs: int, chunk_size: Optional[int] = None) -> ChunkPlan:
    """Split ``num_runs`` replications into worker-sized chunks.

    The plan is a pure function of ``(num_runs, chunk_size)``; in particular
    it does **not** look at the worker count, so the same request produces the
    same chunks (and the same per-chunk seeds) on every backend.
    """
    check_positive_int("num_runs", num_runs)
    if chunk_size is None:
        chunk_size = DEFAULT_CHUNK_SIZE
    check_positive_int("chunk_size", chunk_size)
    full, remainder = divmod(num_runs, chunk_size)
    sizes = [chunk_size] * full
    if remainder:
        sizes.append(remainder)
    return ChunkPlan(num_runs=num_runs, sizes=tuple(sizes), chunk_size=chunk_size)


def spawn_chunk_seeds(seed: Optional[int], num_chunks: int) -> List[np.random.SeedSequence]:
    """Spawn ``num_chunks`` independent seed sequences from a root seed.

    ``seed`` may be ``None`` (fresh OS entropy -- not reproducible, but the
    streams are still independent), an int, or an existing ``SeedSequence``
    whose children are reused deterministically.
    """
    check_positive_int("num_chunks", num_chunks)
    if isinstance(seed, np.random.SeedSequence):
        root = seed
    else:
        root = np.random.SeedSequence(seed)
    return root.spawn(num_chunks)
