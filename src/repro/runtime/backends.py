"""Execution backends: where independent simulation chunks run.

An :class:`ExecutionBackend` maps a picklable worker function over a list of
picklable work items and returns the results *in input order*.  That ordered
contract is what lets the callers re-assemble per-chunk samples
deterministically (see :mod:`repro.runtime.chunking`): the backend choice can
change wall-clock time but never the numbers.

Three backends are provided:

* :class:`SerialBackend` -- a plain in-process loop; zero overhead, always
  available, the default everywhere;
* :class:`ProcessPoolBackend` -- a :class:`concurrent.futures.ProcessPoolExecutor`
  fan-out, the single-host ancestor of the sharded/multi-host execution the
  ROADMAP aims at.  Worker functions and items must be picklable (module-level
  functions, dataclasses, numpy objects); closures and lambdas are not.
* :class:`VectorizedBackend` -- a decorator backend: chunks are *placed* by an
  inner backend (serial by default, a process pool for a pool of vectorized
  chunks) but advertise ``engine == "vectorized"``, so simulation callers
  execute each chunk as a NumPy array program
  (:mod:`repro.simulation.vectorized`) instead of a Python event loop --
  on memoryless models that is the exact segment-jumping Poisson kernel,
  bit-identical to the scalar event loop for the same seed and chunk plan.
  Parallelism and vectorization are orthogonal levers, and this composition
  lets them multiply.

:func:`resolve_backend` turns the user-facing spellings (``None``, a worker
count, ``"serial"``, ``"processes"``, ``"vectorized"``, or an existing
backend) into a backend instance, which is how the CLI's ``--parallel N`` and
``--engine`` flags reach the library; :func:`resolve_engine` normalises the
engine choice itself.
"""

from __future__ import annotations

import contextlib
import os
from abc import ABC, abstractmethod
from concurrent.futures import ProcessPoolExecutor
from typing import Any, Callable, Iterator, List, Optional, Sequence, Union

from repro._validation import check_positive_int

__all__ = [
    "ExecutionBackend",
    "SerialBackend",
    "ProcessPoolBackend",
    "VectorizedBackend",
    "resolve_backend",
    "resolve_engine",
    "backend_scope",
]

#: The engines a simulation chunk can execute on.  "scalar" is the Python
#: event-loop executor; "vectorized" the NumPy array program.
ENGINES = ("scalar", "vectorized")


class ExecutionBackend(ABC):
    """Maps a worker function over independent work items, preserving order."""

    #: Execution engine this backend asks simulation callers to dispatch:
    #: "scalar" (the Python event loop) unless a backend overrides it.
    engine: str = "scalar"

    @abstractmethod
    def map(self, fn: Callable[[Any], Any], items: Sequence[Any]) -> List[Any]:
        """Apply ``fn`` to every item and return the results in input order."""

    def imap(self, fn: Callable[[Any], Any], items: Sequence[Any]) -> Iterator[Any]:
        """Lazily apply ``fn``, yielding results in input order as they finish.

        Same ordered contract as :meth:`map`, but the caller observes each
        result as soon as it (and every earlier one) is available -- which is
        what lets long campaigns report per-chunk progress (see
        :meth:`~repro.simulation.campaign.CampaignRunner.run`).  The base
        implementation simply materialises :meth:`map`; concrete backends
        override it to stream.
        """
        return iter(self.map(fn, items))

    def close(self) -> None:
        """Release any resources (worker processes); idempotent."""

    def __enter__(self) -> "ExecutionBackend":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    @property
    def num_workers(self) -> int:
        """Degree of parallelism this backend provides (1 for serial)."""
        return 1


class SerialBackend(ExecutionBackend):
    """Run every chunk in the calling process, one after the other."""

    def map(self, fn: Callable[[Any], Any], items: Sequence[Any]) -> List[Any]:
        return [fn(item) for item in items]

    def imap(self, fn: Callable[[Any], Any], items: Sequence[Any]) -> Iterator[Any]:
        for item in items:
            yield fn(item)

    def __repr__(self) -> str:
        return "SerialBackend()"


class ProcessPoolBackend(ExecutionBackend):
    """Fan chunks out to a pool of worker processes.

    Parameters
    ----------
    max_workers:
        Pool size; defaults to ``os.cpu_count()``.
    mp_context:
        Optional :mod:`multiprocessing` context (e.g.
        ``multiprocessing.get_context("spawn")``) for platforms where the
        default start method misbehaves with the embedding application.

    The executor is created lazily on first use and kept alive across
    :meth:`map` calls, so the process start-up cost is paid once per campaign
    rather than once per chunk.  Use as a context manager (or call
    :meth:`close`) to shut the workers down promptly.
    """

    def __init__(self, max_workers: Optional[int] = None, *, mp_context=None) -> None:
        if max_workers is None:
            max_workers = os.cpu_count() or 1
        self.max_workers = check_positive_int("max_workers", max_workers)
        self._mp_context = mp_context
        self._executor: Optional[ProcessPoolExecutor] = None

    @property
    def num_workers(self) -> int:
        return self.max_workers

    def _ensure_executor(self) -> ProcessPoolExecutor:
        if self._executor is None:
            self._executor = ProcessPoolExecutor(
                max_workers=self.max_workers, mp_context=self._mp_context
            )
        return self._executor

    def map(self, fn: Callable[[Any], Any], items: Sequence[Any]) -> List[Any]:
        items = list(items)
        if not items:
            return []
        # executor.map yields results in input order; chunksize=1 because the
        # items are already coarse chunks of replications.
        return list(self._ensure_executor().map(fn, items, chunksize=1))

    def imap(self, fn: Callable[[Any], Any], items: Sequence[Any]) -> Iterator[Any]:
        items = list(items)
        if not items:
            return iter(())
        # The executor.map iterator is lazy: result i is yielded as soon as
        # items 0..i have completed, while later items keep computing.
        return self._ensure_executor().map(fn, items, chunksize=1)

    def close(self) -> None:
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None

    def __repr__(self) -> str:
        return f"ProcessPoolBackend(max_workers={self.max_workers})"


class VectorizedBackend(ExecutionBackend):
    """Run chunks as NumPy array programs, placed by an inner backend.

    The backend itself does no numerics: it advertises
    ``engine == "vectorized"`` so that simulation callers
    (:meth:`~repro.simulation.monte_carlo.MonteCarloEstimator.estimate`,
    :meth:`~repro.simulation.campaign.CampaignRunner.run`) dispatch each
    chunk to the batch engines of :mod:`repro.simulation.vectorized`, and it
    delegates the *placement* of those chunks to ``inner`` -- in-process by
    default, or a :class:`ProcessPoolBackend` for a pool of vectorized chunks
    (``VectorizedBackend(ProcessPoolBackend(8))``).

    An inner backend *instance* is borrowed (the caller keeps ownership and
    must close it); an inner spec (``None``, a worker count, ``"processes"``)
    is materialised here and closed with this backend.
    """

    engine = "vectorized"

    def __init__(self, inner: Union[None, int, str, "ExecutionBackend"] = None) -> None:
        self._owns_inner = not isinstance(inner, ExecutionBackend)
        self.inner = resolve_backend(inner)
        if isinstance(self.inner, VectorizedBackend):
            raise TypeError("VectorizedBackend cannot wrap another VectorizedBackend")

    @property
    def num_workers(self) -> int:
        return self.inner.num_workers

    def map(self, fn: Callable[[Any], Any], items: Sequence[Any]) -> List[Any]:
        return self.inner.map(fn, items)

    def imap(self, fn: Callable[[Any], Any], items: Sequence[Any]) -> Iterator[Any]:
        return self.inner.imap(fn, items)

    def close(self) -> None:
        if self._owns_inner:
            self.inner.close()

    def __repr__(self) -> str:
        return f"VectorizedBackend(inner={self.inner!r})"


def resolve_engine(
    engine: Optional[str],
    backend: Union[None, int, str, ExecutionBackend] = None,
) -> str:
    """Normalise an engine choice, inheriting the backend's engine by default.

    ``engine`` may be ``None`` (use whatever ``backend`` advertises, falling
    back to ``"scalar"``), ``"scalar"`` or ``"vectorized"`` in any case.
    Anything else raises a :exc:`ValueError` naming the valid choices, so CLI
    and API misuse produce a readable message instead of a traceback deep in
    the simulator.

    Backend *specs* carry their engine too: the string spelling
    ``backend="vectorized"`` implies the vectorized engine exactly like the
    :class:`VectorizedBackend` instance it resolves to.
    """
    if engine is None:
        if isinstance(backend, str) and backend.strip().lower() == "vectorized":
            return "vectorized"
        inherited = getattr(backend, "engine", None)
        return inherited if inherited in ENGINES else "scalar"
    if not isinstance(engine, str):
        raise TypeError(
            f"engine must be a string or None, got {type(engine).__name__!r}"
        )
    name = engine.strip().lower()
    if name not in ENGINES:
        raise ValueError(
            f"unknown engine {engine!r}; expected one of {', '.join(ENGINES)}"
        )
    return name


def resolve_backend(
    spec: Union[None, int, str, ExecutionBackend],
) -> ExecutionBackend:
    """Turn a user-facing backend specification into a backend instance.

    * ``None``, ``"serial"``, ``0`` or ``1`` -- :class:`SerialBackend`;
    * an int ``n > 1`` -- :class:`ProcessPoolBackend` with ``n`` workers;
    * ``"processes"`` -- :class:`ProcessPoolBackend` sized to the machine;
    * ``"vectorized"`` -- in-process :class:`VectorizedBackend`;
    * an existing :class:`ExecutionBackend` -- returned unchanged.
    """
    if spec is None:
        return SerialBackend()
    if isinstance(spec, ExecutionBackend):
        return spec
    if isinstance(spec, bool):
        raise TypeError("backend spec must not be a bool; pass a worker count")
    if isinstance(spec, int):
        if spec < 0:
            raise ValueError(f"worker count must be >= 0, got {spec}")
        return ProcessPoolBackend(spec) if spec > 1 else SerialBackend()
    if isinstance(spec, str):
        name = spec.strip().lower()
        if name == "serial":
            return SerialBackend()
        if name in ("processes", "process", "pool"):
            return ProcessPoolBackend()
        if name == "vectorized":
            return VectorizedBackend()
        raise ValueError(
            f"unknown backend {spec!r}; expected 'serial', 'processes', "
            "'vectorized', a worker count, or an ExecutionBackend instance"
        )
    raise TypeError(f"cannot build a backend from {type(spec).__name__!r}")


@contextlib.contextmanager
def backend_scope(
    spec: Union[None, int, str, ExecutionBackend],
) -> Iterator[ExecutionBackend]:
    """Resolve a backend spec for the duration of one operation.

    A backend *instance* passed in is used as-is and left open (the caller
    owns its lifetime -- that is how a pool is reused across calls).  A spec
    that had to be materialised here (a worker count, ``"processes"``) is
    closed on exit, so library calls like ``estimate(..., backend=4)`` never
    leak worker processes.
    """
    backend = resolve_backend(spec)
    owned = backend is not spec
    try:
        yield backend
    finally:
        if owned:
            backend.close()
