"""Content-addressed, disk-backed result cache.

Simulation campaigns are pure functions of their parameters and seed, so a
completed campaign never needs to run twice: its samples are stored on disk
under a key derived from the request (:func:`repro.runtime.hashing.stable_hash`
of schedule + failure law + estimator parameters + seed + chunk plan) and
replayed on the next identical request.

Layout (default root ``~/.cache/repro``, overridable with the
``REPRO_CACHE_DIR`` environment variable or the ``root`` argument)::

    <root>/v<CACHE_VERSION>/<namespace>/<key[:2]>/<key>.json   # metadata
    <root>/v<CACHE_VERSION>/<namespace>/<key[:2]>/<key>.npz    # sample arrays

Metadata is human-readable JSON (what was computed, by which code version);
bulk samples live in a sibling NPZ so multi-megabyte makespan arrays never
pass through a JSON parser.  Writes go through a temporary file plus
``os.replace`` so concurrent writers (e.g. several pool workers finishing the
same sweep) can never leave a torn entry; losing a race merely rewrites the
same content.

Versioned invalidation: :data:`CACHE_VERSION` is baked into the directory
path.  Bump it whenever the simulator's sampling semantics change, and every
stale entry becomes unreachable at once without touching old files.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Any, Dict, Mapping, Optional, Tuple

import numpy as np

from repro.obs import metrics as _metrics
from repro.obs import tracing as _tracing
from repro.runtime.hashing import stable_hash

__all__ = ["CACHE_VERSION", "ResultCache", "default_cache_root"]

#: Bump when the executor/trace-generation semantics change such that cached
#: samples would no longer match a fresh run.
#:
#: v2: the chunked Monte-Carlo sampler draws memoryless attempt delays from
#: the engine-neutral delay plan shared by the scalar and vectorized engines
#: (see :mod:`repro.simulation.vectorized`), so Poisson-model chunk samples
#: differ from v1's replication-sequential draws.
CACHE_VERSION = 2


def default_cache_root() -> Path:
    """The cache root: ``$REPRO_CACHE_DIR`` or ``~/.cache/repro``."""
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return Path(env).expanduser()
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg).expanduser() if xdg else Path.home() / ".cache"
    return base / "repro"


class ResultCache:
    """Disk-backed store of simulation results, addressed by content hash.

    Parameters
    ----------
    root:
        Cache directory; created on first write.  Defaults to
        :func:`default_cache_root`.
    namespace:
        Sub-directory separating result families (``"monte_carlo"``,
        ``"campaign"``, ``"experiment"``); part of the entry path only, not
        of the key.
    readonly:
        When True, :meth:`put` becomes a no-op -- useful for replaying a
        shared cache without mutating it.
    registry:
        Metrics registry receiving ``repro_cache_requests_total`` /
        ``repro_cache_bytes_written_total``; defaults to the process-global
        registry at call time (so ``use_registry`` works in tests).
    """

    def __init__(
        self,
        root: Optional[os.PathLike] = None,
        *,
        namespace: str = "results",
        readonly: bool = False,
        registry: Optional[_metrics.MetricsRegistry] = None,
    ) -> None:
        self.root = Path(root) if root is not None else default_cache_root()
        if not namespace or any(sep in namespace for sep in ("/", "\\", "..")):
            raise ValueError(f"invalid cache namespace {namespace!r}")
        self.namespace = namespace
        self.readonly = readonly
        self._registry = registry
        self.hits = 0
        self.misses = 0
        # Namespaced views report their hits/misses to the cache they were
        # derived from, so the instance a caller handed to the runtime shows
        # the campaign's replay statistics (see with_namespace).
        self._parent: Optional["ResultCache"] = None

    # ------------------------------------------------------------------
    # Keys and paths
    # ------------------------------------------------------------------

    def key_for(self, payload: Any) -> str:
        """Stable key of a request description (plain data / dataclasses)."""
        return stable_hash({"cache_version": CACHE_VERSION, "payload": payload})

    def _dir_for(self, key: str) -> Path:
        return self.root / f"v{CACHE_VERSION}" / self.namespace / key[:2]

    def _paths(self, key: str) -> Tuple[Path, Path]:
        base = self._dir_for(key)
        return base / f"{key}.json", base / f"{key}.npz"

    def with_namespace(self, namespace: str) -> "ResultCache":
        """A view of the same cache root under a different namespace.

        The view shares the parent's hit/miss statistics: a replay through a
        namespaced view increments the counters of the cache the caller
        originally passed in.
        """
        view = ResultCache(
            self.root, namespace=namespace, readonly=self.readonly,
            registry=self._registry,
        )
        view._parent = self
        return view

    def _metrics_registry(self) -> _metrics.MetricsRegistry:
        return self._registry if self._registry is not None else _metrics.get_registry()

    def _count(self, hit: bool) -> None:
        node: Optional["ResultCache"] = self
        while node is not None:
            if hit:
                node.hits += 1
            else:
                node.misses += 1
            node = node._parent
        self._metrics_registry().counter(
            "repro_cache_requests_total",
            "Cache lookups by namespace and outcome (hit/miss).",
            labelnames=("namespace", "outcome"),
        ).inc(namespace=self.namespace, outcome="hit" if hit else "miss")

    # ------------------------------------------------------------------
    # Read / write
    # ------------------------------------------------------------------

    def get(self, key: str) -> Optional[Tuple[Dict[str, Any], Dict[str, np.ndarray]]]:
        """Return ``(metadata, arrays)`` for ``key``, or None on a miss.

        A torn or unreadable entry counts as a miss (the caller recomputes
        and overwrites it) rather than an error.
        """
        with _tracing.span(
            "cache.get", registry=self._registry, namespace=self.namespace
        ):
            meta_path, npz_path = self._paths(key)
            try:
                with open(meta_path, "r", encoding="utf-8") as handle:
                    meta = json.load(handle)
            except (OSError, json.JSONDecodeError):
                self._count(hit=False)
                return None
            arrays: Dict[str, np.ndarray] = {}
            if meta.get("has_arrays"):
                try:
                    with np.load(npz_path) as npz:
                        arrays = {name: npz[name].copy() for name in npz.files}
                except (OSError, ValueError):
                    self._count(hit=False)
                    return None
            self._count(hit=True)
            return meta, arrays

    def put(
        self,
        key: str,
        metadata: Mapping[str, Any],
        arrays: Optional[Mapping[str, np.ndarray]] = None,
    ) -> Optional[Path]:
        """Store an entry atomically; returns the metadata path (None if readonly)."""
        if self.readonly:
            return None
        with _tracing.span(
            "cache.put", registry=self._registry, namespace=self.namespace
        ):
            meta_path, npz_path = self._paths(key)
            meta_path.parent.mkdir(parents=True, exist_ok=True)
            meta = dict(metadata)
            meta["has_arrays"] = bool(arrays)
            written = 0
            if arrays:
                written += self._atomic_write(
                    npz_path, lambda fh: np.savez_compressed(fh, **arrays)
                )
            written += self._atomic_write(
                meta_path,
                lambda fh: fh.write(json.dumps(meta, indent=2, sort_keys=True).encode("utf-8")),
            )
            self._metrics_registry().counter(
                "repro_cache_bytes_written_total",
                "Bytes written to the result cache, by namespace.",
                labelnames=("namespace",),
            ).inc(written, namespace=self.namespace)
            return meta_path

    def _atomic_write(self, path: Path, writer) -> int:
        """Write via tempfile + ``os.replace``; returns the bytes written."""
        fd, tmp_name = tempfile.mkstemp(dir=str(path.parent), prefix=path.name, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as handle:
                writer(handle)
                handle.flush()
                size = handle.tell()
            os.replace(tmp_name, path)
            return size
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise

    # ------------------------------------------------------------------
    # Introspection / maintenance
    # ------------------------------------------------------------------

    def __contains__(self, key: str) -> bool:
        return self._paths(key)[0].is_file()

    def __len__(self) -> int:
        base = self.root / f"v{CACHE_VERSION}" / self.namespace
        if not base.is_dir():
            return 0
        return sum(1 for _ in base.glob("*/*.json"))

    def clear(self) -> int:
        """Delete every entry in this namespace; returns the number removed."""
        base = self.root / f"v{CACHE_VERSION}" / self.namespace
        removed = 0
        if not base.is_dir():
            return removed
        for entry in base.glob("*/*"):
            if entry.suffix in (".json", ".npz"):
                if entry.suffix == ".json":
                    removed += 1
                entry.unlink(missing_ok=True)
        return removed

    def __repr__(self) -> str:
        return (
            f"ResultCache(root={str(self.root)!r}, namespace={self.namespace!r}, "
            f"hits={self.hits}, misses={self.misses})"
        )
