"""Stable content hashing: the addressing scheme of the result cache.

A cache entry must be found again by a *different* process, on a different
day, from a logically identical request -- so the key cannot involve
``id()``, ``hash()`` (salted per process for strings), pickle bytes (protocol
and memoisation dependent), or dict iteration order.  :func:`canonicalize`
reduces the parameter structures that appear in simulation requests
(dataclasses such as :class:`~repro.core.schedule.Segment` or the failure
laws, numpy arrays and scalars, nested containers) to a canonical tree of
JSON-compatible values, and :func:`stable_hash` hashes its compact JSON
serialisation with SHA-256.

Floats are canonicalised through ``float.hex()``: two floats produce the same
key exactly when they are the same IEEE-754 double, which matches the
bit-for-bit reproducibility contract of the runtime.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import math
from typing import Any

import numpy as np

__all__ = ["canonicalize", "stable_hash"]


def canonicalize(obj: Any) -> Any:
    """Reduce ``obj`` to a canonical JSON-compatible structure.

    Supported inputs: ``None``, bools, ints, strings, floats (including the
    IEEE specials), numpy scalars and arrays, lists/tuples, dicts with
    string-convertible keys, dataclass instances, and any object exposing a
    ``spec_dict()`` method (the extension hook used by
    :class:`~repro.runtime.scenario.ScenarioSpec`).  Dataclasses and
    ``spec_dict`` objects are tagged with their class name so that two
    different laws with identical field values (e.g. a Weibull and a
    log-normal that happen to share parameters) never collide.
    """
    if obj is None or isinstance(obj, (bool, int, str)):
        return obj
    if isinstance(obj, float):
        if math.isnan(obj):
            return {"__float__": "nan"}
        if math.isinf(obj):
            return {"__float__": "inf" if obj > 0 else "-inf"}
        return {"__float__": obj.hex()}
    if isinstance(obj, (np.bool_, np.integer)):
        return canonicalize(obj.item())
    if isinstance(obj, np.floating):
        return canonicalize(float(obj))
    if isinstance(obj, np.ndarray):
        return {"__ndarray__": [list(obj.shape), str(obj.dtype),
                                [canonicalize(x) for x in obj.ravel().tolist()]]}
    if isinstance(obj, (list, tuple)):
        return [canonicalize(x) for x in obj]
    if isinstance(obj, (set, frozenset)):
        return {"__set__": sorted(json.dumps(canonicalize(x), sort_keys=True) for x in obj)}
    if isinstance(obj, dict):
        return {"__dict__": sorted(
            (str(key), canonicalize(value)) for key, value in obj.items()
        )}
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        fields = {
            f.name: canonicalize(getattr(obj, f.name))
            for f in dataclasses.fields(obj)
            if f.compare
        }
        return {"__class__": type(obj).__name__, "fields": canonicalize(fields)}
    spec_dict = getattr(obj, "spec_dict", None)
    if callable(spec_dict):
        return {"__class__": type(obj).__name__, "fields": canonicalize(spec_dict())}
    raise TypeError(
        f"cannot canonicalize {type(obj).__name__!r} for hashing; pass plain "
        "data, a dataclass, or an object with a spec_dict() method"
    )


def stable_hash(obj: Any, *, length: int = 32) -> str:
    """Hex digest of the canonical form of ``obj`` (first ``length`` chars).

    The digest is stable across processes, platforms and Python versions, and
    changes whenever any parameter that could influence the result changes.
    """
    payload = json.dumps(canonicalize(obj), sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:length]
