"""Declarative scenario specifications for simulation campaigns.

A :class:`ScenarioSpec` describes a paired simulation campaign -- which
workload, which failure law, which checkpoint strategies, how many
replications -- as *plain data*.  Nothing is materialised until
:meth:`ScenarioSpec.run` is called, which means a spec can be

* serialised to / from JSON (:meth:`to_dict` / :meth:`from_dict`) and kept in
  version control next to the experiment that uses it;
* hashed (:meth:`cache_key`) so the disk cache recognises a previously
  executed scenario whatever process asks for it;
* expanded into a sweep (:func:`expand_scenarios`) and fanned out over an
  execution backend (:func:`run_scenarios`), each scenario's replication
  chunks running wherever the backend decides.

The workload model matches the simulation experiments of the reproduction
(E6/E8 and the Weibull example): a random linear chain drawn from
:func:`repro.workflows.generators.uniform_random_chain`, checkpoint
strategies taken from :func:`repro.baselines.strategies.evaluate_chain_strategies`,
and a per-processor failure law from :mod:`repro.failures.distributions`.
"""

from __future__ import annotations

import dataclasses
import itertools
import json
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro._validation import check_non_negative, check_positive, check_positive_int
from repro.baselines.strategies import evaluate_chain_strategies
from repro.core.schedule import Schedule
from repro.experiments.reporting import ResultTable
from repro.failures.distributions import (
    ExponentialFailure,
    FailureDistribution,
    LogNormalFailure,
    WeibullFailure,
)
from repro.runtime.hashing import stable_hash
from repro.workflows.chain import LinearChain
from repro.workflows.generators import uniform_random_chain

__all__ = [
    "ChainSpec",
    "FailureSpec",
    "ScenarioSpec",
    "expand_scenarios",
    "run_scenarios",
    "scenarios_table",
]


@dataclass(frozen=True)
class ChainSpec:
    """Plain-data description of a random linear-chain workload."""

    n: int
    work_range: Tuple[float, float] = (1.0, 10.0)
    checkpoint_range: Tuple[float, float] = (0.1, 1.0)
    seed: int = 0

    def __post_init__(self) -> None:
        check_positive_int("n", self.n)
        object.__setattr__(self, "work_range", tuple(float(x) for x in self.work_range))
        object.__setattr__(
            self, "checkpoint_range", tuple(float(x) for x in self.checkpoint_range)
        )

    def build(self) -> LinearChain:
        """Materialise the chain (deterministic for a given spec)."""
        return uniform_random_chain(
            self.n,
            work_range=self.work_range,
            checkpoint_range=self.checkpoint_range,
            seed=self.seed,
        )


@dataclass(frozen=True)
class FailureSpec:
    """Plain-data description of a per-processor failure inter-arrival law.

    ``kind`` selects the law: ``"exponential"`` (parameter ``mtbf``),
    ``"weibull"`` (``mtbf`` and ``shape``) or ``"lognormal"`` (``mtbf`` and
    ``sigma``).
    """

    kind: str
    mtbf: float
    shape: Optional[float] = None
    sigma: Optional[float] = None

    _KINDS = ("exponential", "weibull", "lognormal")

    def __post_init__(self) -> None:
        if self.kind not in self._KINDS:
            raise ValueError(f"unknown failure kind {self.kind!r}; expected one of {self._KINDS}")
        check_positive("mtbf", self.mtbf)
        if self.kind == "weibull" and self.shape is None:
            raise ValueError("weibull failure spec requires a shape")
        if self.kind == "lognormal" and self.sigma is None:
            raise ValueError("lognormal failure spec requires a sigma")

    def build(self) -> FailureDistribution:
        """Materialise the failure law."""
        if self.kind == "exponential":
            return ExponentialFailure.from_mtbf(self.mtbf)
        if self.kind == "weibull":
            return WeibullFailure.from_mtbf(self.mtbf, shape=self.shape)
        return LogNormalFailure.from_mtbf(self.mtbf, sigma=self.sigma)

    @property
    def rate_equivalent(self) -> float:
        """The Exponential rate with the same MTBF (used for DP placements)."""
        return 1.0 / self.mtbf

    def label(self) -> str:
        if self.kind == "weibull":
            return f"weibull(k={self.shape:g})"
        if self.kind == "lognormal":
            return f"lognormal(s={self.sigma:g})"
        return "exponential"


@dataclass(frozen=True)
class ScenarioSpec:
    """A complete, self-contained description of one simulation campaign.

    Attributes
    ----------
    name:
        Identifier of the scenario (used as the key of sweep results).
    chain:
        Workload description.
    failure:
        Per-processor failure law description.
    strategies:
        Checkpoint strategies to compare; any subset of the names produced by
        :func:`~repro.baselines.strategies.evaluate_chain_strategies`
        (``optimal_dp``, ``checkpoint_all``, ``checkpoint_none``,
        ``daly_period``, ``young_period``, ``every_2``, ``every_5``, ...).
    num_runs:
        Replication budget (shared failure traces per campaign).
    downtime:
        Downtime ``D`` applied after each failure.
    num_processors:
        Platform size for trace generation.
    horizon_factor:
        Trace horizon as a multiple of the largest failure-free makespan.
    seed:
        Root seed of the campaign's deterministic chunked RNG streams.
    engine:
        Execution engine of the campaign: ``None`` or ``"scalar"`` for the
        Python event-loop executor, ``"vectorized"`` for the NumPy array
        program (see :mod:`repro.simulation.vectorized`).  The vectorized
        engine orders its trace draws differently, so it is part of the
        cache key -- but only then: ``None`` and ``"scalar"`` produce
        identical samples and hash identically (legacy specs keep their
        keys).
    """

    name: str
    chain: ChainSpec
    failure: FailureSpec
    strategies: Tuple[str, ...] = ("optimal_dp", "checkpoint_all", "checkpoint_none")
    num_runs: int = 1000
    downtime: float = 0.0
    num_processors: int = 1
    horizon_factor: float = 10.0
    seed: int = 0
    engine: Optional[str] = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("scenario name must not be empty")
        object.__setattr__(self, "strategies", tuple(self.strategies))
        if not self.strategies:
            raise ValueError("a scenario must compare at least one strategy")
        check_positive_int("num_runs", self.num_runs)
        check_non_negative("downtime", self.downtime)
        check_positive_int("num_processors", self.num_processors)
        check_positive("horizon_factor", self.horizon_factor)
        if self.engine not in (None, "scalar", "vectorized"):
            raise ValueError(
                f"unknown engine {self.engine!r}; expected None, 'scalar' or "
                "'vectorized'"
            )

    # ------------------------------------------------------------------
    # Serialisation and hashing
    # ------------------------------------------------------------------

    def to_dict(self) -> Dict:
        """Plain-dict form (JSON-compatible)."""
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: Mapping) -> "ScenarioSpec":
        """Inverse of :meth:`to_dict`."""
        payload = dict(data)
        payload["chain"] = ChainSpec(**dict(payload["chain"]))
        payload["failure"] = FailureSpec(**dict(payload["failure"]))
        if "strategies" in payload:
            payload["strategies"] = tuple(payload["strategies"])
        return cls(**payload)

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "ScenarioSpec":
        return cls.from_dict(json.loads(text))

    def cache_key(self) -> str:
        """Stable content hash of everything that influences the results.

        The ``name`` is intentionally excluded: renaming a scenario must not
        force a recomputation.  The ``engine`` is included only when it can
        change the samples: ``None`` and ``"scalar"`` run the same scalar
        executor and hash identically (so legacy specs keep their keys),
        while ``"vectorized"`` orders its trace draws differently and gets
        its own key.
        """
        payload = self.to_dict()
        payload.pop("name")
        if payload.get("engine") in (None, "scalar"):
            payload.pop("engine", None)
        return stable_hash({"scenario": payload})

    # ------------------------------------------------------------------
    # Materialisation and execution
    # ------------------------------------------------------------------

    def build_chain(self) -> LinearChain:
        return self.chain.build()

    def build_law(self) -> FailureDistribution:
        return self.failure.build()

    def build_schedules(self) -> Dict[str, Schedule]:
        """Materialise one :class:`Schedule` per requested strategy.

        Only the requested strategies are evaluated (``only=``): a swept spec
        that compares, say, ``checkpoint_all`` vs ``checkpoint_none`` never
        pays the chain DP solve, and specs that do request ``optimal_dp`` get
        the vectorized solver the DP defaults to.
        """
        chain = self.build_chain()
        try:
            available = evaluate_chain_strategies(
                chain,
                self.downtime,
                self.failure.rate_equivalent,
                only=self.strategies,
            )
        except KeyError as exc:
            raise KeyError(f"scenario {self.name!r}: {exc.args[0]}") from exc
        return {
            strategy: available[strategy].to_schedule() for strategy in self.strategies
        }

    def runner(self):
        """Build the :class:`~repro.simulation.campaign.CampaignRunner` for this spec."""
        # Imported here: repro.simulation.campaign imports the runtime
        # backends, so a module-level import would be circular.
        from repro.simulation.campaign import CampaignRunner

        return CampaignRunner(
            self.build_schedules(),
            self.build_law(),
            num_processors=self.num_processors,
            downtime=self.downtime,
            horizon_factor=self.horizon_factor,
        )

    def run(
        self,
        *,
        backend=None,
        cache=None,
        chunk_size: Optional[int] = None,
        progress=None,
    ):
        """Execute the campaign; see :meth:`CampaignRunner.run` for the knobs.

        The result is bit-identical for a given spec whatever the backend or
        worker count, and a warm cache replays it without simulating at all.
        ``progress`` is the optional per-chunk ``callback(done, total)`` of
        :meth:`CampaignRunner.run` -- the scenario service threads its
        job-progress and cancellation hook through here.
        """
        from repro.runtime.backends import backend_scope

        # Always resolve to an explicit backend so the campaign takes the
        # chunked deterministic path even serially: a scenario's samples are
        # defined by its spec (including its engine), never by where it
        # happened to execute.
        with backend_scope(backend) as executor:
            return self.runner().run(
                self.num_runs,
                seed=self.seed,
                backend=executor,
                cache=cache,
                chunk_size=chunk_size,
                # Pin the engine explicitly: a spec with engine=None is a
                # scalar campaign even on a VectorizedBackend placement.
                engine=self.engine if self.engine is not None else "scalar",
                progress=progress,
            )


def expand_scenarios(base: ScenarioSpec, **axes: Sequence) -> List[ScenarioSpec]:
    """Cartesian sweep over scenario fields.

    Each keyword names a :class:`ScenarioSpec` field and supplies the values
    it sweeps over (e.g. ``failure=[...], num_runs=[500, 5000]``).  Every
    combination yields a copy of ``base`` with those fields replaced and a
    ``name`` suffixed with the combination index, in deterministic order.
    """
    if not axes:
        return [base]
    valid = {f.name for f in dataclasses.fields(ScenarioSpec)}
    for key in axes:
        if key not in valid or key == "name":
            raise ValueError(f"cannot sweep over {key!r}; sweepable fields: {sorted(valid - {'name'})}")
    names = list(axes)
    scenarios: List[ScenarioSpec] = []
    for index, combo in enumerate(itertools.product(*(axes[k] for k in names))):
        replacements = dict(zip(names, combo))
        replacements["name"] = f"{base.name}[{index}]"
        scenarios.append(dataclasses.replace(base, **replacements))
    return scenarios


def run_scenarios(
    scenarios: Sequence[ScenarioSpec],
    *,
    backend=None,
    cache=None,
    chunk_size: Optional[int] = None,
) -> Dict[str, "object"]:
    """Run several scenarios on a shared backend; returns ``{name: CampaignResult}``.

    Scenario names must be unique.  The backend is reused across scenarios so
    a process pool pays its start-up cost once for the whole sweep.
    """
    from repro.runtime.backends import backend_scope

    names = [spec.name for spec in scenarios]
    if len(set(names)) != len(names):
        raise ValueError(f"scenario names must be unique, got {names}")
    results = {}
    with backend_scope(backend) as executor:
        for spec in scenarios:
            results[spec.name] = spec.run(
                backend=executor, cache=cache, chunk_size=chunk_size
            )
    return results


def scenarios_table(results: Mapping[str, "object"]) -> ResultTable:
    """Merge per-scenario campaign results into one summary table."""
    table = ResultTable(
        title=f"Scenario sweep ({len(results)} scenarios)",
        columns=["scenario", "strategy", "mean_makespan", "std", "num_runs"],
    )
    for name, result in results.items():
        for strategy in result.ranking():
            table.add_row(
                scenario=name,
                strategy=strategy,
                mean_makespan=result.mean(strategy),
                std=result.std(strategy),
                num_runs=result.num_runs,
            )
    return table
