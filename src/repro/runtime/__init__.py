"""Parallel campaign runtime: execution backends, result cache, scenario specs.

The analytic solvers answer in microseconds, but every simulation-heavy part
of the reproduction -- Monte-Carlo estimation (E1), paired campaigns (E6/E8),
and the Weibull/log-normal studies of Section 6 for which no closed form
exists -- consists of thousands of *independent* replications.  This package
turns that independence into throughput and reuse:

* :mod:`repro.runtime.backends` -- where replications execute: in-process
  (:class:`SerialBackend`), on a pool of worker processes
  (:class:`ProcessPoolBackend` on :mod:`concurrent.futures`), or as NumPy
  array programs (:class:`VectorizedBackend`, which composes with the pool
  for a pool of vectorized chunks -- see
  :mod:`repro.simulation.vectorized`);
* :mod:`repro.runtime.chunking` -- how a replication budget is split into
  worker-sized chunks with independent, deterministically spawned RNG streams
  (``numpy.random.SeedSequence``), so results are bit-identical whatever the
  worker count;
* :mod:`repro.runtime.hashing` -- stable content hashing of schedules,
  failure laws and estimator parameters, the addressing scheme of the cache;
* :mod:`repro.runtime.cache` -- a content-addressed, disk-backed result cache
  (JSON metadata + NPZ sample arrays under ``~/.cache/repro``) with versioned
  invalidation;
* :mod:`repro.runtime.scenario` -- :class:`ScenarioSpec`, a declarative
  plain-data description of a simulation campaign (workload, failure law,
  strategies, replication budget) that can be serialised, hashed, fanned out
  over a backend and merged.

The consumers are rewired rather than duplicated:
:meth:`repro.simulation.monte_carlo.MonteCarloEstimator.estimate` and
:meth:`repro.simulation.campaign.CampaignRunner.run` accept ``backend=``,
``cache=`` and ``engine=`` keyword arguments (their serial defaults are
bit-identical to the pre-runtime behaviour), and the CLI exposes the same
switches as ``repro experiment E6 --parallel 8 --engine vectorized --cache``.
"""

from repro.runtime.backends import (
    ExecutionBackend,
    ProcessPoolBackend,
    SerialBackend,
    VectorizedBackend,
    backend_scope,
    resolve_backend,
    resolve_engine,
)
from repro.runtime.cache import ResultCache, default_cache_root
from repro.runtime.chunking import ChunkPlan, plan_chunks, spawn_chunk_seeds
from repro.runtime.hashing import canonicalize, stable_hash

# The scenario layer sits above the simulation and baseline packages, which
# themselves import the low-level runtime modules (backends/chunking/cache).
# Loading it lazily keeps ``import repro.runtime.backends`` from a simulation
# module free of that upward dependency.
_SCENARIO_EXPORTS = (
    "ChainSpec",
    "FailureSpec",
    "ScenarioSpec",
    "expand_scenarios",
    "run_scenarios",
    "scenarios_table",
)


def __getattr__(name):
    if name in _SCENARIO_EXPORTS:
        from repro.runtime import scenario

        return getattr(scenario, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "ExecutionBackend",
    "SerialBackend",
    "ProcessPoolBackend",
    "VectorizedBackend",
    "backend_scope",
    "resolve_backend",
    "resolve_engine",
    "ResultCache",
    "default_cache_root",
    "ChunkPlan",
    "plan_chunks",
    "spawn_chunk_seeds",
    "canonicalize",
    "stable_hash",
    "ChainSpec",
    "FailureSpec",
    "ScenarioSpec",
    "expand_scenarios",
    "run_scenarios",
    "scenarios_table",
]
