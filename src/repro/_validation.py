"""Input-validation helpers shared across the library.

Every public entry point in :mod:`repro` validates its numeric inputs before
doing any work, so that user errors surface as clear :class:`ValueError` /
:class:`TypeError` messages at the API boundary rather than as ``nan`` results
or cryptic numpy warnings deep inside a computation.
"""

from __future__ import annotations

import math
from typing import Iterable, Sequence

__all__ = [
    "check_positive",
    "check_non_negative",
    "check_probability",
    "check_in_range",
    "check_positive_int",
    "check_non_negative_int",
    "check_finite",
    "check_sequence_of_non_negative",
    "check_sequence_of_positive",
]


def _as_float(name: str, value: object) -> float:
    """Coerce ``value`` to ``float`` or raise ``TypeError`` with a clear message."""
    if isinstance(value, bool):
        raise TypeError(f"{name} must be a real number, got bool {value!r}")
    try:
        return float(value)  # type: ignore[arg-type]
    except (TypeError, ValueError) as exc:
        raise TypeError(f"{name} must be a real number, got {value!r}") from exc


def check_finite(name: str, value: object) -> float:
    """Return ``value`` as a finite float, raising otherwise."""
    out = _as_float(name, value)
    if not math.isfinite(out):
        raise ValueError(f"{name} must be finite, got {out!r}")
    return out


def check_positive(name: str, value: object) -> float:
    """Return ``value`` as a strictly positive finite float."""
    out = check_finite(name, value)
    if out <= 0.0:
        raise ValueError(f"{name} must be > 0, got {out!r}")
    return out


def check_non_negative(name: str, value: object) -> float:
    """Return ``value`` as a non-negative finite float."""
    out = check_finite(name, value)
    if out < 0.0:
        raise ValueError(f"{name} must be >= 0, got {out!r}")
    return out


def check_probability(name: str, value: object) -> float:
    """Return ``value`` as a float in ``[0, 1]``."""
    out = check_finite(name, value)
    if not 0.0 <= out <= 1.0:
        raise ValueError(f"{name} must be in [0, 1], got {out!r}")
    return out


def check_in_range(
    name: str,
    value: object,
    lower: float,
    upper: float,
    *,
    inclusive: bool = True,
) -> float:
    """Return ``value`` as a float constrained to ``[lower, upper]`` (or the open interval)."""
    out = check_finite(name, value)
    if inclusive:
        if not lower <= out <= upper:
            raise ValueError(f"{name} must be in [{lower}, {upper}], got {out!r}")
    else:
        if not lower < out < upper:
            raise ValueError(f"{name} must be in ({lower}, {upper}), got {out!r}")
    return out


def check_positive_int(name: str, value: object) -> int:
    """Return ``value`` as a strictly positive int."""
    if isinstance(value, bool) or not isinstance(value, int):
        raise TypeError(f"{name} must be an int, got {value!r}")
    if value <= 0:
        raise ValueError(f"{name} must be > 0, got {value!r}")
    return value


def check_non_negative_int(name: str, value: object) -> int:
    """Return ``value`` as a non-negative int."""
    if isinstance(value, bool) or not isinstance(value, int):
        raise TypeError(f"{name} must be an int, got {value!r}")
    if value < 0:
        raise ValueError(f"{name} must be >= 0, got {value!r}")
    return value


def check_sequence_of_non_negative(name: str, values: Iterable[object]) -> list:
    """Return ``values`` as a list of non-negative finite floats (must be non-empty)."""
    out = [check_non_negative(f"{name}[{i}]", v) for i, v in enumerate(values)]
    if not out:
        raise ValueError(f"{name} must not be empty")
    return out


def check_sequence_of_positive(name: str, values: Iterable[object]) -> list:
    """Return ``values`` as a list of strictly positive finite floats (must be non-empty)."""
    out = [check_positive(f"{name}[{i}]", v) for i, v in enumerate(values)]
    if not out:
        raise ValueError(f"{name} must not be empty")
    return out


def check_same_length(*named_sequences: tuple) -> None:
    """Raise ``ValueError`` unless all the ``(name, sequence)`` pairs have equal length."""
    if not named_sequences:
        return
    lengths = {name: len(seq) for name, seq in named_sequences}
    if len(set(lengths.values())) > 1:
        detail = ", ".join(f"{name}={length}" for name, length in lengths.items())
        raise ValueError(f"sequences must have the same length: {detail}")


def check_permutation(name: str, order: Sequence[int], n: int) -> list:
    """Check that ``order`` is a permutation of ``0..n-1`` and return it as a list."""
    out = list(order)
    if sorted(out) != list(range(n)):
        raise ValueError(f"{name} must be a permutation of 0..{n - 1}, got {out!r}")
    return out
