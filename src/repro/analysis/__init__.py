"""Proof machinery made executable: the NP-hardness reduction, its convexity
analysis, and brute-force optima used as ground truth in tests and experiments."""

from repro.analysis.reduction import (
    ThreePartitionInstance,
    ReducedSchedulingInstance,
    three_partition_to_schedule,
    schedule_to_three_partition,
    solve_three_partition,
    generate_yes_instance,
    generate_no_instance,
)
from repro.analysis.convexity import (
    balanced_group_expectation,
    g_function,
    g_derivative,
    g_second_derivative,
    optimal_continuous_group_count,
    proof_parameters,
)
from repro.analysis.bruteforce import (
    brute_force_chain_checkpoints,
    brute_force_independent_schedule,
)
from repro.analysis.waste import (
    WasteBreakdown,
    simulated_waste_breakdown,
    waste_breakdown,
)
from repro.analysis.sensitivity import (
    PlacementPenalty,
    placement_penalty,
    rate_sensitivity_sweep,
)

__all__ = [
    "ThreePartitionInstance",
    "ReducedSchedulingInstance",
    "three_partition_to_schedule",
    "schedule_to_three_partition",
    "solve_three_partition",
    "generate_yes_instance",
    "generate_no_instance",
    "balanced_group_expectation",
    "g_function",
    "g_derivative",
    "g_second_derivative",
    "optimal_continuous_group_count",
    "proof_parameters",
    "brute_force_chain_checkpoints",
    "brute_force_independent_schedule",
    "WasteBreakdown",
    "waste_breakdown",
    "simulated_waste_breakdown",
    "PlacementPenalty",
    "placement_penalty",
    "rate_sensitivity_sweep",
]
