"""The 3-PARTITION reduction of Proposition 2, made executable.

The proof of Proposition 2 reduces 3-PARTITION to the independent-task
checkpoint-scheduling decision problem:

* given 3-PARTITION integers ``a_1 .. a_{3n}`` summing to ``n T`` with
  ``T/4 < a_i < T/2``, build ``3n`` independent tasks of weights ``w_i =
  a_i``, set ``lambda = 1/(2T)``, ``C = R = (ln 2 - 1/2)/lambda``, ``D = 0``
  and the bound ``K = n e^{lambda C}/lambda (e^{lambda (T + C)} - 1)``;
* the 3-PARTITION instance is a YES instance **iff** the scheduling instance
  admits a schedule of expected makespan at most ``K`` -- and the proof shows
  any such schedule must use exactly ``n`` checkpoints delimiting groups of
  total work exactly ``T``.

This module builds the reduced instance (:func:`three_partition_to_schedule`),
converts a schedule meeting the bound back into a 3-partition
(:func:`schedule_to_three_partition`), solves small 3-PARTITION instances
exactly (:func:`solve_three_partition`), and generates YES / NO instances for
the experiments.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro._validation import check_positive_int
from repro.analysis.convexity import proof_parameters
from repro.core.independent import grouping_expected_time

__all__ = [
    "ThreePartitionInstance",
    "ReducedSchedulingInstance",
    "three_partition_to_schedule",
    "schedule_to_three_partition",
    "solve_three_partition",
    "generate_yes_instance",
    "generate_no_instance",
]


@dataclass(frozen=True)
class ThreePartitionInstance:
    """A 3-PARTITION instance: ``3n`` integers to split into ``n`` triples of sum ``T``.

    Attributes
    ----------
    values:
        The ``3n`` integers ``a_1 .. a_{3n}``.
    target:
        The target sum ``T``; the values must sum to ``n * T``.
    strict:
        When True (default), enforce the canonical constraint
        ``T/4 < a_i < T/2`` which guarantees that every subset of a solution
        has cardinality exactly 3.
    """

    values: Tuple[int, ...]
    target: int
    strict: bool = True

    def __post_init__(self) -> None:
        values = tuple(int(v) for v in self.values)
        if len(values) == 0 or len(values) % 3 != 0:
            raise ValueError(
                f"a 3-PARTITION instance needs 3n values, got {len(values)}"
            )
        if any(v <= 0 for v in values):
            raise ValueError("all values must be positive integers")
        target = int(self.target)
        check_positive_int("target", target)
        n = len(values) // 3
        if sum(values) != n * target:
            raise ValueError(
                f"values must sum to n*T = {n * target}, got {sum(values)}"
            )
        if self.strict:
            for v in values:
                if not (4 * v > target and 2 * v < target):
                    raise ValueError(
                        f"value {v} violates the constraint T/4 < a_i < T/2 (T={target}); "
                        "pass strict=False to allow it"
                    )
        object.__setattr__(self, "values", values)
        object.__setattr__(self, "target", target)

    @property
    def num_subsets(self) -> int:
        """The number ``n`` of subsets a solution must form."""
        return len(self.values) // 3

    def is_solution(self, partition: Sequence[Sequence[int]]) -> bool:
        """Check that ``partition`` (groups of 0-based indices) solves the instance."""
        indices = [i for group in partition for i in group]
        if sorted(indices) != list(range(len(self.values))):
            return False
        if len(partition) != self.num_subsets:
            return False
        return all(
            sum(self.values[i] for i in group) == self.target for group in partition
        )


@dataclass(frozen=True)
class ReducedSchedulingInstance:
    """The independent-task scheduling instance produced by the Prop. 2 reduction.

    Attributes
    ----------
    works:
        Task durations ``w_i = a_i``.
    checkpoint_cost, recovery_cost:
        The common cost ``C = R = (ln 2 - 1/2) / lambda``.
    rate:
        The failure rate ``lambda = 1 / (2T)``.
    downtime:
        Zero, as in the proof.
    bound:
        The decision bound ``K``.
    source:
        The 3-PARTITION instance the reduction started from.
    """

    works: Tuple[float, ...]
    checkpoint_cost: float
    recovery_cost: float
    rate: float
    downtime: float
    bound: float
    source: ThreePartitionInstance

    def grouping_expected_time(self, groups: Sequence[Sequence[int]]) -> float:
        """Expected makespan of a partition of the tasks into checkpointed groups."""
        return grouping_expected_time(
            groups,
            self.works,
            self.checkpoint_cost,
            self.recovery_cost,
            self.downtime,
            self.rate,
            initial_recovery=self.recovery_cost,
        )

    def meets_bound(self, groups: Sequence[Sequence[int]], *, tolerance: float = 1e-9) -> bool:
        """True when the partition's expected makespan is at most ``K`` (within tolerance)."""
        return self.grouping_expected_time(groups) <= self.bound * (1.0 + tolerance)


def three_partition_to_schedule(instance: ThreePartitionInstance) -> ReducedSchedulingInstance:
    """Build the scheduling instance ``I2`` of the Prop. 2 proof from a 3-PARTITION instance ``I1``.

    The construction is linear in the size of the input, as required for a
    polynomial (indeed strong) reduction.
    """
    params = proof_parameters(float(instance.target), instance.num_subsets)
    return ReducedSchedulingInstance(
        works=tuple(float(v) for v in instance.values),
        checkpoint_cost=params.checkpoint_cost,
        recovery_cost=params.checkpoint_cost,
        rate=params.rate,
        downtime=params.downtime,
        bound=params.bound,
        source=instance,
    )


def schedule_to_three_partition(
    reduced: ReducedSchedulingInstance,
    groups: Sequence[Sequence[int]],
    *,
    tolerance: float = 1e-9,
) -> Optional[List[List[int]]]:
    """Convert a schedule meeting the bound ``K`` into a 3-partition, if possible.

    Implements the "suppose now that I2 has a solution" direction of the
    proof: if the partition's expected makespan is at most ``K``, the
    convexity argument forces exactly ``n`` groups of total work exactly
    ``T``, which is a valid 3-partition.  Returns the groups (as lists of
    indices) when they form a 3-partition, ``None`` otherwise.
    """
    if not reduced.meets_bound(groups, tolerance=tolerance):
        return None
    partition = [sorted(group) for group in groups]
    if reduced.source.is_solution(partition):
        return partition
    # The bound was met but the groups do not form an exact 3-partition; this
    # can only happen through numerical round-off, so check group sums with a
    # small tolerance before giving up.
    target = float(reduced.source.target)
    if len(partition) != reduced.source.num_subsets:
        return None
    for group in partition:
        if abs(sum(reduced.works[i] for i in group) - target) > 1e-6 * target:
            return None
    return partition


def solve_three_partition(instance: ThreePartitionInstance) -> Optional[List[List[int]]]:
    """Exact solver for small 3-PARTITION instances (backtracking over triples).

    3-PARTITION is strongly NP-complete, so this is exponential in general; it
    is intended for the small instances used in tests and experiment E4
    (up to ``n`` around 6-8, i.e. 18-24 values).
    """
    values = instance.values
    n = instance.num_subsets
    target = instance.target
    indices = sorted(range(len(values)), key=lambda i: values[i], reverse=True)
    used = [False] * len(values)
    solution: List[List[int]] = []

    def backtrack(groups_formed: int) -> bool:
        if groups_formed == n:
            return True
        # Find the first unused index (largest remaining value) to anchor the
        # next triple; this avoids exploring permutations of the same triple.
        first = next(i for i in indices if not used[i])
        used[first] = True
        remaining = [i for i in indices if not used[i]]
        for a, b in itertools.combinations(remaining, 2):
            if values[first] + values[a] + values[b] == target:
                used[a] = used[b] = True
                solution.append(sorted([first, a, b]))
                if backtrack(groups_formed + 1):
                    return True
                solution.pop()
                used[a] = used[b] = False
        used[first] = False
        return False

    if backtrack(0):
        return [list(group) for group in solution]
    return None


def generate_yes_instance(
    num_subsets: int,
    *,
    target: Optional[int] = None,
    rng: Optional[np.random.Generator] = None,
    seed: Optional[int] = None,
) -> ThreePartitionInstance:
    """Generate a YES 3-PARTITION instance by construction.

    Each of the ``num_subsets`` triples is built to sum exactly to the target
    while respecting ``T/4 < a_i < T/2``, so a solution exists by
    construction.  The values are shuffled before being returned so solvers
    cannot exploit their order.
    """
    check_positive_int("num_subsets", num_subsets)
    generator = rng if rng is not None else np.random.default_rng(seed)
    # A comfortably large even target leaves room to pick triples in (T/4, T/2).
    t = int(target) if target is not None else 120
    if t < 12 or t % 3 != 0:
        raise ValueError("target must be a multiple of 3 and at least 12")
    values: List[int] = []
    third = t // 3
    lo = t // 4 + 1
    hi = (t - 1) // 2
    for _ in range(num_subsets):
        # Pick a, then b, then force c = T - a - b, retrying until all three
        # fall in the open interval (T/4, T/2).
        while True:
            a = int(generator.integers(lo, min(hi, third) + 1))
            b = int(generator.integers(lo, hi + 1))
            c = t - a - b
            if lo <= c <= hi:
                values.extend([a, b, c])
                break
    generator.shuffle(values)  # type: ignore[arg-type]
    return ThreePartitionInstance(values=tuple(int(v) for v in values), target=t)


def generate_no_instance(
    num_subsets: int,
    *,
    rng: Optional[np.random.Generator] = None,
    seed: Optional[int] = None,
    max_attempts: int = 5_000,
) -> ThreePartitionInstance:
    """Generate a NO 3-PARTITION instance (verified by the exact solver).

    Random instances with the right total sum are drawn until one with no
    solution is found; the exact solver certifies the absence of a solution,
    so this is only practical for small ``num_subsets`` (tests use 2-4).
    """
    check_positive_int("num_subsets", num_subsets)
    generator = rng if rng is not None else np.random.default_rng(seed)
    t = 120
    lo, hi = t // 4 + 1, (t - 1) // 2
    for _ in range(max_attempts):
        values = [int(generator.integers(lo, hi + 1)) for _ in range(3 * num_subsets)]
        total = sum(values)
        deficit = num_subsets * t - total
        # Repair the total sum by nudging values while staying inside (T/4, T/2).
        index = 0
        guard = 0
        while deficit != 0 and guard < 10_000:
            step = 1 if deficit > 0 else -1
            candidate = values[index] + step
            if lo <= candidate <= hi:
                values[index] = candidate
                deficit -= step
            index = (index + 1) % len(values)
            guard += 1
        if deficit != 0:
            continue
        try:
            instance = ThreePartitionInstance(values=tuple(values), target=t)
        except ValueError:
            continue
        if solve_three_partition(instance) is None:
            return instance
    raise RuntimeError(
        f"could not generate a NO instance with n={num_subsets} in {max_attempts} attempts"
    )
