"""Sensitivity of checkpoint decisions to mis-estimated parameters.

The failure rate ``lambda`` and the checkpoint cost ``C`` are never known
exactly in practice: the MTBF is estimated from noisy logs and the checkpoint
duration varies with I/O contention.  Daly's follow-up work (the paper's
reference [23], Jones, Daly, DeBardeleben, "Impact of sub-optimal checkpoint
intervals...") studies how much a wrong period costs; the same question is
natural for the paper's task-level placements, and answering it requires
nothing beyond Proposition 1.

Two tools are provided:

* :func:`placement_penalty` -- given a chain and the *true* parameters, how
  much worse is the placement computed with *assumed* (wrong) parameters than
  the truly optimal placement?  This is the task-level analogue of [23].
* :func:`rate_sensitivity_sweep` -- sweep the assumed-to-true failure-rate
  ratio over a grid and tabulate the penalty, producing the classic
  "asymmetric U" curve (over-estimating the failure rate is much cheaper than
  under-estimating it, because superfluous checkpoints cost little compared to
  lost re-execution).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro._validation import check_non_negative, check_positive
from repro.core.chain_dp import optimal_chain_checkpoints
from repro.core.schedule import Schedule
from repro.experiments.reporting import ResultTable
from repro.workflows.chain import LinearChain

__all__ = ["PlacementPenalty", "placement_penalty", "rate_sensitivity_sweep"]


@dataclass(frozen=True)
class PlacementPenalty:
    """Cost of planning with wrong parameters.

    Attributes
    ----------
    expected_with_assumed_plan:
        Expected makespan (under the *true* parameters) of the placement that
        was computed with the assumed parameters.
    expected_optimal:
        Expected makespan of the truly optimal placement (computed and
        evaluated under the true parameters).
    penalty:
        Relative excess, ``expected_with_assumed_plan / expected_optimal - 1``
        (always >= 0).
    assumed_checkpoints, optimal_checkpoints:
        Number of checkpoints in the two placements.
    """

    expected_with_assumed_plan: float
    expected_optimal: float
    penalty: float
    assumed_checkpoints: int
    optimal_checkpoints: int


def placement_penalty(
    chain: LinearChain,
    true_rate: float,
    assumed_rate: float,
    downtime: float,
    *,
    true_downtime: Optional[float] = None,
    final_checkpoint: bool = True,
) -> PlacementPenalty:
    """Penalty of planning a chain with an assumed failure rate.

    The placement is computed by Algorithm 1 using ``assumed_rate`` (and
    ``downtime``), then evaluated exactly under ``true_rate`` (and
    ``true_downtime``, defaulting to ``downtime``); the result is compared to
    the placement that Algorithm 1 would produce with the true parameters.
    """
    check_positive("true_rate", true_rate)
    check_positive("assumed_rate", assumed_rate)
    check_non_negative("downtime", downtime)
    evaluation_downtime = downtime if true_downtime is None else check_non_negative(
        "true_downtime", true_downtime
    )

    assumed = optimal_chain_checkpoints(
        chain, downtime, assumed_rate, final_checkpoint=final_checkpoint
    )
    optimal = optimal_chain_checkpoints(
        chain, evaluation_downtime, true_rate, final_checkpoint=final_checkpoint
    )
    assumed_under_truth = Schedule.for_chain(chain, assumed.checkpoint_after).expected_makespan(
        evaluation_downtime, true_rate
    )
    penalty = assumed_under_truth / optimal.expected_makespan - 1.0
    return PlacementPenalty(
        expected_with_assumed_plan=assumed_under_truth,
        expected_optimal=optimal.expected_makespan,
        penalty=max(penalty, 0.0),
        assumed_checkpoints=assumed.num_checkpoints,
        optimal_checkpoints=optimal.num_checkpoints,
    )


def rate_sensitivity_sweep(
    chain: LinearChain,
    true_rate: float,
    downtime: float,
    *,
    ratios: Sequence[float] = (0.1, 0.2, 0.5, 1.0, 2.0, 5.0, 10.0),
    final_checkpoint: bool = True,
) -> ResultTable:
    """Tabulate the penalty of assuming ``ratio * true_rate`` instead of ``true_rate``.

    Returns a :class:`ResultTable` with one row per ratio; the ``penalty_pct``
    column is 0 at ratio 1 and grows on both sides, typically much faster on
    the under-estimation side (ratio < 1).
    """
    check_positive("true_rate", true_rate)
    table = ResultTable(
        title="Sensitivity of the chain placement to a mis-estimated failure rate",
        columns=["assumed_over_true", "assumed_rate", "penalty_pct",
                 "assumed_checkpoints", "optimal_checkpoints"],
    )
    for ratio in ratios:
        check_positive("ratio", ratio)
        result = placement_penalty(
            chain, true_rate, ratio * true_rate, downtime, final_checkpoint=final_checkpoint
        )
        table.add_row(
            assumed_over_true=ratio,
            assumed_rate=ratio * true_rate,
            penalty_pct=100.0 * result.penalty,
            assumed_checkpoints=result.assumed_checkpoints,
            optimal_checkpoints=result.optimal_checkpoints,
        )
    return table
