"""Waste decomposition of a checkpointed execution.

Resilience studies usually report not just the expected makespan but *where
the time goes*: productive work, checkpoint overhead paid even in a
failure-free run, and failure-induced waste (re-executed work, downtimes,
recoveries).  The Proposition 1 machinery makes this decomposition exact for
Exponential failures, because the expectation of each segment splits into

* the failure-free part ``W + C``;
* the failure-induced part ``E[T] - (W + C)``, which by Equation 3 equals
  ``(e^{lambda (W+C)} - 1) (E[T_lost] + E[T_rec])``.

:class:`WasteBreakdown` carries the per-category expectations for a whole
schedule and the derived efficiency metrics; :func:`waste_breakdown` computes
it for any :class:`~repro.core.schedule.Schedule`, and
:func:`simulated_waste_breakdown` produces the same decomposition from
simulation results so the two can be cross-checked (they agree in
expectation).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from repro._validation import check_non_negative, check_positive
from repro.core.expected_time import expected_completion_time
from repro.core.schedule import Schedule
from repro.simulation.executor import SimulationResult

__all__ = ["WasteBreakdown", "waste_breakdown", "simulated_waste_breakdown"]


@dataclass(frozen=True)
class WasteBreakdown:
    """Expected time per category for a checkpointed execution.

    Attributes
    ----------
    useful_work:
        Expected time spent on task work that is eventually committed (this is
        simply the total work of the schedule).
    checkpoint_overhead:
        Expected time spent writing the checkpoints that the schedule takes
        (paid exactly once per checkpoint, failures or not).
    failure_waste:
        Expected time lost to failures: re-executed work and checkpoints,
        downtimes, and recoveries.
    expected_makespan:
        Sum of the three categories (equals the Proposition 1 expectation of
        the schedule).
    """

    useful_work: float
    checkpoint_overhead: float
    failure_waste: float
    expected_makespan: float

    def __post_init__(self) -> None:
        for name in ("useful_work", "checkpoint_overhead", "failure_waste", "expected_makespan"):
            value = getattr(self, name)
            if value < -1e-9 or not math.isfinite(value):
                raise ValueError(f"{name} must be finite and >= 0, got {value!r}")

    @property
    def efficiency(self) -> float:
        """Fraction of the expected makespan spent on useful work."""
        if self.expected_makespan == 0.0:
            return 1.0
        return self.useful_work / self.expected_makespan

    @property
    def overhead_fraction(self) -> float:
        """Fraction of the expected makespan spent writing checkpoints."""
        if self.expected_makespan == 0.0:
            return 0.0
        return self.checkpoint_overhead / self.expected_makespan

    @property
    def waste_fraction(self) -> float:
        """Fraction of the expected makespan lost to failures."""
        if self.expected_makespan == 0.0:
            return 0.0
        return self.failure_waste / self.expected_makespan

    def describe(self) -> str:
        """One-line human-readable summary."""
        return (
            f"E[makespan]={self.expected_makespan:.4g} "
            f"(work {100 * self.efficiency:.1f}%, "
            f"checkpoints {100 * self.overhead_fraction:.1f}%, "
            f"failure waste {100 * self.waste_fraction:.1f}%)"
        )


def waste_breakdown(schedule: Schedule, downtime: float, rate: float) -> WasteBreakdown:
    """Exact expected waste decomposition of a schedule under Exponential failures."""
    check_non_negative("downtime", downtime)
    check_positive("rate", rate)
    useful = 0.0
    overhead = 0.0
    waste = 0.0
    for segment in schedule.segments():
        useful += segment.work
        overhead += segment.checkpoint_cost
        total = expected_completion_time(
            segment.work, segment.checkpoint_cost, downtime, segment.recovery_cost, rate
        )
        waste += total - (segment.work + segment.checkpoint_cost)
    return WasteBreakdown(
        useful_work=useful,
        checkpoint_overhead=overhead,
        failure_waste=waste,
        expected_makespan=useful + overhead + waste,
    )


def simulated_waste_breakdown(
    schedule: Schedule, results: Sequence[SimulationResult]
) -> WasteBreakdown:
    """Average waste decomposition measured from simulated runs.

    The simulator's ``useful_time`` bundles committed work and committed
    checkpoints; the schedule's own failure-free decomposition separates the
    two, so the checkpoint overhead is taken from the schedule (it is
    deterministic) and only the failure waste is averaged over the runs.
    """
    results = list(results)
    if not results:
        raise ValueError("simulated_waste_breakdown needs at least one simulation result")
    useful = sum(segment.work for segment in schedule.segments())
    overhead = sum(segment.checkpoint_cost for segment in schedule.segments())
    mean_waste = sum(r.wasted_time for r in results) / len(results)
    mean_makespan = sum(r.makespan for r in results) / len(results)
    return WasteBreakdown(
        useful_work=useful,
        checkpoint_overhead=overhead,
        failure_waste=mean_waste,
        expected_makespan=mean_makespan,
    )
