"""The convexity analysis underlying the NP-completeness proof (Proposition 2).

The proof of Proposition 2 lower-bounds the expected makespan of any solution
with ``m`` checkpoints by the value obtained when the ``m`` groups are
perfectly balanced, and then studies the function::

    g(m) = m * (e^{lambda (nT / m + C)} - 1)

showing that it is convex in ``m`` with a unique minimum at ``m = n`` for the
specific parameter choice ``lambda = 1 / (2T)`` and ``C = (ln 2 - 1/2) /
lambda``.  This module exposes ``g``, its first two derivatives, the balanced
lower bound ``E0 = (e^{lambda C} / lambda) * g(m)``, the continuous minimiser
of ``g``, and the proof's canonical parameter choice -- so that tests and
experiment E4 can check every claim of the proof numerically.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Tuple

from repro._validation import check_non_negative, check_positive

__all__ = [
    "g_function",
    "g_derivative",
    "g_second_derivative",
    "balanced_group_expectation",
    "optimal_continuous_group_count",
    "proof_parameters",
    "ProofParameters",
]


def g_function(m: float, total_work: float, checkpoint_cost: float, rate: float) -> float:
    """``g(m) = m (e^{lambda (W_total / m + C)} - 1)`` from the proof of Prop. 2."""
    check_positive("m", m)
    check_positive("total_work", total_work)
    check_non_negative("checkpoint_cost", checkpoint_cost)
    check_positive("rate", rate)
    exponent = rate * (total_work / m + checkpoint_cost)
    if exponent > 600.0:
        return math.inf
    return m * math.expm1(exponent)


def g_derivative(m: float, total_work: float, checkpoint_cost: float, rate: float) -> float:
    """First derivative ``g'(m) = (1 - lambda W_total / m) e^{lambda (W_total/m + C)} - 1``."""
    check_positive("m", m)
    check_positive("total_work", total_work)
    check_non_negative("checkpoint_cost", checkpoint_cost)
    check_positive("rate", rate)
    exponent = rate * (total_work / m + checkpoint_cost)
    if exponent > 600.0:
        return -math.inf
    return (1.0 - rate * total_work / m) * math.exp(exponent) - 1.0


def g_second_derivative(
    m: float, total_work: float, checkpoint_cost: float, rate: float
) -> float:
    """Second derivative ``g''(m) = lambda^2 W_total^2 / m^3 * e^{lambda (W_total/m + C)} > 0``."""
    check_positive("m", m)
    check_positive("total_work", total_work)
    check_non_negative("checkpoint_cost", checkpoint_cost)
    check_positive("rate", rate)
    exponent = rate * (total_work / m + checkpoint_cost)
    if exponent > 600.0:
        return math.inf
    return (rate ** 2) * (total_work ** 2) / (m ** 3) * math.exp(exponent)


def balanced_group_expectation(
    m: int,
    total_work: float,
    checkpoint_cost: float,
    rate: float,
) -> float:
    """Lower bound ``E0 = (e^{lambda C} / lambda) * g(m)`` on any ``m``-checkpoint schedule.

    This is the expectation achieved when the ``m`` groups all have total work
    ``W_total / m`` (perfect balance), with ``R = C`` and ``D = 0`` as in the
    proof; by convexity of ``x -> e^{lambda x}`` it lower-bounds the
    expectation of any partition into ``m`` groups.
    """
    if m < 1:
        raise ValueError(f"m must be >= 1, got {m}")
    return math.exp(rate * checkpoint_cost) / rate * g_function(
        float(m), total_work, checkpoint_cost, rate
    )


def optimal_continuous_group_count(
    total_work: float, checkpoint_cost: float, rate: float, *, max_groups: float = 1e9
) -> float:
    """Real-valued minimiser of ``g`` (root of ``g'``), found by bisection.

    ``g`` is convex and ``g'`` is strictly increasing (the proof computes
    ``g'' > 0``), so the root of ``g'`` is unique.  If ``g'`` is still
    negative at ``max_groups`` the function returns ``max_groups`` (the
    minimum lies beyond the search range, i.e. "checkpoint as often as
    possible").
    """
    check_positive("total_work", total_work)
    check_non_negative("checkpoint_cost", checkpoint_cost)
    check_positive("rate", rate)
    lo = 1e-9
    hi = float(max_groups)
    if g_derivative(hi, total_work, checkpoint_cost, rate) < 0.0:
        return hi
    # g'(m) -> -inf as m -> 0+, so a sign change exists in (lo, hi].
    for _ in range(200):
        mid = 0.5 * (lo + hi)
        if g_derivative(mid, total_work, checkpoint_cost, rate) < 0.0:
            lo = mid
        else:
            hi = mid
        if hi - lo <= 1e-12 * max(1.0, hi):
            break
    return 0.5 * (lo + hi)


@dataclass(frozen=True)
class ProofParameters:
    """The parameter choice used in the proof of Proposition 2.

    Given the 3-PARTITION target sum ``T`` and the number of subsets ``n``:
    ``lambda = 1 / (2T)``, ``C = R = (ln 2 - 1/2) / lambda``, ``D = 0`` and the
    decision bound ``K = n e^{lambda C} / lambda * (e^{lambda (T + C)} - 1)``.
    With this choice ``e^{lambda (T + C)} = 2`` and ``g'(n) = 0``, so the
    minimum of the lower bound is reached exactly at ``m = n`` groups of work
    ``T`` each.
    """

    rate: float
    checkpoint_cost: float
    downtime: float
    bound: float

    def verify_identities(self, target_sum: float, num_subsets: int) -> Tuple[float, float]:
        """Return ``(e^{lambda (T + C)}, g'(n))`` -- should be ``(2, 0)`` up to rounding."""
        value = math.exp(self.rate * (target_sum + self.checkpoint_cost))
        derivative = g_derivative(
            float(num_subsets),
            num_subsets * target_sum,
            self.checkpoint_cost,
            self.rate,
        )
        return value, derivative


def proof_parameters(target_sum: float, num_subsets: int) -> ProofParameters:
    """Build the proof's canonical parameters for a 3-PARTITION instance.

    Parameters
    ----------
    target_sum:
        The 3-PARTITION target ``T`` (each subset must sum to ``T``).
    num_subsets:
        The number ``n`` of subsets (the instance has ``3n`` integers).
    """
    check_positive("target_sum", target_sum)
    if num_subsets < 1:
        raise ValueError(f"num_subsets must be >= 1, got {num_subsets}")
    rate = 1.0 / (2.0 * target_sum)
    checkpoint_cost = (math.log(2.0) - 0.5) / rate
    bound = (
        num_subsets
        * math.exp(rate * checkpoint_cost)
        / rate
        * math.expm1(rate * (target_sum + checkpoint_cost))
    )
    return ProofParameters(
        rate=rate, checkpoint_cost=checkpoint_cost, downtime=0.0, bound=bound
    )
