"""Brute-force optima, used as ground truth for the polynomial algorithms.

Two enumerators are provided:

* :func:`brute_force_chain_checkpoints` -- for a linear chain of ``n`` tasks,
  try all ``2^{n-1}`` (or ``2^n``) checkpoint placements and return the best.
  This is the ground truth against which the ``O(n^2)`` DP of Section 5 is
  validated (experiment E3 and the property-based tests);
* :func:`brute_force_independent_schedule` -- re-exported convenience wrapper
  around the exhaustive set-partition enumeration of
  :mod:`repro.core.independent`, used as the ground truth for the
  independent-task heuristics (experiment E5).
"""

from __future__ import annotations

import itertools
import math
from typing import Optional, Sequence, Tuple

from repro._validation import check_non_negative, check_positive
from repro.core.chain_dp import ChainDPResult
from repro.core.expected_time import expected_completion_time
from repro.core.independent import (
    IndependentScheduleResult,
    exhaustive_independent_schedule,
)
from repro.workflows.chain import LinearChain

__all__ = [
    "brute_force_chain_checkpoints",
    "brute_force_independent_schedule",
]


def _placement_expected_time(
    chain: LinearChain,
    flags: Sequence[bool],
    downtime: float,
    rate: float,
) -> float:
    """Expected makespan of a chain under an explicit checkpoint placement."""
    total = 0.0
    start = 0
    prefix = chain.prefix_work()
    n = chain.n
    for j in range(n):
        if flags[j] or j == n - 1:
            work = prefix[j + 1] - prefix[start]
            ckpt = chain.checkpoint_costs[j] if flags[j] else 0.0
            recovery = chain.recovery_before(start)
            try:
                total += expected_completion_time(work, ckpt, downtime, recovery, rate)
            except OverflowError:
                return math.inf
            start = j + 1
    return total


def brute_force_chain_checkpoints(
    chain: LinearChain,
    downtime: float,
    rate: float,
    *,
    final_checkpoint: bool = True,
    max_tasks: int = 22,
) -> ChainDPResult:
    """Optimal chain checkpoint placement by exhaustive enumeration.

    Enumerates every subset of the positions ``0..n-2`` (the last position is
    forced to carry, or not carry, a checkpoint depending on
    ``final_checkpoint``), evaluates each placement exactly with the
    Proposition 1 segment decomposition, and returns the best.  Exponential
    (``2^{n-1}`` placements): refuse chains longer than ``max_tasks``.
    """
    check_non_negative("downtime", downtime)
    check_positive("rate", rate)
    n = chain.n
    if n > max_tasks:
        raise ValueError(
            f"brute force over a chain of {n} tasks would evaluate 2^{n - 1} placements; "
            f"the limit is max_tasks={max_tasks}. Use optimal_chain_checkpoints() instead."
        )
    best_flags: Optional[Tuple[bool, ...]] = None
    best_value = math.inf
    free_positions = list(range(n - 1))
    for r in range(len(free_positions) + 1):
        for subset in itertools.combinations(free_positions, r):
            flags = [False] * n
            for position in subset:
                flags[position] = True
            flags[n - 1] = final_checkpoint
            value = _placement_expected_time(chain, flags, downtime, rate)
            if value < best_value:
                best_value = value
                best_flags = tuple(flags)
    assert best_flags is not None
    positions = tuple(i for i, flag in enumerate(best_flags) if flag)
    return ChainDPResult(
        expected_makespan=best_value,
        checkpoint_after=positions,
        chain=chain,
        downtime=downtime,
        rate=rate,
    )


def brute_force_independent_schedule(
    works: Sequence[float],
    checkpoint_cost: float,
    recovery_cost: float,
    downtime: float,
    rate: float,
    *,
    initial_recovery: Optional[float] = None,
    max_tasks: int = 12,
) -> IndependentScheduleResult:
    """Exact optimum for independent tasks (exhaustive set-partition enumeration)."""
    return exhaustive_independent_schedule(
        works,
        checkpoint_cost,
        recovery_cost,
        downtime,
        rate,
        initial_recovery=initial_recovery,
        max_tasks=max_tasks,
    )
