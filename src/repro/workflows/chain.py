"""Linear-chain specialisation of the workflow model.

Linear chains ``T1 -> T2 -> ... -> Tn`` are the workflow class for which the
paper gives a polynomial-time optimal algorithm (Section 5).  The
:class:`LinearChain` class is a light, array-oriented view of such a workflow:
it exposes the weights ``w_i``, checkpoint costs ``C_i`` and recovery costs
``R_i`` as aligned lists, together with prefix sums of work, which is the
representation the dynamic program consumes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro._validation import (
    check_non_negative,
    check_sequence_of_non_negative,
    check_sequence_of_positive,
)
from repro.workflows.dag import Workflow
from repro.workflows.task import Task

__all__ = ["LinearChain"]


@dataclass(frozen=True)
class LinearChain:
    """A linear chain of ``n`` tasks with per-task checkpoint/recovery costs.

    Index convention follows the paper: tasks are numbered ``1..n`` in the
    paper and ``0..n-1`` here.  ``recovery_costs[i]`` is the cost ``R_{i+1}``
    of recovering from a checkpoint taken after task ``i``; the paper notes
    that ``R_n`` is never needed (no need to recover from after the last
    task), but we keep the full array for uniformity.  ``initial_recovery``
    is the cost ``R_0`` of restarting the chain from scratch (re-reading the
    input data) after a failure that strikes before the first checkpoint; the
    paper's Algorithm 1 uses ``R_{x-1}`` with ``x = 1`` in the outermost call,
    which is exactly this quantity.

    Parameters
    ----------
    works:
        Task durations ``w_1..w_n`` (all > 0).
    checkpoint_costs:
        Checkpoint durations ``C_1..C_n`` (all >= 0).
    recovery_costs:
        Recovery durations ``R_1..R_n`` (all >= 0).
    initial_recovery:
        Recovery cost ``R_0`` to restart before any checkpoint exists
        (defaults to 0).
    names:
        Optional task names (defaults to ``"T1".."Tn"``).
    """

    works: Sequence[float]
    checkpoint_costs: Sequence[float]
    recovery_costs: Sequence[float]
    initial_recovery: float = 0.0
    names: Optional[Sequence[str]] = None

    def __post_init__(self) -> None:
        works = check_sequence_of_positive("works", self.works)
        ckpts = check_sequence_of_non_negative("checkpoint_costs", self.checkpoint_costs)
        recs = check_sequence_of_non_negative("recovery_costs", self.recovery_costs)
        check_non_negative("initial_recovery", self.initial_recovery)
        if not len(works) == len(ckpts) == len(recs):
            raise ValueError(
                "works, checkpoint_costs and recovery_costs must have the same length, got "
                f"{len(works)}, {len(ckpts)}, {len(recs)}"
            )
        names = list(self.names) if self.names is not None else [
            f"T{i + 1}" for i in range(len(works))
        ]
        if len(names) != len(works):
            raise ValueError(
                f"names must have the same length as works, got {len(names)} vs {len(works)}"
            )
        if len(set(names)) != len(names):
            raise ValueError("task names must be unique")
        object.__setattr__(self, "works", tuple(works))
        object.__setattr__(self, "checkpoint_costs", tuple(ckpts))
        object.__setattr__(self, "recovery_costs", tuple(recs))
        object.__setattr__(self, "initial_recovery", float(self.initial_recovery))
        object.__setattr__(self, "names", tuple(names))

    def __len__(self) -> int:
        return len(self.works)

    @property
    def n(self) -> int:
        """Number of tasks in the chain."""
        return len(self.works)

    def total_work(self) -> float:
        """Sum of all task durations."""
        return sum(self.works)

    def prefix_work(self) -> List[float]:
        """Prefix sums ``P[k] = w_1 + ... + w_k`` with ``P[0] = 0`` (length n+1)."""
        prefix = [0.0]
        for w in self.works:
            prefix.append(prefix[-1] + w)
        return prefix

    def segment_work(self, start: int, end: int) -> float:
        """Total work of tasks ``start..end`` (0-based, inclusive bounds)."""
        if not 0 <= start <= end < self.n:
            raise ValueError(f"invalid segment [{start}, {end}] for a chain of {self.n} tasks")
        return sum(self.works[start : end + 1])

    def recovery_before(self, index: int) -> float:
        """Recovery cost in effect while executing task ``index`` right after a checkpoint.

        This is ``R_{index-1}`` in the paper's notation: the cost of rolling
        back to the checkpoint taken after task ``index - 1``, or the
        ``initial_recovery`` when ``index == 0``.
        """
        if not 0 <= index < self.n:
            raise ValueError(f"index must be in 0..{self.n - 1}, got {index}")
        if index == 0:
            return self.initial_recovery
        return self.recovery_costs[index - 1]

    def tasks(self) -> List[Task]:
        """Materialise the chain as :class:`Task` objects."""
        return [
            Task(
                name=self.names[i],
                work=self.works[i],
                checkpoint_cost=self.checkpoint_costs[i],
                recovery_cost=self.recovery_costs[i],
            )
            for i in range(self.n)
        ]

    def to_workflow(self, *, name: str = "chain") -> Workflow:
        """Convert to a full :class:`Workflow` DAG."""
        return Workflow.from_chain(self.tasks(), name=name)

    @classmethod
    def from_workflow(cls, workflow: Workflow, *, initial_recovery: float = 0.0) -> "LinearChain":
        """Build a :class:`LinearChain` from a workflow that is a linear chain.

        Raises
        ------
        ValueError
            If the workflow's DAG is not a linear chain.
        """
        order = workflow.chain_order()
        tasks = [workflow.task(name) for name in order]
        return cls(
            works=[t.work for t in tasks],
            checkpoint_costs=[t.checkpoint_cost for t in tasks],
            recovery_costs=[t.recovery_cost for t in tasks],
            initial_recovery=initial_recovery,
            names=[t.name for t in tasks],
        )

    @classmethod
    def uniform(
        cls,
        n: int,
        *,
        work: float = 1.0,
        checkpoint_cost: float = 0.1,
        recovery_cost: Optional[float] = None,
        initial_recovery: float = 0.0,
    ) -> "LinearChain":
        """Build a chain of ``n`` identical tasks (handy for tests and sweeps)."""
        if n <= 0:
            raise ValueError(f"n must be > 0, got {n}")
        recovery = checkpoint_cost if recovery_cost is None else recovery_cost
        return cls(
            works=[work] * n,
            checkpoint_costs=[checkpoint_cost] * n,
            recovery_costs=[recovery] * n,
            initial_recovery=initial_recovery,
        )

    def __repr__(self) -> str:
        return (
            f"LinearChain(n={self.n}, total_work={self.total_work():g}, "
            f"R0={self.initial_recovery:g})"
        )
