"""Synthetic workflow generators.

The paper motivates its model with scientific workflows (DataCutter-style
filtering pipelines, heterogeneous-resource mapping workloads, distributed
application workflows -- references [3, 4, 5]) but does not ship concrete
instances.  These generators produce the standard shapes used throughout the
workflow-scheduling literature so that the scheduling algorithms and the
simulator can be exercised on realistic structures:

* linear chains (the shape of Section 5 and of many scientific pipelines);
* independent task sets (the shape of the NP-completeness result, Section 4);
* fork-join graphs;
* in-trees / out-trees (reduction and scatter patterns);
* random layered DAGs (the classical "LU-like" synthetic workload);
* a Montage-like shape (the astronomy mosaicking workflow frequently used as
  a benchmark in the checkpointing/scheduling literature).

All generators take an explicit ``rng``/``seed`` so experiments are
reproducible.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro._validation import (
    check_non_negative,
    check_positive,
    check_positive_int,
)
from repro.workflows.chain import LinearChain
from repro.workflows.dag import Workflow
from repro.workflows.task import Task

__all__ = [
    "make_chain",
    "make_independent",
    "uniform_random_chain",
    "fork_join",
    "in_tree",
    "out_tree",
    "random_layered_dag",
    "montage_like",
]


def _rng(rng: Optional[np.random.Generator], seed: Optional[int]) -> np.random.Generator:
    return rng if rng is not None else np.random.default_rng(seed)


def _draw_works(
    rng: np.random.Generator,
    n: int,
    work_range: Tuple[float, float],
) -> List[float]:
    lo, hi = work_range
    check_positive("work_range[0]", lo)
    check_positive("work_range[1]", hi)
    if hi < lo:
        raise ValueError(f"work_range must satisfy low <= high, got {work_range!r}")
    if lo == hi:
        return [lo] * n
    return list(rng.uniform(lo, hi, size=n))


def make_chain(
    works: Sequence[float],
    *,
    checkpoint_costs: Optional[Sequence[float]] = None,
    recovery_costs: Optional[Sequence[float]] = None,
    checkpoint_cost: float = 0.0,
    recovery_cost: Optional[float] = None,
    initial_recovery: float = 0.0,
    name: str = "chain",
) -> LinearChain:
    """Build a linear chain from explicit task durations.

    Either pass per-task ``checkpoint_costs`` / ``recovery_costs`` arrays, or
    scalar ``checkpoint_cost`` / ``recovery_cost`` applied to every task
    (``recovery_cost`` defaults to ``checkpoint_cost``, the common C = R
    assumption).
    """
    works = list(works)
    n = len(works)
    if n == 0:
        raise ValueError("works must not be empty")
    if checkpoint_costs is None:
        check_non_negative("checkpoint_cost", checkpoint_cost)
        checkpoint_costs = [checkpoint_cost] * n
    if recovery_costs is None:
        rec = checkpoint_cost if recovery_cost is None else recovery_cost
        check_non_negative("recovery_cost", rec)
        recovery_costs = [rec] * n
    return LinearChain(
        works=works,
        checkpoint_costs=checkpoint_costs,
        recovery_costs=recovery_costs,
        initial_recovery=initial_recovery,
        names=[f"{name}.T{i + 1}" for i in range(n)],
    )


def uniform_random_chain(
    n: int,
    *,
    work_range: Tuple[float, float] = (1.0, 10.0),
    checkpoint_range: Tuple[float, float] = (0.1, 1.0),
    recovery_equals_checkpoint: bool = True,
    recovery_range: Optional[Tuple[float, float]] = None,
    initial_recovery: float = 0.0,
    rng: Optional[np.random.Generator] = None,
    seed: Optional[int] = None,
) -> LinearChain:
    """Random linear chain with uniformly drawn works and checkpoint costs."""
    check_positive_int("n", n)
    generator = _rng(rng, seed)
    works = _draw_works(generator, n, work_range)
    c_lo, c_hi = checkpoint_range
    check_non_negative("checkpoint_range[0]", c_lo)
    check_non_negative("checkpoint_range[1]", c_hi)
    if c_hi < c_lo:
        raise ValueError(f"checkpoint_range must satisfy low <= high, got {checkpoint_range!r}")
    ckpts = [c_lo] * n if c_lo == c_hi else list(generator.uniform(c_lo, c_hi, size=n))
    if recovery_equals_checkpoint:
        recs = list(ckpts)
    else:
        r_range = recovery_range if recovery_range is not None else checkpoint_range
        r_lo, r_hi = r_range
        recs = [r_lo] * n if r_lo == r_hi else list(generator.uniform(r_lo, r_hi, size=n))
    return LinearChain(
        works=works,
        checkpoint_costs=ckpts,
        recovery_costs=recs,
        initial_recovery=initial_recovery,
    )


def make_independent(
    works: Sequence[float],
    *,
    checkpoint_cost: float = 1.0,
    recovery_cost: Optional[float] = None,
    name: str = "indep",
) -> Workflow:
    """Independent task set with a common checkpoint cost (the Prop. 2 setting)."""
    works = list(works)
    if not works:
        raise ValueError("works must not be empty")
    check_non_negative("checkpoint_cost", checkpoint_cost)
    rec = checkpoint_cost if recovery_cost is None else recovery_cost
    tasks = [
        Task(
            name=f"{name}.T{i + 1}",
            work=w,
            checkpoint_cost=checkpoint_cost,
            recovery_cost=rec,
        )
        for i, w in enumerate(works)
    ]
    return Workflow.from_independent(tasks, name=name)


def fork_join(
    branches: int,
    *,
    branch_work: float = 1.0,
    source_work: float = 1.0,
    sink_work: float = 1.0,
    checkpoint_cost: float = 0.1,
    recovery_cost: Optional[float] = None,
    rng: Optional[np.random.Generator] = None,
    seed: Optional[int] = None,
    work_jitter: float = 0.0,
    name: str = "forkjoin",
) -> Workflow:
    """Fork-join workflow: one source, ``branches`` parallel tasks, one sink.

    ``work_jitter`` adds a uniform multiplicative perturbation of up to +/-
    ``work_jitter`` (fraction) to each branch's work.
    """
    check_positive_int("branches", branches)
    check_positive("branch_work", branch_work)
    check_positive("source_work", source_work)
    check_positive("sink_work", sink_work)
    check_non_negative("checkpoint_cost", checkpoint_cost)
    check_non_negative("work_jitter", work_jitter)
    rec = checkpoint_cost if recovery_cost is None else recovery_cost
    generator = _rng(rng, seed)

    def jittered(base: float) -> float:
        if work_jitter == 0.0:
            return base
        return base * float(generator.uniform(1.0 - work_jitter, 1.0 + work_jitter))

    tasks = [Task(f"{name}.source", source_work, checkpoint_cost, rec)]
    deps: List[Tuple[str, str]] = []
    for i in range(branches):
        branch_name = f"{name}.branch{i + 1}"
        tasks.append(Task(branch_name, jittered(branch_work), checkpoint_cost, rec))
        deps.append((f"{name}.source", branch_name))
        deps.append((branch_name, f"{name}.sink"))
    tasks.append(Task(f"{name}.sink", sink_work, checkpoint_cost, rec))
    return Workflow(tasks, deps, name=name)


def out_tree(
    depth: int,
    fanout: int = 2,
    *,
    work: float = 1.0,
    checkpoint_cost: float = 0.1,
    recovery_cost: Optional[float] = None,
    name: str = "outtree",
) -> Workflow:
    """Complete out-tree (scatter pattern) of the given depth and fan-out."""
    check_positive_int("depth", depth)
    check_positive_int("fanout", fanout)
    check_positive("work", work)
    rec = checkpoint_cost if recovery_cost is None else recovery_cost
    tasks: List[Task] = []
    deps: List[Tuple[str, str]] = []
    # Nodes are identified by (level, index).
    for level in range(depth):
        for index in range(fanout ** level):
            node = f"{name}.L{level}N{index}"
            tasks.append(Task(node, work, checkpoint_cost, rec))
            if level > 0:
                parent = f"{name}.L{level - 1}N{index // fanout}"
                deps.append((parent, node))
    return Workflow(tasks, deps, name=name)


def in_tree(
    depth: int,
    fanin: int = 2,
    *,
    work: float = 1.0,
    checkpoint_cost: float = 0.1,
    recovery_cost: Optional[float] = None,
    name: str = "intree",
) -> Workflow:
    """Complete in-tree (reduction pattern): leaves feed into a single root."""
    tree = out_tree(
        depth,
        fanin,
        work=work,
        checkpoint_cost=checkpoint_cost,
        recovery_cost=recovery_cost,
        name=name,
    )
    # Reverse all edges to turn the scatter into a reduction.
    tasks = tree.tasks()
    deps = [(v, u) for u, v in tree.dependences()]
    return Workflow(tasks, deps, name=name)


def random_layered_dag(
    layers: int,
    width: int,
    *,
    edge_probability: float = 0.5,
    work_range: Tuple[float, float] = (1.0, 10.0),
    checkpoint_range: Tuple[float, float] = (0.1, 1.0),
    rng: Optional[np.random.Generator] = None,
    seed: Optional[int] = None,
    name: str = "layered",
) -> Workflow:
    """Random layered DAG: ``layers`` levels of ``width`` tasks.

    Each task of layer ``l > 0`` receives an edge from each task of layer
    ``l - 1`` independently with probability ``edge_probability``; tasks that
    would end up without a predecessor get one random predecessor so the DAG
    stays layered and weakly connected within consecutive layers.
    """
    check_positive_int("layers", layers)
    check_positive_int("width", width)
    if not 0.0 <= edge_probability <= 1.0:
        raise ValueError(f"edge_probability must be in [0, 1], got {edge_probability}")
    generator = _rng(rng, seed)
    works = _draw_works(generator, layers * width, work_range)
    c_lo, c_hi = checkpoint_range
    ckpts = (
        [c_lo] * (layers * width)
        if c_lo == c_hi
        else list(generator.uniform(c_lo, c_hi, size=layers * width))
    )
    tasks: List[Task] = []
    deps: List[Tuple[str, str]] = []
    def node(layer_index: int, position: int) -> str:
        return f"{name}.L{layer_index}N{position}"

    idx = 0
    for layer in range(layers):
        for i in range(width):
            tasks.append(Task(node(layer, i), works[idx], ckpts[idx], ckpts[idx]))
            idx += 1
    for layer in range(1, layers):
        for i in range(width):
            parents = [
                j for j in range(width) if generator.uniform() < edge_probability
            ]
            if not parents:
                parents = [int(generator.integers(0, width))]
            for j in parents:
                deps.append((node(layer - 1, j), node(layer, i)))
    return Workflow(tasks, deps, name=name)


def montage_like(
    inputs: int = 6,
    *,
    project_work: float = 2.0,
    diff_work: float = 1.0,
    fit_work: float = 0.5,
    model_work: float = 3.0,
    background_work: float = 1.0,
    add_work: float = 4.0,
    checkpoint_cost: float = 0.2,
    recovery_cost: Optional[float] = None,
    name: str = "montage",
) -> Workflow:
    """A Montage-like astronomy mosaicking workflow.

    The shape mirrors the well-known Montage structure: per-input
    reprojection tasks, pairwise overlap-difference tasks, a fit/concat
    stage, a background model, per-input background-correction tasks, and a
    final co-addition.  It provides a non-trivial, realistic DAG with both
    data-parallel stages and synchronisation points.
    """
    check_positive_int("inputs", inputs)
    if inputs < 2:
        raise ValueError("montage_like needs at least 2 inputs")
    rec = checkpoint_cost if recovery_cost is None else recovery_cost
    tasks: List[Task] = []
    deps: List[Tuple[str, str]] = []

    projects = [f"{name}.mProject{i + 1}" for i in range(inputs)]
    for p in projects:
        tasks.append(Task(p, project_work, checkpoint_cost, rec))

    diffs = []
    for i in range(inputs - 1):
        d = f"{name}.mDiff{i + 1}"
        diffs.append(d)
        tasks.append(Task(d, diff_work, checkpoint_cost, rec))
        deps.append((projects[i], d))
        deps.append((projects[i + 1], d))

    concat = f"{name}.mConcatFit"
    tasks.append(Task(concat, fit_work, checkpoint_cost, rec))
    for d in diffs:
        deps.append((d, concat))

    model = f"{name}.mBgModel"
    tasks.append(Task(model, model_work, checkpoint_cost, rec))
    deps.append((concat, model))

    backgrounds = []
    for i in range(inputs):
        b = f"{name}.mBackground{i + 1}"
        backgrounds.append(b)
        tasks.append(Task(b, background_work, checkpoint_cost, rec))
        deps.append((projects[i], b))
        deps.append((model, b))

    add = f"{name}.mAdd"
    tasks.append(Task(add, add_work, checkpoint_cost, rec))
    for b in backgrounds:
        deps.append((b, add))

    return Workflow(tasks, deps, name=name)
