"""Workflow DAGs built on :mod:`networkx`.

A :class:`Workflow` wraps a ``networkx.DiGraph`` whose nodes are task names
and whose node attribute ``"task"`` holds the corresponding
:class:`~repro.workflows.task.Task`.  It offers the structural queries the
schedulers need: validation (acyclicity, connectivity of names), topological
orders and their enumeration, chain detection, frontier computation (the set
of tasks whose data must be saved by a checkpoint at a given point of a
linearised execution -- Section 6, first extension), and critical-path style
aggregates.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

import networkx as nx

from repro.workflows.task import Task

__all__ = ["Workflow"]


class Workflow:
    """A directed acyclic graph of :class:`Task` objects.

    Parameters
    ----------
    tasks:
        The tasks of the workflow.  Task names must be unique.
    dependences:
        Pairs ``(u, v)`` of task names meaning "``u`` must complete before
        ``v`` starts".
    name:
        Optional human-readable workflow name.
    """

    def __init__(
        self,
        tasks: Iterable[Task],
        dependences: Iterable[Tuple[str, str]] = (),
        *,
        name: str = "workflow",
    ) -> None:
        self.name = name
        self._graph = nx.DiGraph()
        for task in tasks:
            if not isinstance(task, Task):
                raise TypeError(f"expected Task, got {type(task).__name__}")
            if task.name in self._graph:
                raise ValueError(f"duplicate task name {task.name!r}")
            self._graph.add_node(task.name, task=task)
        for u, v in dependences:
            if u not in self._graph:
                raise ValueError(f"dependence references unknown task {u!r}")
            if v not in self._graph:
                raise ValueError(f"dependence references unknown task {v!r}")
            if u == v:
                raise ValueError(f"self-dependence on task {u!r}")
            self._graph.add_edge(u, v)
        if not nx.is_directed_acyclic_graph(self._graph):
            cycle = nx.find_cycle(self._graph)
            raise ValueError(f"dependences contain a cycle: {cycle}")

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------

    @property
    def graph(self) -> nx.DiGraph:
        """The underlying networkx graph (read-only by convention)."""
        return self._graph

    def __len__(self) -> int:
        return self._graph.number_of_nodes()

    def __contains__(self, name: str) -> bool:
        return name in self._graph

    def __iter__(self) -> Iterator[str]:
        return iter(self._graph.nodes)

    def task(self, name: str) -> Task:
        """Return the task with the given name."""
        try:
            return self._graph.nodes[name]["task"]
        except KeyError as exc:
            raise KeyError(f"no task named {name!r} in workflow {self.name!r}") from exc

    def tasks(self) -> List[Task]:
        """All tasks, in insertion order."""
        return [self._graph.nodes[n]["task"] for n in self._graph.nodes]

    def task_names(self) -> List[str]:
        """All task names, in insertion order."""
        return list(self._graph.nodes)

    def dependences(self) -> List[Tuple[str, str]]:
        """All dependence edges ``(before, after)``."""
        return list(self._graph.edges)

    def predecessors(self, name: str) -> List[str]:
        """Direct predecessors of a task."""
        self.task(name)
        return list(self._graph.predecessors(name))

    def successors(self, name: str) -> List[str]:
        """Direct successors of a task."""
        self.task(name)
        return list(self._graph.successors(name))

    def sources(self) -> List[str]:
        """Tasks with no predecessor (entry tasks)."""
        return [n for n in self._graph.nodes if self._graph.in_degree(n) == 0]

    def sinks(self) -> List[str]:
        """Tasks with no successor (exit tasks)."""
        return [n for n in self._graph.nodes if self._graph.out_degree(n) == 0]

    def total_work(self) -> float:
        """Sum of all task weights."""
        return sum(t.work for t in self.tasks())

    # ------------------------------------------------------------------
    # Structure queries
    # ------------------------------------------------------------------

    def is_chain(self) -> bool:
        """True when the DAG is a single linear chain ``T1 -> T2 -> ... -> Tn``."""
        n = len(self)
        if n == 0:
            return False
        if n == 1:
            return True
        if self._graph.number_of_edges() != n - 1:
            return False
        in_degrees = [self._graph.in_degree(v) for v in self._graph.nodes]
        out_degrees = [self._graph.out_degree(v) for v in self._graph.nodes]
        return (
            sorted(in_degrees) == [0] + [1] * (n - 1)
            and sorted(out_degrees) == [0] + [1] * (n - 1)
            and nx.is_weakly_connected(self._graph)
        )

    def is_independent(self) -> bool:
        """True when the DAG has no dependence at all (independent tasks)."""
        return self._graph.number_of_edges() == 0

    def chain_order(self) -> List[str]:
        """Return the unique task order when the workflow is a chain.

        Raises
        ------
        ValueError
            If the workflow is not a linear chain.
        """
        if not self.is_chain():
            raise ValueError(f"workflow {self.name!r} is not a linear chain")
        return list(nx.topological_sort(self._graph))

    def topological_order(self) -> List[str]:
        """One valid topological order of the task names."""
        return list(nx.topological_sort(self._graph))

    def all_topological_orders(self, limit: Optional[int] = None) -> List[List[str]]:
        """Enumerate all topological orders (optionally truncated at ``limit``).

        The number of topological orders can be exponential; always pass a
        limit for workflows larger than a dozen tasks.
        """
        orders: List[List[str]] = []
        for order in nx.all_topological_sorts(self._graph):
            orders.append(list(order))
            if limit is not None and len(orders) >= limit:
                break
        return orders

    def is_valid_order(self, order: Sequence[str]) -> bool:
        """Check that ``order`` is a permutation of the tasks respecting all dependences."""
        names = list(order)
        if sorted(names) != sorted(self.task_names()):
            return False
        position = {name: i for i, name in enumerate(names)}
        return all(position[u] < position[v] for u, v in self._graph.edges)

    def validate_order(self, order: Sequence[str]) -> List[str]:
        """Return ``order`` as a list, raising ``ValueError`` if it is invalid."""
        names = list(order)
        if sorted(names) != sorted(self.task_names()):
            raise ValueError(
                "order must be a permutation of the workflow's tasks; "
                f"got {names!r} for tasks {sorted(self.task_names())!r}"
            )
        position = {name: i for i, name in enumerate(names)}
        for u, v in self._graph.edges:
            if position[u] >= position[v]:
                raise ValueError(
                    f"order violates dependence {u!r} -> {v!r} (positions "
                    f"{position[u]} >= {position[v]})"
                )
        return names

    def frontier_after(self, order: Sequence[str], k: int) -> Set[str]:
        """Tasks whose output must be saved by a checkpoint taken after position ``k``.

        Following the paper's first extension (Section 6): "the cost of a
        checkpoint should account for all the tasks that have been executed
        since the last checkpoint and which have at least a successor task
        which has not been executed yet".  This method returns the tasks among
        ``order[:k+1]`` that have at least one successor outside
        ``order[:k+1]`` -- i.e. the *live* data set at that point -- plus, for
        exit tasks, the task itself (its result is the application output and
        must be saved).  The caller intersects this with "executed since the
        last checkpoint" as appropriate.
        """
        names = self.validate_order(order)
        if not 0 <= k < len(names):
            raise ValueError(f"k must be in 0..{len(names) - 1}, got {k}")
        executed = set(names[: k + 1])
        frontier: Set[str] = set()
        for name in executed:
            succs = set(self._graph.successors(name))
            if not succs or (succs - executed):
                frontier.add(name)
        return frontier

    def critical_path_length(self) -> float:
        """Length (in work units) of the longest dependence path."""
        if len(self) == 0:
            return 0.0
        lengths: Dict[str, float] = {}
        for name in nx.topological_sort(self._graph):
            work = self.task(name).work
            preds = list(self._graph.predecessors(name))
            lengths[name] = work + (max(lengths[p] for p in preds) if preds else 0.0)
        return max(lengths.values())

    # ------------------------------------------------------------------
    # Constructors / transforms
    # ------------------------------------------------------------------

    @classmethod
    def from_chain(cls, tasks: Sequence[Task], *, name: str = "chain") -> "Workflow":
        """Build a workflow whose DAG is the linear chain ``tasks[0] -> tasks[1] -> ...``."""
        tasks = list(tasks)
        deps = [(tasks[i].name, tasks[i + 1].name) for i in range(len(tasks) - 1)]
        return cls(tasks, deps, name=name)

    @classmethod
    def from_independent(cls, tasks: Sequence[Task], *, name: str = "independent") -> "Workflow":
        """Build a workflow with no dependences."""
        return cls(list(tasks), [], name=name)

    def subworkflow(self, names: Iterable[str], *, name: Optional[str] = None) -> "Workflow":
        """Induced sub-workflow on the given task names."""
        selected = list(names)
        tasks = [self.task(n) for n in selected]
        keep = set(selected)
        deps = [(u, v) for u, v in self._graph.edges if u in keep and v in keep]
        return Workflow(tasks, deps, name=name or f"{self.name}-sub")

    def relabeled(self, mapping: Dict[str, str], *, name: Optional[str] = None) -> "Workflow":
        """Return a copy with task names replaced according to ``mapping``."""
        tasks = []
        for task in self.tasks():
            new_name = mapping.get(task.name, task.name)
            tasks.append(
                Task(
                    name=new_name,
                    work=task.work,
                    checkpoint_cost=task.checkpoint_cost,
                    recovery_cost=task.recovery_cost,
                    memory_footprint=task.memory_footprint,
                )
            )
        deps = [
            (mapping.get(u, u), mapping.get(v, v)) for u, v in self._graph.edges
        ]
        return Workflow(tasks, deps, name=name or self.name)

    def __repr__(self) -> str:
        return (
            f"Workflow(name={self.name!r}, tasks={len(self)}, "
            f"edges={self._graph.number_of_edges()})"
        )
