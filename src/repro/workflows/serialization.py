"""Serialisation of workflows and chains to/from JSON, and DOT export.

A library users adopt needs a way to get their own workflows in and their
results out.  This module defines a small, versioned JSON format for
:class:`~repro.workflows.dag.Workflow` and
:class:`~repro.workflows.chain.LinearChain` instances, plus a Graphviz DOT
export for visual inspection of DAGs and schedules.

JSON format (version 1)::

    {
      "format": "repro-workflow",
      "version": 1,
      "name": "my-pipeline",
      "tasks": [
        {"name": "T1", "work": 10.0, "checkpoint_cost": 1.0,
         "recovery_cost": 1.0, "memory_footprint": null},
        ...
      ],
      "dependences": [["T1", "T2"], ...]
    }

Chains use ``"format": "repro-chain"`` with aligned arrays instead of a task
list (matching the :class:`LinearChain` constructor).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.workflows.chain import LinearChain
from repro.workflows.dag import Workflow
from repro.workflows.task import Task

__all__ = [
    "workflow_to_dict",
    "workflow_from_dict",
    "chain_to_dict",
    "chain_from_dict",
    "save_workflow",
    "load_workflow",
    "save_chain",
    "load_chain",
    "workflow_to_dot",
]

_WORKFLOW_FORMAT = "repro-workflow"
_CHAIN_FORMAT = "repro-chain"
_VERSION = 1


def workflow_to_dict(workflow: Workflow) -> Dict:
    """Serialise a workflow to a plain dict (JSON-compatible)."""
    return {
        "format": _WORKFLOW_FORMAT,
        "version": _VERSION,
        "name": workflow.name,
        "tasks": [
            {
                "name": task.name,
                "work": task.work,
                "checkpoint_cost": task.checkpoint_cost,
                "recovery_cost": task.recovery_cost,
                "memory_footprint": task.memory_footprint,
            }
            for task in workflow.tasks()
        ],
        "dependences": [[u, v] for u, v in workflow.dependences()],
    }


def _check_header(data: Dict, expected_format: str) -> None:
    if not isinstance(data, dict):
        raise ValueError(f"expected a JSON object, got {type(data).__name__}")
    fmt = data.get("format")
    if fmt != expected_format:
        raise ValueError(f"expected format {expected_format!r}, got {fmt!r}")
    version = data.get("version")
    if version != _VERSION:
        raise ValueError(f"unsupported {expected_format} version {version!r} (supported: {_VERSION})")


def workflow_from_dict(data: Dict) -> Workflow:
    """Deserialise a workflow from a dict produced by :func:`workflow_to_dict`."""
    _check_header(data, _WORKFLOW_FORMAT)
    try:
        tasks = [
            Task(
                name=entry["name"],
                work=entry["work"],
                checkpoint_cost=entry.get("checkpoint_cost", 0.0),
                recovery_cost=entry.get("recovery_cost", 0.0),
                memory_footprint=entry.get("memory_footprint"),
            )
            for entry in data["tasks"]
        ]
        dependences = [(u, v) for u, v in data.get("dependences", [])]
    except (KeyError, TypeError) as exc:
        raise ValueError(f"malformed workflow document: {exc}") from exc
    return Workflow(tasks, dependences, name=data.get("name", "workflow"))


def chain_to_dict(chain: LinearChain) -> Dict:
    """Serialise a linear chain to a plain dict (JSON-compatible)."""
    return {
        "format": _CHAIN_FORMAT,
        "version": _VERSION,
        "names": list(chain.names),
        "works": list(chain.works),
        "checkpoint_costs": list(chain.checkpoint_costs),
        "recovery_costs": list(chain.recovery_costs),
        "initial_recovery": chain.initial_recovery,
    }


def chain_from_dict(data: Dict) -> LinearChain:
    """Deserialise a linear chain from a dict produced by :func:`chain_to_dict`."""
    _check_header(data, _CHAIN_FORMAT)
    try:
        return LinearChain(
            works=data["works"],
            checkpoint_costs=data["checkpoint_costs"],
            recovery_costs=data["recovery_costs"],
            initial_recovery=data.get("initial_recovery", 0.0),
            names=data.get("names"),
        )
    except (KeyError, TypeError) as exc:
        raise ValueError(f"malformed chain document: {exc}") from exc


def save_workflow(workflow: Workflow, path: Union[str, Path]) -> None:
    """Write a workflow to a JSON file."""
    Path(path).write_text(json.dumps(workflow_to_dict(workflow), indent=2) + "\n")


def load_workflow(path: Union[str, Path]) -> Workflow:
    """Read a workflow from a JSON file."""
    return workflow_from_dict(json.loads(Path(path).read_text()))


def save_chain(chain: LinearChain, path: Union[str, Path]) -> None:
    """Write a linear chain to a JSON file."""
    Path(path).write_text(json.dumps(chain_to_dict(chain), indent=2) + "\n")


def load_chain(path: Union[str, Path]) -> LinearChain:
    """Read a linear chain from a JSON file."""
    return chain_from_dict(json.loads(Path(path).read_text()))


def workflow_to_dot(
    workflow: Workflow,
    *,
    checkpoint_after: Optional[List[str]] = None,
) -> str:
    """Render a workflow as a Graphviz DOT digraph.

    Tasks named in ``checkpoint_after`` (e.g. from a schedule) are drawn with a
    doubled border so checkpoint placements can be inspected visually.
    """
    checkpointed = set(checkpoint_after or [])
    unknown = checkpointed - set(workflow.task_names())
    if unknown:
        raise ValueError(f"checkpoint_after references unknown tasks: {sorted(unknown)}")
    lines = [f'digraph "{workflow.name}" {{', "  rankdir=LR;"]
    for task in workflow.tasks():
        shape = "doubleoctagon" if task.name in checkpointed else "box"
        label = f"{task.name}\\nw={task.work:g} C={task.checkpoint_cost:g}"
        lines.append(f'  "{task.name}" [shape={shape}, label="{label}"];')
    for u, v in workflow.dependences():
        lines.append(f'  "{u}" -> "{v}";')
    lines.append("}")
    return "\n".join(lines) + "\n"
