"""The task abstraction.

A task is the unit of computation and the unit of checkpointing: the scheduler
may only take a checkpoint *after a task has completed* (this is what
distinguishes the paper's problem from the divisible-load literature of Young
and Daly, where the job can be cut anywhere).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

from repro._validation import check_non_negative, check_positive

__all__ = ["Task"]


@dataclass(frozen=True)
class Task:
    """A non-divisible computational task.

    Parameters
    ----------
    name:
        Unique identifier of the task within its workflow.
    work:
        Computational weight ``w_i > 0`` -- the failure-free execution time of
        the task on the full platform (full-parallelism model of Section 2).
    checkpoint_cost:
        Time ``C_i >= 0`` to take a checkpoint right after this task.
    recovery_cost:
        Time ``R_i >= 0`` to recover (roll back) to the state checkpointed
        after this task.  Following the paper, recovery and checkpoint costs
        may differ and may be task-dependent.
    memory_footprint:
        Optional size (bytes) of the data that a checkpoint after this task
        must save.  Used by the frontier-dependent checkpoint-cost model
        (Section 6, first extension) and by the ``C(p)`` scaling models; not
        used by the core algorithms, which consume ``checkpoint_cost``
        directly.
    """

    name: str
    work: float
    checkpoint_cost: float = 0.0
    recovery_cost: float = 0.0
    memory_footprint: Optional[float] = None

    def __post_init__(self) -> None:
        if not isinstance(self.name, str) or not self.name:
            raise ValueError(f"task name must be a non-empty string, got {self.name!r}")
        check_positive("work", self.work)
        check_non_negative("checkpoint_cost", self.checkpoint_cost)
        check_non_negative("recovery_cost", self.recovery_cost)
        if self.memory_footprint is not None:
            check_non_negative("memory_footprint", self.memory_footprint)
        object.__setattr__(self, "work", float(self.work))
        object.__setattr__(self, "checkpoint_cost", float(self.checkpoint_cost))
        object.__setattr__(self, "recovery_cost", float(self.recovery_cost))

    def with_costs(
        self,
        *,
        checkpoint_cost: Optional[float] = None,
        recovery_cost: Optional[float] = None,
        work: Optional[float] = None,
    ) -> "Task":
        """Return a copy of the task with some costs replaced."""
        return replace(
            self,
            checkpoint_cost=self.checkpoint_cost if checkpoint_cost is None else checkpoint_cost,
            recovery_cost=self.recovery_cost if recovery_cost is None else recovery_cost,
            work=self.work if work is None else work,
        )

    def scaled(self, factor: float) -> "Task":
        """Return a copy of the task with ``work`` multiplied by ``factor``."""
        check_positive("factor", factor)
        return replace(self, work=self.work * factor)

    def __str__(self) -> str:
        return (
            f"Task({self.name}, w={self.work:g}, C={self.checkpoint_cost:g}, "
            f"R={self.recovery_cost:g})"
        )
