"""Workflow (task-graph) model and synthetic workflow generators.

The application in the paper is a Directed Acyclic Graph ``G = (V, E)`` whose
nodes are tasks ``T_1 .. T_n`` weighted by computational weights ``w_i``, with
per-task checkpoint costs ``C_i`` and recovery costs ``R_i`` (Section 2).
"""

from repro.workflows.task import Task
from repro.workflows.dag import Workflow
from repro.workflows.chain import LinearChain
from repro.workflows.generators import (
    fork_join,
    in_tree,
    make_chain,
    make_independent,
    montage_like,
    out_tree,
    random_layered_dag,
    uniform_random_chain,
)
from repro.workflows.serialization import (
    load_chain,
    load_workflow,
    save_chain,
    save_workflow,
    workflow_to_dot,
)

__all__ = [
    "Task",
    "Workflow",
    "LinearChain",
    "make_chain",
    "make_independent",
    "uniform_random_chain",
    "fork_join",
    "in_tree",
    "out_tree",
    "random_layered_dag",
    "montage_like",
    "save_workflow",
    "load_workflow",
    "save_chain",
    "load_chain",
    "workflow_to_dot",
]
