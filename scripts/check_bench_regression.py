#!/usr/bin/env python3
"""Compare the latest bench perf records against their history.

Reads the JSONL perf history that ``benchmarks/harness.py --history PATH``
appends to (one record per benchmark run: ``bench``, ``mode``, ``metric``,
``value``, ``git_sha``, ``ts``), groups records by ``(bench, mode, metric)``,
and flags any series whose *latest* value exceeds ``threshold`` times the
best (minimum) earlier value.

Comparing against the historical best rather than the immediately preceding
run keeps the check monotone: a slow CI runner cannot ratchet the baseline
upward, and a real regression stays flagged until it is fixed.  Series with
fewer than ``--min-history`` records are skipped -- a single timing on shared
CI hardware is noise, not a baseline.

By default the check is *advisory* (always exits 0, prints findings); CI runs
it that way because smoke-mode timings on shared runners jitter well beyond
any honest threshold.  ``--strict`` turns findings into a non-zero exit for
local use on quiet machines.

Usage::

    python scripts/check_bench_regression.py bench-history.jsonl
    python scripts/check_bench_regression.py --threshold 1.5 --strict history.jsonl
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, Dict, List, Tuple

Key = Tuple[str, str, str]


def load_history(path: str) -> List[Dict[str, Any]]:
    """Parse the JSONL history, skipping blank or malformed lines."""
    records: List[Dict[str, Any]] = []
    with open(path, "r", encoding="utf-8") as handle:
        for number, line in enumerate(handle, 1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                print(f"{path}:{number}: skipping malformed line", file=sys.stderr)
                continue
            if isinstance(record, dict) and "bench" in record and "value" in record:
                records.append(record)
    return records


def group_series(records: List[Dict[str, Any]]) -> Dict[Key, List[Dict[str, Any]]]:
    """Group records by (bench, mode, metric), preserving append order."""
    series: Dict[Key, List[Dict[str, Any]]] = {}
    for record in records:
        key = (
            str(record.get("bench")),
            str(record.get("mode", "full")),
            str(record.get("metric", "seconds")),
        )
        series.setdefault(key, []).append(record)
    return series


def find_regressions(
    series: Dict[Key, List[Dict[str, Any]]],
    *,
    threshold: float,
    min_history: int,
) -> List[str]:
    """Human-readable findings: latest value vs the best earlier value."""
    findings: List[str] = []
    for (bench, mode, metric), records in sorted(series.items()):
        if len(records) < min_history:
            continue
        try:
            values = [float(record["value"]) for record in records]
        except (TypeError, ValueError):
            continue
        latest = values[-1]
        best_earlier = min(values[:-1])
        if best_earlier <= 0:
            continue
        ratio = latest / best_earlier
        if ratio > threshold:
            sha = str(records[-1].get("git_sha") or "unknown")[:12]
            findings.append(
                f"{bench} [{mode}/{metric}]: latest {latest:.4f} is "
                f"{ratio:.2f}x the best of {len(records) - 1} earlier runs "
                f"({best_earlier:.4f}) at {sha}"
            )
    return findings


def main(argv) -> int:
    parser = argparse.ArgumentParser(
        description="flag benches whose latest timing regressed vs history"
    )
    parser.add_argument("history", help="JSONL perf history file")
    parser.add_argument(
        "--threshold", type=float, default=1.5, metavar="R",
        help="flag when latest > R x the best earlier value (default %(default)s)",
    )
    parser.add_argument(
        "--min-history", type=int, default=3, metavar="N",
        help="skip series with fewer than N records (default %(default)s)",
    )
    parser.add_argument(
        "--strict", action="store_true",
        help="exit non-zero on findings (default: advisory, always exit 0)",
    )
    args = parser.parse_args(argv)

    try:
        records = load_history(args.history)
    except OSError as exc:
        print(f"cannot read {args.history}: {exc}", file=sys.stderr)
        return 2
    series = group_series(records)
    findings = find_regressions(
        series, threshold=args.threshold, min_history=args.min_history
    )
    for finding in findings:
        print(f"REGRESSION: {finding}")
    comparable = sum(1 for s in series.values() if len(s) >= args.min_history)
    print(
        f"checked {len(series)} series ({comparable} with >= {args.min_history} "
        f"records): {len(findings)} regression(s)"
    )
    return 1 if findings and args.strict else 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
