#!/usr/bin/env python3
"""Check relative markdown links (and their anchors) in the given files.

CI runs this over README.md and docs/ so a moved file or renamed heading
breaks the build instead of the reader.  Only repo-relative links are
checked -- external URLs would make the lint job network-flaky, and the
point of this gate is the cross-references we control.

Usage::

    python scripts/check_markdown_links.py README.md docs/*.md
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

#: ``[text](target)`` -- good enough for the markdown this repo writes
#: (no nested brackets in link text, no ``<...>`` targets).
_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
_HEADING = re.compile(r"^#{1,6}\s+(.*)$")
_CODE_FENCE = re.compile(r"^(```|~~~)")


def _slugify(heading: str) -> str:
    """GitHub-style anchor for a heading: lowercase, punctuation dropped."""
    text = re.sub(r"[`*_]", "", heading.strip()).lower()
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def _anchors(path: Path) -> set:
    anchors = set()
    in_fence = False
    for line in path.read_text(encoding="utf-8").splitlines():
        if _CODE_FENCE.match(line):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        match = _HEADING.match(line)
        if match:
            anchors.add(_slugify(match.group(1)))
    return anchors


def _links(path: Path):
    in_fence = False
    for number, line in enumerate(path.read_text(encoding="utf-8").splitlines(), 1):
        if _CODE_FENCE.match(line):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        for match in _LINK.finditer(line):
            yield number, match.group(1)


def check_files(paths) -> list:
    """All broken links in ``paths`` as ``file:line: message`` strings."""
    errors = []
    for path in paths:
        for number, target in _links(path):
            if target.startswith(("http://", "https://", "mailto:")):
                continue
            target_path, _, anchor = target.partition("#")
            resolved = (
                (path.parent / target_path).resolve() if target_path else path.resolve()
            )
            if not resolved.exists():
                errors.append(f"{path}:{number}: broken link target: {target!r}")
                continue
            if anchor and resolved.suffix == ".md":
                if anchor not in _anchors(resolved):
                    errors.append(
                        f"{path}:{number}: no heading for anchor {anchor!r} "
                        f"in {target_path or path.name}"
                    )
    return errors


def main(argv) -> int:
    paths = [Path(arg) for arg in argv]
    if not paths:
        print("usage: check_markdown_links.py FILE.md [FILE.md ...]", file=sys.stderr)
        return 2
    missing = [path for path in paths if not path.is_file()]
    if missing:
        for path in missing:
            print(f"no such file: {path}", file=sys.stderr)
        return 2
    errors = check_files(paths)
    for error in errors:
        print(error, file=sys.stderr)
    print(f"checked {len(paths)} files: {len(errors)} broken links")
    return 1 if errors else 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
