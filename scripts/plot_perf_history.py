#!/usr/bin/env python3
"""Render the bench perf-history JSONL as a per-benchmark trend table.

Thin wrapper over :mod:`repro.perf_history` (stdlib-only) so the table is
available without installing the package::

    python scripts/plot_perf_history.py bench-results/bench-history.jsonl
    python scripts/plot_perf_history.py --bench analytic --mode quick history.jsonl

The same renderer is wired into the CLI as ``repro bench-history``.
"""

from __future__ import annotations

import os
import sys

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.abspath(__file__)), os.pardir, "src")
)

from repro.perf_history import main  # noqa: E402  (path bootstrap above)

if __name__ == "__main__":
    sys.exit(main())
