"""Setuptools shim.

The project metadata lives in ``pyproject.toml``; this file only exists so
that editable installs (``pip install -e .``) work on environments whose
setuptools/pip combination cannot build editable wheels (e.g. offline
machines without the ``wheel`` package).
"""

from setuptools import setup

setup()
