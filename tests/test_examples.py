"""Integration tests: every example script runs end to end and prints output."""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"
EXAMPLE_SCRIPTS = sorted(EXAMPLES_DIR.glob("*.py"))


def test_examples_directory_has_at_least_three_scripts():
    assert len(EXAMPLE_SCRIPTS) >= 3


@pytest.mark.parametrize("script", EXAMPLE_SCRIPTS, ids=lambda p: p.name)
def test_example_runs_and_produces_output(script, capsys, monkeypatch):
    # Examples use only fixed seeds, so they must be deterministic and quick.
    monkeypatch.setattr(sys, "argv", [str(script)])
    runpy.run_path(str(script), run_name="__main__")
    captured = capsys.readouterr()
    assert len(captured.out.strip()) > 0, f"{script.name} printed nothing"
    assert "Traceback" not in captured.err
