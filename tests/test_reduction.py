"""Tests for the executable 3-PARTITION reduction (Proposition 2)."""

import math

import pytest

from repro.analysis.reduction import (
    ThreePartitionInstance,
    generate_no_instance,
    generate_yes_instance,
    schedule_to_three_partition,
    solve_three_partition,
    three_partition_to_schedule,
)
from repro.core.independent import exhaustive_independent_schedule


class TestThreePartitionInstance:
    def test_valid_instance(self):
        instance = ThreePartitionInstance(values=(41, 40, 39, 45, 38, 37), target=120)
        assert instance.num_subsets == 2

    def test_rejects_wrong_count(self):
        with pytest.raises(ValueError, match="3n values"):
            ThreePartitionInstance(values=(1, 2, 3, 4), target=5)

    def test_rejects_wrong_total(self):
        with pytest.raises(ValueError, match="sum"):
            ThreePartitionInstance(values=(41, 40, 39, 45, 38, 38), target=120)

    def test_rejects_out_of_range_value_when_strict(self):
        # 20 <= 120/4, violates T/4 < a_i.
        with pytest.raises(ValueError, match="constraint"):
            ThreePartitionInstance(values=(20, 50, 50, 45, 38, 37), target=120)

    def test_non_strict_allows_out_of_range(self):
        instance = ThreePartitionInstance(
            values=(20, 50, 50, 45, 38, 37), target=120, strict=False
        )
        assert instance.num_subsets == 2

    def test_is_solution(self):
        instance = ThreePartitionInstance(values=(41, 40, 39, 45, 38, 37), target=120)
        assert instance.is_solution([[0, 1, 2], [3, 4, 5]])
        assert not instance.is_solution([[0, 1, 3], [2, 4, 5]])
        assert not instance.is_solution([[0, 1, 2, 3, 4, 5]])


class TestSolver:
    def test_solves_constructed_instance(self):
        instance = ThreePartitionInstance(values=(41, 40, 39, 45, 38, 37), target=120)
        solution = solve_three_partition(instance)
        assert solution is not None
        assert instance.is_solution(solution)

    def test_detects_unsolvable_instance(self):
        # Total is 2*120 but no triple sums to 120.
        values = (31, 31, 31, 49, 49, 49)
        instance = ThreePartitionInstance(values=values, target=120)
        assert solve_three_partition(instance) is None

    def test_generated_yes_instances_are_solvable(self):
        for seed in range(5):
            instance = generate_yes_instance(3, seed=seed)
            solution = solve_three_partition(instance)
            assert solution is not None
            assert instance.is_solution(solution)

    def test_generated_no_instances_are_unsolvable(self):
        instance = generate_no_instance(2, seed=0)
        assert solve_three_partition(instance) is None


class TestReduction:
    def test_reduced_parameters_match_proof(self):
        instance = generate_yes_instance(3, seed=1)
        reduced = three_partition_to_schedule(instance)
        assert reduced.rate == pytest.approx(1.0 / (2.0 * instance.target))
        assert reduced.checkpoint_cost == pytest.approx(
            (math.log(2.0) - 0.5) / reduced.rate
        )
        assert reduced.downtime == 0.0
        assert reduced.works == tuple(float(v) for v in instance.values)

    def test_yes_instance_partition_achieves_bound_exactly(self):
        instance = generate_yes_instance(4, seed=2)
        reduced = three_partition_to_schedule(instance)
        partition = solve_three_partition(instance)
        expected = reduced.grouping_expected_time(partition)
        assert expected == pytest.approx(reduced.bound, rel=1e-12)
        assert reduced.meets_bound(partition)

    def test_unbalanced_partition_exceeds_bound(self):
        instance = generate_yes_instance(3, seed=3)
        reduced = three_partition_to_schedule(instance)
        # Group everything together: a single checkpoint, way above the bound.
        single_group = [list(range(len(instance.values)))]
        assert reduced.grouping_expected_time(single_group) > reduced.bound
        assert not reduced.meets_bound(single_group)

    def test_wrong_group_count_exceeds_bound(self):
        instance = generate_yes_instance(3, seed=4)
        reduced = three_partition_to_schedule(instance)
        # n+1 groups (split one triple): strictly worse than the bound because
        # the minimum of the convex relaxation is uniquely attained at m = n.
        partition = solve_three_partition(instance)
        split = [partition[0][:1], partition[0][1:]] + [list(g) for g in partition[1:]]
        assert reduced.grouping_expected_time(split) > reduced.bound * (1 + 1e-12)

    def test_schedule_to_three_partition_round_trip(self):
        instance = generate_yes_instance(3, seed=5)
        reduced = three_partition_to_schedule(instance)
        partition = solve_three_partition(instance)
        recovered = schedule_to_three_partition(reduced, partition)
        assert recovered is not None
        assert instance.is_solution(recovered)

    def test_schedule_to_three_partition_rejects_bad_schedule(self):
        instance = generate_yes_instance(3, seed=6)
        reduced = three_partition_to_schedule(instance)
        single_group = [list(range(len(instance.values)))]
        assert schedule_to_three_partition(reduced, single_group) is None

    def test_no_instance_optimum_exceeds_bound(self):
        # The heart of Proposition 2: for a NO instance even the *optimal*
        # schedule has expected makespan strictly above K.
        instance = generate_no_instance(2, seed=7)
        reduced = three_partition_to_schedule(instance)
        optimum = exhaustive_independent_schedule(
            list(reduced.works),
            reduced.checkpoint_cost,
            reduced.recovery_cost,
            reduced.downtime,
            reduced.rate,
            initial_recovery=reduced.recovery_cost,
        )
        assert optimum.expected_makespan > reduced.bound * (1 + 1e-12)

    def test_yes_instance_optimum_meets_bound(self):
        instance = generate_yes_instance(2, seed=8)
        reduced = three_partition_to_schedule(instance)
        optimum = exhaustive_independent_schedule(
            list(reduced.works),
            reduced.checkpoint_cost,
            reduced.recovery_cost,
            reduced.downtime,
            reduced.rate,
            initial_recovery=reduced.recovery_cost,
        )
        assert optimum.expected_makespan == pytest.approx(reduced.bound, rel=1e-12)


class TestGenerators:
    def test_yes_instance_respects_constraints(self):
        instance = generate_yes_instance(5, seed=9)
        assert len(instance.values) == 15
        t = instance.target
        assert all(4 * v > t and 2 * v < t for v in instance.values)
        assert sum(instance.values) == 5 * t

    def test_yes_instance_reproducible(self):
        a = generate_yes_instance(3, seed=11)
        b = generate_yes_instance(3, seed=11)
        assert a.values == b.values

    def test_custom_target_validated(self):
        with pytest.raises(ValueError):
            generate_yes_instance(2, target=10)

    def test_no_instance_has_valid_structure(self):
        instance = generate_no_instance(2, seed=12)
        assert len(instance.values) == 6
        assert sum(instance.values) == 2 * instance.target
