"""Tests for the divisible-job periodic checkpointing baselines."""


import pytest

from repro.baselines.periodic import (
    divisible_expected_makespan,
    optimal_periodic_policy,
    periodic_expected_time,
)
from repro.core.expected_time import (
    daly_higher_order_period,
    expected_completion_time,
    young_period,
)


class TestPeriodicExpectedTime:
    def test_single_chunk_matches_prop1(self):
        value = periodic_expected_time(100.0, 1, 2.0, 0.5, 3.0, 0.01)
        assert value == pytest.approx(expected_completion_time(100.0, 2.0, 0.5, 0.0, 0.01))

    def test_two_chunks_sum(self):
        value = periodic_expected_time(100.0, 2, 2.0, 0.5, 3.0, 0.01)
        manual = expected_completion_time(50.0, 2.0, 0.5, 0.0, 0.01) + expected_completion_time(
            50.0, 2.0, 0.5, 3.0, 0.01
        )
        assert value == pytest.approx(manual)

    def test_initial_recovery_parameter(self):
        with_init = periodic_expected_time(
            100.0, 1, 2.0, 0.0, 3.0, 0.01, initial_recovery=3.0
        )
        assert with_init == pytest.approx(expected_completion_time(100.0, 2.0, 0.0, 3.0, 0.01))

    def test_rejects_invalid_inputs(self):
        with pytest.raises(ValueError):
            periodic_expected_time(0.0, 1, 1.0, 0.0, 1.0, 0.01)
        with pytest.raises(ValueError):
            periodic_expected_time(10.0, 0, 1.0, 0.0, 1.0, 0.01)


class TestOptimalPeriodicPolicy:
    def test_beats_all_neighbouring_chunk_counts(self):
        policy = optimal_periodic_policy(1000.0, 5.0, 1.0, 5.0, 0.01)
        for m in range(max(1, policy.num_chunks - 3), policy.num_chunks + 4):
            value = periodic_expected_time(1000.0, m, 5.0, 1.0, 5.0, 0.01)
            assert policy.expected_makespan <= value + 1e-9

    def test_rare_failures_use_single_chunk(self):
        policy = optimal_periodic_policy(100.0, 10.0, 0.0, 10.0, 1e-9)
        assert policy.num_chunks == 1

    def test_frequent_failures_use_many_chunks(self):
        policy = optimal_periodic_policy(1000.0, 0.5, 0.0, 0.5, 0.05)
        assert policy.num_chunks > 10

    def test_period_property(self):
        policy = optimal_periodic_policy(100.0, 1.0, 0.0, 1.0, 0.01)
        assert policy.period == pytest.approx(100.0 / policy.num_chunks)

    def test_optimal_period_close_to_daly_when_checkpoint_small(self):
        # In the regime C << MTBF the Young/Daly first-order period should be
        # close to the true optimal chunk size.
        total_work, checkpoint, rate = 100_000.0, 1.0, 1e-4
        policy = optimal_periodic_policy(total_work, checkpoint, 0.0, checkpoint, rate)
        daly = daly_higher_order_period(checkpoint, rate)
        assert policy.period == pytest.approx(daly, rel=0.15)


class TestDivisibleExpectedMakespan:
    def test_period_equal_to_work_is_single_chunk(self):
        value = divisible_expected_makespan(100.0, 100.0, 2.0, 0.0, 2.0, 0.01)
        assert value == pytest.approx(periodic_expected_time(100.0, 1, 2.0, 0.0, 2.0, 0.01))

    def test_handles_remainder_chunk(self):
        # 100 units with a period of 30: chunks 30, 30, 30, 10.
        value = divisible_expected_makespan(100.0, 30.0, 1.0, 0.0, 1.0, 0.01)
        manual = expected_completion_time(30.0, 1.0, 0.0, 0.0, 0.01)
        manual += 2 * expected_completion_time(30.0, 1.0, 0.0, 1.0, 0.01)
        manual += expected_completion_time(10.0, 1.0, 0.0, 1.0, 0.01)
        assert value == pytest.approx(manual)

    def test_young_period_never_beats_exact_optimum(self):
        for rate in (1e-4, 1e-3, 1e-2):
            optimal = optimal_periodic_policy(1000.0, 5.0, 1.0, 5.0, rate).expected_makespan
            young = divisible_expected_makespan(
                1000.0, young_period(5.0, rate), 5.0, 1.0, 5.0, rate
            )
            assert young >= optimal - 1e-9

    def test_daly_period_near_optimal_in_standard_regime(self):
        rate, checkpoint = 1e-3, 2.0
        optimal = optimal_periodic_policy(10_000.0, checkpoint, 0.5, checkpoint, rate)
        daly = divisible_expected_makespan(
            10_000.0, daly_higher_order_period(checkpoint, rate), checkpoint, 0.5, checkpoint, rate
        )
        assert daly <= optimal.expected_makespan * 1.02

    def test_rejects_invalid_period(self):
        with pytest.raises(ValueError):
            divisible_expected_makespan(100.0, 0.0, 1.0, 0.0, 1.0, 0.01)
