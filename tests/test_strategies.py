"""Tests for the simple chain checkpointing strategies."""

import pytest

from repro.baselines.strategies import (
    checkpoint_all_chain,
    checkpoint_every_k_chain,
    checkpoint_none_chain,
    daly_period_chain,
    evaluate_chain_strategies,
)
from repro.workflows.chain import LinearChain
from repro.workflows.generators import uniform_random_chain


class TestCheckpointAll:
    def test_positions(self, small_chain):
        result = checkpoint_all_chain(small_chain, 0.2, 0.05)
        assert result.checkpoint_after == (0, 1, 2, 3)

    def test_value_matches_schedule(self, small_chain):
        result = checkpoint_all_chain(small_chain, 0.2, 0.05)
        assert result.to_schedule().expected_makespan(0.2, 0.05) == pytest.approx(
            result.expected_makespan
        )


class TestCheckpointNone:
    def test_final_checkpoint_by_default(self, small_chain):
        result = checkpoint_none_chain(small_chain, 0.2, 0.05)
        assert result.checkpoint_after == (3,)

    def test_truly_none(self, small_chain):
        result = checkpoint_none_chain(small_chain, 0.2, 0.05, final_checkpoint=False)
        assert result.checkpoint_after == ()


class TestCheckpointEveryK:
    def test_every_two(self, uniform_chain):
        result = checkpoint_every_k_chain(uniform_chain, 2, 0.1, 0.02)
        assert result.checkpoint_after == (1, 3, 5)

    def test_every_four_adds_final(self, uniform_chain):
        result = checkpoint_every_k_chain(uniform_chain, 4, 0.1, 0.02)
        assert result.checkpoint_after == (3, 5)

    def test_k_one_is_checkpoint_all(self, uniform_chain):
        every_one = checkpoint_every_k_chain(uniform_chain, 1, 0.1, 0.02)
        everything = checkpoint_all_chain(uniform_chain, 0.1, 0.02)
        assert every_one.checkpoint_after == everything.checkpoint_after

    def test_rejects_zero_k(self, uniform_chain):
        with pytest.raises(ValueError):
            checkpoint_every_k_chain(uniform_chain, 0, 0.1, 0.02)


class TestDalyPeriodChain:
    def test_positions_follow_period(self):
        chain = LinearChain.uniform(10, work=10.0, checkpoint_cost=1.0)
        result = daly_period_chain(chain, 0.0, 0.005)
        # Period ~ sqrt(2*1/0.005) ~ 20, so roughly every 2 tasks.
        assert result.num_checkpoints >= 4
        assert result.checkpoint_after[-1] == 9

    def test_free_checkpoints_checkpoint_everywhere(self):
        chain = LinearChain.uniform(5, work=1.0, checkpoint_cost=0.0)
        result = daly_period_chain(chain, 0.0, 0.01)
        assert result.checkpoint_after == (0, 1, 2, 3, 4)

    def test_rare_failures_single_checkpoint(self):
        chain = LinearChain.uniform(5, work=1.0, checkpoint_cost=1.0)
        result = daly_period_chain(chain, 0.0, 1e-9)
        assert result.checkpoint_after == (4,)

    def test_young_variant_runs(self):
        chain = LinearChain.uniform(8, work=5.0, checkpoint_cost=1.0)
        result = daly_period_chain(chain, 0.0, 0.01, use_higher_order=False)
        assert result.num_checkpoints >= 1


class TestEvaluateChainStrategies:
    def test_contains_expected_keys(self, uniform_chain):
        results = evaluate_chain_strategies(uniform_chain, 0.2, 0.02)
        for key in ("optimal_dp", "checkpoint_all", "checkpoint_none", "daly_period",
                    "young_period", "every_2", "every_5"):
            assert key in results

    def test_optimal_dominates_all_strategies(self):
        chain = uniform_random_chain(30, seed=55)
        for rate in (1e-4, 1e-2, 0.1):
            results = evaluate_chain_strategies(chain, 0.3, rate)
            optimal = results["optimal_dp"].expected_makespan
            for name, result in results.items():
                assert result.expected_makespan >= optimal - 1e-9, name

    def test_every_k_skipped_when_longer_than_chain(self):
        chain = LinearChain.uniform(3, work=1.0, checkpoint_cost=0.1)
        results = evaluate_chain_strategies(chain, 0.1, 0.01, every_k=(2, 10))
        assert "every_2" in results
        assert "every_10" not in results

    def test_checkpoint_none_wins_when_failures_negligible(self):
        chain = LinearChain.uniform(10, work=1.0, checkpoint_cost=2.0)
        results = evaluate_chain_strategies(chain, 0.0, 1e-9)
        optimal = results["optimal_dp"]
        none = results["checkpoint_none"]
        assert optimal.expected_makespan == pytest.approx(none.expected_makespan, rel=1e-9)
        assert results["checkpoint_all"].expected_makespan > none.expected_makespan

    def test_checkpoint_all_wins_when_failures_frequent(self):
        chain = LinearChain.uniform(10, work=10.0, checkpoint_cost=0.01)
        results = evaluate_chain_strategies(chain, 0.0, 0.5)
        optimal = results["optimal_dp"]
        everything = results["checkpoint_all"]
        assert optimal.expected_makespan == pytest.approx(
            everything.expected_makespan, rel=1e-9
        )
        assert results["checkpoint_none"].expected_makespan > everything.expected_makespan
