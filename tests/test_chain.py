"""Tests for the LinearChain model."""

import pytest

from repro.workflows.chain import LinearChain
from repro.workflows.dag import Workflow
from repro.workflows.task import Task


class TestLinearChainConstruction:
    def test_basic(self, small_chain):
        assert small_chain.n == 4
        assert len(small_chain) == 4
        assert small_chain.total_work() == pytest.approx(23.0)

    def test_default_names(self):
        chain = LinearChain(works=[1.0, 2.0], checkpoint_costs=[0.1, 0.1], recovery_costs=[0.1, 0.1])
        assert chain.names == ("T1", "T2")

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError, match="same length"):
            LinearChain(works=[1.0, 2.0], checkpoint_costs=[0.1], recovery_costs=[0.1, 0.1])

    def test_mismatched_names_rejected(self):
        with pytest.raises(ValueError):
            LinearChain(
                works=[1.0], checkpoint_costs=[0.1], recovery_costs=[0.1], names=["A", "B"]
            )

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError, match="unique"):
            LinearChain(
                works=[1.0, 2.0],
                checkpoint_costs=[0.1, 0.1],
                recovery_costs=[0.1, 0.1],
                names=["A", "A"],
            )

    def test_zero_work_rejected(self):
        with pytest.raises(ValueError):
            LinearChain(works=[0.0], checkpoint_costs=[0.1], recovery_costs=[0.1])

    def test_negative_checkpoint_rejected(self):
        with pytest.raises(ValueError):
            LinearChain(works=[1.0], checkpoint_costs=[-0.1], recovery_costs=[0.1])

    def test_negative_initial_recovery_rejected(self):
        with pytest.raises(ValueError):
            LinearChain(
                works=[1.0], checkpoint_costs=[0.1], recovery_costs=[0.1], initial_recovery=-1.0
            )

    def test_uniform_constructor(self):
        chain = LinearChain.uniform(5, work=2.0, checkpoint_cost=0.5)
        assert chain.n == 5
        assert all(w == 2.0 for w in chain.works)
        assert all(r == 0.5 for r in chain.recovery_costs)

    def test_uniform_with_distinct_recovery(self):
        chain = LinearChain.uniform(3, checkpoint_cost=0.5, recovery_cost=1.5)
        assert all(r == 1.5 for r in chain.recovery_costs)

    def test_uniform_rejects_zero_tasks(self):
        with pytest.raises(ValueError):
            LinearChain.uniform(0)


class TestLinearChainQueries:
    def test_prefix_work(self, small_chain):
        assert small_chain.prefix_work() == pytest.approx([0.0, 10.0, 14.0, 21.0, 23.0])

    def test_segment_work(self, small_chain):
        assert small_chain.segment_work(1, 2) == pytest.approx(11.0)
        assert small_chain.segment_work(0, 3) == pytest.approx(23.0)

    def test_segment_work_rejects_bad_bounds(self, small_chain):
        with pytest.raises(ValueError):
            small_chain.segment_work(2, 1)
        with pytest.raises(ValueError):
            small_chain.segment_work(0, 10)

    def test_recovery_before_first_task_is_initial(self, small_chain):
        assert small_chain.recovery_before(0) == pytest.approx(0.2)

    def test_recovery_before_later_task(self, small_chain):
        assert small_chain.recovery_before(2) == pytest.approx(small_chain.recovery_costs[1])

    def test_recovery_before_out_of_range(self, small_chain):
        with pytest.raises(ValueError):
            small_chain.recovery_before(4)

    def test_repr(self, small_chain):
        assert "n=4" in repr(small_chain)


class TestLinearChainConversions:
    def test_tasks_materialisation(self, small_chain):
        tasks = small_chain.tasks()
        assert len(tasks) == 4
        assert tasks[2].work == 7.0
        assert tasks[2].checkpoint_cost == 2.0

    def test_to_workflow_round_trip(self, small_chain):
        workflow = small_chain.to_workflow()
        assert workflow.is_chain()
        back = LinearChain.from_workflow(workflow, initial_recovery=small_chain.initial_recovery)
        assert back.works == small_chain.works
        assert back.checkpoint_costs == small_chain.checkpoint_costs
        assert back.recovery_costs == small_chain.recovery_costs
        assert back.initial_recovery == small_chain.initial_recovery

    def test_from_workflow_rejects_non_chain(self, diamond_workflow):
        with pytest.raises(ValueError):
            LinearChain.from_workflow(diamond_workflow)

    def test_from_workflow_preserves_order(self):
        tasks = [Task("a", 1.0, 0.1, 0.1), Task("b", 2.0, 0.2, 0.2), Task("c", 3.0, 0.3, 0.3)]
        wf = Workflow.from_chain(tasks)
        chain = LinearChain.from_workflow(wf)
        assert chain.names == ("a", "b", "c")
        assert chain.works == (1.0, 2.0, 3.0)
