"""Tests for the repo-native lint engine (repro.devtools).

Every rule gets at least one failing and one passing snippet, linted through
:func:`lint_source` against a virtual path that puts it in the rule's scope.
The suppression machinery, JSON report shape, CLI entry points and the
"whole repo lints clean" acceptance check are covered at the end.

The snippets live inside string literals, which is safe on both sides: the
linter only parses *comment tokens* for suppressions, and the rules walk the
snippet's AST, not this file's.
"""

from __future__ import annotations

import io
import json
import textwrap
from pathlib import Path

import pytest

from repro.devtools.engine import (
    LintReport,
    Violation,
    lint_paths,
    lint_source,
    module_for_path,
    run,
)
from repro.devtools.rules import RULES

REPO_ROOT = Path(__file__).resolve().parents[1]

#: Virtual paths that put a snippet inside each rule's scope.
ENGINE_PATH = "src/repro/simulation/snippet.py"
SERVICE_PATH = "src/repro/service/snippet.py"
THREADED_PATH = "src/repro/service/gateway.py"
RUNTIME_PATH = "src/repro/runtime/snippet.py"


def check(source: str, path: str, code: str):
    """Lint a snippet and return the violations carrying ``code``."""
    violations, _ = lint_source(textwrap.dedent(source), path)
    return [v for v in violations if v.code == code]


# ----------------------------------------------------------------------
# Scoping plumbing
# ----------------------------------------------------------------------


class TestModuleForPath:
    def test_src_layout(self):
        assert module_for_path("src/repro/simulation/engine.py") == (
            "repro.simulation.engine"
        )

    def test_absolute_prefix(self):
        assert module_for_path("/root/repo/src/repro/core/chain.py") == (
            "repro.core.chain"
        )

    def test_package_init_maps_to_package(self):
        assert module_for_path("src/repro/obs/__init__.py") == "repro.obs"

    def test_outside_src_falls_back_to_parts(self):
        assert module_for_path("tests/test_cli.py") == "tests.test_cli"

    def test_windows_separators(self):
        assert module_for_path("src\\repro\\failures\\platform.py") == (
            "repro.failures.platform"
        )


# ----------------------------------------------------------------------
# Determinism rules
# ----------------------------------------------------------------------


class TestWallClockRule:
    BAD = """
        import time
        def stamp():
            return time.time()
    """

    def test_flags_time_time_in_engine_code(self):
        (violation,) = check(self.BAD, ENGINE_PATH, "wall-clock")
        assert "time.time()" in violation.message

    def test_flags_datetime_now(self):
        src = """
            from datetime import datetime
            def stamp():
                return datetime.now()
        """
        assert check(src, ENGINE_PATH, "wall-clock")

    def test_perf_counter_is_allowed(self):
        src = """
            import time
            def tick():
                return time.perf_counter()
        """
        assert not check(src, ENGINE_PATH, "wall-clock")

    def test_out_of_scope_module_is_clean(self):
        assert not check(self.BAD, "src/repro/obs/snippet.py", "wall-clock")


class TestUnseededRngRule:
    def test_flags_zero_arg_default_rng(self):
        src = """
            import numpy as np
            def draw():
                return np.random.default_rng().random()
        """
        (violation,) = check(src, ENGINE_PATH, "unseeded-rng")
        assert "seed" in violation.message

    def test_seeded_default_rng_is_allowed(self):
        src = """
            import numpy as np
            def draw(seed):
                return np.random.default_rng(seed).random()
        """
        assert not check(src, ENGINE_PATH, "unseeded-rng")

    def test_flags_legacy_global_state_numpy(self):
        src = """
            import numpy as np
            def draw():
                np.random.seed(0)
                return np.random.rand(3)
        """
        assert len(check(src, SERVICE_PATH, "unseeded-rng")) == 2

    def test_resolves_import_aliases(self):
        src = """
            from numpy.random import default_rng
            def draw():
                return default_rng().random()
        """
        assert check(src, ENGINE_PATH, "unseeded-rng")


class TestStdlibRandomRule:
    BAD = "import random\n"

    def test_flags_import_in_engine_code(self):
        (violation,) = check(self.BAD, ENGINE_PATH, "stdlib-random")
        assert "global state" in violation.message

    def test_flags_from_import(self):
        assert check("from random import choice\n", ENGINE_PATH, "stdlib-random")

    def test_service_code_is_out_of_scope(self):
        assert not check(self.BAD, SERVICE_PATH, "stdlib-random")

    def test_other_modules_named_randomly_are_fine(self):
        assert not check("import secrets\n", ENGINE_PATH, "stdlib-random")


# ----------------------------------------------------------------------
# Concurrency rules
# ----------------------------------------------------------------------


class TestLockAcquireRule:
    def test_flags_bare_acquire(self):
        src = """
            import threading
            guard = threading.Lock()
            def update():
                guard.acquire()
                work()
                guard.release()
        """
        (violation,) = check(src, SERVICE_PATH, "lock-acquire")
        assert "with" in violation.message

    def test_with_block_is_allowed(self):
        src = """
            import threading
            guard = threading.Lock()
            def update():
                with guard:
                    work()
        """
        assert not check(src, SERVICE_PATH, "lock-acquire")

    def test_acquire_followed_by_try_finally_is_allowed(self):
        src = """
            import threading
            guard = threading.Lock()
            def update():
                guard.acquire()
                try:
                    work()
                finally:
                    guard.release()
        """
        assert not check(src, SERVICE_PATH, "lock-acquire")

    def test_name_hints_cover_attributes(self):
        src = """
            class Store:
                def update(self):
                    self._lock.acquire()
                    self.data += 1
                    self._lock.release()
        """
        assert check(src, SERVICE_PATH, "lock-acquire")

    def test_applies_everywhere_even_outside_repro(self):
        src = """
            import threading
            guard = threading.Lock()
            def update():
                guard.acquire()
        """
        assert check(src, "benchmarks/bench_snippet.py", "lock-acquire")


class TestEphemeralLockRule:
    def test_flags_lock_created_per_call(self):
        src = """
            import threading
            def update(store):
                guard = threading.Lock()
                with guard:
                    store.bump()
        """
        (violation,) = check(src, SERVICE_PATH, "ephemeral-lock")
        assert "synchronises nothing" in violation.message

    def test_returned_lock_escapes(self):
        src = """
            import threading
            def make_lock():
                guard = threading.Lock()
                return guard
        """
        assert not check(src, SERVICE_PATH, "ephemeral-lock")

    def test_lock_passed_to_call_escapes(self):
        src = """
            import threading
            def make_condition():
                guard = threading.RLock()
                return threading.Condition(guard)
        """
        assert not check(src, SERVICE_PATH, "ephemeral-lock")

    def test_module_level_lock_is_fine(self):
        src = """
            import threading
            guard = threading.Lock()
            def update():
                with guard:
                    pass
        """
        assert not check(src, SERVICE_PATH, "ephemeral-lock")


class TestModuleStateRule:
    def test_flags_module_level_dict_in_threaded_module(self):
        src = "_CACHE = {}\n"
        (violation,) = check(src, THREADED_PATH, "module-state")
        assert "threaded module" in violation.message

    def test_flags_mutable_factory_calls(self):
        src = """
            import collections
            _PENDING = collections.deque()
        """
        assert check(src, THREADED_PATH, "module-state")

    def test_dunder_all_is_exempt(self):
        assert not check('__all__ = ["a", "b"]\n', THREADED_PATH, "module-state")

    def test_immutable_constants_are_fine(self):
        assert not check("_LIMITS = (1, 2, 3)\n", THREADED_PATH, "module-state")

    def test_non_threaded_module_is_out_of_scope(self):
        assert not check("_CACHE = {}\n", ENGINE_PATH, "module-state")


# ----------------------------------------------------------------------
# Robustness rules
# ----------------------------------------------------------------------


class TestBareExceptRule:
    def test_flags_bare_except(self):
        src = """
            def load():
                try:
                    parse()
                except:
                    pass
        """
        (violation,) = check(src, "benchmarks/bench_snippet.py", "bare-except")
        assert "KeyboardInterrupt" in violation.message

    def test_typed_except_is_fine(self):
        src = """
            def load():
                try:
                    parse()
                except ValueError:
                    pass
        """
        assert not check(src, SERVICE_PATH, "bare-except")


class TestBroadExceptRule:
    SILENT = """
        def load():
            try:
                parse()
            except Exception:
                pass
    """

    def test_flags_silent_broad_except(self):
        (violation,) = check(self.SILENT, RUNTIME_PATH, "broad-except")
        assert "silence" in violation.message

    def test_reraise_is_allowed(self):
        src = """
            def load():
                try:
                    parse()
                except Exception as exc:
                    raise RuntimeError("load failed") from exc
        """
        assert not check(src, RUNTIME_PATH, "broad-except")

    def test_logging_is_allowed(self):
        src = """
            import logging
            logger = logging.getLogger(__name__)
            def load():
                try:
                    parse()
                except Exception:
                    logger.warning("load failed", exc_info=True)
        """
        assert not check(src, RUNTIME_PATH, "broad-except")

    def test_tuple_containing_exception_is_broad(self):
        src = """
            def load():
                try:
                    parse()
                except (ValueError, Exception):
                    pass
        """
        assert check(src, RUNTIME_PATH, "broad-except")

    def test_outside_repro_is_out_of_scope(self):
        assert not check(self.SILENT, "tests/snippet.py", "broad-except")


# ----------------------------------------------------------------------
# Cache-key hygiene
# ----------------------------------------------------------------------


class TestCacheKeyRule:
    def test_flags_builtin_hash(self):
        src = """
            def key_for(spec):
                return hash(spec)
        """
        (violation,) = check(src, RUNTIME_PATH, "cache-key")
        assert "PYTHONHASHSEED" in violation.message

    def test_flags_ad_hoc_hashlib(self):
        src = """
            import hashlib
            def key_for(payload):
                return hashlib.sha256(payload).hexdigest()
        """
        assert check(src, SERVICE_PATH, "cache-key")

    def test_hashing_module_is_exempt(self):
        src = """
            import hashlib
            def stable_hash(payload):
                return hashlib.sha256(payload).hexdigest()
        """
        assert not check(src, "src/repro/runtime/hashing.py", "cache-key")

    def test_method_named_hash_is_fine(self):
        src = """
            def key_for(spec):
                return spec.hash()
        """
        assert not check(src, RUNTIME_PATH, "cache-key")

    def test_out_of_scope_package_is_clean(self):
        src = """
            def key_for(spec):
                return hash(spec)
        """
        assert not check(src, "src/repro/analysis/snippet.py", "cache-key")


CORE_PATH = "src/repro/core/snippet.py"


class TestPerfPythonCallbackRule:
    def test_flags_cost_callback_in_for_loop(self):
        src = """
            def fill(model, names, row):
                out = []
                for j in range(len(names)):
                    out.append(model.cost(names, row, j))
                return out
        """
        (violation,) = check(src, CORE_PATH, "perf-python-callback")
        assert ".cost(" in violation.message

    def test_flags_recovery_callback_in_comprehension(self):
        src = """
            def recoveries(model, names, rows):
                return [model.recovery(names, p) for p in rows]
        """
        assert check(src, CORE_PATH, "perf-python-callback")

    def test_flags_callback_in_while_loop(self):
        src = """
            def drain(model, names):
                j = 0
                while j < len(names):
                    model.cost(names, -1, j)
                    j += 1
        """
        assert check(src, CORE_PATH, "perf-python-callback")

    def test_hoisted_call_is_fine(self):
        src = """
            def fill(model, names, row, n):
                base = model.cost(names, row, 0)
                return [base] * n
        """
        assert not check(src, CORE_PATH, "perf-python-callback")

    def test_other_attribute_calls_are_fine(self):
        src = """
            def fill(rows):
                out = []
                for row in rows:
                    out.append(row.strip())
                return out
        """
        assert not check(src, CORE_PATH, "perf-python-callback")

    def test_out_of_scope_package_is_clean(self):
        src = """
            def fill(model, names, rows):
                return [model.cost(names, -1, j) for j in rows]
        """
        assert not check(src, "src/repro/service/snippet.py", "perf-python-callback")

    def test_suppression_is_honoured(self):
        src = """
            def fill(model, names, rows):
                return [
                    model.cost(names, -1, j)  # repro: noqa[perf-python-callback] -- custom combine fallback
                    for j in rows
                ]
        """
        assert not check(src, CORE_PATH, "perf-python-callback")


# ----------------------------------------------------------------------
# Suppressions
# ----------------------------------------------------------------------


class TestSuppressions:
    def test_suppression_silences_matching_violation(self):
        src = textwrap.dedent("""
            import time
            def stamp():
                return time.time()  # repro: noqa[wall-clock] - test fixture
        """)
        violations, suppressed = lint_source(src, ENGINE_PATH)
        assert violations == []
        assert suppressed == 1

    def test_suppression_for_other_code_does_not_silence(self):
        src = textwrap.dedent("""
            import time
            def stamp():
                return time.time()  # repro: noqa[cache-key]
        """)
        violations, _ = lint_source(src, ENGINE_PATH)
        codes = {v.code for v in violations}
        assert "wall-clock" in codes
        assert "unused-noqa" in codes

    def test_multiple_codes_in_one_marker(self):
        src = textwrap.dedent("""
            import time
            def stamp():
                return time.time()  # repro: noqa[wall-clock, cache-key]
        """)
        violations, suppressed = lint_source(src, ENGINE_PATH)
        assert suppressed == 1
        # The cache-key half matched nothing and is reported unused.
        assert [v.code for v in violations] == ["unused-noqa"]

    def test_unused_suppression_is_reported(self):
        src = "x = 1  # repro: noqa[wall-clock]\n"
        violations, _ = lint_source(src, ENGINE_PATH)
        (violation,) = violations
        assert violation.code == "unused-noqa"
        assert "matches no violation" in violation.message

    def test_unknown_code_in_suppression_is_reported(self):
        src = "x = 1  # repro: noqa[made-up-rule]\n"
        violations, _ = lint_source(src, ENGINE_PATH)
        (violation,) = violations
        assert violation.code == "unused-noqa"
        assert "unknown rule code" in violation.message

    def test_marker_inside_string_literal_is_inert(self):
        src = textwrap.dedent("""
            import time
            MARKER = "time.time()  # repro: noqa[wall-clock]"
            def stamp():
                return time.time()
        """)
        violations, suppressed = lint_source(src, ENGINE_PATH)
        assert suppressed == 0
        assert [v.code for v in violations] == ["wall-clock"]

    def test_unused_noqa_skipped_under_select(self):
        src = "x = 1  # repro: noqa[wall-clock]\n"
        violations, _ = lint_source(src, ENGINE_PATH, select={"cache-key"})
        assert violations == []


# ----------------------------------------------------------------------
# Engine mechanics: syntax errors, reports, discovery
# ----------------------------------------------------------------------


class TestEngine:
    def test_syntax_error_is_a_violation(self):
        violations, _ = lint_source("def broken(:\n", ENGINE_PATH)
        (violation,) = violations
        assert violation.code == "syntax-error"
        assert violation.line == 1

    def test_report_shape(self, tmp_path):
        (tmp_path / "bad.py").write_text(
            "import time\nSTAMP = time.time()\n", encoding="utf-8"
        )
        report = lint_paths([str(tmp_path / "bad.py")])
        assert isinstance(report, LintReport)
        # tmp files live outside src/, so the engine-scoped rule does not
        # apply; the report still counts the file.
        assert report.files_checked == 1
        payload = report.to_dict()
        assert payload["version"] == 1
        assert set(payload) == {
            "version", "files_checked", "suppressed", "counts", "violations",
        }

    def test_violations_sorted_and_serializable(self, tmp_path):
        src_dir = tmp_path / "src" / "repro" / "simulation"
        src_dir.mkdir(parents=True)
        (src_dir / "b.py").write_text("import random\n", encoding="utf-8")
        (src_dir / "a.py").write_text(
            "import time\nSTAMP = time.time()\nimport random\n",
            encoding="utf-8",
        )
        report = lint_paths([str(tmp_path)])
        assert report.exit_code == 1
        paths = [v.path for v in report.violations]
        assert paths == sorted(paths)
        counts = report.counts()
        assert counts["stdlib-random"] == 2
        assert counts["wall-clock"] == 1
        round_trip = json.loads(json.dumps(report.to_dict()))
        assert round_trip["counts"] == counts

    def test_discovery_skips_pycache(self, tmp_path):
        cache = tmp_path / "__pycache__"
        cache.mkdir()
        (cache / "junk.py").write_text("import time\n", encoding="utf-8")
        (tmp_path / "ok.py").write_text("x = 1\n", encoding="utf-8")
        report = lint_paths([str(tmp_path)])
        assert report.files_checked == 1

    def test_select_restricts_rules(self, tmp_path):
        src_dir = tmp_path / "src" / "repro" / "simulation"
        src_dir.mkdir(parents=True)
        (src_dir / "m.py").write_text(
            "import random\nimport time\nSTAMP = time.time()\n",
            encoding="utf-8",
        )
        report = lint_paths([str(tmp_path)], select=["stdlib-random"])
        assert set(report.counts()) == {"stdlib-random"}

    def test_unknown_select_code_raises(self):
        with pytest.raises(ValueError, match="unknown rule code"):
            lint_paths(["src"], select=["made-up"])

    def test_missing_path_raises(self):
        with pytest.raises(FileNotFoundError):
            lint_paths(["no/such/dir"])

    def test_violation_render(self):
        violation = Violation("a.py", 3, 7, "wall-clock", "no clocks")
        assert violation.render() == "a.py:3:7: [wall-clock] no clocks"


# ----------------------------------------------------------------------
# run() / CLI entry points
# ----------------------------------------------------------------------


def _seeded_fixture(tmp_path, code: str) -> str:
    """Write one file seeded with a violation of ``code``; return its path."""
    snippets = {
        "wall-clock": ("src/repro/simulation/m.py",
                       "import time\nSTAMP = time.time()\n"),
        "unseeded-rng": ("src/repro/core/m.py",
                         "import numpy as np\nRNG = np.random.default_rng()\n"),
        "stdlib-random": ("src/repro/failures/m.py", "import random\n"),
        "lock-acquire": (
            "src/repro/service/m.py",
            "import threading\nguard = threading.Lock()\n"
            "def f():\n    guard.acquire()\n",
        ),
        "ephemeral-lock": (
            "src/repro/service/m.py",
            "import threading\ndef f():\n"
            "    guard = threading.Lock()\n    with guard:\n        pass\n",
        ),
        "module-state": ("src/repro/service/gateway.py", "_CACHE = {}\n"),
        "bare-except": (
            "src/repro/runtime/m.py",
            "def f():\n    try:\n        pass\n    except:\n        pass\n",
        ),
        "broad-except": (
            "src/repro/runtime/m.py",
            "def f():\n    try:\n        pass\n"
            "    except Exception:\n        pass\n",
        ),
        "cache-key": ("src/repro/runtime/m.py",
                      "def key(spec):\n    return hash(spec)\n"),
        "perf-python-callback": (
            "src/repro/core/m.py",
            "def fill(model, names, rows):\n"
            "    return [model.cost(names, -1, j) for j in rows]\n",
        ),
    }
    rel, body = snippets[code]
    target = tmp_path / rel
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(body, encoding="utf-8")
    return str(target)


class TestRun:
    @pytest.mark.parametrize("code", sorted(set(RULES)))
    def test_each_rule_fixture_exits_nonzero(self, tmp_path, code):
        path = _seeded_fixture(tmp_path, code)
        out = io.StringIO()
        assert run([path], stream=out) == 1
        assert f"[{code}]" in out.getvalue()

    def test_clean_file_exits_zero(self, tmp_path):
        target = tmp_path / "clean.py"
        target.write_text("x = 1\n", encoding="utf-8")
        out = io.StringIO()
        assert run([str(target)], stream=out) == 0
        assert "0 violation(s)" in out.getvalue()

    def test_json_output_shape(self, tmp_path):
        path = _seeded_fixture(tmp_path, "wall-clock")
        out = io.StringIO()
        assert run([path], json_output=True, stream=out) == 1
        payload = json.loads(out.getvalue())
        assert payload["counts"] == {"wall-clock": 1}
        (violation,) = payload["violations"]
        assert violation["code"] == "wall-clock"
        assert violation["line"] == 2

    def test_list_rules(self):
        out = io.StringIO()
        assert run([], list_rules=True, stream=out) == 0
        listing = out.getvalue()
        for code in RULES:
            assert code in listing
        assert "unused-noqa" in listing

    def test_bad_path_exits_two(self):
        assert run(["no/such/dir"], stream=io.StringIO()) == 2

    def test_bad_select_exits_two(self):
        assert run(["src"], select=["made-up"], stream=io.StringIO()) == 2

    def test_module_main(self, tmp_path):
        from repro.devtools.engine import main

        path = _seeded_fixture(tmp_path, "stdlib-random")
        assert main([path, "--select", "stdlib-random"]) == 1

    def test_cli_lint_subcommand(self, tmp_path, capsys):
        from repro.cli import main as cli_main

        path = _seeded_fixture(tmp_path, "cache-key")
        assert cli_main(["lint", path]) == 1
        assert "[cache-key]" in capsys.readouterr().out

    def test_cli_lint_json(self, tmp_path, capsys):
        from repro.cli import main as cli_main

        path = _seeded_fixture(tmp_path, "bare-except")
        assert cli_main(["lint", path, "--json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["counts"] == {"bare-except": 1}


class TestWholeRepo:
    def test_repo_lints_clean(self):
        """The acceptance gate: src/tests/benchmarks carry zero violations."""
        report = lint_paths([
            str(REPO_ROOT / "src"),
            str(REPO_ROOT / "tests"),
            str(REPO_ROOT / "benchmarks"),
        ])
        assert report.violations == [], "\n".join(
            v.render() for v in report.violations
        )
