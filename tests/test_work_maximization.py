"""Tests for the work-maximisation heuristic (non-Exponential failures)."""

import math

import pytest

from repro.baselines.work_maximization import (
    expected_work_before_failure,
    work_maximization_chain,
)
from repro.failures.distributions import ExponentialFailure, WeibullFailure
from repro.workflows.chain import LinearChain
from repro.workflows.generators import uniform_random_chain


class TestExpectedWorkBeforeFailure:
    def test_single_checkpoint_formula(self):
        chain = LinearChain(works=[10.0], checkpoint_costs=[2.0], recovery_costs=[2.0])
        law = ExponentialFailure(rate=0.05)
        value = expected_work_before_failure(chain, [0], law)
        assert value == pytest.approx(10.0 * math.exp(-0.05 * 12.0))

    def test_two_checkpoints_accumulate_elapsed_time(self):
        chain = LinearChain(works=[5.0, 7.0], checkpoint_costs=[1.0, 2.0], recovery_costs=[1.0, 2.0])
        law = ExponentialFailure(rate=0.1)
        value = expected_work_before_failure(chain, [0, 1], law)
        expected = 5.0 * law.survival(6.0) + 7.0 * law.survival(6.0 + 9.0)
        assert value == pytest.approx(expected)

    def test_no_checkpoints_saves_nothing(self):
        chain = LinearChain.uniform(3, work=2.0, checkpoint_cost=0.5)
        assert expected_work_before_failure(chain, [], ExponentialFailure(rate=0.1)) == 0.0

    def test_unsaved_tail_ignored(self):
        chain = LinearChain.uniform(3, work=2.0, checkpoint_cost=0.5)
        law = ExponentialFailure(rate=0.1)
        only_first = expected_work_before_failure(chain, [0], law)
        assert only_first == pytest.approx(2.0 * law.survival(2.5))

    def test_rejects_out_of_range_position(self):
        chain = LinearChain.uniform(3, work=2.0, checkpoint_cost=0.5)
        with pytest.raises(ValueError):
            expected_work_before_failure(chain, [5], ExponentialFailure(rate=0.1))

    def test_bounded_by_total_work(self):
        chain = uniform_random_chain(8, seed=61)
        law = WeibullFailure.from_mtbf(100.0, shape=0.7)
        value = expected_work_before_failure(chain, range(8), law)
        assert 0.0 <= value <= chain.total_work()


class TestWorkMaximizationChain:
    def test_exhaustive_small_chain_is_exact(self):
        chain = uniform_random_chain(6, seed=62)
        law = WeibullFailure.from_mtbf(50.0, shape=0.7)
        result = work_maximization_chain(chain, law)
        assert result.exact
        # Compare with an explicit enumeration of all placements.
        import itertools

        best = -1.0
        for r in range(6):
            for subset in itertools.combinations(range(5), r):
                positions = list(subset) + [5]
                best = max(best, expected_work_before_failure(chain, positions, law))
        assert result.expected_saved_work == pytest.approx(best, rel=1e-12)

    def test_dp_matches_exhaustive_with_uniform_costs(self):
        chain = LinearChain.uniform(12, work=4.0, checkpoint_cost=1.0)
        law = WeibullFailure.from_mtbf(60.0, shape=0.8)
        exhaustive = work_maximization_chain(chain, law, exhaustive_limit=20)
        dp = work_maximization_chain(chain, law, exhaustive_limit=0)
        assert dp.exact
        assert dp.expected_saved_work == pytest.approx(
            exhaustive.expected_saved_work, rel=1e-9
        )

    def test_dp_on_long_chain_runs(self):
        chain = uniform_random_chain(60, seed=63)
        law = WeibullFailure.from_mtbf(300.0, shape=0.7)
        result = work_maximization_chain(chain, law)
        assert result.num_checkpoints >= 1
        assert result.checkpoint_after[-1] == 59
        assert 0.0 < result.expected_saved_work <= chain.total_work()

    def test_frequent_failures_prefer_early_checkpoints(self):
        chain = LinearChain.uniform(10, work=10.0, checkpoint_cost=0.1)
        law = ExponentialFailure(rate=0.05)
        result = work_maximization_chain(chain, law)
        # With a short MTBF, checkpointing often saves more work in expectation.
        assert result.num_checkpoints >= 5

    def test_rare_failures_fewer_checkpoints_than_frequent(self):
        chain = LinearChain.uniform(10, work=10.0, checkpoint_cost=2.0)
        frequent = work_maximization_chain(chain, ExponentialFailure(rate=0.05))
        rare = work_maximization_chain(chain, ExponentialFailure(rate=1e-4))
        assert rare.num_checkpoints <= frequent.num_checkpoints

    def test_final_checkpoint_flag(self):
        chain = LinearChain.uniform(5, work=3.0, checkpoint_cost=0.5)
        law = WeibullFailure.from_mtbf(100.0, shape=0.9)
        forced = work_maximization_chain(chain, law, final_checkpoint=True)
        free = work_maximization_chain(chain, law, final_checkpoint=False)
        assert forced.checkpoint_after[-1] == 4
        assert free.expected_saved_work >= forced.expected_saved_work - 1e-12

    def test_to_schedule(self):
        chain = uniform_random_chain(5, seed=64)
        law = WeibullFailure.from_mtbf(80.0, shape=0.7)
        result = work_maximization_chain(chain, law)
        schedule = result.to_schedule()
        assert schedule.num_checkpoints == result.num_checkpoints
