"""Tests for DAG linearisation and checkpoint scheduling."""

import pytest

from repro.core.dag_scheduling import (
    LINEARIZATION_STRATEGIES,
    exhaustive_dag_schedule,
    linearize,
    place_checkpoints_on_order,
    schedule_dag,
)
from repro.core.chain_dp import optimal_chain_checkpoints
from repro.models.checkpoint import FrontierCheckpointCost
from repro.workflows.chain import LinearChain
from repro.workflows.dag import Workflow
from repro.workflows.generators import fork_join, make_independent, montage_like
from repro.workflows.task import Task


class TestLinearize:
    def test_all_strategies_produce_valid_orders(self, diamond_workflow, rng):
        for strategy in LINEARIZATION_STRATEGIES:
            order = linearize(diamond_workflow, strategy, rng=rng)
            assert diamond_workflow.is_valid_order(order)

    def test_heaviest_first_prefers_heavy_ready_task(self, diamond_workflow):
        order = linearize(diamond_workflow, "heaviest_first")
        # After A, task C (work 5) should run before B (work 3).
        assert order.index("C") < order.index("B")

    def test_lightest_first_prefers_light_ready_task(self, diamond_workflow):
        order = linearize(diamond_workflow, "lightest_first")
        assert order.index("B") < order.index("C")

    def test_critical_path_valid_on_montage(self):
        wf = montage_like(5)
        order = linearize(wf, "critical_path")
        assert wf.is_valid_order(order)

    def test_unknown_strategy_rejected(self, diamond_workflow):
        with pytest.raises(ValueError, match="unknown linearisation strategy"):
            linearize(diamond_workflow, "does_not_exist")

    def test_random_orders_depend_on_rng(self):
        import numpy as np

        wf = make_independent([1.0] * 8)
        a = linearize(wf, "random", rng=np.random.default_rng(1))
        b = linearize(wf, "random", rng=np.random.default_rng(2))
        assert sorted(a) == sorted(b)
        # With 8 independent tasks two different seeds almost surely differ.
        assert a != b


class TestPlaceCheckpointsOnOrder:
    def test_chain_order_matches_chain_dp(self, small_chain):
        workflow = small_chain.to_workflow()
        order = workflow.chain_order()
        positions, value = place_checkpoints_on_order(
            workflow, order, 0.4, 0.05, initial_recovery=small_chain.initial_recovery
        )
        dp = optimal_chain_checkpoints(small_chain, 0.4, 0.05)
        assert value == pytest.approx(dp.expected_makespan, rel=1e-12)
        assert positions == dp.checkpoint_after

    def test_invalid_order_rejected(self, diamond_workflow):
        with pytest.raises(ValueError):
            place_checkpoints_on_order(diamond_workflow, ["B", "A", "C", "D"], 0.1, 0.05)

    def test_final_checkpoint_flag(self, diamond_workflow):
        order = diamond_workflow.topological_order()
        with_final, _ = place_checkpoints_on_order(
            diamond_workflow, order, 0.1, 1e-6
        )
        without_final, _ = place_checkpoints_on_order(
            diamond_workflow, order, 0.1, 1e-6, final_checkpoint=False
        )
        assert with_final[-1] == len(order) - 1
        assert (len(order) - 1) not in without_final

    def test_overflow_raises(self):
        chain = LinearChain.uniform(2, work=1e4, checkpoint_cost=1e4)
        workflow = chain.to_workflow()
        with pytest.raises(OverflowError):
            place_checkpoints_on_order(workflow, workflow.chain_order(), 0.0, 1.0)


class TestScheduleDag:
    def test_result_is_valid_and_consistent(self, diamond_workflow):
        result = schedule_dag(diamond_workflow, 0.2, 0.05, seed=1)
        assert diamond_workflow.is_valid_order(list(result.order))
        schedule = result.to_schedule()
        assert schedule.expected_makespan(0.2, 0.05) == pytest.approx(
            result.expected_makespan, rel=1e-12
        )

    def test_heuristic_matches_exhaustive_on_diamond(self, diamond_workflow):
        heuristic = schedule_dag(diamond_workflow, 0.2, 0.05, seed=1)
        exact = exhaustive_dag_schedule(diamond_workflow, 0.2, 0.05)
        # The diamond has only two linear extensions, and the heuristic tries
        # several strategies, so it should find the optimum.
        assert heuristic.expected_makespan == pytest.approx(
            exact.expected_makespan, rel=1e-9
        )

    def test_heuristic_never_below_exhaustive(self):
        wf = fork_join(4, branch_work=3.0, work_jitter=0.4, seed=3, checkpoint_cost=0.3)
        heuristic = schedule_dag(wf, 0.1, 0.05, seed=3)
        exact = exhaustive_dag_schedule(wf, 0.1, 0.05)
        assert heuristic.expected_makespan >= exact.expected_makespan - 1e-9

    def test_montage_schedule_runs(self):
        wf = montage_like(5)
        result = schedule_dag(wf, 0.2, 0.02, seed=1)
        assert result.num_checkpoints >= 1
        assert result.expected_makespan > wf.total_work()

    def test_empty_workflow_rejected(self):
        with pytest.raises(ValueError):
            schedule_dag(Workflow([], []), 0.1, 0.05)

    def test_explicit_strategy_subset(self, diamond_workflow):
        result = schedule_dag(
            diamond_workflow, 0.2, 0.05, strategies=["topological"], num_random_orders=0
        )
        assert result.strategy == "topological"

    def test_frontier_model_increases_cost_on_fork_join(self):
        wf = fork_join(5, branch_work=4.0, checkpoint_cost=0.5, seed=2)
        base = schedule_dag(wf, 0.1, 0.05, seed=2)
        frontier = schedule_dag(
            wf, 0.1, 0.05, checkpoint_model=FrontierCheckpointCost(wf), seed=2
        )
        # Saving the live frontier mid-fan-out costs more than saving a single task.
        assert frontier.expected_makespan >= base.expected_makespan - 1e-9


class TestExhaustiveDagSchedule:
    def test_exact_flag_set(self, diamond_workflow):
        result = exhaustive_dag_schedule(diamond_workflow, 0.2, 0.05)
        assert result.exact
        assert result.strategy == "exhaustive"

    def test_too_many_orders_rejected(self):
        wf = make_independent([1.0] * 9)
        with pytest.raises(ValueError, match="topological orders"):
            exhaustive_dag_schedule(wf, 0.1, 0.05, max_orders=100)

    def test_independent_tasks_matches_set_partition_optimum(self):
        from repro.core.independent import exhaustive_independent_schedule

        works = [2.0, 5.0, 3.0]
        wf = make_independent(works, checkpoint_cost=1.0)
        dag_opt = exhaustive_dag_schedule(wf, 0.0, 0.1, initial_recovery=1.0)
        set_opt = exhaustive_independent_schedule(works, 1.0, 1.0, 0.0, 0.1)
        assert dag_opt.expected_makespan == pytest.approx(
            set_opt.expected_makespan, rel=1e-9
        )

    def test_order_dependence_matters(self):
        # A 2-task independent instance where one task is huge and the other
        # tiny: the exhaustive solver must consider both orders and checkpoint
        # placements and return a dependence-valid order.
        wf = Workflow(
            [Task("big", 30.0, 0.5, 0.5), Task("small", 1.0, 0.5, 0.5)], []
        )
        result = exhaustive_dag_schedule(wf, 0.0, 0.05)
        assert set(result.order) == {"big", "small"}
        assert result.expected_makespan > 31.0
