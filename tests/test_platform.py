"""Tests for the platform model."""


import numpy as np
import pytest

from repro.failures.distributions import ExponentialFailure, WeibullFailure
from repro.failures.platform import Platform


class TestPlatformConstruction:
    def test_defaults(self):
        platform = Platform()
        assert platform.num_processors == 1
        assert platform.downtime == 0.0
        assert platform.is_exponential

    def test_rejects_zero_processors(self):
        with pytest.raises(ValueError):
            Platform(num_processors=0)

    def test_rejects_negative_downtime(self):
        with pytest.raises(ValueError):
            Platform(downtime=-1.0)

    def test_rejects_non_distribution_law(self):
        with pytest.raises(TypeError):
            Platform(failure_law=0.5)  # type: ignore[arg-type]


class TestExponentialPlatform:
    def test_platform_rate_scales_with_p(self):
        platform = Platform(num_processors=100, failure_law=ExponentialFailure(rate=1e-4))
        assert platform.platform_rate() == pytest.approx(1e-2)

    def test_platform_failure_law(self):
        platform = Platform(num_processors=10, failure_law=ExponentialFailure(rate=0.01))
        law = platform.platform_failure_law()
        assert isinstance(law, ExponentialFailure)
        assert law.rate == pytest.approx(0.1)

    def test_platform_mtbf(self):
        platform = Platform(num_processors=4, failure_law=ExponentialFailure(rate=0.25))
        assert platform.platform_mtbf() == pytest.approx(1.0)

    def test_describe_mentions_platform_size(self):
        platform = Platform(num_processors=8, failure_law=ExponentialFailure(rate=0.1))
        assert "p=8" in platform.describe()


class TestNonExponentialPlatform:
    def test_platform_rate_raises(self):
        platform = Platform(num_processors=4, failure_law=WeibullFailure(shape=0.7, scale=10.0))
        with pytest.raises(ValueError, match="Exponential"):
            platform.platform_rate()

    def test_platform_mtbf_approximation(self):
        law = WeibullFailure.from_mtbf(100.0, shape=0.7)
        platform = Platform(num_processors=10, failure_law=law)
        assert platform.platform_mtbf() == pytest.approx(10.0)

    def test_is_exponential_false(self):
        platform = Platform(failure_law=WeibullFailure(shape=0.7, scale=10.0))
        assert not platform.is_exponential


class TestDowntimeBounds:
    def test_expected_downtime_is_lower_bound(self):
        platform = Platform(
            num_processors=16, failure_law=ExponentialFailure(rate=1e-3), downtime=5.0
        )
        assert platform.expected_downtime() == 5.0

    def test_upper_bound_exceeds_lower_bound(self):
        platform = Platform(
            num_processors=16, failure_law=ExponentialFailure(rate=1e-3), downtime=5.0
        )
        assert platform.downtime_upper_bound() > platform.expected_downtime()

    def test_upper_bound_equals_d_for_single_processor(self):
        platform = Platform(
            num_processors=1, failure_law=ExponentialFailure(rate=1e-3), downtime=5.0
        )
        assert platform.downtime_upper_bound() == 5.0

    def test_upper_bound_zero_downtime(self):
        platform = Platform(num_processors=4, failure_law=ExponentialFailure(rate=1e-3))
        assert platform.downtime_upper_bound() == 0.0

    def test_upper_bound_close_to_d_when_failures_rare(self):
        platform = Platform(
            num_processors=10, failure_law=ExponentialFailure(rate=1e-8), downtime=2.0
        )
        assert platform.downtime_upper_bound() == pytest.approx(2.0, rel=1e-5)


class TestPlatformSimulation:
    def test_initial_states_count(self, rng):
        platform = Platform(num_processors=5, failure_law=ExponentialFailure(rate=0.1))
        states = platform.initial_states(rng)
        assert len(states) == 5
        assert all(s.next_failure > 0 for s in states)

    def test_failure_times_sorted_and_bounded(self, rng):
        platform = Platform(num_processors=3, failure_law=ExponentialFailure(rate=0.05))
        times = platform.platform_failure_times(rng, horizon=500.0)
        assert times == sorted(times)
        assert all(0 < t < 500.0 for t in times)

    def test_failure_count_matches_rate(self, rng):
        # With platform rate 0.1 over a horizon of 10000, expect ~1000 failures.
        platform = Platform(num_processors=10, failure_law=ExponentialFailure(rate=0.01))
        times = platform.platform_failure_times(rng, horizon=10_000.0)
        assert 850 <= len(times) <= 1150

    def test_rejuvenation_flag_runs(self, rng):
        platform = Platform(num_processors=3, failure_law=WeibullFailure(shape=0.7, scale=20.0))
        times = platform.platform_failure_times(
            rng, horizon=200.0, rejuvenate_all_on_failure=True
        )
        assert times == sorted(times)

    def test_sample_time_to_next_failure_exponential(self, rng):
        platform = Platform(num_processors=10, failure_law=ExponentialFailure(rate=0.01))
        samples = [platform.sample_time_to_next_failure(rng) for _ in range(5000)]
        assert np.mean(samples) == pytest.approx(10.0, rel=0.1)

    def test_sample_time_to_next_failure_weibull_without_state(self, rng):
        platform = Platform(num_processors=4, failure_law=WeibullFailure(shape=0.7, scale=10.0))
        value = platform.sample_time_to_next_failure(rng)
        assert value >= 0.0
