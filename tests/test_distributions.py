"""Tests for the failure inter-arrival time distributions."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.failures.distributions import (
    ExponentialFailure,
    LogNormalFailure,
    WeibullFailure,
    superposed_rate,
)


class TestExponentialFailure:
    def test_mean_is_inverse_rate(self):
        law = ExponentialFailure(rate=0.25)
        assert law.mean() == pytest.approx(4.0)

    def test_mtbf_alias(self):
        law = ExponentialFailure(rate=2.0)
        assert law.mtbf() == law.mean()

    def test_cdf_at_zero(self):
        assert ExponentialFailure(rate=1.0).cdf(0.0) == 0.0

    def test_cdf_matches_closed_form(self):
        law = ExponentialFailure(rate=0.5)
        assert law.cdf(2.0) == pytest.approx(1.0 - math.exp(-1.0))

    def test_survival_complements_cdf(self):
        law = ExponentialFailure(rate=0.3)
        for t in (0.1, 1.0, 10.0):
            assert law.survival(t) + law.cdf(t) == pytest.approx(1.0)

    def test_hazard_is_constant(self):
        law = ExponentialFailure(rate=0.7)
        assert law.hazard(0.1) == pytest.approx(0.7)
        assert law.hazard(100.0) == pytest.approx(0.7)

    def test_pdf_integrates_to_cdf(self):
        law = ExponentialFailure(rate=0.2)
        ts = np.linspace(0, 20, 20001)
        integral = np.trapezoid([law.pdf(t) for t in ts], ts)
        assert integral == pytest.approx(law.cdf(20.0), rel=1e-4)

    def test_sample_mean(self, rng):
        law = ExponentialFailure(rate=0.1)
        samples = law.sample(rng, size=20000)
        assert np.mean(samples) == pytest.approx(10.0, rel=0.05)

    def test_sample_scalar(self, rng):
        value = ExponentialFailure(rate=1.0).sample(rng)
        assert isinstance(value, float)
        assert value >= 0.0

    def test_memoryless_flag(self):
        assert ExponentialFailure(rate=1.0).memoryless is True

    def test_conditional_survival_memoryless(self):
        law = ExponentialFailure(rate=0.5)
        assert law.conditional_survival(2.0, age=10.0) == pytest.approx(law.survival(2.0))

    def test_scaled_superposition(self):
        law = ExponentialFailure(rate=1e-5)
        assert law.scaled(100).rate == pytest.approx(1e-3)

    def test_from_mtbf(self):
        assert ExponentialFailure.from_mtbf(50.0).rate == pytest.approx(0.02)

    def test_rejects_non_positive_rate(self):
        with pytest.raises(ValueError):
            ExponentialFailure(rate=0.0)
        with pytest.raises(ValueError):
            ExponentialFailure(rate=-1.0)


class TestWeibullFailure:
    def test_shape_one_matches_exponential(self):
        weibull = WeibullFailure(shape=1.0, scale=5.0)
        expo = ExponentialFailure(rate=0.2)
        for t in (0.5, 2.0, 10.0):
            assert weibull.cdf(t) == pytest.approx(expo.cdf(t))
            assert weibull.pdf(t) == pytest.approx(expo.pdf(t))

    def test_mean_uses_gamma_function(self):
        law = WeibullFailure(shape=2.0, scale=3.0)
        assert law.mean() == pytest.approx(3.0 * math.gamma(1.5))

    def test_hazard_decreasing_for_shape_below_one(self):
        law = WeibullFailure(shape=0.7, scale=10.0)
        assert law.hazard(1.0) > law.hazard(5.0) > law.hazard(20.0)

    def test_hazard_increasing_for_shape_above_one(self):
        law = WeibullFailure(shape=2.0, scale=10.0)
        assert law.hazard(1.0) < law.hazard(5.0) < law.hazard(20.0)

    def test_from_mtbf_gives_requested_mean(self):
        law = WeibullFailure.from_mtbf(100.0, shape=0.7)
        assert law.mean() == pytest.approx(100.0)

    def test_sample_mean(self, rng):
        law = WeibullFailure.from_mtbf(10.0, shape=1.5)
        samples = law.sample(rng, size=20000)
        assert np.mean(samples) == pytest.approx(10.0, rel=0.05)

    def test_not_memoryless(self):
        assert WeibullFailure(shape=0.5, scale=1.0).memoryless is False

    def test_conditional_survival_infant_mortality(self):
        # For shape < 1 an older processor is *less* likely to fail soon.
        law = WeibullFailure(shape=0.5, scale=10.0)
        assert law.conditional_survival(5.0, age=50.0) > law.survival(5.0)

    def test_sample_residual_non_negative(self, rng):
        law = WeibullFailure(shape=0.7, scale=10.0)
        for age in (0.0, 1.0, 25.0):
            assert law.sample_residual(rng, age) >= 0.0

    def test_inverse_survival_round_trip(self):
        law = WeibullFailure(shape=1.3, scale=7.0)
        t = law._inverse_survival(0.3)
        assert law.survival(t) == pytest.approx(0.3, rel=1e-6)

    def test_rejects_invalid_parameters(self):
        with pytest.raises(ValueError):
            WeibullFailure(shape=0.0, scale=1.0)
        with pytest.raises(ValueError):
            WeibullFailure(shape=1.0, scale=-2.0)

    def test_pdf_at_zero_special_cases(self):
        assert WeibullFailure(shape=0.5, scale=1.0).pdf(0.0) == math.inf
        assert WeibullFailure(shape=1.0, scale=2.0).pdf(0.0) == pytest.approx(0.5)
        assert WeibullFailure(shape=2.0, scale=1.0).pdf(0.0) == 0.0


class TestLogNormalFailure:
    def test_mean_closed_form(self):
        law = LogNormalFailure(mu=1.0, sigma=0.5)
        assert law.mean() == pytest.approx(math.exp(1.0 + 0.125))

    def test_from_mtbf(self):
        law = LogNormalFailure.from_mtbf(200.0, sigma=1.0)
        assert law.mean() == pytest.approx(200.0)

    def test_cdf_monotone(self):
        law = LogNormalFailure(mu=0.0, sigma=1.0)
        values = [law.cdf(t) for t in (0.1, 0.5, 1.0, 2.0, 10.0)]
        assert values == sorted(values)
        assert all(0.0 <= v <= 1.0 for v in values)

    def test_cdf_median(self):
        # The median of a log-normal is exp(mu).
        law = LogNormalFailure(mu=2.0, sigma=0.7)
        assert law.cdf(math.exp(2.0)) == pytest.approx(0.5)

    def test_pdf_zero_for_non_positive_times(self):
        law = LogNormalFailure(mu=0.0, sigma=1.0)
        assert law.pdf(0.0) == 0.0
        assert law.pdf(-1.0) == 0.0

    def test_sample_mean(self, rng):
        law = LogNormalFailure.from_mtbf(20.0, sigma=0.5)
        samples = law.sample(rng, size=50000)
        assert np.mean(samples) == pytest.approx(20.0, rel=0.05)

    def test_rejects_invalid_sigma(self):
        with pytest.raises(ValueError):
            LogNormalFailure(mu=0.0, sigma=0.0)

    def test_rejects_non_finite_mu(self):
        with pytest.raises(ValueError):
            LogNormalFailure(mu=math.inf, sigma=1.0)


class TestSuperposedRate:
    def test_scales_linearly(self):
        assert superposed_rate(1e-6, 1000) == pytest.approx(1e-3)

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            superposed_rate(-1.0, 2)
        with pytest.raises(TypeError):
            superposed_rate(1.0, 2.5)


class TestDistributionProperties:
    @given(
        rate=st.floats(min_value=1e-6, max_value=10.0),
        t=st.floats(min_value=0.0, max_value=100.0),
    )
    @settings(max_examples=100, deadline=None)
    def test_exponential_cdf_in_unit_interval(self, rate, t):
        law = ExponentialFailure(rate=rate)
        assert 0.0 <= law.cdf(t) <= 1.0

    @given(
        shape=st.floats(min_value=0.2, max_value=5.0),
        scale=st.floats(min_value=0.1, max_value=100.0),
        t1=st.floats(min_value=0.0, max_value=50.0),
        t2=st.floats(min_value=0.0, max_value=50.0),
    )
    @settings(max_examples=100, deadline=None)
    def test_weibull_cdf_monotone(self, shape, scale, t1, t2):
        law = WeibullFailure(shape=shape, scale=scale)
        lo, hi = sorted((t1, t2))
        assert law.cdf(lo) <= law.cdf(hi) + 1e-12

    @given(
        shape=st.floats(min_value=0.3, max_value=4.0),
        mtbf=st.floats(min_value=0.5, max_value=1e4),
    )
    @settings(max_examples=50, deadline=None)
    def test_weibull_from_mtbf_round_trip(self, shape, mtbf):
        law = WeibullFailure.from_mtbf(mtbf, shape=shape)
        assert law.mean() == pytest.approx(mtbf, rel=1e-9)
