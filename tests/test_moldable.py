"""Tests for moldable-task allocation (Section 6, second extension)."""

import pytest

from repro.core.expected_time import expected_completion_time
from repro.core.moldable import (
    MoldableScheduler,
    MoldableTask,
    best_allocation_single_task,
)
from repro.models.checkpoint import ConstantCheckpointCost, ProportionalCheckpointCost
from repro.models.workload import (
    AmdahlWorkload,
    NumericalKernelWorkload,
    PerfectlyParallelWorkload,
)


class TestMoldableTask:
    def test_time_on_uses_workload_model(self):
        task = MoldableTask("t", 100.0, workload=PerfectlyParallelWorkload())
        assert task.time_on(4) == pytest.approx(25.0)

    def test_amdahl_limits_scaling(self):
        task = MoldableTask("t", 100.0, workload=AmdahlWorkload(gamma=0.5))
        assert task.time_on(1_000_000) > 50.0

    def test_rejects_invalid_inputs(self):
        with pytest.raises(ValueError):
            MoldableTask("", 10.0)
        with pytest.raises(ValueError):
            MoldableTask("t", 0.0)
        with pytest.raises(ValueError):
            MoldableTask("t", 1.0, memory_footprint=-1.0)


class TestBestAllocationSingleTask:
    def test_perfectly_parallel_constant_checkpoint_prefers_finite_p(self):
        # With lambda = p * lambda_proc, more processors shorten the work but
        # raise the failure rate; with a constant checkpoint cost there is an
        # interior optimum.
        task = MoldableTask("t", 10_000.0, memory_footprint=100.0)
        model = ConstantCheckpointCost(alpha=0.1)
        best_p, value = best_allocation_single_task(
            task, 1e-4, 0.0, model, max_processors=4096
        )
        assert 1 < best_p < 4096
        # The value is the Prop. 1 expectation at that allocation.
        expected = expected_completion_time(
            10_000.0 / best_p, 10.0, 0.0, 10.0, 1e-4 * best_p
        )
        assert value == pytest.approx(expected)

    def test_negligible_failure_rate_uses_all_processors(self):
        task = MoldableTask("t", 1000.0, memory_footprint=1.0)
        model = ConstantCheckpointCost(alpha=0.01)
        best_p, _ = best_allocation_single_task(
            task, 1e-12, 0.0, model, max_processors=64
        )
        assert best_p == 64

    def test_sequential_work_with_amdahl_gives_up_early(self):
        # With a strongly sequential workload, adding processors mostly adds
        # failures, so the best allocation is small.
        task = MoldableTask("t", 1000.0, memory_footprint=10.0, workload=AmdahlWorkload(gamma=0.5))
        model = ConstantCheckpointCost(alpha=0.1)
        best_p, _ = best_allocation_single_task(task, 1e-3, 0.0, model, max_processors=256)
        assert best_p < 64

    def test_min_processors_respected(self):
        task = MoldableTask("t", 100.0, memory_footprint=1.0)
        model = ConstantCheckpointCost(alpha=0.01)
        best_p, _ = best_allocation_single_task(
            task, 1e-6, 0.0, model, max_processors=8, min_processors=8
        )
        assert best_p == 8

    def test_min_above_max_rejected(self):
        task = MoldableTask("t", 100.0)
        model = ConstantCheckpointCost(alpha=0.01)
        with pytest.raises(ValueError):
            best_allocation_single_task(task, 1e-6, 0.0, model, max_processors=4, min_processors=8)


class TestMoldableScheduler:
    def _tasks(self):
        return [
            MoldableTask("prep", 500.0, memory_footprint=20.0),
            MoldableTask("solve", 5000.0, memory_footprint=100.0,
                         workload=NumericalKernelWorkload(gamma=0.2)),
            MoldableTask("post", 200.0, memory_footprint=10.0,
                         workload=AmdahlWorkload(gamma=0.05)),
        ]

    def test_checkpoint_everywhere_allocation(self):
        scheduler = MoldableScheduler(
            1e-5, 1.0, checkpoint_model=ConstantCheckpointCost(alpha=0.05), max_processors=1024
        )
        result = scheduler.allocate_checkpoint_everywhere(self._tasks())
        assert result.num_tasks == 3
        assert all(1 <= p <= 1024 for p in result.allocations)
        assert result.expected_makespan == pytest.approx(sum(result.per_task_expected))
        assert result.checkpoint_after == (0, 1, 2)

    def test_chain_dp_refinement_never_increases_checkpoint_count_beyond_n(self):
        scheduler = MoldableScheduler(
            1e-6, 0.5, checkpoint_model=ProportionalCheckpointCost(alpha=0.5), max_processors=256
        )
        result = scheduler.allocate_with_chain_dp(self._tasks())
        assert 1 <= len(result.checkpoint_after) <= 3
        assert result.checkpoint_after[-1] == 2

    def test_empty_task_list_rejected(self):
        scheduler = MoldableScheduler(1e-5, 0.0, max_processors=16)
        with pytest.raises(ValueError):
            scheduler.allocate_checkpoint_everywhere([])
        with pytest.raises(ValueError):
            scheduler.allocate_with_chain_dp([])

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            MoldableScheduler(0.0, 0.0, max_processors=4)
        with pytest.raises(ValueError):
            MoldableScheduler(1e-5, -1.0, max_processors=4)
        with pytest.raises(ValueError):
            MoldableScheduler(1e-5, 0.0, max_processors=0)

    def test_higher_failure_rate_never_increases_best_allocation(self):
        # As lambda_proc grows, the optimal processor count for a perfectly
        # parallel task with constant checkpoint cost cannot increase.
        task = MoldableTask("t", 20_000.0, memory_footprint=50.0)
        model = ConstantCheckpointCost(alpha=0.1)
        previous = None
        for lam in (1e-6, 1e-5, 1e-4, 1e-3):
            best_p, _ = best_allocation_single_task(task, lam, 0.0, model, max_processors=2048)
            if previous is not None:
                assert best_p <= previous
            previous = best_p
