"""Tests for the paired simulation campaign runner."""

import pytest

from repro.core.chain_dp import optimal_chain_checkpoints
from repro.core.schedule import Schedule
from repro.failures.distributions import ExponentialFailure, WeibullFailure
from repro.failures.traces import FailureTrace
from repro.simulation.campaign import CampaignRunner
from repro.workflows.generators import uniform_random_chain


@pytest.fixture
def chain():
    return uniform_random_chain(10, work_range=(3.0, 8.0), checkpoint_range=(0.5, 1.0), seed=300)


@pytest.fixture
def schedules(chain):
    optimal = optimal_chain_checkpoints(chain, 0.5, 0.02)
    return {
        "optimal": optimal.to_schedule(),
        "all": Schedule.for_chain(chain, range(chain.n)),
        "none": Schedule.for_chain(chain, [chain.n - 1]),
    }


class TestCampaignRunner:
    def test_all_strategies_share_each_trace(self, schedules):
        # With a trace containing no failures, every strategy's makespan must
        # equal its failure-free time exactly, on every round.
        empty = FailureTrace(events=(), horizon=1e9)
        runner = CampaignRunner(schedules, downtime=0.5)
        result = runner.run(3, traces=[empty] * 3)
        for name, schedule in schedules.items():
            assert result.makespans[name] == pytest.approx(
                [schedule.failure_free_time()] * 3
            )

    def test_generated_traces_give_paired_samples(self, schedules):
        runner = CampaignRunner(
            schedules, ExponentialFailure(rate=0.02), downtime=0.5
        )
        result = runner.run(50, seed=1)
        assert result.num_runs == 50
        for samples in result.makespans.values():
            assert len(samples) == 50

    def test_means_track_analytic_ranking(self, schedules):
        runner = CampaignRunner(
            schedules, ExponentialFailure(rate=0.05), downtime=0.5
        )
        result = runner.run(300, seed=2)
        # With an MTBF of 20 against ~55 units of work, the single-checkpoint
        # strategy must lose clearly; the optimal placement must rank first or
        # tie with checkpoint-all within noise.
        ranking = result.ranking()
        assert ranking[-1] == "none"
        assert result.mean("optimal") <= result.mean("all") * 1.05

    def test_paired_difference_interval(self, schedules):
        runner = CampaignRunner(schedules, ExponentialFailure(rate=0.05), downtime=0.5)
        result = runner.run(200, seed=3)
        paired = result.paired_difference("none", "optimal")
        assert paired["mean_difference"] > 0.0
        assert paired["ci95_low"] <= paired["mean_difference"] <= paired["ci95_high"]

    def test_unknown_strategy_raises(self, schedules):
        runner = CampaignRunner(schedules, ExponentialFailure(rate=0.02), downtime=0.0)
        result = runner.run(5, seed=4)
        with pytest.raises(KeyError):
            result.mean("missing")
        with pytest.raises(KeyError):
            result.paired_difference("missing", "optimal")

    def test_to_table(self, schedules):
        runner = CampaignRunner(schedules, ExponentialFailure(rate=0.03), downtime=0.2)
        table = runner.run(40, seed=5).to_table(baseline="optimal")
        assert len(table) == 3
        assert "strategy" in table.columns
        names = table.column("strategy")
        assert set(names) == {"optimal", "all", "none"}

    def test_weibull_law_supported(self, schedules):
        law = WeibullFailure.from_mtbf(80.0, shape=0.7)
        runner = CampaignRunner(schedules, law, num_processors=4, downtime=0.5)
        result = runner.run(20, seed=6)
        assert all(len(v) == 20 for v in result.makespans.values())

    def test_requires_law_or_traces(self, schedules):
        runner = CampaignRunner(schedules, downtime=0.0)
        with pytest.raises(ValueError, match="failure_law"):
            runner.run(5, seed=7)

    def test_rejects_empty_schedules(self):
        with pytest.raises(ValueError):
            CampaignRunner({}, ExponentialFailure(rate=0.1))

    def test_rejects_empty_trace_list(self, schedules):
        runner = CampaignRunner(schedules, downtime=0.0)
        with pytest.raises(ValueError):
            runner.run(3, traces=[])

    def test_reproducible_with_seed(self, schedules):
        runner = CampaignRunner(schedules, ExponentialFailure(rate=0.02), downtime=0.1)
        a = runner.run(20, seed=9)
        b = runner.run(20, seed=9)
        assert a.makespans["optimal"] == b.makespans["optimal"]
