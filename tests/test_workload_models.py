"""Tests for the workload scaling models W(p)."""


import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.models.workload import (
    AmdahlWorkload,
    NumericalKernelWorkload,
    PerfectlyParallelWorkload,
)


class TestPerfectlyParallel:
    def test_time_divides_by_p(self):
        model = PerfectlyParallelWorkload()
        assert model.time(100.0, 4) == pytest.approx(25.0)

    def test_speedup_is_p(self):
        model = PerfectlyParallelWorkload()
        assert model.speedup(100.0, 16) == pytest.approx(16.0)

    def test_efficiency_is_one(self):
        model = PerfectlyParallelWorkload()
        assert model.efficiency(100.0, 64) == pytest.approx(1.0)

    def test_rejects_zero_processors(self):
        with pytest.raises(ValueError):
            PerfectlyParallelWorkload().time(10.0, 0)

    def test_rejects_non_positive_work(self):
        with pytest.raises(ValueError):
            PerfectlyParallelWorkload().time(0.0, 4)


class TestAmdahl:
    def test_zero_gamma_matches_perfect(self):
        amdahl = AmdahlWorkload(gamma=0.0)
        perfect = PerfectlyParallelWorkload()
        assert amdahl.time(50.0, 8) == pytest.approx(perfect.time(50.0, 8))

    def test_time_formula(self):
        model = AmdahlWorkload(gamma=0.1)
        assert model.time(100.0, 10) == pytest.approx(0.9 * 10.0 + 10.0)

    def test_speedup_bounded_by_inverse_gamma(self):
        model = AmdahlWorkload(gamma=0.05)
        assert model.speedup(100.0, 10_000) < 1.0 / 0.05

    def test_single_processor_time_is_total_work(self):
        model = AmdahlWorkload(gamma=0.3)
        assert model.time(42.0, 1) == pytest.approx(42.0)

    def test_rejects_gamma_one(self):
        with pytest.raises(ValueError):
            AmdahlWorkload(gamma=1.0)

    def test_rejects_negative_gamma(self):
        with pytest.raises(ValueError):
            AmdahlWorkload(gamma=-0.1)


class TestNumericalKernel:
    def test_zero_gamma_matches_perfect(self):
        kernel = NumericalKernelWorkload(gamma=0.0)
        assert kernel.time(1000.0, 16) == pytest.approx(1000.0 / 16)

    def test_time_formula(self):
        kernel = NumericalKernelWorkload(gamma=0.5)
        expected = 1000.0 / 4 + 0.5 * 1000.0 ** (2.0 / 3.0) / 2.0
        assert kernel.time(1000.0, 4) == pytest.approx(expected)

    def test_communication_term_decreases_with_p(self):
        kernel = NumericalKernelWorkload(gamma=1.0)
        t4 = kernel.time(1000.0, 4)
        t16 = kernel.time(1000.0, 16)
        assert t16 < t4

    def test_rejects_negative_gamma(self):
        with pytest.raises(ValueError):
            NumericalKernelWorkload(gamma=-1.0)


class TestWorkloadProperties:
    @given(
        total=st.floats(min_value=1.0, max_value=1e8),
        p=st.integers(min_value=1, max_value=65536),
        gamma=st.floats(min_value=0.0, max_value=0.9),
    )
    @settings(max_examples=100, deadline=None)
    def test_amdahl_time_decreases_with_p(self, total, p, gamma):
        model = AmdahlWorkload(gamma=gamma)
        assert model.time(total, p) >= model.time(total, p * 2) - 1e-9

    @given(
        total=st.floats(min_value=1.0, max_value=1e8),
        p=st.integers(min_value=1, max_value=65536),
        gamma=st.floats(min_value=0.0, max_value=10.0),
    )
    @settings(max_examples=100, deadline=None)
    def test_kernel_time_decreases_with_p(self, total, p, gamma):
        model = NumericalKernelWorkload(gamma=gamma)
        assert model.time(total, p) >= model.time(total, p * 2) - 1e-9

    @given(
        total=st.floats(min_value=1.0, max_value=1e8),
        p=st.integers(min_value=1, max_value=65536),
    )
    @settings(max_examples=100, deadline=None)
    def test_amdahl_never_faster_than_perfect(self, total, p):
        amdahl = AmdahlWorkload(gamma=0.2)
        perfect = PerfectlyParallelWorkload()
        assert amdahl.time(total, p) >= perfect.time(total, p) - 1e-12
