"""Tests for the trace pipeline: persisted per-job span trees, the OTLP
exporter, the flight recorder, audit rotation, and bench perf history.

The tentpole contract under test: a pool-backed job's chunk spans -- recorded
inside worker processes -- travel back in the chunk result payloads, are
folded into the job's live trace under ``job.run``, persisted in the job
store's ``traces`` table, and served over ``GET /v1/jobs/{id}/trace`` by
both HTTP front ends.  Around it: span-tree reconstruction and rendering,
the per-trace span cap, the OTLP/HTTP exporter against an in-test fake
collector, the always-on flight recorder ring, size-based audit-trail
rotation, and the benchmark perf-history JSONL plus its regression checker.
"""

import importlib.util
import json
import os
import sqlite3
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path

import pytest

from repro.obs import flight as obs_flight
from repro.obs import metrics, tracing
from repro.obs.export import OtlpSpanExporter, _trace_id, default_instance_id
from repro.runtime.scenario import ChainSpec, FailureSpec, ScenarioSpec
from repro.service.audit import AuditTrail
from repro.service.client import ServiceClient, ServiceError
from repro.service.gateway import GatewayServer
from repro.service.jobs import JobStore
from repro.service.queue import JobScheduler
from repro.service.server import ScenarioServer

REPO_ROOT = Path(__file__).resolve().parent.parent


def _load_module(name, relpath):
    spec = importlib.util.spec_from_file_location(name, REPO_ROOT / relpath)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


@pytest.fixture
def registry():
    fresh = metrics.MetricsRegistry()
    with metrics.use_registry(fresh):
        yield fresh


@pytest.fixture
def flight_recorder():
    """A fresh process-wide flight recorder, restored afterwards."""
    fresh = obs_flight.FlightRecorder(capacity=64)
    previous = obs_flight.set_flight_recorder(fresh)
    try:
        yield fresh
    finally:
        obs_flight.set_flight_recorder(previous)


def small_spec(**overrides):
    params = dict(
        name="trace-spec",
        chain=ChainSpec(n=4, seed=11),
        failure=FailureSpec(kind="exponential", mtbf=35.0),
        strategies=("optimal_dp", "checkpoint_none"),
        num_runs=60,
        seed=7,
    )
    params.update(overrides)
    return ScenarioSpec(**params)


# ----------------------------------------------------------------------
# Span trees
# ----------------------------------------------------------------------


class TestSpanTree:
    def test_tree_reconstruction_and_self_time(self):
        with tracing.start_trace("t" * 16) as trace:
            with tracing.span("job.run", kind="campaign"):
                with tracing.span("campaign.chunk", runs=30):
                    pass
                with tracing.span("cache.put", namespace="campaign"):
                    pass
        roots = tracing.span_tree(trace.spans)
        assert len(roots) == 1
        root = roots[0]
        assert root["record"]["name"] == "job.run"
        children = [n["record"]["name"] for n in root["children"]]
        assert children == ["campaign.chunk", "cache.put"]
        child_time = sum(n["record"]["duration_s"] for n in root["children"])
        assert root["self_s"] == pytest.approx(
            root["record"]["duration_s"] - child_time
        )

    def test_render_tree_indents_and_reports_self_time(self):
        records = [
            {"name": "campaign.chunk", "duration_s": 0.25, "parent": "job.run",
             "attrs": {"engine": "scalar", "runs": 50}},
            {"name": "job.run", "duration_s": 1.0, "parent": None,
             "attrs": {"kind": "campaign"}},
        ]
        text = tracing.render_span_tree(records)
        lines = text.splitlines()
        assert lines[0].startswith("job.run")
        assert "kind=campaign" in lines[0]
        assert "self 0.7500s" in lines[0]
        assert lines[1].startswith("  campaign.chunk")
        assert "0.2500s" in lines[1] and "self 0.2500s" in lines[1]

    def test_self_time_clamped_for_overlapping_pool_chunks(self):
        # Concurrent chunks can sum past the parent's wall clock.
        records = [
            {"name": "campaign.chunk", "duration_s": 0.8, "parent": "job.run"},
            {"name": "campaign.chunk", "duration_s": 0.9, "parent": "job.run"},
            {"name": "job.run", "duration_s": 1.0, "parent": None},
        ]
        roots = tracing.span_tree(records)
        assert roots[0]["self_s"] == 0.0

    def test_span_cap_counts_drops(self, registry, monkeypatch):
        monkeypatch.setattr(tracing, "MAX_SPANS_PER_TRACE", 3)
        with tracing.start_trace("cap-trace") as trace:
            for _ in range(5):
                with tracing.span("tiny"):
                    pass
        assert len(trace.spans) == 3
        assert trace.dropped == 2
        assert registry.get("repro_trace_spans_dropped_total").total() == 2


class TestShipping:
    def test_forked_worker_ships_despite_inherited_trace(self):
        # A fork-started pool worker inherits the parent's contextvars; the
        # pid stamp is what tells its dead-copy trace from the live one.
        with tracing.start_trace("deadbeefcafe0123") as trace:
            snap = tracing.context_snapshot()
            with tracing.span("job.run"):
                # Same pid: genuinely in-context, nothing ships.
                with tracing.shipping_trace(snap) as shipped:
                    with tracing.span("campaign.chunk"):
                        pass
                assert shipped == []
                # Simulate the fork: same trace object, wrong pid.
                trace.pid = trace.pid - 1
                with tracing.shipping_trace(snap) as shipped:
                    with tracing.span("campaign.chunk"):
                        pass
                assert [r["name"] for r in shipped] == ["campaign.chunk"]
                assert shipped[0]["correlation_id"] == "deadbeefcafe0123"

    def test_absorb_reparents_under_open_span(self):
        shipped = [
            {"name": "campaign.chunk", "duration_s": 0.1, "parent": None,
             "correlation_id": "c" * 16},
        ]
        with tracing.start_trace("c" * 16) as trace:
            with tracing.span("job.run"):
                tracing.absorb_spans(shipped)
        chunk = [r for r in trace.spans if r["name"] == "campaign.chunk"]
        assert len(chunk) == 1
        assert chunk[0]["parent"] == "job.run"

    def test_pool_campaign_chunk_spans_land_in_live_trace(self):
        spec = small_spec()
        with tracing.start_trace("pool-trace-1") as trace:
            with tracing.span("job.run"):
                result = spec.run(backend=2, chunk_size=30)
        chunk = [r for r in trace.spans if r["name"] == "campaign.chunk"]
        assert len(chunk) == 2  # 60 runs / 30 per chunk
        assert all(r["correlation_id"] == "pool-trace-1" for r in chunk)
        assert all(r["parent"] == "job.run" for r in chunk)
        # Bit-identity across backends is untouched by the shipping payload.
        serial = spec.run(chunk_size=30)
        assert result.makespans == serial.makespans


# ----------------------------------------------------------------------
# Persisted traces: store, scheduler, HTTP, both front ends
# ----------------------------------------------------------------------


class TestJobStoreTraces:
    def test_trace_round_trip_and_overwrite(self):
        with JobStore() as store:
            record = store.submit("campaign", {"x": 1})
            payload = {"correlation_id": record.id, "dropped": 0,
                       "spans": [{"name": "job.run", "duration_s": 0.5}]}
            store.record_trace(record.id, payload)
            assert store.get_trace(record.id) == payload
            updated = dict(payload, dropped=3)
            store.record_trace(record.id, updated)
            assert store.get_trace(record.id)["dropped"] == 3

    def test_get_trace_missing_returns_none(self):
        with JobStore() as store:
            assert store.get_trace("nope") is None

    def test_legacy_db_without_traces_table_migrates(self, tmp_path):
        path = tmp_path / "legacy.sqlite"
        legacy = sqlite3.connect(path)
        legacy.executescript("""
            CREATE TABLE jobs (
                id TEXT PRIMARY KEY, kind TEXT NOT NULL, spec TEXT NOT NULL,
                dedupe_key TEXT, state TEXT NOT NULL,
                chunks_done INTEGER NOT NULL DEFAULT 0,
                chunks_total INTEGER NOT NULL DEFAULT 0,
                result TEXT, error TEXT,
                cancel_requested INTEGER NOT NULL DEFAULT 0,
                submitted_at REAL NOT NULL, started_at REAL, finished_at REAL
            );
        """)
        legacy.execute(
            "INSERT INTO jobs (id, kind, spec, state, submitted_at)"
            " VALUES ('old-1', 'campaign', '{}', 'done', 1.0)"
        )
        legacy.commit()
        legacy.close()
        with JobStore(path) as store:
            assert store.get("old-1").state == "done"
            assert store.get_trace("old-1") is None
            store.record_trace("old-1", {"correlation_id": "old-1", "spans": []})
            assert store.get_trace("old-1")["correlation_id"] == "old-1"

    def test_scheduler_persists_pool_chunk_spans(self, registry):
        # The acceptance contract: a pool-backed job's stored trace contains
        # the chunk spans recorded in worker processes, under the job's id.
        with JobStore() as store:
            scheduler = JobScheduler(store, backend=2, chunk_size=30)
            record, _ = scheduler.submit_campaign(small_spec().to_dict())
            assert scheduler.run_pending() == 1
            assert store.get(record.id).state == "done"
            trace = store.get_trace(record.id)
            assert trace is not None
            assert trace["correlation_id"] == record.id
            assert trace["dropped"] == 0
            chunk = [s for s in trace["spans"] if s["name"] == "campaign.chunk"]
            assert len(chunk) == 2
            assert all(s["correlation_id"] == record.id for s in chunk)
            assert all(s["parent"] == "job.run" for s in chunk)


@pytest.fixture(params=["threaded", "gateway"])
def live_server(request):
    """Each HTTP front end, serving a pool-backed scheduler."""
    store = JobStore()
    scheduler = JobScheduler(store, backend=2, chunk_size=30)
    if request.param == "threaded":
        server = ScenarioServer(scheduler, port=0)
    else:
        server = GatewayServer(scheduler, port=0)
    server.start()
    yield server
    server.shutdown()
    store.close()


class TestTraceEndpoints:
    def test_trace_served_after_pool_job(self, live_server, flight_recorder):
        client = ServiceClient(live_server.url, timeout=10.0)
        job = client.submit_campaign(small_spec())
        done = client.wait(job["id"], timeout=120.0)
        assert done["state"] == "done"
        trace = client.job_trace(job["id"])
        assert trace["correlation_id"] == job["id"]
        chunk = [s for s in trace["spans"] if s["name"] == "campaign.chunk"]
        assert len(chunk) == 2
        assert all(s["parent"] == "job.run" for s in chunk)

    def test_unknown_job_and_missing_trace_are_distinct_404s(self, live_server):
        client = ServiceClient(live_server.url, timeout=10.0)
        with pytest.raises(ServiceError, match="no such job") as excinfo:
            client.job_trace("nope")
        assert excinfo.value.status == 404
        # A submitted-but-not-executed job exists without a trace.  Submit
        # against a scheduler whose workers we never run: not possible via
        # the live server (it executes), so exercise the store directly.
        store = live_server.scheduler.store
        queued = store.submit("campaign", {"queued": True})
        with pytest.raises(ServiceError, match="no trace recorded") as excinfo:
            client.job_trace(queued.id)
        assert excinfo.value.status == 404

    def test_flight_endpoint_serves_ring_with_kind_filter(
        self, live_server, flight_recorder
    ):
        with tracing.span("warmup.span"):
            pass
        client = ServiceClient(live_server.url, timeout=10.0)
        flight = client.debug_flight()
        assert flight["capacity"] == 64
        assert any(e["kind"] == "span" for e in flight["events"])
        spans_only = client.debug_flight(kind="span")
        assert spans_only["events"]
        assert all(e["kind"] == "span" for e in spans_only["events"])
        none_match = client.debug_flight(kind="error")
        assert none_match["events"] == []


# ----------------------------------------------------------------------
# OTLP exporter vs a fake collector
# ----------------------------------------------------------------------


class _FakeCollector:
    """In-test OTLP/HTTP collector: records bodies, replays scripted statuses."""

    def __init__(self, statuses=None):
        self.requests = []
        self.statuses = list(statuses or [])
        collector = self

        class Handler(BaseHTTPRequestHandler):
            def do_POST(self):
                length = int(self.headers.get("Content-Length", 0))
                body = json.loads(self.rfile.read(length))
                collector.requests.append(body)
                status = collector.statuses.pop(0) if collector.statuses else 200
                self.send_response(status)
                self.send_header("Content-Length", "0")
                self.end_headers()

            def log_message(self, *args):
                pass

        self.server = ThreadingHTTPServer(("127.0.0.1", 0), Handler)
        self.endpoint = f"http://127.0.0.1:{self.server.server_port}/v1/traces"
        self._thread = threading.Thread(target=self.server.serve_forever, daemon=True)
        self._thread.start()

    def close(self):
        self.server.shutdown()
        self.server.server_close()

    def spans(self):
        return [
            span
            for body in self.requests
            for rs in body["resourceSpans"]
            for ss in rs["scopeSpans"]
            for span in ss["spans"]
        ]


@pytest.fixture
def collector():
    fake = _FakeCollector()
    yield fake
    fake.close()


class TestOtlpExporter:
    def test_batch_framing_and_resource_identity(self, registry, collector):
        exporter = OtlpSpanExporter(
            collector.endpoint, instance_id="test-host:1", flush_interval=0.1
        )
        batch = [
            {"name": "job.run", "duration_s": 0.5, "ts": 1000.0,
             "parent": None, "correlation_id": "deadbeefdeadbeef",
             "attrs": {"kind": "campaign", "runs": 50, "hit": True,
                       "ratio": 0.5}},
            {"name": "campaign.chunk", "duration_s": 0.1, "ts": 999.0,
             "parent": "job.run", "correlation_id": "deadbeefdeadbeef"},
        ]
        assert exporter._send_with_retry(batch)
        assert len(collector.requests) == 1
        body = collector.requests[0]
        resource = body["resourceSpans"][0]["resource"]["attributes"]
        assert {"key": "service.instance.id",
                "value": {"stringValue": "test-host:1"}} in resource
        spans = collector.spans()
        assert [s["name"] for s in spans] == ["job.run", "campaign.chunk"]
        root = spans[0]
        assert root["traceId"] == "deadbeefdeadbeef".rjust(32, "0")
        assert root["endTimeUnixNano"] == str(int(1000.0 * 1e9))
        assert root["startTimeUnixNano"] == str(int(999.5 * 1e9))
        values = {a["key"]: a["value"] for a in root["attributes"]}
        assert values["kind"] == {"stringValue": "campaign"}
        assert values["runs"] == {"intValue": "50"}
        assert values["hit"] == {"boolValue": True}
        assert values["ratio"] == {"doubleValue": 0.5}
        # The child's parent name rides as an attribute (no span-id tracer).
        child_attrs = {a["key"]: a["value"] for a in spans[1]["attributes"]}
        assert child_attrs["repro.parent"] == {"stringValue": "job.run"}
        assert registry.get("repro_otlp_spans_exported_total").total() == 2

    def test_trace_id_mapping(self):
        assert _trace_id("00000000deadbeef") == "0" * 16 + "00000000deadbeef"
        assert len(_trace_id("not-hex!")) == 32  # random fallback
        assert len(_trace_id(None)) == 32
        assert ":" in default_instance_id()

    def test_5xx_retries_with_backoff_then_succeeds(self, registry):
        fake = _FakeCollector(statuses=[500, 503, 200])
        try:
            exporter = OtlpSpanExporter(
                fake.endpoint, max_retries=3, backoff_s=0.25
            )
            sleeps = []
            exporter._sleep = sleeps.append
            assert exporter._send_with_retry([{"name": "s", "duration_s": 0.1}])
            assert len(fake.requests) == 3
            assert sleeps == [0.25, 0.5]  # exponential backoff per attempt
            assert exporter.stats()["exported"] == 1
            assert exporter.stats()["batches_failed"] == 0
        finally:
            fake.close()

    def test_retries_exhausted_drops_and_counts(self, registry):
        fake = _FakeCollector(statuses=[500, 500, 500])
        try:
            exporter = OtlpSpanExporter(fake.endpoint, max_retries=2, backoff_s=0.1)
            exporter._sleep = lambda _: None
            batch = [{"name": "a"}, {"name": "b"}]
            assert not exporter._send_with_retry(batch)
            assert len(fake.requests) == 3  # initial try + 2 retries
            stats = exporter.stats()
            assert stats["dropped_send_failed"] == 2
            assert stats["batches_failed"] == 1
            dropped = registry.get("repro_otlp_spans_dropped_total")
            assert dropped.value(reason="send_failed") == 2
        finally:
            fake.close()

    def test_4xx_drops_immediately_without_retry(self, registry):
        fake = _FakeCollector(statuses=[400])
        try:
            exporter = OtlpSpanExporter(fake.endpoint, max_retries=5, backoff_s=0.1)
            sleeps = []
            exporter._sleep = sleeps.append
            assert not exporter._send_with_retry([{"name": "bad"}])
            assert len(fake.requests) == 1
            assert sleeps == []
            assert exporter.stats()["dropped_send_failed"] == 1
        finally:
            fake.close()

    def test_queue_full_drops_are_counted_never_blocked(self, registry):
        exporter = OtlpSpanExporter("http://127.0.0.1:1/v1/traces", max_queue=2)
        # No background thread: the queue fills and overflow must drop fast.
        for index in range(5):
            exporter.export({"name": f"s{index}"})
        stats = exporter.stats()
        assert stats["queued"] == 2
        assert stats["dropped_queue_full"] == 3
        dropped = registry.get("repro_otlp_spans_dropped_total")
        assert dropped.value(reason="queue_full") == 3

    def test_shutdown_flushes_queued_spans(self, registry, collector):
        exporter = OtlpSpanExporter(
            collector.endpoint, flush_interval=0.05, batch_size=4
        )
        with exporter:
            for _ in range(10):
                with tracing.span("flush.me"):
                    pass
        names = [s["name"] for s in collector.spans() if s["name"] == "flush.me"]
        assert len(names) == 10
        assert exporter.stats()["exported"] >= 10
        assert exporter.stats()["queued"] == 0
        # The sink detached: further spans are not enqueued.
        with tracing.span("after.shutdown"):
            pass
        assert all(s["name"] != "after.shutdown" for s in collector.spans())


# ----------------------------------------------------------------------
# Flight recorder
# ----------------------------------------------------------------------


class TestFlightRecorder:
    def test_ring_bounds_and_drop_accounting(self):
        recorder = obs_flight.FlightRecorder(capacity=4)
        for index in range(10):
            recorder.record("span", name=f"s{index}")
        snapshot = recorder.snapshot()
        assert snapshot["capacity"] == 4
        assert snapshot["recorded_total"] == 10
        assert snapshot["dropped"] == 6
        names = [e["name"] for e in snapshot["events"]]
        assert names == ["s6", "s7", "s8", "s9"]
        seqs = [e["seq"] for e in snapshot["events"]]
        assert seqs == sorted(seqs)

    def test_span_sink_feeds_default_recorder(self, flight_recorder):
        with tracing.start_trace("flight-cid-0001"):
            with tracing.span("observed.span", runs=5):
                pass
        spans = flight_recorder.events(kind="span")
        assert spans
        last = spans[-1]
        assert last["name"] == "observed.span"
        assert last["correlation_id"] == "flight-cid-0001"
        assert last["attrs"] == {"runs": 5}

    def test_warning_logs_feed_recorder_info_does_not(self, flight_recorder):
        import logging as stdlib_logging

        from repro.obs.logging import get_logger, log_event

        logger = get_logger("flight-test")
        logger.setLevel(stdlib_logging.DEBUG)
        log_event(logger, "routine.event")
        log_event(logger, "bad.thing", level=stdlib_logging.WARNING)
        log_event(logger, "worse.thing", level=stdlib_logging.ERROR, error="boom")
        kinds = [(e["kind"], e["event"]) for e in flight_recorder.events()
                 if e["kind"] in ("log", "error")]
        assert ("log", "bad.thing") in kinds
        assert ("error", "worse.thing") in kinds
        assert all(event != "routine.event" for _, event in kinds)

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError, match="capacity"):
            obs_flight.FlightRecorder(capacity=0)


# ----------------------------------------------------------------------
# Audit rotation
# ----------------------------------------------------------------------


class TestAuditRotation:
    def test_rollover_keeps_files_under_cap(self, tmp_path, registry):
        path = tmp_path / "audit.jsonl"
        with AuditTrail(path, max_bytes=200, max_files=2) as trail:
            for index in range(30):
                trail.record("job.submit", job_id=f"j{index:02d}")
            assert trail.rotations > 0
        files = sorted(os.listdir(tmp_path))
        assert set(files) <= {"audit.jsonl", "audit.jsonl.1", "audit.jsonl.2"}
        for name in files:
            assert os.path.getsize(tmp_path / name) <= 200
        # The newest entry is in the active file; ordering is preserved
        # across the rollover boundary (active continues where .1 ended).
        active = [json.loads(line) for line in path.read_text().splitlines()]
        assert active[-1]["job_id"] == "j29"
        rotated_1 = [
            json.loads(line)
            for line in (tmp_path / "audit.jsonl.1").read_text().splitlines()
        ]
        assert rotated_1[-1]["job_id"] < active[0]["job_id"]
        assert registry.get("repro_audit_rotations_total").total() == trail.rotations

    def test_no_rotation_without_max_bytes(self, tmp_path):
        path = tmp_path / "audit.jsonl"
        with AuditTrail(path) as trail:
            for index in range(50):
                trail.record("job.submit", job_id=f"j{index}")
        assert os.listdir(tmp_path) == ["audit.jsonl"]
        assert trail.rotations == 0

    def test_rotated_paths_listing(self, tmp_path):
        path = tmp_path / "audit.jsonl"
        with AuditTrail(path, max_bytes=120, max_files=3) as trail:
            for index in range(20):
                trail.record("job.submit", job_id=f"j{index:02d}")
            expected = [
                str(path) + f".{n}"
                for n in range(1, 4)
                if os.path.exists(str(path) + f".{n}")
            ]
            assert trail.rotated_paths() == expected
        assert AuditTrail().rotated_paths() == []

    def test_max_bytes_must_be_positive(self, tmp_path):
        with pytest.raises(ValueError, match="max_bytes"):
            AuditTrail(tmp_path / "a.jsonl", max_bytes=0)

    def test_oversized_single_entry_still_lands(self, tmp_path):
        path = tmp_path / "audit.jsonl"
        with AuditTrail(path, max_bytes=50, max_files=1) as trail:
            trail.record("job.submit", blob="x" * 200)
            trail.record("job.submit", blob="y" * 200)
        active = path.read_text().splitlines()
        assert len(active) == 1
        assert json.loads(active[0])["blob"] == "y" * 200
        assert trail.rotations == 1


# ----------------------------------------------------------------------
# Bench perf history + regression checker
# ----------------------------------------------------------------------


class TestBenchHistory:
    def test_harness_appends_history_record(self, tmp_path, capsys):
        harness = _load_module("bench_harness_under_test", "benchmarks/harness.py")

        def runner(scale=1):
            return None

        history = tmp_path / "history.jsonl"
        for _ in range(2):
            assert harness.run_cli(
                "bench_fake", runner,
                quick_params={"scale": 1}, full_params={"scale": 10},
                argv=["--quick", "--history", str(history)],
            ) == 0
        records = [json.loads(line) for line in history.read_text().splitlines()]
        assert len(records) == 2
        for record in records:
            assert record["bench"] == "bench_fake"
            assert record["mode"] == "quick"
            assert record["metric"] == "seconds"
            assert record["value"] >= 0
            assert record["ts"] > 0
        assert "appended perf record" in capsys.readouterr().out

    def test_regression_checker_flags_and_exit_codes(self, tmp_path, capsys):
        checker = _load_module(
            "check_bench_regression_under_test", "scripts/check_bench_regression.py"
        )
        history = tmp_path / "history.jsonl"
        rows = [
            {"bench": "b1", "mode": "quick", "metric": "seconds", "value": 1.0},
            {"bench": "b1", "mode": "quick", "metric": "seconds", "value": 1.1},
            {"bench": "b1", "mode": "quick", "metric": "seconds", "value": 5.0},
            # Too-short series: never flagged.
            {"bench": "b2", "mode": "quick", "metric": "seconds", "value": 9.0},
        ]
        history.write_text("".join(json.dumps(r) + "\n" for r in rows))
        assert checker.main([str(history)]) == 0  # advisory by default
        out = capsys.readouterr().out
        assert "REGRESSION: b1" in out and "5.00x" in out
        assert checker.main(["--strict", str(history)]) == 1
        # Under threshold: clean.
        ok_rows = rows[:2] + [dict(rows[0], value=1.2)]
        history.write_text("".join(json.dumps(r) + "\n" for r in ok_rows))
        capsys.readouterr()
        assert checker.main(["--strict", str(history)]) == 0
        assert "0 regression(s)" in capsys.readouterr().out

    def test_regression_checker_skips_malformed_lines(self, tmp_path, capsys):
        checker = _load_module(
            "check_bench_regression_malformed", "scripts/check_bench_regression.py"
        )
        history = tmp_path / "history.jsonl"
        history.write_text('not json\n{"bench": "b", "value": 1.0}\n\n')
        assert checker.main([str(history)]) == 0
        assert "skipping malformed line" in capsys.readouterr().err

    def test_compares_against_best_not_latest(self, tmp_path):
        checker = _load_module(
            "check_bench_regression_best", "scripts/check_bench_regression.py"
        )
        series = {
            ("b", "quick", "seconds"): [
                {"value": 1.0}, {"value": 4.0}, {"value": 4.1},
            ]
        }
        findings = checker.find_regressions(series, threshold=1.5, min_history=3)
        # 4.1 vs best-earlier 1.0, not vs the immediately preceding 4.0.
        assert len(findings) == 1 and "4.10x" in findings[0]


# ----------------------------------------------------------------------
# Bit-identity with the full telemetry pipeline enabled
# ----------------------------------------------------------------------


class TestBitIdentityWithTelemetry:
    def test_persistence_and_export_do_not_perturb_samples(
        self, tmp_path, collector
    ):
        from repro.runtime.cache import ResultCache

        spec = small_spec()
        plain = spec.run(cache=ResultCache(tmp_path / "plain"), chunk_size=30)
        with metrics.use_registry(metrics.MetricsRegistry()):
            exporter = OtlpSpanExporter(collector.endpoint, flush_interval=0.05)
            with exporter, JobStore() as store:
                scheduler = JobScheduler(
                    store, backend=2, chunk_size=30,
                    cache=ResultCache(tmp_path / "telemetry"),
                )
                record, _ = scheduler.submit_campaign(spec.to_dict())
                assert scheduler.run_pending() == 1
                done = store.get(record.id)
                assert done.state == "done"
                assert store.get_trace(record.id) is not None
        assert done.result["makespans"] == plain.makespans
        plain_keys = sorted(p.name for p in (tmp_path / "plain").rglob("*.json"))
        telem_keys = sorted(p.name for p in (tmp_path / "telemetry").rglob("*.json"))
        assert plain_keys == telem_keys and plain_keys
        # The exporter saw the job's spans, chunk spans included.
        exported = [s["name"] for s in collector.spans()]
        assert "job.run" in exported and "campaign.chunk" in exported
