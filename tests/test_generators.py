"""Tests for the synthetic workflow generators."""

import pytest

from repro.workflows.generators import (
    fork_join,
    in_tree,
    make_chain,
    make_independent,
    montage_like,
    out_tree,
    random_layered_dag,
    uniform_random_chain,
)


class TestMakeChain:
    def test_scalar_costs(self):
        chain = make_chain([1.0, 2.0, 3.0], checkpoint_cost=0.5)
        assert chain.n == 3
        assert chain.checkpoint_costs == (0.5, 0.5, 0.5)
        assert chain.recovery_costs == (0.5, 0.5, 0.5)

    def test_separate_recovery_cost(self):
        chain = make_chain([1.0], checkpoint_cost=0.5, recovery_cost=1.5)
        assert chain.recovery_costs == (1.5,)

    def test_explicit_cost_arrays(self):
        chain = make_chain(
            [1.0, 2.0], checkpoint_costs=[0.1, 0.2], recovery_costs=[0.3, 0.4]
        )
        assert chain.checkpoint_costs == (0.1, 0.2)
        assert chain.recovery_costs == (0.3, 0.4)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            make_chain([])

    def test_names_are_prefixed(self):
        chain = make_chain([1.0, 2.0], name="pipeline")
        assert chain.names[0].startswith("pipeline.")


class TestUniformRandomChain:
    def test_size_and_bounds(self, rng):
        chain = uniform_random_chain(
            20, work_range=(2.0, 4.0), checkpoint_range=(0.1, 0.2), rng=rng
        )
        assert chain.n == 20
        assert all(2.0 <= w <= 4.0 for w in chain.works)
        assert all(0.1 <= c <= 0.2 for c in chain.checkpoint_costs)

    def test_recovery_equals_checkpoint_by_default(self, rng):
        chain = uniform_random_chain(5, rng=rng)
        assert chain.recovery_costs == chain.checkpoint_costs

    def test_distinct_recovery_range(self, rng):
        chain = uniform_random_chain(
            10, recovery_equals_checkpoint=False, recovery_range=(5.0, 6.0), rng=rng
        )
        assert all(5.0 <= r <= 6.0 for r in chain.recovery_costs)

    def test_seed_reproducibility(self):
        a = uniform_random_chain(8, seed=3)
        b = uniform_random_chain(8, seed=3)
        assert a.works == b.works

    def test_degenerate_ranges(self):
        chain = uniform_random_chain(4, work_range=(3.0, 3.0), checkpoint_range=(0.5, 0.5), seed=1)
        assert set(chain.works) == {3.0}
        assert set(chain.checkpoint_costs) == {0.5}

    def test_invalid_work_range(self):
        with pytest.raises(ValueError):
            uniform_random_chain(4, work_range=(5.0, 1.0))


class TestMakeIndependent:
    def test_structure(self):
        wf = make_independent([1.0, 2.0, 3.0], checkpoint_cost=0.5)
        assert wf.is_independent()
        assert len(wf) == 3
        assert all(t.checkpoint_cost == 0.5 for t in wf.tasks())

    def test_recovery_defaults_to_checkpoint(self):
        wf = make_independent([1.0], checkpoint_cost=0.5)
        assert wf.tasks()[0].recovery_cost == 0.5

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            make_independent([])


class TestForkJoin:
    def test_structure(self):
        wf = fork_join(5, seed=1)
        assert len(wf) == 7
        assert len(wf.sources()) == 1
        assert len(wf.sinks()) == 1
        # Every branch depends on the source and feeds the sink.
        assert len(wf.dependences()) == 10

    def test_jitter_changes_branch_works(self):
        wf = fork_join(10, branch_work=4.0, work_jitter=0.5, seed=2)
        branch_works = {
            t.work for t in wf.tasks() if "branch" in t.name
        }
        assert len(branch_works) > 1
        assert all(2.0 <= w <= 6.0 for w in branch_works)

    def test_not_a_chain(self):
        assert not fork_join(3).is_chain()

    def test_rejects_zero_branches(self):
        with pytest.raises(ValueError):
            fork_join(0)


class TestTrees:
    def test_out_tree_node_count(self):
        wf = out_tree(depth=3, fanout=2)
        assert len(wf) == 1 + 2 + 4

    def test_out_tree_single_source(self):
        wf = out_tree(depth=3, fanout=3)
        assert len(wf.sources()) == 1
        assert len(wf.sinks()) == 9

    def test_in_tree_reverses_edges(self):
        wf = in_tree(depth=3, fanin=2)
        assert len(wf.sinks()) == 1
        assert len(wf.sources()) == 4

    def test_depth_one_is_single_node(self):
        wf = out_tree(depth=1, fanout=5)
        assert len(wf) == 1
        assert wf.is_chain()


class TestRandomLayeredDag:
    def test_node_count_and_acyclicity(self):
        wf = random_layered_dag(4, 3, seed=1)
        assert len(wf) == 12
        order = wf.topological_order()
        assert wf.is_valid_order(order)

    def test_every_non_source_task_has_a_predecessor(self):
        wf = random_layered_dag(5, 4, edge_probability=0.1, seed=2)
        for name in wf.task_names():
            layer = int(name.split("L")[1].split("N")[0])
            if layer > 0:
                assert wf.predecessors(name), f"{name} has no predecessor"

    def test_seed_reproducibility(self):
        a = random_layered_dag(3, 3, seed=9)
        b = random_layered_dag(3, 3, seed=9)
        assert a.dependences() == b.dependences()
        assert [t.work for t in a.tasks()] == [t.work for t in b.tasks()]

    def test_invalid_edge_probability(self):
        with pytest.raises(ValueError):
            random_layered_dag(2, 2, edge_probability=1.5)


class TestMontageLike:
    def test_node_count(self):
        wf = montage_like(6)
        # 6 projects + 5 diffs + concat + model + 6 backgrounds + add
        assert len(wf) == 6 + 5 + 1 + 1 + 6 + 1

    def test_single_sink(self):
        wf = montage_like(4)
        assert len(wf.sinks()) == 1
        assert wf.sinks()[0].endswith("mAdd")

    def test_sources_are_projects(self):
        wf = montage_like(3)
        assert all("mProject" in name for name in wf.sources())

    def test_acyclic_and_valid(self):
        wf = montage_like(5)
        assert wf.is_valid_order(wf.topological_order())

    def test_rejects_single_input(self):
        with pytest.raises(ValueError):
            montage_like(1)
