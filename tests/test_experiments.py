"""Tests for the experiment harness (reporting, sweeps, registry)."""

import pytest

from repro.experiments.registry import EXPERIMENTS, run_experiment
from repro.experiments.reporting import ResultTable
from repro.experiments.sweep import geometric_sweep, linear_sweep


class TestResultTable:
    def test_add_row_and_column(self):
        table = ResultTable(title="t", columns=["a", "b"])
        table.add_row(a=1, b=2.0)
        table.add_row(a=3, c="x")
        assert len(table) == 2
        assert table.columns == ["a", "b", "c"]
        assert table.column("a") == [1, 3]
        assert table.column("b") == [2.0, None]

    def test_column_missing_raises(self):
        table = ResultTable(title="t", columns=["a"])
        with pytest.raises(KeyError):
            table.column("z")

    def test_filter(self):
        table = ResultTable(title="t", columns=["a"])
        for i in range(5):
            table.add_row(a=i)
        filtered = table.filter(lambda row: row["a"] % 2 == 0)
        assert len(filtered) == 3

    def test_to_text_contains_header_and_values(self):
        table = ResultTable(title="My table", columns=["name", "value"])
        table.add_row(name="alpha", value=1.5)
        text = table.to_text()
        assert "My table" in text
        assert "alpha" in text
        assert "1.5" in text

    def test_to_csv(self):
        table = ResultTable(title="t", columns=["a", "b"])
        table.add_row(a=1, b="x")
        csv_text = table.to_csv()
        assert "a,b" in csv_text.splitlines()[0]
        assert "1,x" in csv_text

    def test_float_formatting(self):
        table = ResultTable(title="t", columns=["v"])
        table.add_row(v=0.0)
        table.add_row(v=1234567.0)
        table.add_row(v=0.000001)
        text = table.to_text()
        assert "1.235e+06" in text
        assert "1e-06" in text


class TestSweeps:
    def test_geometric_endpoints(self):
        values = geometric_sweep(1.0, 100.0, 3)
        assert values[0] == pytest.approx(1.0)
        assert values[-1] == pytest.approx(100.0)
        assert values[1] == pytest.approx(10.0)

    def test_geometric_single_point(self):
        assert geometric_sweep(5.0, 100.0, 1) == [5.0]

    def test_geometric_rejects_non_positive(self):
        with pytest.raises(ValueError):
            geometric_sweep(0.0, 10.0, 3)

    def test_linear_endpoints(self):
        values = linear_sweep(0.0, 10.0, 5)
        assert values == pytest.approx([0.0, 2.5, 5.0, 7.5, 10.0])

    def test_linear_single_point(self):
        assert linear_sweep(3.0, 9.0, 1) == [3.0]


class TestRegistry:
    def test_all_experiments_registered(self):
        assert set(EXPERIMENTS) == {f"E{i}" for i in range(1, 11)}

    def test_unknown_experiment_rejected(self):
        with pytest.raises(KeyError):
            run_experiment("E99")

    def test_case_insensitive_lookup(self):
        table = run_experiment("e4", num_yes=1, num_no=1, seed=1)
        assert isinstance(table, ResultTable)

    def test_e1_small_run_validates_prop1(self):
        table = run_experiment("E1", num_runs=2000, seed=3)
        assert len(table) > 0
        assert all(row["rel_error"] < 0.1 for row in table.rows)

    def test_e3_small_run_dp_matches_bruteforce(self):
        table = run_experiment(
            "E3", brute_force_sizes=(4, 6), scaling_sizes=(50,), seed=1
        )
        exact_rows = [row for row in table.rows if row["mode"] == "exactness"]
        assert exact_rows
        assert all(row["match"] for row in exact_rows)

    def test_e5_small_run_heuristic_near_optimal(self):
        table = run_experiment(
            "E5", exact_sizes=(5,), heuristic_sizes=(), seed=2
        )
        assert all(row["ratio_to_optimal"] <= 1.05 for row in table.rows)

    def test_e6_small_run_optimal_dominates(self):
        table = run_experiment("E6", n=15, seed=3)
        for row in table.rows:
            for key in ("ratio_all", "ratio_none", "ratio_daly"):
                if row[key] is not None:
                    assert row[key] >= 1.0 - 1e-9
