"""Tests for the observability substrate (repro.obs) and its instrumentation.

Covers the metrics registry (thread safety, Prometheus golden output), the
tracing layer (span nesting, correlation-id propagation -- including through
ProcessPool chunk workers), structured logging, the per-job phase breakdown,
and the bit-identity guarantee: instrumentation must never perturb samples
or cache keys.
"""

import json
import logging
import multiprocessing
import threading
import time

import pytest

from repro.obs import logging as obs_logging
from repro.obs import metrics, tracing
from repro.runtime.cache import ResultCache
from repro.runtime.scenario import ChainSpec, FailureSpec, ScenarioSpec


@pytest.fixture
def registry():
    """A fresh registry installed as the process-global one for the test."""
    fresh = metrics.MetricsRegistry()
    with metrics.use_registry(fresh):
        yield fresh


def small_spec(**overrides):
    params = dict(
        name="obs-spec",
        chain=ChainSpec(n=4, seed=11),
        failure=FailureSpec(kind="exponential", mtbf=35.0),
        strategies=("optimal_dp", "checkpoint_none"),
        num_runs=60,
        seed=7,
    )
    params.update(overrides)
    return ScenarioSpec(**params)


class TestCounterGauge:
    def test_counter_inc_and_value(self):
        counter = metrics.Counter("c_total", labelnames=("kind",))
        counter.inc(kind="a")
        counter.inc(2.5, kind="a")
        counter.inc(kind="b")
        assert counter.value(kind="a") == 3.5
        assert counter.value(kind="b") == 1.0
        assert counter.total() == 4.5

    def test_counter_rejects_negative_and_bad_labels(self):
        counter = metrics.Counter("c_total", labelnames=("kind",))
        with pytest.raises(ValueError, match="cannot decrease"):
            counter.inc(-1, kind="a")
        with pytest.raises(ValueError, match="takes labels"):
            counter.inc(wrong="a")
        with pytest.raises(ValueError, match="takes labels"):
            counter.inc()  # missing the label entirely

    def test_gauge_set_inc_dec(self):
        gauge = metrics.Gauge("depth")
        gauge.set(4)
        gauge.inc()
        gauge.dec(2)
        assert gauge.value() == 3.0

    def test_invalid_metric_name_rejected(self):
        with pytest.raises(ValueError, match="invalid metric name"):
            metrics.Counter("bad name")
        with pytest.raises(ValueError, match="invalid label name"):
            metrics.Counter("ok_total", labelnames=("bad-label",))


class TestHistogram:
    def test_bucketing_is_le_inclusive(self):
        hist = metrics.Histogram("h_seconds", buckets=(0.1, 1.0))
        for value in (0.05, 0.1, 0.5, 3.0):
            hist.observe(value)
        child = dict(hist.children())[()]
        # 0.05 and 0.1 land in le=0.1 (inclusive upper bound), 0.5 in le=1,
        # 3.0 in +Inf.
        assert child.bucket_counts == [2, 1, 1]
        assert child.count == 4
        assert child.sum == pytest.approx(3.65)

    def test_buckets_must_increase(self):
        with pytest.raises(ValueError, match="distinct and increasing"):
            metrics.Histogram("h_seconds", buckets=(1.0, 0.5))


class TestRegistry:
    def test_get_or_create_returns_same_instance(self):
        registry = metrics.MetricsRegistry()
        first = registry.counter("jobs_total", labelnames=("kind",))
        second = registry.counter("jobs_total", labelnames=("kind",))
        assert first is second

    def test_redeclaration_mismatch_raises(self):
        registry = metrics.MetricsRegistry()
        registry.counter("x_total", labelnames=("kind",))
        with pytest.raises(ValueError, match="already registered"):
            registry.gauge("x_total", labelnames=("kind",))
        with pytest.raises(ValueError, match="already registered"):
            registry.counter("x_total", labelnames=("other",))

    def test_total_sums_children(self):
        registry = metrics.MetricsRegistry()
        counter = registry.counter("t_total", labelnames=("k",))
        counter.inc(2, k="a")
        counter.inc(3, k="b")
        assert registry.total("t_total") == 5.0
        assert registry.total("missing") == 0.0
        hist = registry.histogram("h_seconds")
        hist.observe(0.5)
        hist.observe(1.5)
        assert registry.total("h_seconds") == 2.0  # histograms count observations

    def test_concurrent_increments_lose_nothing(self):
        """The thread-safety contract: N threads x M increments land exactly."""
        registry = metrics.MetricsRegistry()
        counter = registry.counter("race_total", labelnames=("worker",))
        hist = registry.histogram("race_seconds", buckets=(0.5,))
        num_threads, per_thread = 8, 2000

        def hammer(worker_id):
            for _ in range(per_thread):
                counter.inc(worker=str(worker_id % 2))
                hist.observe(0.1)

        threads = [
            threading.Thread(target=hammer, args=(i,)) for i in range(num_threads)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert counter.total() == num_threads * per_thread
        assert hist.count() == num_threads * per_thread
        assert hist.sum_value() == pytest.approx(num_threads * per_thread * 0.1)

    def test_global_registry_swap_and_restore(self):
        original = metrics.get_registry()
        fresh = metrics.MetricsRegistry()
        with metrics.use_registry(fresh):
            assert metrics.get_registry() is fresh
        assert metrics.get_registry() is original
        with pytest.raises(TypeError):
            metrics.set_registry("not a registry")


class TestPrometheusRendering:
    def test_golden_output(self):
        registry = metrics.MetricsRegistry()
        jobs = registry.counter(
            "repro_jobs_total", "Jobs by kind.", labelnames=("kind",)
        )
        jobs.inc(3, kind="campaign")
        jobs.inc(kind="experiment")
        depth = registry.gauge("repro_depth", "Queue depth.")
        depth.set(2)
        lat = registry.histogram(
            "repro_lat_seconds", "Latency.", labelnames=("route",), buckets=(0.1, 1.0)
        )
        lat.observe(0.05, route="/v1/jobs")
        lat.observe(0.75, route="/v1/jobs")
        expected = "\n".join([
            "# HELP repro_jobs_total Jobs by kind.",
            "# TYPE repro_jobs_total counter",
            'repro_jobs_total{kind="campaign"} 3',
            'repro_jobs_total{kind="experiment"} 1',
            "# HELP repro_depth Queue depth.",
            "# TYPE repro_depth gauge",
            "repro_depth 2",
            "# HELP repro_lat_seconds Latency.",
            "# TYPE repro_lat_seconds histogram",
            'repro_lat_seconds_bucket{route="/v1/jobs",le="0.1"} 1',
            'repro_lat_seconds_bucket{route="/v1/jobs",le="1"} 2',
            'repro_lat_seconds_bucket{route="/v1/jobs",le="+Inf"} 2',
            'repro_lat_seconds_sum{route="/v1/jobs"} 0.8',
            'repro_lat_seconds_count{route="/v1/jobs"} 2',
        ]) + "\n"
        assert registry.render_prometheus() == expected

    def test_label_values_are_escaped(self):
        registry = metrics.MetricsRegistry()
        counter = registry.counter("esc_total", labelnames=("path",))
        counter.inc(path='a"b\\c\nd')
        rendered = registry.render_prometheus()
        assert r'path="a\"b\\c\nd"' in rendered

    def test_empty_registry_renders_empty(self):
        assert metrics.MetricsRegistry().render_prometheus() == ""

    def test_snapshot_round_trips_through_json(self):
        registry = metrics.MetricsRegistry()
        registry.counter("s_total", labelnames=("k",)).inc(k="x")
        registry.histogram("s_seconds", buckets=(1.0,)).observe(0.5)
        snapshot = json.loads(json.dumps(registry.snapshot()))
        assert snapshot["s_total"]["values"] == [{"labels": {"k": "x"}, "value": 1.0}]
        assert snapshot["s_seconds"]["values"][0]["count"] == 1


class TestTracing:
    def test_span_records_nesting_and_correlation(self, registry):
        with tracing.start_trace("cid-test-1") as trace:
            with tracing.span("outer"):
                with tracing.span("inner", index=3):
                    pass
        # Spans append as they *finish*: inner first.
        names = [record["name"] for record in trace.spans]
        assert names == ["inner", "outer"]
        inner, outer = trace.spans
        assert inner["parent"] == "outer"
        assert outer["parent"] is None
        assert inner["correlation_id"] == "cid-test-1"
        assert inner["attrs"] == {"index": 3}
        assert inner["duration_s"] >= 0.0
        # Every span fed the duration histogram in the active registry.
        assert registry.total("repro_span_seconds") == 2.0

    def test_span_without_trace_still_observes_histogram(self, registry):
        assert tracing.current_trace() is None
        with tracing.span("lonely"):
            pass
        assert registry.total("repro_span_seconds") == 1.0

    def test_durations_prefix_sum(self):
        with tracing.start_trace() as trace:
            with tracing.span("cache.get"):
                pass
            with tracing.span("cache.put"):
                pass
            with tracing.span("compute"):
                pass
        cache_total = trace.durations("cache.")
        assert cache_total == pytest.approx(
            sum(r["duration_s"] for r in trace.spans if r["name"].startswith("cache."))
        )
        assert cache_total < trace.durations("")

    def test_trace_caps_retained_spans(self, registry, monkeypatch):
        monkeypatch.setattr(tracing, "MAX_SPANS_PER_TRACE", 5)
        with tracing.start_trace() as trace:
            for _ in range(8):
                with tracing.span("tick"):
                    pass
        assert len(trace.spans) == 5
        assert trace.dropped == 3

    def test_snapshot_and_activate_round_trip(self, registry):
        assert tracing.context_snapshot() is None
        with tracing.start_trace("cid-snap"):
            snapshot = tracing.context_snapshot()
        assert snapshot == {"correlation_id": "cid-snap"}
        with tracing.activate(snapshot):
            assert tracing.current_correlation_id() == "cid-snap"
        assert tracing.current_correlation_id() is None
        with tracing.activate(None):
            assert tracing.current_correlation_id() is None

    def test_activate_reuses_already_active_trace(self, registry):
        """Serial in-thread chunks keep collecting into the job's own trace."""
        with tracing.start_trace("cid-same") as trace:
            snapshot = tracing.context_snapshot()
            with tracing.activate(snapshot) as inner:
                assert inner is trace
                with tracing.span("chunk"):
                    pass
        assert [r["name"] for r in trace.spans] == ["chunk"]

    def test_span_survives_exceptions(self, registry):
        with tracing.start_trace() as trace:
            with pytest.raises(RuntimeError):
                with tracing.span("doomed"):
                    raise RuntimeError("boom")
        assert [r["name"] for r in trace.spans] == ["doomed"]
        assert registry.total("repro_span_seconds") == 1.0

    def test_spans_are_cheap_without_collectors(self, registry):
        """Pay-for-what-you-use: an idle span is microseconds, not millis."""
        start = time.perf_counter()
        for _ in range(1000):
            with tracing.span("hot"):
                pass
        elapsed = time.perf_counter() - start
        assert elapsed < 1.0  # 1ms per span would already be pathological


class TestStructuredLogging:
    def test_json_line_format(self, registry):
        records = []

        class Capture(logging.Handler):
            def emit(self, record):
                records.append(self.format(record))

        handler = Capture()
        handler.setFormatter(obs_logging.JsonLineFormatter())
        logger = obs_logging.get_logger("test.golden")
        logger.addHandler(handler)
        logger.setLevel(logging.INFO)
        try:
            with tracing.start_trace("cid-log"):
                obs_logging.log_event(logger, "thing.happened", job_id="j1", count=2)
        finally:
            logger.removeHandler(handler)
            logger.setLevel(logging.NOTSET)
        assert len(records) == 1
        event = json.loads(records[0])
        assert event["event"] == "thing.happened"
        assert event["level"] == "info"
        assert event["logger"] == "repro.test.golden"
        assert event["job_id"] == "j1"
        assert event["count"] == 2
        assert event["correlation_id"] == "cid-log"
        assert isinstance(event["ts"], float)

    def test_exception_text_included(self):
        import sys

        formatter = obs_logging.JsonLineFormatter()
        try:
            raise ValueError("kaput")
        except ValueError:
            record = logging.LogRecord(
                "repro.test", logging.ERROR, __file__, 1, "job.failed", (),
                exc_info=sys.exc_info(),
            )
        event = json.loads(formatter.format(record))
        assert "kaput" in event["exception"]
        assert "Traceback" in event["exception"]

    def test_configure_logging_is_idempotent(self):
        import io

        root = logging.getLogger("repro")
        before = list(root.handlers)
        stream_a, stream_b = io.StringIO(), io.StringIO()
        try:
            obs_logging.configure_logging(stream=stream_a)
            obs_logging.configure_logging(stream=stream_b)
            ours = [h for h in root.handlers if getattr(h, "_repro_obs_handler", False)]
            assert len(ours) == 1  # replaced, not stacked
            obs_logging.log_event(obs_logging.get_logger("idem"), "ping")
            assert stream_a.getvalue() == ""
            assert "ping" in stream_b.getvalue()
        finally:
            for handler in list(root.handlers):
                if getattr(handler, "_repro_obs_handler", False):
                    root.removeHandler(handler)
            root.setLevel(logging.NOTSET)
        assert root.handlers == before

    def test_disabled_level_short_circuits(self, registry):
        logger = obs_logging.get_logger("test.silent")
        # DEBUG is disabled by default: log_event must not even build fields.
        assert not logger.isEnabledFor(logging.DEBUG)
        obs_logging.log_event(logger, "noise", level=logging.DEBUG, big=object())


class TestChunkInstrumentation:
    def test_serial_chunked_run_records_chunk_metrics(self, registry, tmp_path):
        spec = small_spec()
        with tracing.start_trace("job-xyz") as trace:
            spec.run(cache=ResultCache(tmp_path), chunk_size=20)
        # 60 runs / chunk_size 20 = 3 chunks, all in this thread.
        assert registry.get("repro_chunk_seconds").count(
            engine="scalar", kind="campaign"
        ) == 3
        assert registry.get("repro_replications_per_second").value(
            engine="scalar", kind="campaign"
        ) > 0
        chunk_spans = [r for r in trace.spans if r["name"] == "campaign.chunk"]
        assert len(chunk_spans) == 3
        assert all(r["correlation_id"] == "job-xyz" for r in chunk_spans)
        cache_spans = [r for r in trace.spans if r["name"].startswith("cache.")]
        assert cache_spans  # the miss lookup and the put both traced

    def test_cache_counters_by_namespace(self, registry, tmp_path):
        spec = small_spec()
        cache = ResultCache(tmp_path)
        spec.run(cache=cache)
        spec.run(cache=cache)
        requests = registry.get("repro_cache_requests_total")
        assert requests.value(namespace="campaign", outcome="miss") == 1
        assert requests.value(namespace="campaign", outcome="hit") == 1
        assert cache.hits == 1 and cache.misses == 1
        written = registry.get("repro_cache_bytes_written_total")
        assert written.value(namespace="campaign") > 0

    @pytest.mark.skipif(
        multiprocessing.get_start_method() != "fork",
        reason="pool workers only inherit logging config under fork start",
    )
    def test_correlation_id_propagates_through_pool_chunks(self, registry, capfd):
        from repro.simulation.monte_carlo import estimate_expected_completion_time

        root = logging.getLogger("repro")
        handler = obs_logging.configure_logging(level=logging.DEBUG)
        try:
            with tracing.start_trace("cid-pool-1"):
                estimate_expected_completion_time(
                    1.0, 0.1, 0.0, 0.1, 0.05,
                    num_runs=40, seed=3, backend=2, chunk_size=20,
                )
        finally:
            root.removeHandler(handler)
            root.setLevel(logging.NOTSET)
        err = capfd.readouterr().err
        chunk_events = [
            json.loads(line)
            for line in err.splitlines()
            if '"span": "mc.chunk"' in line
        ]
        assert chunk_events, f"no chunk span events in child stderr: {err!r}"
        assert all(e["correlation_id"] == "cid-pool-1" for e in chunk_events)


class TestBitIdentity:
    """Instrumentation must not perturb samples, RNG streams or cache keys."""

    def test_instrumented_run_is_bit_identical(self, tmp_path):
        spec = small_spec()
        plain = spec.run(cache=ResultCache(tmp_path / "plain"), chunk_size=20)
        with metrics.use_registry(metrics.MetricsRegistry()):
            with tracing.start_trace("instrumented"):
                instrumented = spec.run(
                    cache=ResultCache(tmp_path / "traced"), chunk_size=20
                )
        assert plain.makespans == instrumented.makespans
        # Both runs content-address identically: same entry filenames.
        plain_keys = sorted(p.name for p in (tmp_path / "plain").rglob("*.json"))
        traced_keys = sorted(p.name for p in (tmp_path / "traced").rglob("*.json"))
        assert plain_keys == traced_keys and plain_keys

    def test_vectorized_engine_identical_under_tracing(self, tmp_path):
        spec = small_spec(engine="vectorized", num_runs=40)
        plain = spec.run(chunk_size=20)
        with tracing.start_trace():
            traced = spec.run(chunk_size=20)
        assert plain.makespans == traced.makespans


class TestJobPhases:
    def test_scheduler_records_phase_breakdown(self, registry, tmp_path):
        from repro.service.jobs import JobStore
        from repro.service.queue import JobScheduler

        store = JobStore()
        scheduler = JobScheduler(store, cache=ResultCache(tmp_path))
        try:
            record, reused = scheduler.submit_campaign(small_spec().to_dict())
            assert not reused
            assert scheduler.run_pending() == 1
            done = store.get(record.id)
            assert done.state == "done"
            assert set(done.phases) == {"queue_wait_s", "compute_s", "cache_s"}
            assert all(value >= 0.0 for value in done.phases.values())
            assert done.phases["compute_s"] > 0.0
            assert done.to_dict()["timings"]["phases"] == done.phases
        finally:
            scheduler.stop()
            store.close()
        assert registry.get("repro_jobs_submitted_total").value(kind="campaign") == 1
        assert registry.get("repro_jobs_completed_total").value(
            kind="campaign", outcome="done"
        ) == 1
        assert registry.total("repro_job_claim_seconds") == 1.0
        assert registry.get("repro_job_run_seconds").count(kind="campaign") == 1
        assert registry.total("repro_jobstore_op_seconds") > 0

    def test_failed_job_logs_structured_error_and_keeps_phases(self, registry):
        from repro.service.jobs import JobStore
        from repro.service.queue import JobScheduler

        store = JobStore()
        scheduler = JobScheduler(store)
        records = []

        class Capture(logging.Handler):
            def emit(self, record):
                records.append(json.loads(self.format(record)))

        handler = Capture()
        handler.setFormatter(obs_logging.JsonLineFormatter())
        logger = logging.getLogger("repro.service.queue")
        logger.addHandler(handler)
        try:
            # A spec that validates at submission but fails at execution:
            # corrupt the stored payload the way a schema drift would.
            record, _ = scheduler.submit_campaign(small_spec().to_dict())
            with store._lock, store._conn:
                store._conn.execute(
                    "UPDATE jobs SET spec = ? WHERE id = ?",
                    (json.dumps({"scenario": {"name": "broken"}}), record.id),
                )
            scheduler.run_pending()
        finally:
            logger.removeHandler(handler)
            scheduler.stop()
            store.close()
        failed = [e for e in records if e["event"] == "job.failed"]
        assert len(failed) == 1
        assert failed[0]["job_id"] == record.id
        assert failed[0]["correlation_id"] == record.id
        assert failed[0]["level"] == "error"
        assert "exception" in failed[0]
        assert registry.get("repro_jobs_completed_total").value(
            kind="campaign", outcome="failed"
        ) == 1

    def test_phases_survive_store_migration(self, tmp_path):
        """A pre-observability database gains the phases column on open."""
        import sqlite3

        from repro.service.jobs import JobStore

        db = tmp_path / "old.sqlite"
        conn = sqlite3.connect(db)
        # The PR-5 era schema: no phases column.
        conn.executescript("""
            CREATE TABLE jobs (
                id TEXT PRIMARY KEY, kind TEXT NOT NULL, spec TEXT NOT NULL,
                dedupe_key TEXT, state TEXT NOT NULL,
                chunks_done INTEGER NOT NULL DEFAULT 0,
                chunks_total INTEGER NOT NULL DEFAULT 0,
                result TEXT, error TEXT,
                cancel_requested INTEGER NOT NULL DEFAULT 0,
                submitted_at REAL NOT NULL, started_at REAL, finished_at REAL
            );
        """)
        conn.execute(
            "INSERT INTO jobs (id, kind, spec, state, submitted_at)"
            " VALUES ('legacy01', 'campaign', '{}', 'done', 1.0)"
        )
        conn.commit()
        conn.close()
        store = JobStore(db)
        try:
            legacy = store.get("legacy01")
            assert legacy.phases is None
            store.record_phases("legacy01", {"queue_wait_s": 0.5, "compute_s": 2.0,
                                             "cache_s": 0.1})
            assert store.get("legacy01").phases == {
                "queue_wait_s": 0.5, "compute_s": 2.0, "cache_s": 0.1,
            }
        finally:
            store.close()


class TestStartupValidation:
    def test_scheduler_rejects_oversized_default_chunk_size(self):
        from repro.service.jobs import JobStore
        from repro.service.queue import JobScheduler

        with JobStore() as store:
            with pytest.raises(ValueError, match="exceeds the service cap"):
                JobScheduler(store, chunk_size=JobScheduler.MAX_CHUNK_SIZE + 1)
            with pytest.raises(TypeError, match="must be an integer"):
                JobScheduler(store, chunk_size="lots")
            with pytest.raises(ValueError, match=">= 1"):
                JobScheduler(store, chunk_size=0)
            # The cap itself and None are fine.
            JobScheduler(store, chunk_size=JobScheduler.MAX_CHUNK_SIZE).stop()
            JobScheduler(store, chunk_size=None).stop()
