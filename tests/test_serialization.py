"""Tests for workflow/chain JSON serialisation and DOT export."""

import json

import pytest

from repro.workflows.generators import montage_like, uniform_random_chain
from repro.workflows.serialization import (
    chain_from_dict,
    chain_to_dict,
    load_chain,
    load_workflow,
    save_chain,
    save_workflow,
    workflow_from_dict,
    workflow_to_dict,
    workflow_to_dot,
)


class TestWorkflowRoundTrip:
    def test_dict_round_trip_preserves_structure(self, diamond_workflow):
        data = workflow_to_dict(diamond_workflow)
        restored = workflow_from_dict(data)
        assert restored.task_names() == diamond_workflow.task_names()
        assert sorted(restored.dependences()) == sorted(diamond_workflow.dependences())
        for name in diamond_workflow.task_names():
            original = diamond_workflow.task(name)
            copy = restored.task(name)
            assert copy.work == original.work
            assert copy.checkpoint_cost == original.checkpoint_cost
            assert copy.recovery_cost == original.recovery_cost

    def test_dict_is_json_serialisable(self, diamond_workflow):
        text = json.dumps(workflow_to_dict(diamond_workflow))
        assert "repro-workflow" in text

    def test_file_round_trip(self, diamond_workflow, tmp_path):
        path = tmp_path / "wf.json"
        save_workflow(diamond_workflow, path)
        restored = load_workflow(path)
        assert restored.task_names() == diamond_workflow.task_names()

    def test_montage_round_trip(self, tmp_path):
        wf = montage_like(4)
        path = tmp_path / "montage.json"
        save_workflow(wf, path)
        restored = load_workflow(path)
        assert len(restored) == len(wf)
        assert sorted(restored.dependences()) == sorted(wf.dependences())

    def test_rejects_wrong_format(self):
        with pytest.raises(ValueError, match="format"):
            workflow_from_dict({"format": "other", "version": 1, "tasks": []})

    def test_rejects_wrong_version(self):
        with pytest.raises(ValueError, match="version"):
            workflow_from_dict({"format": "repro-workflow", "version": 99, "tasks": []})

    def test_rejects_malformed_tasks(self):
        with pytest.raises(ValueError, match="malformed"):
            workflow_from_dict(
                {"format": "repro-workflow", "version": 1, "tasks": [{"name": "A"}]}
            )

    def test_rejects_non_dict(self):
        with pytest.raises(ValueError):
            workflow_from_dict([1, 2, 3])


class TestChainRoundTrip:
    def test_dict_round_trip(self, small_chain):
        restored = chain_from_dict(chain_to_dict(small_chain))
        assert restored.works == small_chain.works
        assert restored.checkpoint_costs == small_chain.checkpoint_costs
        assert restored.recovery_costs == small_chain.recovery_costs
        assert restored.initial_recovery == small_chain.initial_recovery
        assert restored.names == small_chain.names

    def test_file_round_trip(self, tmp_path):
        chain = uniform_random_chain(7, seed=120)
        path = tmp_path / "chain.json"
        save_chain(chain, path)
        restored = load_chain(path)
        assert restored.works == chain.works

    def test_rejects_wrong_format(self, small_chain):
        data = chain_to_dict(small_chain)
        data["format"] = "repro-workflow"
        with pytest.raises(ValueError):
            chain_from_dict(data)

    def test_rejects_missing_fields(self):
        with pytest.raises(ValueError, match="malformed"):
            chain_from_dict({"format": "repro-chain", "version": 1, "works": [1.0]})


class TestDotExport:
    def test_contains_all_tasks_and_edges(self, diamond_workflow):
        dot = workflow_to_dot(diamond_workflow)
        for name in diamond_workflow.task_names():
            assert f'"{name}"' in dot
        assert '"A" -> "B";' in dot
        assert dot.startswith('digraph "diamond"')

    def test_checkpointed_tasks_highlighted(self, diamond_workflow):
        dot = workflow_to_dot(diamond_workflow, checkpoint_after=["B", "D"])
        assert dot.count("doubleoctagon") == 2

    def test_unknown_checkpoint_task_rejected(self, diamond_workflow):
        with pytest.raises(ValueError, match="unknown tasks"):
            workflow_to_dot(diamond_workflow, checkpoint_after=["Z"])
