"""Tests for the shared input-validation helpers."""

import math

import pytest

from repro._validation import (
    check_finite,
    check_in_range,
    check_non_negative,
    check_non_negative_int,
    check_permutation,
    check_positive,
    check_positive_int,
    check_probability,
    check_same_length,
    check_sequence_of_non_negative,
    check_sequence_of_positive,
)


class TestCheckFinite:
    def test_accepts_plain_float(self):
        assert check_finite("x", 3.5) == 3.5

    def test_accepts_int(self):
        assert check_finite("x", 7) == 7.0

    def test_rejects_nan(self):
        with pytest.raises(ValueError, match="finite"):
            check_finite("x", math.nan)

    def test_rejects_inf(self):
        with pytest.raises(ValueError, match="finite"):
            check_finite("x", math.inf)

    def test_rejects_string(self):
        with pytest.raises(TypeError, match="real number"):
            check_finite("x", "hello")

    def test_rejects_none(self):
        with pytest.raises(TypeError):
            check_finite("x", None)

    def test_rejects_bool(self):
        with pytest.raises(TypeError, match="bool"):
            check_finite("x", True)

    def test_error_message_contains_name(self):
        with pytest.raises(ValueError, match="my_param"):
            check_finite("my_param", math.inf)


class TestCheckPositive:
    def test_accepts_positive(self):
        assert check_positive("x", 0.001) == 0.001

    def test_rejects_zero(self):
        with pytest.raises(ValueError, match="> 0"):
            check_positive("x", 0.0)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            check_positive("x", -1.0)


class TestCheckNonNegative:
    def test_accepts_zero(self):
        assert check_non_negative("x", 0.0) == 0.0

    def test_accepts_positive(self):
        assert check_non_negative("x", 2.0) == 2.0

    def test_rejects_negative(self):
        with pytest.raises(ValueError, match=">= 0"):
            check_non_negative("x", -0.1)


class TestCheckProbability:
    def test_accepts_bounds(self):
        assert check_probability("p", 0.0) == 0.0
        assert check_probability("p", 1.0) == 1.0

    def test_rejects_above_one(self):
        with pytest.raises(ValueError):
            check_probability("p", 1.5)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            check_probability("p", -0.5)


class TestCheckInRange:
    def test_inclusive_bounds(self):
        assert check_in_range("x", 1.0, 1.0, 2.0) == 1.0
        assert check_in_range("x", 2.0, 1.0, 2.0) == 2.0

    def test_exclusive_bounds_reject_endpoints(self):
        with pytest.raises(ValueError):
            check_in_range("x", 1.0, 1.0, 2.0, inclusive=False)

    def test_rejects_outside(self):
        with pytest.raises(ValueError):
            check_in_range("x", 3.0, 1.0, 2.0)


class TestIntChecks:
    def test_positive_int_accepts(self):
        assert check_positive_int("n", 3) == 3

    def test_positive_int_rejects_zero(self):
        with pytest.raises(ValueError):
            check_positive_int("n", 0)

    def test_positive_int_rejects_float(self):
        with pytest.raises(TypeError):
            check_positive_int("n", 3.0)

    def test_positive_int_rejects_bool(self):
        with pytest.raises(TypeError):
            check_positive_int("n", True)

    def test_non_negative_int_accepts_zero(self):
        assert check_non_negative_int("n", 0) == 0

    def test_non_negative_int_rejects_negative(self):
        with pytest.raises(ValueError):
            check_non_negative_int("n", -1)


class TestSequenceChecks:
    def test_non_negative_sequence(self):
        assert check_sequence_of_non_negative("xs", [0.0, 1.0, 2.5]) == [0.0, 1.0, 2.5]

    def test_non_negative_sequence_rejects_negative_element(self):
        with pytest.raises(ValueError, match=r"xs\[1\]"):
            check_sequence_of_non_negative("xs", [0.0, -1.0])

    def test_non_negative_sequence_rejects_empty(self):
        with pytest.raises(ValueError, match="empty"):
            check_sequence_of_non_negative("xs", [])

    def test_positive_sequence_rejects_zero_element(self):
        with pytest.raises(ValueError):
            check_sequence_of_positive("xs", [1.0, 0.0])

    def test_same_length_passes(self):
        check_same_length(("a", [1, 2]), ("b", [3, 4]))

    def test_same_length_fails(self):
        with pytest.raises(ValueError, match="same length"):
            check_same_length(("a", [1, 2]), ("b", [3]))


class TestCheckPermutation:
    def test_accepts_valid_permutation(self):
        assert check_permutation("order", [2, 0, 1], 3) == [2, 0, 1]

    def test_rejects_missing_element(self):
        with pytest.raises(ValueError):
            check_permutation("order", [0, 0, 1], 3)

    def test_rejects_wrong_length(self):
        with pytest.raises(ValueError):
            check_permutation("order", [0, 1], 3)
